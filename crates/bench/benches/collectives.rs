//! Criterion benchmarks of the in-process communication substrate:
//! all-reduce groups and p2p mesh round-trips.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use opt_net::{CollectiveWorld, P2pMesh};
use opt_tensor::{Matrix, SeedStream};
use std::thread;

fn bench_all_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_reduce_sum");
    for &ranks in &[2usize, 4, 8] {
        let mut rng = SeedStream::new(1);
        let m = rng.uniform_matrix(64, 64, 1.0);
        group.throughput(Throughput::Bytes((m.len() * 4 * ranks) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(ranks), &ranks, |b, &ranks| {
            let world = CollectiveWorld::new(ranks);
            let g = world.group(&(0..ranks).collect::<Vec<_>>());
            b.iter(|| {
                thread::scope(|s| {
                    let mut handles = Vec::new();
                    for r in 0..ranks {
                        let g = g.clone();
                        let m = m.clone();
                        handles.push(s.spawn(move || g.all_reduce_sum(r, m)));
                    }
                    for h in handles {
                        std::hint::black_box(h.join().unwrap().unwrap());
                    }
                });
            });
        });
    }
    group.finish();
}

fn bench_p2p(c: &mut Criterion) {
    let mut group = c.benchmark_group("p2p_send_recv");
    for &elems in &[1024usize, 16 * 1024, 256 * 1024] {
        let mut rng = SeedStream::new(2);
        let m = rng.uniform_matrix(elems / 32, 32, 1.0);
        group.throughput(Throughput::Bytes((m.len() * 4) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(elems), &elems, |b, _| {
            let mesh: P2pMesh<Matrix> = P2pMesh::new(2);
            b.iter(|| {
                mesh.send(0, 1, m.clone());
                std::hint::black_box(mesh.recv(0, 1).unwrap());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_all_reduce, bench_p2p);
criterion_main!(benches);
