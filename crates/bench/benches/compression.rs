//! Criterion benchmarks of the compression kernels (Fig. 15's real-code
//! counterpart): PowerSGD compress/decompress across ranks and shapes,
//! plus the top-k and quantization baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use opt_compress::{Compressor, PowerSgd, SignQuantizer, TernaryQuantizer, TopK};
use opt_tensor::SeedStream;

fn bench_powersgd(c: &mut Criterion) {
    let mut group = c.benchmark_group("powersgd_compress");
    for &rank in &[2usize, 4, 8, 16] {
        let mut rng = SeedStream::new(1);
        let grad = rng.uniform_matrix(512, 192, 1.0);
        group.throughput(Throughput::Bytes((grad.len() * 2) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(rank), &rank, |b, &rank| {
            let mut comp = PowerSgd::new(rank, 7);
            b.iter(|| comp.compress(std::hint::black_box(&grad)));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("powersgd_decompress");
    for &rank in &[2usize, 4, 8, 16] {
        let mut rng = SeedStream::new(1);
        let grad = rng.uniform_matrix(512, 192, 1.0);
        let payload = PowerSgd::new(rank, 7).compress(&grad);
        group.throughput(Throughput::Bytes((grad.len() * 2) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(rank), &rank, |b, _| {
            b.iter(|| std::hint::black_box(&payload).decompress());
        });
    }
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let mut rng = SeedStream::new(2);
    let grad = rng.uniform_matrix(512, 192, 1.0);
    let bytes = (grad.len() * 2) as u64;

    let mut group = c.benchmark_group("compressor_baselines");
    group.throughput(Throughput::Bytes(bytes));
    group.bench_function("topk_10pct", |b| {
        let mut comp = TopK::new(0.1);
        b.iter(|| comp.compress(std::hint::black_box(&grad)));
    });
    group.bench_function("sign_1bit", |b| {
        let mut comp = SignQuantizer::new();
        b.iter(|| comp.compress(std::hint::black_box(&grad)));
    });
    group.bench_function("ternary", |b| {
        let mut comp = TernaryQuantizer::new(3);
        b.iter(|| comp.compress(std::hint::black_box(&grad)));
    });
    group.finish();
}

criterion_group!(benches, bench_powersgd, bench_baselines);
criterion_main!(benches);
