//! Criterion benchmark of the numerical 3D-parallel trainer: one full
//! training iteration (all micro-batches, DP exchange, embedding sync)
//! for baseline vs full Optimus-CC. Demonstrates that compression also
//! reduces *our* in-process wall-clock (less data through channels).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use optimus_cc::{QualityConfig, Trainer, TrainerConfig};

fn bench_train_iter(c: &mut Criterion) {
    let mut group = c.benchmark_group("trainer_iteration");
    group.sample_size(10);
    for (name, q) in [
        ("baseline", QualityConfig::baseline()),
        ("cb_fe_sc", QualityConfig::cb_fe_sc()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &q, |b, q| {
            let mut trainer = Trainer::launch(TrainerConfig::tiny_test(*q, 1));
            b.iter(|| trainer.train_more(1));
            // Leak-free teardown happens on drop of the bench input.
            // (Trainer::shutdown consumes; run it once at the end.)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_train_iter);
criterion_main!(benches);
