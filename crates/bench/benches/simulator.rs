//! Criterion benchmarks of the discrete-event cluster simulator — one
//! benchmark per paper-scale experiment family, so regenerating every
//! timing figure stays cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use opt_model::GptConfig;
use opt_sim::{breakdown, simulate, CompressionPlan, SimConfig};

fn bench_simulate(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_iteration");
    for (name, cfg) in [
        ("gpt2.5b", SimConfig::paper_gpt_2_5b()),
        ("gpt8.3b", SimConfig::paper_gpt_8_3b()),
        ("gpt175b", {
            let mut c = SimConfig::paper_defaults(GptConfig::gpt_175b());
            c.pp = 16;
            c
        }),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| simulate(std::hint::black_box(cfg)));
        });
    }
    group.finish();
}

fn bench_breakdown(c: &mut Criterion) {
    let mut group = c.benchmark_group("breakdown_ablation");
    for (name, plan) in [
        ("baseline", CompressionPlan::baseline()),
        ("cb_fe_sc", CompressionPlan::cb_fe_sc()),
    ] {
        let cfg = SimConfig::paper_gpt_2_5b().with_plan(plan);
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| breakdown(std::hint::black_box(cfg)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulate, bench_breakdown);
criterion_main!(benches);
