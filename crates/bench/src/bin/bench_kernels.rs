//! Kernel-trajectory benchmark: seed-naive vs blocked vs blocked+parallel
//! tensor kernels on the GEMM/PowerSGD hot path, emitting
//! `BENCH_kernels.json` (the first entry in the repo's perf trajectory).
//!
//! The PowerSGD shapes mirror the paper's compression kernel: a
//! `grad x grad` gradient against rank-`r` factors, whose
//! orthonormalization step §9.6 identifies as ~80 % of compression time.
//! Square shapes stand in for the transformer forward/backward GEMMs.
//!
//! Modes:
//! * default — paper-relevant shapes (4096x4096 gradients, rank-4/8
//!   factors, 512-square model GEMMs);
//! * `--smoke` — small shapes for CI; exits non-zero if the blocked
//!   kernels regress below the seed-naive reference.
//!
//! Every op is checked for bit-identity against the naive reference before
//! timing, so the benchmark doubles as an end-to-end determinism probe.

use opt_tensor::{
    naive, orthonormalize_columns, set_kernel_threads, set_parallel_flop_threshold, Matrix,
    SeedStream,
};
use std::time::Instant;

/// One timed kernel variant.
struct Sample {
    ns_per_op: f64,
    gflops: f64,
}

/// One benchmarked operation across the three kernel variants.
struct OpResult {
    op: &'static str,
    shape: String,
    flops: f64,
    seed_naive: Sample,
    blocked: Sample,
    blocked_parallel: Sample,
}

impl OpResult {
    fn speedup_blocked(&self) -> f64 {
        self.seed_naive.ns_per_op / self.blocked.ns_per_op
    }

    fn speedup_parallel(&self) -> f64 {
        self.seed_naive.ns_per_op / self.blocked_parallel.ns_per_op
    }
}

/// Best-of-N wall time in nanoseconds, running at least `min_ms` total.
fn time_ns(min_ms: f64, mut f: impl FnMut()) -> f64 {
    f(); // warmup
    let mut best = f64::INFINITY;
    let mut spent = 0.0;
    let mut reps = 0u32;
    while spent < min_ms * 1e6 && reps < 1000 {
        let t = Instant::now();
        f();
        let dt = t.elapsed().as_secs_f64() * 1e9;
        best = best.min(dt);
        spent += dt;
        reps += 1;
    }
    best
}

fn sample(flops: f64, ns: f64) -> Sample {
    Sample {
        ns_per_op: ns,
        gflops: flops / ns, // flops / ns == Gflop/s
    }
}

fn assert_bits_equal(label: &str, a: &Matrix, b: &Matrix) {
    assert_eq!(a.shape(), b.shape(), "{label}: shape mismatch");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{label}: element {i} differs ({x} vs {y}) — determinism contract broken"
        );
    }
}

/// Benchmarks one op given closures producing the naive and optimized
/// results; the optimized closure is timed at 1 thread and again at
/// `par_threads` with the parallel threshold forced to zero.
fn bench_op(
    op: &'static str,
    shape: String,
    flops: f64,
    min_ms: f64,
    par_threads: usize,
    mut naive_run: impl FnMut() -> Matrix,
    mut opt_run: impl FnMut() -> Matrix,
) -> OpResult {
    // Bit-identity probe before timing (single- and multi-threaded).
    set_kernel_threads(1);
    let reference = naive_run();
    assert_bits_equal(op, &reference, &opt_run());
    set_parallel_flop_threshold(0);
    set_kernel_threads(par_threads);
    assert_bits_equal(op, &reference, &opt_run());

    set_kernel_threads(1);
    set_parallel_flop_threshold(usize::MAX - 1);
    let naive_ns = time_ns(min_ms, || {
        let _ = naive_run();
    });
    let blocked_ns = time_ns(min_ms, || {
        let _ = opt_run();
    });
    set_parallel_flop_threshold(0);
    set_kernel_threads(par_threads);
    let parallel_ns = time_ns(min_ms, || {
        let _ = opt_run();
    });
    set_kernel_threads(1);

    OpResult {
        op,
        shape,
        flops,
        seed_naive: sample(flops, naive_ns),
        blocked: sample(flops, blocked_ns),
        blocked_parallel: sample(flops, parallel_ns),
    }
}

fn powersgd_ops(
    grad_dim: usize,
    rank: usize,
    min_ms: f64,
    par_threads: usize,
    rng: &mut SeedStream,
    out: &mut Vec<OpResult>,
) {
    let grad = rng.uniform_matrix(grad_dim, grad_dim, 1.0);
    let q = rng.normal_matrix(grad_dim, rank, 1.0);
    let gemm_flops = 2.0 * (grad_dim * grad_dim * rank) as f64;

    // P = G * Q (the power-iteration GEMM).
    out.push(bench_op(
        "powersgd_gemm_p",
        format!("{grad_dim}x{grad_dim}*{grad_dim}x{rank}"),
        gemm_flops,
        min_ms,
        par_threads,
        || naive::matmul(&grad, &q),
        || grad.matmul(&q),
    ));

    // Orthonormalize P (the §9.6 hot spot).
    let p0 = grad.matmul(&q);
    // 2 projection passes x c(c-1)/2 pairs x (dot + axpy) + normalization.
    let ortho_flops =
        (2 * 2 * rank * (rank - 1).max(1) / 2 * 2 * grad_dim + 3 * rank * grad_dim) as f64;
    out.push(bench_op(
        "powersgd_orthonormalize",
        format!("{grad_dim}x{rank}"),
        ortho_flops,
        min_ms,
        par_threads,
        || {
            let mut m = p0.clone();
            naive::orthonormalize_columns(&mut m);
            m
        },
        || {
            let mut m = p0.clone();
            orthonormalize_columns(&mut m);
            m
        },
    ));

    // Q = G^T * P (the warm-start update GEMM).
    let mut p = p0.clone();
    orthonormalize_columns(&mut p);
    out.push(bench_op(
        "powersgd_gemm_q",
        format!("({grad_dim}x{grad_dim})^T*{grad_dim}x{rank}"),
        gemm_flops,
        min_ms,
        par_threads,
        || naive::t_matmul(&grad, &p),
        || grad.t_matmul(&p),
    ));

    // The §9.6 pair — power-iteration GEMM + orthonormalization — timed
    // as one op (the headline number of the kernel rewrite).
    out.push(bench_op(
        "powersgd_gemm_plus_ortho",
        format!("{grad_dim}x{grad_dim}*{grad_dim}x{rank} + ortho"),
        gemm_flops + ortho_flops,
        min_ms,
        par_threads,
        || {
            let mut m = naive::matmul(&grad, &q);
            naive::orthonormalize_columns(&mut m);
            m
        },
        || {
            let mut m = grad.matmul(&q);
            orthonormalize_columns(&mut m);
            m
        },
    ));

    // The full per-gradient compression kernel sequence (PowerSgd::compress
    // without the payload plumbing).
    out.push(bench_op(
        "powersgd_compress_pipeline",
        format!("{grad_dim}x{grad_dim} rank-{rank}"),
        2.0 * gemm_flops + ortho_flops,
        min_ms,
        par_threads,
        || {
            let mut m = naive::matmul(&grad, &q);
            naive::orthonormalize_columns(&mut m);
            naive::t_matmul(&grad, &m)
        },
        || {
            let mut m = grad.matmul(&q);
            orthonormalize_columns(&mut m);
            grad.t_matmul(&m)
        },
    ));
}

fn model_ops(
    h: usize,
    min_ms: f64,
    par_threads: usize,
    rng: &mut SeedStream,
    out: &mut Vec<OpResult>,
) {
    let a = rng.uniform_matrix(h, h, 1.0);
    let b = rng.uniform_matrix(h, h, 1.0);
    let flops = 2.0 * (h * h * h) as f64;
    out.push(bench_op(
        "model_gemm_square",
        format!("{h}x{h}*{h}x{h}"),
        flops,
        min_ms,
        par_threads,
        || naive::matmul(&a, &b),
        || a.matmul(&b),
    ));
    out.push(bench_op(
        "model_gemm_nt",
        format!("{h}x{h}*({h}x{h})^T"),
        flops,
        min_ms,
        par_threads,
        || naive::matmul_t(&a, &b),
        || a.matmul_t(&b),
    ));
}

fn json_escape_free(s: &str) -> &str {
    debug_assert!(!s.contains('"') && !s.contains('\\'));
    s
}

fn write_json(path: &str, mode: &str, par_threads: usize, results: &[OpResult]) {
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str("  \"bench\": \"kernels\",\n");
    body.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    body.push_str(&format!(
        "  \"threads\": {{ \"single\": 1, \"parallel\": {par_threads} }},\n"
    ));
    body.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        body.push_str(&format!(
            concat!(
                "    {{ \"op\": \"{}\", \"shape\": \"{}\", \"flops\": {:.0},\n",
                "      \"seed_naive\": {{ \"ns_per_op\": {:.0}, \"gflops\": {:.3} }},\n",
                "      \"blocked\": {{ \"ns_per_op\": {:.0}, \"gflops\": {:.3} }},\n",
                "      \"blocked_parallel\": {{ \"ns_per_op\": {:.0}, \"gflops\": {:.3} }},\n",
                "      \"speedup_blocked\": {:.2}, \"speedup_parallel\": {:.2} }}{}\n",
            ),
            json_escape_free(r.op),
            json_escape_free(&r.shape),
            r.flops,
            r.seed_naive.ns_per_op,
            r.seed_naive.gflops,
            r.blocked.ns_per_op,
            r.blocked.gflops,
            r.blocked_parallel.ns_per_op,
            r.blocked_parallel.gflops,
            r.speedup_blocked(),
            r.speedup_parallel(),
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    body.push_str("  ]\n}\n");
    std::fs::write(path, body).unwrap_or_else(|e| panic!("writing {path}: {e}"));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_kernels.json".to_string());

    let par_threads: usize = std::env::var("OPT_KERNEL_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let (grad_dim, square_h, min_ms, mode) = if smoke {
        (512usize, 128usize, 20.0, "smoke")
    } else {
        (4096usize, 512usize, 200.0, "full")
    };

    opt_bench::banner(&format!(
        "Kernel benchmark ({mode}): seed-naive vs blocked vs blocked+{par_threads}-thread"
    ));
    let mut rng = SeedStream::new(0xBE7C);
    let mut results = Vec::new();
    for rank in [4usize, 8] {
        powersgd_ops(grad_dim, rank, min_ms, par_threads, &mut rng, &mut results);
    }
    model_ops(square_h, min_ms, par_threads, &mut rng, &mut results);

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.op.to_string(),
                r.shape.clone(),
                format!("{:.2}", r.seed_naive.gflops),
                format!("{:.2}", r.blocked.gflops),
                format!("{:.2}", r.blocked_parallel.gflops),
                format!("{:.2}x", r.speedup_blocked()),
                format!("{:.2}x", r.speedup_parallel()),
            ]
        })
        .collect();
    opt_bench::print_table(
        &[
            "op",
            "shape",
            "naive GF/s",
            "blocked GF/s",
            "parallel GF/s",
            "blocked x",
            "parallel x",
        ],
        &rows,
    );

    write_json(&out_path, mode, par_threads, &results);
    println!("wrote {out_path}");

    // Regression gate (CI): blocked must never fall below seed-naive.
    let mut regressed = false;
    for r in &results {
        if r.speedup_blocked() < 0.90 {
            eprintln!(
                "REGRESSION: {} {} blocked is {:.2}x the naive kernel (< 0.90x)",
                r.op,
                r.shape,
                r.speedup_blocked()
            );
            regressed = true;
        }
    }
    if regressed {
        std::process::exit(1);
    }
}
