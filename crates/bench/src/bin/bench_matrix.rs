//! `bench_matrix` — the workload-matrix runner behind the repo's perf
//! trajectory (not a paper figure; this is observability tooling).
//!
//! Sweeps one axis at a time with every other knob held at its base
//! point — kernels (seed-naive vs scalar/SIMD blocked vs parallel),
//! model size, pp×dp parallelism, compressor (none / PowerSGD / top-k /
//! ternary), transport (in-process vs real TCP processes), kernel-pool
//! width, and the sparse top-k fast path vs its densify baseline —
//! and emits one schema-versioned `BENCH_<dimension>.json` per axis
//! (see `opt_bench::matrix` and `reports/BENCHMARKS.md` for the schema).
//! Before measuring anything it *prices* the corresponding paper-scale
//! configurations through `opt-sim`, so every wall-clock number sits next
//! to the simulator's prediction of what the axis costs on the real
//! cluster. The parallelism axis additionally runs each configuration
//! once under `TraceMode::Spans` (a separate run — never the timed one)
//! and records the mean per-rank `bubble_frac` / `comm_overlap` from
//! `opt_trace::analyze` as row metrics.
//!
//! Knobs:
//!
//! * `--smoke` — CI-sized shapes and iteration counts (the committed
//!   baselines are smoke-mode, measured on the CI box; the regression
//!   gate compares smoke to smoke);
//! * `--out-dir <dir>` — where the JSON records go (default `.`, the
//!   repo root where the baselines are committed);
//! * `--dims <a,b,...>` — run a subset of axes (default: all);
//! * `--no-trajectory` — do not append this run to
//!   `BENCH_trajectory.json` (CI uses this: gate runs are throwaway);
//! * `OPT_WORKER_BIN` — path to the compiled `opt_worker` binary for the
//!   transport axis (default: next to this binary, built on demand via
//!   `cargo` if missing);
//! * `OPT_KERNEL_THREADS` — pool width used for the *parallel* kernel
//!   variant rows (default 4; the threads axis sweeps 1/2/4 regardless).
//!
//! Exits non-zero if a blocked kernel (on the detected arch) falls below
//! 0.9× the seed-naive reference (the historic `bench_kernels` floor),
//! or if the sparse top-k apply loses to its densify baseline at ≤1%
//! density — both independent of the committed-baseline gate enforced by
//! `bench_report --gate`.

use opt_bench::matrix::{
    build_profile, git_rev, machine, median, time_best_ns, BenchFile, Row, RunMeta, Trajectory,
    TRAJECTORY_FILE,
};
use opt_compress::{
    Compressed, Compressor, Identity, PowerSgd, TernaryQuantizer, TopK, FP16_BYTES,
};
use opt_net::{LocalTransport, ShardStore, ShardStoreServer, TrafficClass, Transport};
use opt_sim::{simulate, CkptCostModel, CompressionPlan, SimConfig, StoreTransport};
use opt_tensor::{
    naive, orthonormalize_columns, set_kernel_threads, set_parallel_flop_threshold, Matrix,
    Persist, SeedStream,
};
use opt_trace::RankSummary;
use optimus_cc::{ProcOptions, QualityConfig, TraceMode, Trainer, TrainerConfig};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Per-mode measurement budget.
struct Budget {
    mode: &'static str,
    /// Untimed warmup repetitions per point.
    warmup: u64,
    /// Timed repetitions per point (best-of taken).
    reps: u64,
    /// Training iterations per timed repetition.
    train_iters: u64,
    /// Gradient dimension for PowerSGD kernel shapes.
    grad_dim: usize,
    /// Square model-GEMM dimension.
    model_h: usize,
    /// Compressor-microbench gradient dimension.
    comp_dim: usize,
}

impl Budget {
    fn smoke() -> Self {
        Budget {
            mode: "smoke",
            warmup: 2,
            reps: 7,
            train_iters: 4,
            grad_dim: 512,
            model_h: 128,
            comp_dim: 256,
        }
    }

    fn full() -> Self {
        Budget {
            mode: "full",
            warmup: 2,
            reps: 9,
            train_iters: 8,
            grad_dim: 2048,
            model_h: 512,
            comp_dim: 1024,
        }
    }
}

/// Shared meta header for this run's files.
fn meta(b: &Budget, dimension: &str, kernel_threads: u64) -> RunMeta {
    RunMeta {
        dimension: dimension.to_string(),
        mode: b.mode.to_string(),
        profile: build_profile().to_string(),
        git_rev: git_rev(),
        machine: machine(),
        warmup: b.warmup,
        reps: b.reps,
        kernel_threads,
    }
}

fn assert_bits_equal(label: &str, a: &Matrix, b: &Matrix) {
    assert_eq!(a.shape(), b.shape(), "{label}: shape mismatch");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{label}: element {i} differs ({x} vs {y}) — determinism contract broken"
        );
    }
}

/// Forces the single-threaded blocked path.
fn single_thread() {
    set_kernel_threads(1);
    set_parallel_flop_threshold(usize::MAX - 1);
}

/// Requests the parallel path at `t` threads. Threshold 1 (not 0) keeps
/// the planner's host-core and per-thread-work caps in force, so the
/// rows record the plan the trainer would actually run — on a 1-core box
/// the parallel variant collapses to the blocked plan instead of paying
/// for oversubscribed panel splits.
fn parallel_threads(t: usize) {
    set_parallel_flop_threshold(1);
    set_kernel_threads(t);
}

// ---------------------------------------------------------------------------
// Dimension: kernels
// ---------------------------------------------------------------------------

/// One kernel op: naive and optimized closures over shared inputs.
struct KernelOp {
    op: &'static str,
    shape: String,
    flops: f64,
    naive_run: Box<dyn FnMut() -> Matrix>,
    opt_run: Box<dyn FnMut() -> Matrix>,
}

fn kernel_ops(b: &Budget, rng: &mut SeedStream) -> Vec<KernelOp> {
    let mut ops: Vec<KernelOp> = Vec::new();
    for rank in [4usize, 8] {
        let d = b.grad_dim;
        let grad = Arc::new(rng.uniform_matrix(d, d, 1.0));
        let q = Arc::new(rng.normal_matrix(d, rank, 1.0));
        let gemm_flops = 2.0 * (d * d * rank) as f64;
        let ortho_flops = (2 * 2 * rank * (rank - 1).max(1) / 2 * 2 * d + 3 * rank * d) as f64;
        {
            let (g, q) = (Arc::clone(&grad), Arc::clone(&q));
            let (g2, q2) = (Arc::clone(&grad), Arc::clone(&q));
            ops.push(KernelOp {
                op: "powersgd_gemm_p",
                shape: format!("{d}x{d}*{d}x{rank}"),
                flops: gemm_flops,
                naive_run: Box::new(move || naive::matmul(&g, &q)),
                opt_run: Box::new(move || g2.matmul(&q2)),
            });
        }
        let p0 = Arc::new(grad.matmul(&q));
        {
            let (a, b_) = (Arc::clone(&p0), Arc::clone(&p0));
            ops.push(KernelOp {
                op: "powersgd_orthonormalize",
                shape: format!("{d}x{rank}"),
                flops: ortho_flops,
                naive_run: Box::new(move || {
                    let mut m = (*a).clone();
                    naive::orthonormalize_columns(&mut m);
                    m
                }),
                opt_run: Box::new(move || {
                    let mut m = (*b_).clone();
                    orthonormalize_columns(&mut m);
                    m
                }),
            });
        }
        {
            let mut p = (*p0).clone();
            orthonormalize_columns(&mut p);
            let p = Arc::new(p);
            let (g, p1) = (Arc::clone(&grad), Arc::clone(&p));
            let (g2, p2) = (Arc::clone(&grad), Arc::clone(&p));
            ops.push(KernelOp {
                op: "powersgd_gemm_q",
                shape: format!("({d}x{d})^T*{d}x{rank}"),
                flops: gemm_flops,
                naive_run: Box::new(move || naive::t_matmul(&g, &p1)),
                opt_run: Box::new(move || g2.t_matmul(&p2)),
            });
        }
        if rank == 8 {
            let (g, q1) = (Arc::clone(&grad), Arc::clone(&q));
            let (g2, q2) = (Arc::clone(&grad), Arc::clone(&q));
            ops.push(KernelOp {
                op: "powersgd_compress_pipeline",
                shape: format!("{d}x{d} rank-{rank}"),
                flops: 2.0 * gemm_flops + ortho_flops,
                naive_run: Box::new(move || {
                    let mut m = naive::matmul(&g, &q1);
                    naive::orthonormalize_columns(&mut m);
                    naive::t_matmul(&g, &m)
                }),
                opt_run: Box::new(move || {
                    let mut m = g2.matmul(&q2);
                    orthonormalize_columns(&mut m);
                    g2.t_matmul(&m)
                }),
            });
        }
    }
    let h = b.model_h;
    let a = Arc::new(rng.uniform_matrix(h, h, 1.0));
    let bm = Arc::new(rng.uniform_matrix(h, h, 1.0));
    let flops = 2.0 * (h * h * h) as f64;
    {
        let (a1, b1) = (Arc::clone(&a), Arc::clone(&bm));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&bm));
        ops.push(KernelOp {
            op: "model_gemm_square",
            shape: format!("{h}x{h}*{h}x{h}"),
            flops,
            naive_run: Box::new(move || naive::matmul(&a1, &b1)),
            opt_run: Box::new(move || a2.matmul(&b2)),
        });
    }
    {
        let (a1, b1) = (Arc::clone(&a), Arc::clone(&bm));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&bm));
        ops.push(KernelOp {
            op: "model_gemm_nt",
            shape: format!("{h}x{h}*({h}x{h})^T"),
            flops,
            naive_run: Box::new(move || naive::matmul_t(&a1, &b1)),
            opt_run: Box::new(move || a2.matmul_t(&b2)),
        });
    }
    ops
}

/// The kernels axis: every op × {naive, blocked_scalar, blocked,
/// parallel}. `blocked` and `parallel` run on the detected SIMD arch;
/// `blocked_scalar` pins the dispatcher to the portable tile, so the
/// file records the vectorization win on this machine. All dispatched
/// variants are probed bit-identical to each other first (the FMA-chain
/// contract); the unfused seed-naive baseline agrees only to rounding
/// and is checked by tolerance. Returns the file and whether the
/// 0.9×-naive floor was broken — judged on the detected-arch blocked
/// variant only, since the scalar tile is a portability fallback, not
/// the perf contract.
fn run_kernels(b: &Budget, par_threads: usize) -> (BenchFile, bool) {
    opt_bench::banner("dimension: kernels (seed-naive vs scalar/SIMD blocked vs parallel)");
    let detected = opt_tensor::detected_arch();
    let mut rng = SeedStream::new(0xBE7C);
    let mut rows = Vec::new();
    let mut floor_broken = false;
    for mut op in kernel_ops(b, &mut rng) {
        // Bit-identity probes: the scalar tile is the in-run reference;
        // the detected arch must match it bit-for-bit at 1 and
        // `par_threads` threads.
        single_thread();
        opt_tensor::set_kernel_arch(opt_tensor::KernelArch::Scalar);
        let reference = (op.opt_run)();
        opt_tensor::set_kernel_arch(detected);
        assert_bits_equal(op.op, &reference, &(op.opt_run)());
        parallel_threads(par_threads);
        assert_bits_equal(op.op, &reference, &(op.opt_run)());
        single_thread();
        let rel = opt_tensor::relative_error(&reference, &(op.naive_run)());
        assert!(
            rel < 1e-5,
            "{}: dispatched kernels drifted from seed-naive (rel err {rel:e})",
            op.op
        );

        let naive_ns = time_best_ns(b.warmup, b.reps, || {
            let _ = (op.naive_run)();
        });
        opt_tensor::set_kernel_arch(opt_tensor::KernelArch::Scalar);
        let scalar_ns = time_best_ns(b.warmup, b.reps, || {
            let _ = (op.opt_run)();
        });
        opt_tensor::set_kernel_arch(detected);
        let blocked_ns = time_best_ns(b.warmup, b.reps, || {
            let _ = (op.opt_run)();
        });
        parallel_threads(par_threads);
        let parallel_ns = time_best_ns(b.warmup, b.reps, || {
            let _ = (op.opt_run)();
        });
        single_thread();

        if blocked_ns > naive_ns / 0.9 {
            eprintln!(
                "KERNEL FLOOR: {} {} blocked is {:.2}x naive (< 0.90x)",
                op.op,
                op.shape,
                naive_ns / blocked_ns
            );
            floor_broken = true;
        }
        for (variant, ns) in [
            ("naive", naive_ns),
            ("blocked_scalar", scalar_ns),
            ("blocked", blocked_ns),
            ("parallel", parallel_ns),
        ] {
            rows.push(Row {
                label: format!("{}/{}/{variant}", op.op, op.shape),
                config: vec![
                    ("op".to_string(), op.op.to_string()),
                    ("shape".to_string(), op.shape.clone()),
                    ("variant".to_string(), variant.to_string()),
                ],
                best_ns: ns,
                metrics: vec![
                    ("gflops".to_string(), op.flops / ns),
                    ("speedup_vs_naive".to_string(), naive_ns / ns),
                    ("speedup_vs_scalar".to_string(), scalar_ns / ns),
                ],
            });
        }
    }
    print_dimension_table(&rows);
    (
        BenchFile {
            meta: meta(b, "kernels", 1),
            rows,
        },
        floor_broken,
    )
}

// ---------------------------------------------------------------------------
// Training-based axes
// ---------------------------------------------------------------------------

/// Times an in-process training config: best over `reps` blocks of
/// `train_iters` iterations, returning ns per iteration plus the
/// traffic-per-iteration metrics.
fn time_training(b: &Budget, cfg: TrainerConfig) -> (f64, Vec<(String, f64)>) {
    let mut t = Trainer::launch(cfg);
    let block_ns = time_best_ns(b.warmup, b.reps, || t.train_more(b.train_iters));
    let iters_run = (b.warmup + b.reps) * b.train_iters;
    let traffic = t.traffic();
    let per_iter = |class: TrafficClass| traffic.bytes(class) as f64 / iters_run as f64;
    let metrics = vec![
        (
            "interstage_bytes".to_string(),
            per_iter(TrafficClass::InterStage),
        ),
        ("dp_bytes".to_string(), per_iter(TrafficClass::DataParallel)),
    ];
    t.shutdown();
    (block_ns / b.train_iters as f64, metrics)
}

/// Base tiny-config for the training axes (no validation: pure
/// iteration timing).
fn tiny_cfg(quality: QualityConfig) -> TrainerConfig {
    let mut cfg = TrainerConfig::tiny_test(quality, u64::MAX);
    cfg.iters = 1; // train_more drives iterations; `iters` is unused
    cfg.validate_every = 0;
    cfg
}

/// The model-size axis: tiny and small trainable configs, priced against
/// their paper-scale analogs.
fn run_model(b: &Budget) -> BenchFile {
    opt_bench::banner("dimension: model (trainable sizes, priced at paper scale)");
    let points = [
        (
            "GPT-tiny",
            TrainerConfig::tiny_test(QualityConfig::cb_fe_sc(), 1),
            SimConfig::paper_gpt_2_5b(),
        ),
        (
            "GPT-small",
            TrainerConfig::small_test(QualityConfig::cb_fe_sc(), 1),
            SimConfig::paper_gpt_8_3b(),
        ),
    ];
    let mut rows = Vec::new();
    for (name, mut cfg, paper) in points {
        cfg.validate_every = 0;
        cfg.iters = 1;
        let params = cfg.model.param_count() as f64;
        let (pp, dp) = (cfg.pp, cfg.dp);
        let (ns, mut metrics) = time_training(b, cfg);
        let priced = simulate(&paper.with_plan(CompressionPlan::cb_fe_sc()));
        metrics.push(("params".to_string(), params));
        metrics.push(("sim_paper_iter_s".to_string(), priced.iteration_time_s));
        rows.push(Row {
            label: name.to_string(),
            config: vec![
                ("model".to_string(), name.to_string()),
                ("pp".to_string(), pp.to_string()),
                ("dp".to_string(), dp.to_string()),
            ],
            best_ns: ns,
            metrics,
        });
    }
    print_dimension_table(&rows);
    BenchFile {
        meta: meta(b, "model", 1),
        rows,
    }
}

/// Trace-derived pipeline stats for a config: a *separate* spans-mode run
/// (never the timed one — tracing, however cheap, must not touch the
/// gated numbers), analyzed for the structural bubble fraction and the
/// wall-clock comm/compute overlap, averaged over ranks. The bubble
/// number is bit-deterministic across reruns; the overlap is a
/// measurement.
fn trace_stats(b: &Budget, cfg: TrainerConfig) -> Vec<(String, f64)> {
    let mut t = Trainer::launch_with_trace(cfg, TraceMode::Spans);
    t.train_more(b.train_iters);
    let trace = t.take_trace().expect("spans mode is enabled");
    t.shutdown();
    let report = opt_trace::analyze(&trace, 0);
    let mean = |f: fn(&RankSummary) -> f64| {
        report.ranks.iter().map(f).sum::<f64>() / report.ranks.len().max(1) as f64
    };
    vec![
        ("bubble_frac".to_string(), mean(|r| r.bubble_fraction)),
        ("comm_overlap".to_string(), mean(|r| r.overlap_ratio)),
    ]
}

/// The pp×dp axis on the tiny model, priced on GPT-2.5B at paper scale.
fn run_parallelism(b: &Budget) -> BenchFile {
    opt_bench::banner("dimension: parallelism (pp x dp on GPT-tiny)");
    let mut rows = Vec::new();
    for (pp, dp) in [(1, 1), (2, 1), (1, 2), (2, 2), (4, 2)] {
        let mut cfg = tiny_cfg(QualityConfig::cb_fe_sc());
        cfg.pp = pp;
        cfg.dp = dp;
        let priced = simulate(
            &SimConfig::paper_gpt_2_5b()
                .with_plan(CompressionPlan::cb_fe_sc())
                .with_tp_pp(8, pp.max(2))
                .with_dp(dp),
        );
        let (ns, mut metrics) = time_training(b, cfg.clone());
        metrics.push(("world".to_string(), (pp * dp) as f64));
        metrics.push(("sim_paper_iter_s".to_string(), priced.iteration_time_s));
        metrics.extend(trace_stats(b, cfg));
        rows.push(Row {
            label: format!("pp{pp}xdp{dp}"),
            config: vec![
                ("pp".to_string(), pp.to_string()),
                ("dp".to_string(), dp.to_string()),
            ],
            best_ns: ns,
            metrics,
        });
    }
    print_dimension_table(&rows);
    BenchFile {
        meta: meta(b, "parallelism", 1),
        rows,
    }
}

/// The compressor axis: round-trip microbenchmarks of every compressor,
/// plus end-to-end training under the compressors the trainer supports.
fn run_compressor(b: &Budget) -> BenchFile {
    opt_bench::banner("dimension: compressor (round trip + end-to-end)");
    let d = b.comp_dim;
    let mut rng = SeedStream::new(0xC0DE);
    let grad = rng.uniform_matrix(d, d, 1.0);
    let dense_bytes = (grad.len() * FP16_BYTES) as f64;
    let mut rows = Vec::new();
    let mut comps: Vec<(&str, Box<dyn Compressor>)> = vec![
        ("identity", Box::new(Identity)),
        ("powersgd_r4", Box::new(PowerSgd::new(4, 42))),
        ("topk_d1pct", Box::new(TopK::new(0.01))),
        ("ternary", Box::new(TernaryQuantizer::new(42))),
    ];
    for (name, comp) in &mut comps {
        let wire = comp.compress(&grad).wire_bytes() as f64;
        let ns = time_best_ns(b.warmup, b.reps, || {
            let _ = comp.round_trip(&grad);
        });
        rows.push(Row {
            label: format!("roundtrip/{name}"),
            config: vec![
                ("compressor".to_string(), name.to_string()),
                ("shape".to_string(), format!("{d}x{d}")),
                ("stage".to_string(), "roundtrip".to_string()),
            ],
            best_ns: ns,
            metrics: vec![
                ("wire_bytes".to_string(), wire),
                ("compression_ratio".to_string(), dense_bytes / wire.max(1.0)),
            ],
        });
    }
    let trainings: [(&str, QualityConfig, Option<CompressionPlan>); 3] = [
        (
            "none",
            QualityConfig::baseline(),
            Some(CompressionPlan::baseline()),
        ),
        (
            "powersgd",
            QualityConfig::cb_fe_sc(),
            Some(CompressionPlan::cb_fe_sc()),
        ),
        ("topk", QualityConfig::cb_topk(0.1), None),
    ];
    for (name, quality, plan) in trainings {
        let (ns, mut metrics) = time_training(b, tiny_cfg(quality));
        if let Some(plan) = plan {
            let priced = simulate(&SimConfig::paper_gpt_2_5b().with_plan(plan));
            metrics.push(("sim_paper_iter_s".to_string(), priced.iteration_time_s));
        }
        rows.push(Row {
            label: format!("train/{name}"),
            config: vec![
                ("compressor".to_string(), name.to_string()),
                ("stage".to_string(), "train".to_string()),
            ],
            best_ns: ns,
            metrics,
        });
    }
    print_dimension_table(&rows);
    BenchFile {
        meta: meta(b, "compressor", 1),
        rows,
    }
}

/// Locates (or builds) the `opt_worker` binary for the transport axis.
fn worker_bin() -> PathBuf {
    if let Ok(p) = std::env::var("OPT_WORKER_BIN") {
        return PathBuf::from(p);
    }
    let exe = std::env::current_exe().expect("current_exe");
    let dir = exe.parent().expect("exe dir").to_path_buf();
    let candidate = dir.join(format!("opt_worker{}", std::env::consts::EXE_SUFFIX));
    if candidate.exists() {
        return candidate;
    }
    // Not built yet (e.g. `cargo run --bin bench_matrix` builds only this
    // binary): build it in the matching profile. The workspace is fully
    // vendored, so this never touches the network.
    let release = dir
        .file_name()
        .is_some_and(|n| n == std::ffi::OsStr::new("release"));
    eprintln!(
        "transport axis: building opt_worker ({})...",
        if release { "release" } else { "debug" }
    );
    let mut cmd = std::process::Command::new(env!("CARGO"));
    cmd.args(["build", "-p", "opt-bench", "--bin", "opt_worker"]);
    if release {
        cmd.arg("--release");
    }
    let status = cmd.status().expect("running cargo build for opt_worker");
    assert!(status.success(), "building opt_worker failed");
    assert!(candidate.exists(), "opt_worker still missing after build");
    candidate
}

/// The transport axis: the same tiny training over the in-process
/// `LocalTransport` vs a world of real `opt-worker` OS processes over
/// loopback TCP, with the paper-scale store-transport price attached.
fn run_transport(b: &Budget) -> BenchFile {
    opt_bench::banner("dimension: transport (LocalTransport vs TCP process world)");
    let cost = CkptCostModel::paper_cluster();
    let paper = SimConfig::paper_gpt_2_5b();
    let world = paper.pp * paper.dp;
    let state = opt_sim::snapshot_bytes(&paper);
    let mut rows = Vec::new();

    let (local_ns, mut local_metrics) = time_training(b, tiny_cfg(QualityConfig::cb_fe_sc()));
    local_metrics.push((
        "sim_shard_restore_s".to_string(),
        cost.sharded_io_s_via(state, world, StoreTransport::Local),
    ));
    rows.push(Row {
        label: "local".to_string(),
        config: vec![("transport".to_string(), "local".to_string())],
        best_ns: local_ns,
        metrics: local_metrics,
    });

    let store: Arc<dyn ShardStore> = Arc::new(opt_net::MemShardStore::new());
    let server = ShardStoreServer::spawn(store, "127.0.0.1:0").expect("shard store server");
    let scratch = std::env::temp_dir().join(format!("bench-matrix-tcp-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("scratch dir");
    let mut proc_world = Trainer::launch_processes(
        tiny_cfg(QualityConfig::cb_fe_sc()),
        ProcOptions {
            worker_bin: worker_bin(),
            store_addr: server.addr(),
            scratch_dir: scratch.clone(),
        },
    )
    .expect("TCP process world");
    let tcp_ns = time_best_ns(b.warmup, b.reps, || {
        proc_world.train_more(b.train_iters).expect("tcp train");
    }) / b.train_iters as f64;
    proc_world.shutdown().expect("shutdown TCP world");
    let _ = std::fs::remove_dir_all(&scratch);
    rows.push(Row {
        label: "tcp".to_string(),
        config: vec![("transport".to_string(), "tcp".to_string())],
        best_ns: tcp_ns,
        metrics: vec![
            ("overhead_vs_local".to_string(), tcp_ns / local_ns.max(1.0)),
            (
                "sim_shard_restore_s".to_string(),
                cost.sharded_io_s_via(state, world, StoreTransport::Tcp),
            ),
        ],
    });

    // Typed vs byte hops over one LocalTransport lane: the microbench
    // guarding the zero-copy fast path. The byte path pays one Persist
    // encode + decode per hop; the typed path hands the value off as an
    // `Arc` and pays neither.
    const HOPS: usize = 128;
    let hop_timeout = std::time::Duration::from_secs(5);
    let hop = SeedStream::new(0x40B).uniform_matrix(64, 64, 1.0);
    let wire = hop.to_bytes().len() as f64;
    let byte_t = LocalTransport::new(2);
    let byte_ns = time_best_ns(b.warmup, b.reps, || {
        for _ in 0..HOPS {
            byte_t.send(0, 1, 11, hop.to_bytes()).expect("byte send");
            let bytes = byte_t.recv(0, 1, 11, hop_timeout).expect("byte recv");
            std::hint::black_box(Matrix::from_bytes(&bytes).expect("byte decode"));
        }
    }) / HOPS as f64;
    rows.push(Row {
        label: "local-byte-hop".to_string(),
        config: vec![
            ("transport".to_string(), "local".to_string()),
            ("path".to_string(), "byte".to_string()),
        ],
        best_ns: byte_ns,
        metrics: vec![("wire_bytes".to_string(), wire)],
    });
    let typed_t = LocalTransport::new(2);
    let typed_ns = time_best_ns(b.warmup, b.reps, || {
        for _ in 0..HOPS {
            typed_t
                .send_value(0, 1, 11, hop.clone())
                .expect("typed send");
            let m: Matrix = typed_t
                .recv_value(0, 1, 11, hop_timeout)
                .expect("typed recv");
            std::hint::black_box(m);
        }
    }) / HOPS as f64;
    rows.push(Row {
        label: "local-typed-hop".to_string(),
        config: vec![
            ("transport".to_string(), "local".to_string()),
            ("path".to_string(), "typed".to_string()),
        ],
        best_ns: typed_ns,
        metrics: vec![
            ("wire_bytes".to_string(), wire),
            ("speedup_vs_byte".to_string(), byte_ns / typed_ns.max(1.0)),
        ],
    });

    print_dimension_table(&rows);
    BenchFile {
        meta: meta(b, "transport", 1),
        rows,
    }
}

/// The kernel-thread axis: the §9.6 GEMM and the tiny training at pool
/// widths 1/2/4 (parallel scaling; flat on a 1-core box, recorded with
/// the machine fingerprint either way).
fn run_threads(b: &Budget) -> BenchFile {
    opt_bench::banner("dimension: threads (OPT_KERNEL_THREADS scaling)");
    let d = b.grad_dim;
    let mut rng = SeedStream::new(0x7EAD);
    let grad = rng.uniform_matrix(d, d, 1.0);
    let q = rng.normal_matrix(d, 8, 1.0);
    let flops = 2.0 * (d * d * 8) as f64;
    let mut rows = Vec::new();
    let mut gemm_t1 = 0.0f64;
    for t in [1usize, 2, 4] {
        parallel_threads(t);
        let ns = time_best_ns(b.warmup, b.reps, || {
            let _ = grad.matmul(&q);
        });
        if t == 1 {
            gemm_t1 = ns;
        }
        rows.push(Row {
            label: format!("gemm_p/t{t}"),
            config: vec![
                ("op".to_string(), "powersgd_gemm_p".to_string()),
                ("shape".to_string(), format!("{d}x{d}*{d}x8")),
                ("threads".to_string(), t.to_string()),
            ],
            best_ns: ns,
            metrics: vec![
                ("gflops".to_string(), flops / ns),
                ("scaling_vs_t1".to_string(), gemm_t1 / ns),
            ],
        });
    }
    single_thread();
    let mut train_t1 = 0.0f64;
    for t in [1usize, 2, 4] {
        set_kernel_threads(t);
        set_parallel_flop_threshold(1);
        let (ns, _) = time_training(b, tiny_cfg(QualityConfig::cb_fe_sc()));
        if t == 1 {
            train_t1 = ns;
        }
        rows.push(Row {
            label: format!("train_tiny/t{t}"),
            config: vec![
                ("op".to_string(), "train_tiny".to_string()),
                ("threads".to_string(), t.to_string()),
            ],
            best_ns: ns,
            metrics: vec![("scaling_vs_t1".to_string(), train_t1 / ns)],
        });
    }
    single_thread();
    print_dimension_table(&rows);
    BenchFile {
        meta: meta(b, "threads", 1),
        rows,
    }
}

// ---------------------------------------------------------------------------
// Dimension: sparse
// ---------------------------------------------------------------------------

/// The sparse axis: top-k decode+apply through the CSR fast path vs the
/// densify-then-subtract baseline (each forced via the density knob),
/// plus SpMM on the same payload vs densify-then-GEMM, across payload
/// densities. Returns the file and whether the crossover floor was
/// broken: at ≤1% density the sparse apply must beat densify.
fn run_sparse(b: &Budget) -> (BenchFile, bool) {
    opt_bench::banner("dimension: sparse (top-k CSR fast path vs densify baseline)");
    let d = b.comp_dim;
    let nb = 64usize;
    let mut rng = SeedStream::new(0xC5A2);
    let grad = rng.uniform_matrix(d, d, 1.0);
    let bmat = rng.uniform_matrix(d, nb, 1.0);
    let orig = opt_tensor::sparse_density_max();
    let mut rows = Vec::new();
    let mut floor_broken = false;
    for density in [0.001f64, 0.01, 0.1, 0.5] {
        let payload = TopK::new(density).compress(&grad);
        let Compressed::Sparse {
            ref indices,
            ref values,
            ..
        } = payload
        else {
            unreachable!("TopK emits Sparse payloads");
        };
        let nnz = values.len() as f64;
        let wire = payload.wire_bytes() as f64;

        // Correctness probe: both apply paths are bit-identical.
        opt_tensor::set_sparse_density_max(1.0);
        let mut via_sparse = grad.clone();
        payload.apply_sub(&mut via_sparse);
        opt_tensor::set_sparse_density_max(0.0);
        let mut via_densify = grad.clone();
        payload.apply_sub(&mut via_densify);
        assert_bits_equal("topk_apply", &via_sparse, &via_densify);

        // Decode+apply timing. The target is reused across reps:
        // apply_sub keeps subtracting, which only shifts its values —
        // identical work per rep for both variants.
        let timed_apply = |knob: f32| {
            opt_tensor::set_sparse_density_max(knob);
            let mut target = grad.clone();
            time_best_ns(b.warmup, b.reps, || payload.apply_sub(&mut target))
        };
        let densify_ns = timed_apply(0.0);
        let sparse_ns = timed_apply(1.0);
        if density <= 0.01 && sparse_ns >= densify_ns {
            eprintln!(
                "SPARSE FLOOR: topk apply at density {density}: sparse {sparse_ns:.0} ns \
                 is not faster than densify {densify_ns:.0} ns"
            );
            floor_broken = true;
        }
        for (variant, ns) in [("sparse", sparse_ns), ("densify", densify_ns)] {
            rows.push(Row {
                label: format!("topk_apply/{d}x{d}/d{density}/{variant}"),
                config: vec![
                    ("op".to_string(), "topk_apply".to_string()),
                    ("shape".to_string(), format!("{d}x{d}")),
                    ("density".to_string(), density.to_string()),
                    ("variant".to_string(), variant.to_string()),
                ],
                best_ns: ns,
                metrics: vec![
                    ("nnz".to_string(), nnz),
                    ("wire_bytes".to_string(), wire),
                    ("speedup_vs_densify".to_string(), densify_ns / ns),
                ],
            });
        }

        // SpMM on the same payload: CSR × dense vs densify-then-GEMM.
        let sp = opt_tensor::SparseMatrix::from_flat_payload(d, d, indices, values);
        let spmm_flops = 2.0 * nnz * nb as f64;
        assert_bits_equal("spmm", &sp.spmm(&bmat), &sp.densify().matmul(&bmat));
        let spmm_sparse_ns = time_best_ns(b.warmup, b.reps, || {
            let _ = sp.spmm(&bmat);
        });
        let spmm_densify_ns = time_best_ns(b.warmup, b.reps, || {
            let _ = sp.densify().matmul(&bmat);
        });
        for (variant, ns) in [("sparse", spmm_sparse_ns), ("densify", spmm_densify_ns)] {
            rows.push(Row {
                label: format!("spmm/{d}x{d}*{d}x{nb}/d{density}/{variant}"),
                config: vec![
                    ("op".to_string(), "spmm".to_string()),
                    ("shape".to_string(), format!("{d}x{d}*{d}x{nb}")),
                    ("density".to_string(), density.to_string()),
                    ("variant".to_string(), variant.to_string()),
                ],
                best_ns: ns,
                metrics: vec![
                    ("gflops".to_string(), spmm_flops / ns),
                    ("speedup_vs_densify".to_string(), spmm_densify_ns / ns),
                ],
            });
        }
    }
    opt_tensor::set_sparse_density_max(orig);
    print_dimension_table(&rows);
    (
        BenchFile {
            meta: meta(b, "sparse", 1),
            rows,
        },
        floor_broken,
    )
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Prints the measured rows of a dimension as an aligned table.
fn print_dimension_table(rows: &[Row]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("{:.0} ns", r.best_ns),
                r.metrics
                    .iter()
                    .map(|(k, v)| format!("{k}={v:.3}"))
                    .collect::<Vec<_>>()
                    .join("  "),
            ]
        })
        .collect();
    opt_bench::print_table(&["point", "best", "metrics"], &table);
}

/// Prices the paper-scale configurations the axes correspond to, before
/// any wall-clock is spent — the `opt-sim` step of the matrix.
fn print_pricing() {
    opt_bench::banner("pricing axis points at paper scale (opt-sim, before measuring)");
    let mut rows = Vec::new();
    for (model, cfg) in [
        ("GPT-2.5B", SimConfig::paper_gpt_2_5b()),
        ("GPT-8.3B", SimConfig::paper_gpt_8_3b()),
    ] {
        for (plan_name, plan) in [
            ("baseline", CompressionPlan::baseline()),
            ("cb_fe_sc", CompressionPlan::cb_fe_sc()),
        ] {
            let t = simulate(&cfg.clone().with_plan(plan)).iteration_time_s;
            rows.push(vec![
                model.to_string(),
                plan_name.to_string(),
                format!("{:.3}", t),
            ]);
        }
    }
    for (pp, dp) in [(2, 2), (4, 4), (4, 8)] {
        let t = simulate(
            &SimConfig::paper_gpt_2_5b()
                .with_plan(CompressionPlan::cb_fe_sc())
                .with_tp_pp(8, pp)
                .with_dp(dp),
        )
        .iteration_time_s;
        rows.push(vec![
            "GPT-2.5B".to_string(),
            format!("cb_fe_sc pp{pp} dp{dp}"),
            format!("{:.3}", t),
        ]);
    }
    opt_bench::print_table(&["model", "config", "sim iter (s)"], &rows);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let smoke = flag("--smoke");
    let out_dir = PathBuf::from(value("--out-dir").unwrap_or_else(|| ".".to_string()));
    let no_trajectory = flag("--no-trajectory");
    let dims: Option<Vec<String>> =
        value("--dims").map(|v| v.split(',').map(|s| s.trim().to_string()).collect());
    let selected = |d: &str| dims.as_ref().is_none_or(|ds| ds.iter().any(|x| x == d));

    let b = if smoke {
        Budget::smoke()
    } else {
        Budget::full()
    };
    let par_threads: usize = std::env::var("OPT_KERNEL_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);

    opt_bench::banner(&format!(
        "benchmark matrix ({} mode, {} profile, rev {})",
        b.mode,
        build_profile(),
        git_rev()
    ));
    print_pricing();
    single_thread();

    let mut files = Vec::new();
    let mut floor_broken = false;
    if selected("kernels") {
        let (f, broken) = run_kernels(&b, par_threads);
        floor_broken |= broken;
        files.push(f);
    }
    if selected("model") {
        files.push(run_model(&b));
    }
    if selected("parallelism") {
        files.push(run_parallelism(&b));
    }
    if selected("compressor") {
        files.push(run_compressor(&b));
    }
    if selected("transport") {
        files.push(run_transport(&b));
    }
    if selected("threads") {
        files.push(run_threads(&b));
    }
    if selected("sparse") {
        let (f, broken) = run_sparse(&b);
        floor_broken |= broken;
        files.push(f);
    }

    std::fs::create_dir_all(&out_dir).expect("creating out dir");
    for f in &files {
        let path = out_dir.join(BenchFile::file_name(&f.meta.dimension));
        std::fs::write(&path, f.to_json()).unwrap_or_else(|e| panic!("writing {path:?}: {e}"));
        println!("wrote {}", path.display());
    }
    if !no_trajectory && !files.is_empty() {
        let unix_time = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let path = out_dir.join(TRAJECTORY_FILE);
        let mut trajectory = Trajectory::load(&path).expect("loading trajectory");
        trajectory
            .entries
            .push(opt_bench::matrix::trajectory_entry(&files, unix_time));
        std::fs::write(&path, trajectory.to_json())
            .unwrap_or_else(|e| panic!("writing {path:?}: {e}"));
        println!(
            "appended trajectory entry #{} to {}",
            trajectory.entries.len(),
            path.display()
        );
    }
    let scalars: Vec<f64> = files
        .iter()
        .flat_map(|f| f.rows.iter().map(|r| r.best_ns))
        .collect();
    println!(
        "matrix complete: {} dimensions, {} points, median best {:.0} ns",
        files.len(),
        scalars.len(),
        median(&scalars)
    );
    if floor_broken {
        eprintln!("perf floor broken: see the KERNEL FLOOR / SPARSE FLOOR lines above");
        std::process::exit(1);
    }
}

/// Quiet re-export check: the binary reuses the crate helpers rather than
/// duplicating them (`Path` is used in signatures above).
#[allow(dead_code)]
fn _assert_paths(p: &Path) -> &Path {
    p
}
