//! `bench_report` — renders the committed benchmark reports and enforces
//! the CI regression gate (observability tooling, not a paper figure).
//!
//! Render mode (default) is a pure function of the committed
//! `BENCH_<dimension>.json` records: it rewrites `reports/summary.md`,
//! `reports/trajectory.md`, and the headline block between the
//! `BENCH_HEADLINE` markers in `README.md`. Running it twice against the
//! same JSONs produces byte-identical output — the generated files are
//! never hand-edited, and CI diffs them to prove it.
//!
//! Gate mode (`--gate <dir>`) compares a fresh `bench_matrix` run in
//! `<dir>` against the committed baselines, failing (exit 1) when a
//! dimension's median slowdown exceeds the threshold — see
//! `opt_bench::matrix::gate` for the exact policy and
//! `reports/bench_allowlist.txt` for the escape hatch.
//!
//! Knobs:
//!
//! * `--repo-root <dir>` — where the committed baselines, `reports/`,
//!   and `README.md` live (default `.`);
//! * `--gate <dir>` — gate the `BENCH_*.json` files in `<dir>` against
//!   the committed baselines instead of rendering;
//! * `--threshold-pct <p>` — regression threshold for `--gate`
//!   (default 15, i.e. median slowdown > 1.15× fails);
//! * `--check` — render mode only: exit 1 if any output file would
//!   change (used by CI to prove the committed reports are current).

use opt_bench::matrix::{gate, load_bench_dir, Allowlist, Trajectory, DEFAULT_THRESHOLD_PCT};
use opt_bench::report::{render_gate, render_summary, render_trajectory, splice_readme};
use std::path::{Path, PathBuf};

const ALLOWLIST_FILE: &str = "reports/bench_allowlist.txt";

/// Writes `content` to `path` unless it is already byte-identical.
/// Returns `true` when the file changed (or would change, in check mode).
fn put(path: &Path, content: &str, check: bool) -> bool {
    let existing = std::fs::read_to_string(path).ok();
    if existing.as_deref() == Some(content) {
        println!("unchanged {}", path.display());
        return false;
    }
    if check {
        eprintln!(
            "STALE {} (re-run `cargo run --bin bench_report`)",
            path.display()
        );
    } else {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).expect("creating reports dir");
        }
        std::fs::write(path, content).unwrap_or_else(|e| panic!("writing {path:?}: {e}"));
        println!("wrote {}", path.display());
    }
    true
}

fn run_render(root: &Path, check: bool) -> i32 {
    let files = match load_bench_dir(root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!(
                "error loading benchmark records from {}: {e}",
                root.display()
            );
            return 1;
        }
    };
    if files.is_empty() {
        eprintln!(
            "no BENCH_*.json records in {} — run `cargo run --release --bin bench_matrix` first",
            root.display()
        );
        return 1;
    }
    let mut changed = false;
    changed |= put(
        &root.join("reports/summary.md"),
        &render_summary(&files),
        check,
    );
    let trajectory_path = root.join(opt_bench::matrix::TRAJECTORY_FILE);
    match Trajectory::load(&trajectory_path) {
        Ok(t) if !t.entries.is_empty() => {
            changed |= put(
                &root.join("reports/trajectory.md"),
                &render_trajectory(&t),
                check,
            );
        }
        Ok(_) => println!("no trajectory entries yet; skipping reports/trajectory.md"),
        Err(e) => {
            eprintln!("error parsing {}: {e}", trajectory_path.display());
            return 1;
        }
    }
    let readme_path = root.join("README.md");
    match std::fs::read_to_string(&readme_path) {
        Ok(readme) => match splice_readme(&readme, &files) {
            Some(updated) => changed |= put(&readme_path, &updated, check),
            None => println!("README.md has no BENCH_HEADLINE markers; leaving it untouched"),
        },
        Err(_) => println!("no README.md at {}; skipping splice", root.display()),
    }
    if check && changed {
        eprintln!("generated docs are stale");
        return 1;
    }
    0
}

fn run_gate(root: &Path, current_dir: &Path, threshold_pct: f64) -> i32 {
    let baselines = match load_bench_dir(root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error loading baselines from {}: {e}", root.display());
            return 1;
        }
    };
    let currents = match load_bench_dir(current_dir) {
        Ok(f) => f,
        Err(e) => {
            eprintln!(
                "error loading current run from {}: {e}",
                current_dir.display()
            );
            return 1;
        }
    };
    if baselines.is_empty() {
        eprintln!(
            "no committed baselines in {} — nothing to gate against",
            root.display()
        );
        return 1;
    }
    let allow = Allowlist::load(&root.join(ALLOWLIST_FILE));
    if !allow.is_empty() {
        println!("allowlist: {} entr(ies) from {ALLOWLIST_FILE}", allow.len());
    }
    let threshold_ratio = 1.0 + threshold_pct / 100.0;
    let (verdicts, pass) = gate(&baselines, &currents, threshold_ratio, &allow);
    print!("{}", render_gate(&verdicts, threshold_ratio));
    if pass {
        0
    } else {
        1
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let root = PathBuf::from(value("--repo-root").unwrap_or_else(|| ".".to_string()));
    let check = args.iter().any(|a| a == "--check");
    let threshold_pct = value("--threshold-pct")
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_THRESHOLD_PCT);
    let code = match value("--gate") {
        Some(dir) => run_gate(&root, &PathBuf::from(dir), threshold_pct),
        None => run_render(&root, check),
    };
    std::process::exit(code);
}
