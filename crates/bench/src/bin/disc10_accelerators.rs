//! §10.1 discussion: Optimus-CC's benefit on accelerators with a higher
//! compute-to-interconnect ratio (TPU-like, IPU-POD128-like clusters).

use opt_bench::{banner, print_table, speedup_pct};
use opt_net::Topology;
use opt_sim::{breakdown, simulate, CompressionPlan, ScPlan, SimConfig};

fn main() {
    banner("§10.1 — Optimus-CC benefit vs compute/interconnect ratio (GPT-8.3B)");
    // (name, topology, effective per-chip FLOPs, effective inter-node bw):
    // IPU-POD128 per the paper: 8 PFLOPS/node vs our 5, but 100 Gb/s.
    let machines: Vec<(&str, Topology, f64, f64)> = vec![
        (
            "A100 + IB HDR (paper)",
            Topology::paper_cluster(),
            31e12,
            8e9,
        ),
        ("TPU-like (400 Gb/s)", Topology::tpu_pod(), 40e12, 16e9),
        ("IPU-like (100 Gb/s)", Topology::ipu_pod128(), 50e12, 4e9),
    ];
    let mut rows = Vec::new();
    for (name, topo, flops, bw) in machines {
        let mut cfg = SimConfig::paper_gpt_8_3b();
        cfg.topology = topo;
        cfg.gpu_eff_flops = flops;
        cfg.inter_node_eff_bw = bw;
        let base = simulate(&cfg).iteration_time_s;
        let b = breakdown(&cfg);
        // Full-throttle plan: SC over every stage (the potential §10.1
        // speaks about; quality budget permitting).
        let full = CompressionPlan {
            selective_stage: Some(ScPlan {
                fraction: 1.0,
                rank: 128,
            }),
            ..CompressionPlan::cb_fe()
        };
        let opt = simulate(&cfg.clone().with_plan(full)).iteration_time_s;
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", flops / bw / 1e3), // kFLOP per byte
            format!("{base:.2}"),
            format!("{:.1}%", b.comm_exposed() / b.total * 100.0),
            speedup_pct(base, opt),
        ]);
    }
    print_table(
        &[
            "machine",
            "compute/bw (kFLOP/B)",
            "baseline iter (s)",
            "exposed comm share",
            "Opt-CC (SC=100%) speedup",
        ],
        &rows,
    );
    println!("\nPaper §10.1: the higher the compute-to-interconnect ratio, the more");
    println!("communication dominates and the more Optimus-CC helps (IPU > A100 > TPU).");
}
