//! Fault-tolerance experiment: checkpoint-cadence trade-off on the
//! paper-scale cluster (simulated) and bit-exact elastic restart on the
//! numerical trainer.
//!
//! Not a paper figure — this exercises the `opt-ckpt` subsystem the way an
//! operator would: pick a snapshot cadence, lose a worker mid-run, and pay
//! detection + relaunch + snapshot read + replay.
//!
//! Knobs: `OPT_QUALITY_ITERS` (default 30) sets the small-model
//! quality-proxy training iterations; CI smoke uses `OPT_QUALITY_ITERS=5`.

use opt_bench::{banner, fmt, print_table};
use opt_ckpt::FaultPlan;
use opt_sim::{
    simulate_with_faults, simulate_with_faults_rejoin, simulate_with_faults_sharded,
    simulate_with_faults_sharded_via, snapshot_bytes, CkptCostModel, SimConfig, StoreTransport,
};
use optimus_cc::{run_with_faults, QualityConfig, Trainer, TrainerConfig};

fn main() {
    let iters: u64 = std::env::var("OPT_QUALITY_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30);

    banner("Checkpoint-cadence trade-off — GPT-2.5B, 1000 iters, failure at iter 777");
    let cfg = SimConfig::paper_gpt_2_5b();
    let costs = CkptCostModel::paper_cluster();
    println!(
        "snapshot size: {:.1} GB, disk {:.0} GB/s, detection {:.0} s, relaunch {:.0} s\n",
        snapshot_bytes(&cfg) / 1e9,
        costs.disk_bw / 1e9,
        costs.detection_s,
        costs.relaunch_s
    );
    let mut rows = Vec::new();
    for every in [0u64, 250, 100, 50, 20, 5] {
        let r = simulate_with_faults(&cfg, 1000, &FaultPlan::new(3, 777, every), &costs);
        rows.push(vec![
            if every == 0 {
                "never".to_string()
            } else {
                every.to_string()
            },
            fmt(format!("{:.0}", r.snapshot_overhead_s)),
            fmt(format!("{:.0}", r.restart_overhead_s)),
            fmt(format!("{:.0}", r.replay_time_s)),
            fmt(format!("{:.2}", r.total_time_s / 3600.0)),
            fmt(format!("{:.2}%", 100.0 * r.overhead_fraction())),
        ]);
    }
    print_table(
        &[
            "Snapshot every",
            "Write (s)",
            "Restart (s)",
            "Replay (s)",
            "Total (h)",
            "Overhead",
        ],
        &rows,
    );
    println!("Frequent snapshots buy cheap recovery with steady-state write cost;");
    println!("'never' pays by replaying all 777 lost iterations.");

    banner("Sharded per-rank shards vs monolithic broadcast — same failure, cadence 50");
    println!(
        "per-rank fetch {:.0} GB/s, manifest rendezvous {:.0} s\n",
        costs.shard_fetch_bw / 1e9,
        costs.rendezvous_s
    );
    let plan = FaultPlan::new(3, 777, 50);
    let mono = simulate_with_faults(&cfg, 1000, &plan, &costs);
    let shard = simulate_with_faults_sharded(&cfg, 1000, &plan, &costs);
    let rows: Vec<Vec<String>> = [("monolithic", &mono), ("sharded", &shard)]
        .iter()
        .map(|(name, r)| {
            vec![
                name.to_string(),
                fmt(format!("{:.0}", r.snapshot_overhead_s)),
                fmt(format!("{:.0}", r.restart_overhead_s)),
                fmt(format!("{:.2}", r.total_time_s / 3600.0)),
                fmt(format!("{:.2}%", 100.0 * r.overhead_fraction())),
            ]
        })
        .collect();
    print_table(
        &[
            "Checkpoint I/O",
            "Write (s)",
            "Restart (s)",
            "Total (h)",
            "Overhead",
        ],
        &rows,
    );
    println!("Sharding turns the checkpoint into parallel per-rank transfers;");
    println!("every rank moves only its own slice, so I/O stops scaling with world size.");

    banner("Shard-store transport: in-process vs real TCP wire — same failure, cadence 50");
    println!(
        "local copies {:.0} GB/s; TCP {:.0} GB/s per rank + {:.1} ms connect per operation\n",
        costs.mem_bw / 1e9,
        costs.shard_fetch_bw / 1e9,
        costs.tcp_connect_s * 1e3
    );
    let local = simulate_with_faults_sharded_via(&cfg, 1000, &plan, &costs, StoreTransport::Local);
    let tcp = simulate_with_faults_sharded_via(&cfg, 1000, &plan, &costs, StoreTransport::Tcp);
    let rows: Vec<Vec<String>> = [
        ("local (MemShardStore)", &local),
        ("TCP (TcpShardStore)", &tcp),
    ]
    .iter()
    .map(|(name, r)| {
        // Per-rank shard I/O is milliseconds against a 90 s restart, so
        // print the wire's contribution at full resolution.
        vec![
            name.to_string(),
            fmt(format!("{:.1}", r.snapshot_overhead_s * 1e3)),
            fmt(format!("{:.4}", r.restart_overhead_s)),
            fmt(format!("{:.2}", r.total_time_s / 3600.0)),
            fmt(format!("{:.3}%", 100.0 * r.overhead_fraction())),
        ]
    })
    .collect();
    print_table(
        &[
            "Store transport",
            "Write (ms)",
            "Restart (s)",
            "Total (h)",
            "Overhead",
        ],
        &rows,
    );
    println!("The real wire costs bandwidth and per-operation setup, never correctness:");
    println!("the numerical runtime produces bit-identical losses on both transports.");

    banner("Elastic single-rank rejoin vs full relaunch — same failure, cadence 50");
    println!(
        "heartbeat verdict {:.0} s (vs {:.0} s NCCL timeout), quiesce {:.1} s, \
         single-rank relaunch {:.0} s (vs {:.0} s world relaunch)\n",
        costs.hb_detection_s,
        costs.detection_s,
        costs.quiesce_s,
        costs.rank_relaunch_s,
        costs.relaunch_s
    );
    let full = simulate_with_faults_sharded_via(&cfg, 1000, &plan, &costs, StoreTransport::Tcp);
    let rejoin = simulate_with_faults_rejoin(&cfg, 1000, &plan, &costs, StoreTransport::Tcp);
    let rows: Vec<Vec<String>> = [("full relaunch", &full), ("single-rank rejoin", &rejoin)]
        .iter()
        .map(|(name, r)| {
            vec![
                name.to_string(),
                fmt(format!("{:.1}", r.restart_overhead_s)),
                fmt(format!("{:.0}", r.replay_time_s)),
                fmt(format!("{:.2}", r.total_time_s / 3600.0)),
                fmt(format!("{:.2}%", 100.0 * r.overhead_fraction())),
            ]
        })
        .collect();
    print_table(
        &[
            "Recovery",
            "Downtime (s)",
            "Replay (s)",
            "Total (h)",
            "Overhead",
        ],
        &rows,
    );
    println!(
        "Rejoin cuts downtime {:.1}x: survivors stay up (same PIDs, same sockets)",
        full.restart_overhead_s / rejoin.restart_overhead_s
    );
    println!("while the replacement self-restores its shard and splices into the mesh;");
    println!("replay is unchanged — both recoveries resume from the same snapshot.");

    banner("Bit-exact elastic restart — numerical trainer, full Optimus-CC");
    let kill_at = (2 * iters / 3).max(2);
    let every = (iters / 3).max(1);
    let plan = FaultPlan::new(1, kill_at, every);
    let tcfg = TrainerConfig::small_test(QualityConfig::cb_fe_sc(), iters);
    println!(
        "{iters} iterations, snapshot every {every}, worker 1 dies after iteration {kill_at}\n"
    );

    let mut straight = Trainer::launch(tcfg.clone());
    let straight_report = straight.train();
    straight.shutdown();
    let outcome = run_with_faults(&tcfg, &plan).expect("faulted run completes");

    let resume_at = outcome.resumed_from.unwrap_or(0) as usize;
    let mut max_delta = 0.0f32;
    let mut rows = Vec::new();
    for iter in resume_at..iters as usize {
        let a = straight_report.train_loss[iter];
        let b = outcome.report.train_loss[iter];
        max_delta = max_delta.max((a - b).abs());
        if iter < resume_at + 3 || iter + 3 >= iters as usize {
            rows.push(vec![
                iter.to_string(),
                fmt(format!("{a:.9}")),
                fmt(format!("{b:.9}")),
                (a.to_bits() == b.to_bits()).to_string(),
            ]);
        }
    }
    print_table(
        &["Iter", "Straight loss", "Faulted loss", "Bit-exact"],
        &rows,
    );
    println!(
        "restarts: {}, snapshots: {}, lost iterations replayed: {}",
        outcome.restarts, outcome.snapshots_taken, outcome.lost_iters
    );
    println!("max |loss delta| after restore: {max_delta:e}");
    assert_eq!(max_delta, 0.0, "resume must be bit-exact");
}
