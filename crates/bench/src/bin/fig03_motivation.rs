//! Fig. 3: motivational breakdown on GPT-2.5B (125K iterations) and the
//! model-quality damage of naive compression versus Optimus-CC.
//!
//! Knobs: `OPT_QUALITY_ITERS` (default 300) sets the small-model
//! quality-proxy training iterations; CI smoke uses `OPT_QUALITY_ITERS=5`.

use opt_bench::{banner, days, print_table};
use opt_sim::{breakdown, CompressionPlan, SimConfig};
use optimus_cc::{QualityConfig, Trainer, TrainerConfig};

fn main() {
    let iters: u64 = std::env::var("OPT_QUALITY_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300);

    banner("Fig. 3 (left) — execution-time breakdown, GPT-2.5B, 125K iters");
    let cfg = SimConfig::paper_gpt_2_5b();
    let plans: Vec<(&str, CompressionPlan)> = vec![
        ("Baseline", CompressionPlan::baseline()),
        ("naive DP", CompressionPlan::naive_dp(128)),
        ("naive CB", CompressionPlan::naive_cb(16)),
        ("Opt-CC", CompressionPlan::cb_fe_sc()),
    ];
    let mut rows = Vec::new();
    for (label, plan) in &plans {
        let b = breakdown(&cfg.clone().with_plan(*plan));
        rows.push(vec![
            label.to_string(),
            days(b.total, 125_000),
            format!("{:.3}", b.fwd_bwd),
            format!("{:.3}", b.dp_exposed),
            format!("{:.3}", b.interstage_exposed),
            format!("{:.3}", b.emb_exposed),
        ]);
    }
    print_table(
        &[
            "Config",
            "Days/125K",
            "FWD+BWD (s)",
            "DP (s)",
            "Inter-stage (s)",
            "EMB (s)",
        ],
        &rows,
    );
    println!("Paper: baseline 8.00 days -> Opt-CC 6.97 days on GPT-2.5B.");

    banner("Fig. 3 (right) — validation PPL of naive compression (small-model proxy)");
    let quality: Vec<(&str, QualityConfig)> = vec![
        ("Baseline", QualityConfig::baseline()),
        (
            "naive DP",
            QualityConfig::naive_dp(QualityConfig::SMALL_DP_RANK),
        ),
        (
            "naive CB",
            QualityConfig::naive_cb(QualityConfig::SMALL_CB_RANK),
        ),
        ("Opt-CC", QualityConfig::cb_fe_sc()),
        ("Opt-CC (TopK)", QualityConfig::cb_topk(0.05)),
    ];
    let mut rows = Vec::new();
    for (label, q) in quality {
        let mut t = Trainer::launch(TrainerConfig::small_test(q, iters));
        let report = t.train();
        t.shutdown();
        rows.push(vec![
            label.to_string(),
            format!("{:.3}", report.final_val_ppl()),
        ]);
    }
    print_table(&["Config", "Val. PPL (proxy)"], &rows);
    println!("Paper shape: naive DP/CB noticeably raise PPL; Opt-CC matches baseline;");
    println!("Opt-CC (TopK) is worse than the low-rank Opt-CC.");
}
