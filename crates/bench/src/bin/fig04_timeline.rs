//! Fig. 4: 1F1B timing diagrams (baseline vs Optimus-CC) as ASCII
//! timelines from the simulator's event trace.

use opt_bench::banner;
use opt_sim::{simulate, CompressionPlan, SimConfig, TraceKind};

fn render(cfg: &SimConfig, title: &str) {
    banner(title);
    let r = simulate(cfg);
    let end = r.iteration_time_s;
    let width = 100usize;
    let scale = width as f64 / end;
    for s in 0..cfg.pp {
        let mut line = vec![' '; width + 1];
        for e in r.trace.iter().filter(|e| e.stage == s) {
            let a = (e.start * scale) as usize;
            let b = ((e.end * scale) as usize).min(width);
            let ch = match e.kind {
                TraceKind::Forward => 'F',
                TraceKind::Backward => 'B',
                TraceKind::DpComm => 'D',
                TraceKind::EmbDp => 'E',
                TraceKind::EmbSync => 'S',
            };
            for c in line.iter_mut().take(b + 1).skip(a) {
                *c = ch;
            }
        }
        println!("dev{}: {}", s + 1, line.iter().collect::<String>());
    }
    println!(
        "iteration = {:.3} s  (F fwd, B bwd, D DP all-reduce, E EMB DP, S EMB sync)",
        end
    );
}

fn main() {
    // A small pipeline (4 stages x 8 micro-batches) renders readably.
    let mut cfg = SimConfig::paper_gpt_2_5b();
    cfg.n_micro = 8;
    render(&cfg, "Fig. 4a — baseline 1F1B");
    let opt = cfg.clone().with_plan(CompressionPlan::cb_fe_sc());
    render(&opt, "Fig. 4b — Optimus-CC (CB + fused EMB sync + SC)");
    let base = simulate(&cfg).iteration_time_s;
    let fast = simulate(&opt).iteration_time_s;
    println!(
        "\nExecution time reduction: {:.2}%",
        (1.0 - fast / base) * 100.0
    );
}
