//! Fig. 5: mechanism demonstration of lazy error propagation — the
//! residual of micro-batch i is folded into micro-batch i+1, and nothing
//! is lost within the iteration.

use opt_bench::{banner, print_table};
use opt_compress::{LazyErrorPropagator, PowerSgd};
use opt_tensor::{Matrix, SeedStream};

fn main() {
    banner("Fig. 5 — lazy error propagation across micro-batches");
    let mut rng = SeedStream::new(42);
    let mut link = LazyErrorPropagator::new(PowerSgd::new(2, 7), true);
    let mut delivered = Matrix::zeros(16, 16);
    let mut truth = Matrix::zeros(16, 16);
    let mut rows = Vec::new();
    for micro in 0..8 {
        let grad = rng.uniform_matrix(16, 16, 1.0);
        truth.add_assign(&grad);
        let (payload, stats) = link.process(&grad, true);
        delivered.add_assign(&payload.decompress());
        let cum_err = delivered.sub(&truth).norm() / truth.norm();
        rows.push(vec![
            format!("{micro}"),
            format!("{:.4}", stats.error_norm),
            format!("{:.5}", stats.error_mean),
            format!("{:.4}", cum_err),
        ]);
    }
    print_table(
        &[
            "micro-batch",
            "||eps|| preserved",
            "avg(eps)",
            "cumulative rel. err of delivered sum",
        ],
        &rows,
    );
    let resid = link.error().expect("residual").clone();
    let closed = delivered.add(&resid).sub(&truth).max_abs();
    println!("\nsum(delivered) + preserved residual - sum(true grads): max|.| = {closed:.2e}");
    println!("(== 0 up to float error: the error is delayed, never lost — paper Eq. 10)");
}
