//! Fig. 6: epilogue-only compression — which backward sends sit on the
//! critical path, and what compressing only them buys.

use opt_bench::{banner, print_table, speedup_pct};
use opt_schedule::epilogue_sends;
use opt_sim::{breakdown, CbPlan, CompressionPlan, SimConfig};

fn main() {
    banner("Fig. 6 — epilogue sends under 1F1B (S=4, M=16)");
    let sends = epilogue_sends(4, 16);
    let rows: Vec<Vec<String>> = (1..4)
        .map(|s| {
            let micros: Vec<String> = sends
                .iter()
                .filter(|(st, _)| *st == s)
                .map(|(_, m)| m.to_string())
                .collect();
            vec![format!("stage {s} -> {}", s - 1), micros.join(", ")]
        })
        .collect();
    print_table(&["link", "epilogue micro-batches (compressed)"], &rows);
    println!(
        "{} of {} backward sends are on the epilogue ({:.1}%).",
        sends.len(),
        3 * 16,
        100.0 * sends.len() as f64 / 48.0
    );

    banner("Epilogue-only vs compress-all (GPT-2.5B sim)");
    let cfg = SimConfig::paper_gpt_2_5b();
    let base = breakdown(&cfg);
    let epi = breakdown(&cfg.clone().with_plan(CompressionPlan::cb()));
    let all = breakdown(&cfg.clone().with_plan(CompressionPlan {
        compressed_backprop: Some(CbPlan {
            rank: 16,
            epilogue_only: false,
        }),
        ..CompressionPlan::baseline()
    }));
    let rows = vec![
        vec![
            "baseline".into(),
            format!("{:.4}", base.interstage_exposed),
            format!("{:.3}", base.total),
        ],
        vec![
            "CB epilogue-only".into(),
            format!("{:.4}", epi.interstage_exposed),
            format!("{:.3}", epi.total),
        ],
        vec![
            "CB all sends".into(),
            format!("{:.4}", all.interstage_exposed),
            format!("{:.3}", all.total),
        ],
    ];
    print_table(
        &["config", "exposed inter-stage (s)", "iteration (s)"],
        &rows,
    );
    println!(
        "epilogue-only achieves {} of the compress-all speedup while touching only {:.1}% of sends",
        speedup_pct(base.total, epi.total),
        100.0 * epilogue_sends(4, 16).len() as f64 / 48.0
    );
    println!("(paper §5.2: the rest of the sends are hidden behind computation anyway)");
}
