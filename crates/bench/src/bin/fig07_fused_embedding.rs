//! Fig. 7 / Eqs. 15-16: fused embedding synchronization cost model and
//! measured wire bytes in the numerical runtime.

use opt_bench::{banner, print_table};
use opt_net::{CostModel, Topology, TrafficClass};
use optimus_cc::{QualityConfig, Trainer, TrainerConfig};

fn main() {
    banner("Eq. 15/16 — analytic per-rank cost (V = 1)");
    let cm = CostModel::new(Topology::paper_cluster());
    let mut rows = Vec::new();
    for d in [2usize, 4, 8, 16, 64] {
        rows.push(vec![
            d.to_string(),
            format!("{:.4}", cm.embedding_sync_baseline_bytes(1.0, d)),
            format!("{:.4}", cm.embedding_sync_fused_bytes(1.0, d)),
            format!("{:.2}%", cm.embedding_fusion_speedup(d) * 100.0),
        ]);
    }
    print_table(
        &[
            "D (dp ways)",
            "C_emb = V(3D-2)/D",
            "C_fused = V(2D-1)/D",
            "speedup (D-1)/(2D-1)",
        ],
        &rows,
    );
    println!("Paper: 42.9% at D=4, approaching 50% as D grows.");

    banner("Measured wire bytes in the numerical runtime (4 iterations)");
    let run = |fused: bool| {
        let mut q = QualityConfig::baseline();
        q.fused_embedding = fused;
        let mut t = Trainer::launch(TrainerConfig::tiny_test(q, 4));
        let r = t.train();
        t.shutdown();
        r.traffic.bytes(TrafficClass::Embedding)
    };
    let base = run(false);
    let fused = run(true);
    let rows = vec![
        vec!["separate (EMB DP + 2-way sync)".into(), base.to_string()],
        vec!["fused (single 2D-way)".into(), fused.to_string()],
        vec![
            "reduction".into(),
            format!("{:.2}%", (1.0 - fused as f64 / base as f64) * 100.0),
        ],
    ];
    print_table(&["embedding path", "wire bytes"], &rows);
}
