//! Fig. 8: selective stage compression — compressing stages from the
//! front moves the DP bottleneck stage by stage.

use opt_bench::{banner, print_table, speedup_pct};
use opt_sim::{simulate, CompressionPlan, ScPlan, SimConfig};

fn main() {
    banner("Fig. 8 — DP bottleneck vs fraction of stages compressed (GPT-8.3B sim)");
    let base = SimConfig::paper_gpt_8_3b();
    let t0 = simulate(&base).iteration_time_s;
    let mut rows = Vec::new();
    for pct in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let plan = if pct == 0.0 {
            CompressionPlan::baseline()
        } else {
            CompressionPlan {
                selective_stage: Some(ScPlan {
                    fraction: pct,
                    rank: 128,
                }),
                ..CompressionPlan::baseline()
            }
        };
        let r = simulate(&base.clone().with_plan(plan));
        rows.push(vec![
            format!("{:.0}%", pct * 100.0),
            format!("{:.3}", r.iteration_time_s),
            speedup_pct(t0, r.iteration_time_s),
            format!("{:.3e}", r.dp_bytes),
        ]);
    }
    print_table(
        &[
            "stages compressed",
            "iteration (s)",
            "speedup",
            "DP wire bytes/rank",
        ],
        &rows,
    );
    println!("Each added stage removes the current bottleneck (paper Fig. 8's staircase).");
}
