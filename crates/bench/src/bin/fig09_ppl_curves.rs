//! Fig. 9: validation perplexity curves over training for the four
//! Table-2 configurations (small-model numerical proxy).
//!
//! Knobs: `OPT_QUALITY_ITERS` (default 300) sets the small-model
//! quality-proxy training iterations; CI smoke uses `OPT_QUALITY_ITERS=5`.

use opt_bench::{banner, print_table};
use optimus_cc::{QualityConfig, Trainer, TrainerConfig};

fn main() {
    let iters: u64 = std::env::var("OPT_QUALITY_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300);
    banner("Fig. 9 — validation PPL over training (small-model proxy)");
    let mut curves = Vec::new();
    for (label, q) in QualityConfig::table2_columns() {
        let mut cfg = TrainerConfig::small_test(q, iters);
        cfg.validate_every = (iters / 12).max(1);
        let mut t = Trainer::launch(cfg);
        let report = t.train();
        t.shutdown();
        curves.push((label, report.val_points));
    }
    // Print as an aligned series table: one row per validation point.
    let n = curves.iter().map(|(_, v)| v.len()).min().unwrap_or(0);
    let mut rows = Vec::new();
    for i in 0..n {
        let mut row = vec![curves[0].1[i].iter.to_string()];
        for (_, pts) in &curves {
            row.push(format!("{:.3}", pts[i].perplexity()));
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("iter")
        .chain(curves.iter().map(|(l, _)| *l))
        .collect();
    print_table(&headers, &rows);
    println!("\nPaper shape: CB and CB+FE track the baseline curve; CB+FE+SC converges");
    println!("slightly above it (the DP error-feedback staleness trade-off).");
}
