//! Fig. 10: execution-time breakdown under ablation of the proposed
//! techniques, measured CPI-stack style (turn each class off, re-run).

use opt_bench::{banner, print_table};
use opt_sim::{breakdown, CompressionPlan, SimConfig};

fn main() {
    for cfg in [SimConfig::paper_gpt_8_3b(), SimConfig::paper_gpt_2_5b()] {
        banner(&format!("Fig. 10 — breakdown ablation, {}", cfg.model.name));
        let mut rows = Vec::new();
        let base = breakdown(&cfg);
        for (label, plan) in CompressionPlan::table2_columns() {
            let b = breakdown(&cfg.clone().with_plan(plan));
            rows.push(vec![
                label.to_string(),
                format!("{:.3}", b.total),
                format!("{:.3}", b.fwd_bwd),
                format!("{:.3}", b.dp_exposed),
                format!("{:.4}", b.interstage_exposed),
                format!("{:.3}", b.emb_exposed),
                format!(
                    "{:.1}%",
                    (1.0 - b.comm_exposed() / base.comm_exposed()) * 100.0
                ),
            ]);
        }
        print_table(
            &[
                "Config",
                "Total (s)",
                "FWD+BWD",
                "DP",
                "Inter-stage",
                "EMB",
                "comm cut",
            ],
            &rows,
        );
    }
    println!("\nPaper: CB cuts exposed backward inter-stage comm by 78.57%; FE cuts the");
    println!("EMB bar ~40% (analytic 42.9%); all techniques cut total comm 63.29% (8.3B).");
}
