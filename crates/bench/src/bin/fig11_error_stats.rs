//! Fig. 11: empirical validation of Eq. 14 — the preserved compression
//! error is near-zero-mean and independent of the activation differences.
//!
//! Knobs: `OPT_QUALITY_ITERS` (default 150) sets the small-model
//! quality-proxy training iterations; CI smoke uses `OPT_QUALITY_ITERS=5`.

use opt_bench::{banner, print_table};
use optimus_cc::{QualityConfig, Trainer, TrainerConfig};

fn main() {
    let iters: u64 = std::env::var("OPT_QUALITY_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(150);
    banner("Fig. 11 — Avg(eps), Avg(Y(i)-Y(i+n)), cos(eps, Ydiff) during training");
    let mut cfg = TrainerConfig::small_test(QualityConfig::cb(), iters);
    cfg.collect_error_stats = true;
    let mut t = Trainer::launch(cfg);
    let report = t.train();
    t.shutdown();

    // Aggregate per training phase (eighths of the run).
    let phases = 8;
    let mut rows = Vec::new();
    for ph in 0..phases {
        let lo = iters * ph / phases;
        let hi = iters * (ph + 1) / phases;
        let samples: Vec<_> = report
            .error_stats
            .iter()
            .filter(|p| p.iter >= lo && p.iter < hi)
            .collect();
        if samples.is_empty() {
            continue;
        }
        let n = samples.len() as f32;
        let avg = |f: &dyn Fn(&optimus_cc::ErrorStatPoint) -> f32| {
            samples.iter().map(|p| f(p)).sum::<f32>() / n
        };
        rows.push(vec![
            format!("{lo}-{hi}"),
            format!("{:+.5}", avg(&|p| p.error_mean)),
            format!("{:+.5}", avg(&|p| p.act_diff_mean)),
            format!("{:+.4}", avg(&|p| p.cosine)),
            format!("{:.4}", avg(&|p| p.cosine.abs())),
        ]);
    }
    print_table(
        &[
            "iters",
            "Avg(eps)",
            "Avg(Y(i)-Y(i+n))",
            "mean cos",
            "mean |cos|",
        ],
        &rows,
    );
    println!("\nPaper: all three stay ~0, so Eq. 14 holds and G* approximates G (Eq. 10).");
    println!("Samples collected: {}", report.error_stats.len());
}
