//! Fig. 12: peak memory overhead of compressed backpropagation and lazy
//! error propagation.

use opt_bench::{banner, print_table};
use optimus_cc::{QualityConfig, Trainer, TrainerConfig};

fn main() {
    banner("Fig. 12 — per-worker memory (f32 elements) and overheads");
    let configs: Vec<(&str, QualityConfig)> = vec![
        ("Baseline", QualityConfig::baseline()),
        ("CB (Non-LEP)", QualityConfig::cb_non_lep()),
        ("CB (LEP)", QualityConfig::cb()),
        ("CB+FE+SC", QualityConfig::cb_fe_sc()),
    ];
    let mut rows = Vec::new();
    for (label, q) in configs {
        let mut t = Trainer::launch(TrainerConfig::small_test(q, 5));
        t.train();
        let m = t.memory_report();
        t.shutdown();
        rows.push(vec![
            label.to_string(),
            m.baseline_total().to_string(),
            m.compressor_elems.to_string(),
            m.lazy_error_elems.to_string(),
            format!("{:.2}%", m.compression_overhead() * 100.0),
            format!("{:.2}%", m.lep_overhead() * 100.0),
        ]);
    }
    print_table(
        &[
            "Config",
            "base elems",
            "compressor elems",
            "LEP elems",
            "comp ovh",
            "LEP ovh",
        ],
        &rows,
    );
    println!("\nPaper: low-rank buffers add 5-10% over baseline; LEP adds ~1% more.");
    println!("(Our absolute overheads are smaller because the proxy model's activation");
    println!("working set dominates at tiny scale; the ordering and the ~order-of-");
    println!("magnitude gap between compressor and LEP buffers match.)");
}
