//! Fig. 13: speed/quality trade-off — selective stage compression
//! (varying the stage fraction) versus adjusting the PowerSGD rank.
//!
//! Knobs: `OPT_QUALITY_ITERS` (default 250) sets the small-model
//! quality-proxy training iterations; CI smoke uses `OPT_QUALITY_ITERS=5`.

use opt_bench::{banner, print_table, speedup_pct};
use opt_sim::{simulate, CompressionPlan, ScPlan, SimConfig};
use optimus_cc::{QualityConfig, ScQuality, Trainer, TrainerConfig};

fn quality_ppl(q: QualityConfig, iters: u64) -> f32 {
    let mut t = Trainer::launch(TrainerConfig::small_test(q, iters));
    let r = t.train();
    t.shutdown();
    r.final_val_ppl()
}

fn main() {
    let iters: u64 = std::env::var("OPT_QUALITY_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(250);
    let sim = SimConfig::paper_gpt_2_5b();
    let t0 = simulate(&sim).iteration_time_s;

    banner("Fig. 13 (left) — selective stage compression sweep (GPT-2.5B)");
    let mut rows = Vec::new();
    for frac in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let plan = CompressionPlan {
            selective_stage: (frac > 0.0).then_some(ScPlan {
                fraction: frac,
                rank: 128,
            }),
            ..CompressionPlan::baseline()
        };
        let t = simulate(&sim.clone().with_plan(plan)).iteration_time_s;
        let q = QualityConfig {
            sc: (frac > 0.0).then_some(ScQuality {
                fraction: frac,
                rank: QualityConfig::SMALL_DP_RANK,
            }),
            ..QualityConfig::baseline()
        };
        let ppl = quality_ppl(q, iters);
        rows.push(vec![
            format!("{:.0}%", frac * 100.0),
            speedup_pct(t0, t),
            format!("{ppl:.3}"),
        ]);
    }
    print_table(
        &["stages compressed", "speedup (sim)", "val PPL (proxy)"],
        &rows,
    );

    banner("Fig. 13 (middle) — rank sweep with all stages compressed");
    let mut rows = Vec::new();
    // Paper sweeps ranks on the real model up to 512 where compression
    // kernels dominate; quality ranks are scaled for the proxy model.
    for (sim_rank, q_rank) in [(32usize, 1usize), (64, 2), (128, 4), (256, 8), (512, 16)] {
        let plan = CompressionPlan::naive_dp(sim_rank);
        let t = simulate(&sim.clone().with_plan(plan)).iteration_time_s;
        let ppl = quality_ppl(QualityConfig::naive_dp(q_rank), iters);
        rows.push(vec![
            sim_rank.to_string(),
            speedup_pct(t0, t),
            format!("{ppl:.3}"),
        ]);
    }
    print_table(&["rank (sim)", "speedup (sim)", "val PPL (proxy)"], &rows);
    println!("\nPaper shape: SC gives a smooth monotone trade-off; rank adjustment is");
    println!("non-linear and collapses at rank 512 (compression kernel time dominates).");
}
