//! Fig. 14: tensor/pipeline-parallel configuration sensitivity on
//! GPT-9.2B with DP fixed at 4 (TP8/PP4, TP4/PP8, TP2/PP16).

use opt_bench::{banner, print_table, speedup_pct};
use opt_model::GptConfig;
use opt_sim::{simulate, CompressionPlan, SimConfig};

fn main() {
    banner("Fig. 14 — TP/PP sensitivity, GPT-9.2B (80 layers), DP=4, 128 GPUs");
    let mut rows = Vec::new();
    for (tp, pp) in [(8usize, 4usize), (4, 8), (2, 16)] {
        let cfg = SimConfig::paper_defaults(GptConfig::gpt_9_2b()).with_tp_pp(tp, pp);
        let base = simulate(&cfg).iteration_time_s;
        let mut row = vec![format!("TP{tp}/PP{pp}"), format!("{base:.3}")];
        for (_, plan) in CompressionPlan::table2_columns().into_iter().skip(1) {
            let t = simulate(&cfg.clone().with_plan(plan)).iteration_time_s;
            row.push(speedup_pct(base, t));
        }
        rows.push(row);
    }
    print_table(
        &[
            "config",
            "baseline iter (s)",
            "CB speedup",
            "CB+FE speedup",
            "CB+FE+SC speedup",
        ],
        &rows,
    );
    println!("\nPaper shape: CB gains grow with more pipeline ways (more inter-stage");
    println!("communication); SC gains grow with fewer pipeline ways (more parameters");
    println!("per stage -> more DP traffic). Paper: >=19.2% total for all configs.");
}
