//! Fig. 15: compression/decompression throughput vs rank, on GPT-8.3B
//! and GPT-175B activation shapes — both the calibrated A100 kernel model
//! (absolute scale) and real CPU measurements of our PowerSGD (shape).

use opt_bench::{banner, print_table};
use opt_compress::{Compressor, PowerSgd};
use opt_sim::KernelModel;
use opt_tensor::SeedStream;
use std::time::Instant;

fn cpu_throughput(n: usize, m: usize, rank: usize) -> (f64, f64) {
    let mut rng = SeedStream::new(5);
    let grad = rng.uniform_matrix(n, m, 1.0);
    let mut comp = PowerSgd::new(rank, 1);
    // Warm up the factor, then time.
    let payload = comp.compress(&grad);
    let reps = 3;
    let t0 = Instant::now();
    for _ in 0..reps {
        let _ = comp.compress(&grad);
    }
    let t_comp = t0.elapsed().as_secs_f64() / reps as f64;
    let t0 = Instant::now();
    for _ in 0..reps {
        let _ = payload.decompress();
    }
    let t_dec = t0.elapsed().as_secs_f64() / reps as f64;
    let dense_bytes = (n * m * 2) as f64;
    (dense_bytes / t_comp, dense_bytes / t_dec)
}

fn main() {
    let k = KernelModel::a100();
    for (name, hidden) in [("GPT-8.3B", 3072usize), ("GPT-175B", 12_288)] {
        banner(&format!(
            "Fig. 15 — {name} activation (8192 x {hidden}), A100 kernel model"
        ));
        let n = 8 * 1024;
        let mut rows = Vec::new();
        for rank in [4usize, 8, 16, 32, 64, 128] {
            rows.push(vec![
                rank.to_string(),
                format!("{:.1}", k.compress_throughput(n, hidden, rank) * 8.0 / 1e9),
                format!(
                    "{:.1}",
                    k.decompress_throughput(n, hidden, rank) * 8.0 / 1e9
                ),
            ]);
        }
        print_table(&["rank", "compress (Gb/s)", "decompress (Gb/s)"], &rows);
    }
    println!("\nPaper anchors: 8.3B rank 16 -> 786.96 Gb/s compress, 68.2 Tb/s decompress;");
    println!("interconnect is 200 Gb/s — compression is never the bottleneck.");

    banner("Real CPU PowerSGD (scaled-down shapes; shape check only)");
    let mut rows = Vec::new();
    for rank in [2usize, 4, 8, 16, 32] {
        let (c, d) = cpu_throughput(512, 192, rank);
        rows.push(vec![
            rank.to_string(),
            format!("{:.1}", c / 1e6),
            format!("{:.1}", d / 1e6),
        ]);
    }
    print_table(&["rank", "compress (MB/s)", "decompress (MB/s)"], &rows);
    println!("Trend check: compression throughput decreases with rank (orthogonalization");
    println!("dominated), matching the paper's counter-intuitive observation in §9.6.");
}
