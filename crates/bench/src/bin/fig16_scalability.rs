//! Fig. 16: scalability of the proposed mechanisms from GPT-2.5B up to
//! GPT-175B, with TP fixed at 8 and the GPU count growing with the model.

use opt_bench::{banner, print_table, speedup_pct};
use opt_model::GptConfig;
use opt_net::Topology;
use opt_sim::{simulate, CompressionPlan, SimConfig};

fn main() {
    banner("Fig. 16 — scalability sweep (TP8 fixed, GPUs grow with model)");
    // (model, pp, dp, nodes): mirrors "we increased the number of GPUs in
    // larger models for a fair comparison".
    let jobs: Vec<(GptConfig, usize, usize, usize)> = vec![
        (GptConfig::gpt_2_5b(), 4, 4, 16),  // 128 GPUs
        (GptConfig::gpt_8_3b(), 4, 4, 16),  // 128 GPUs
        (GptConfig::gpt_39b(), 8, 4, 32),   // 256 GPUs
        (GptConfig::gpt_175b(), 16, 4, 64), // 512 GPUs
    ];
    let mut rows = Vec::new();
    for (model, pp, dp, nodes) in jobs {
        let name = model.name.clone();
        let mut cfg = SimConfig::paper_defaults(model);
        cfg.pp = pp;
        cfg.dp = dp;
        cfg.topology = Topology::with_nodes(nodes);
        let base = simulate(&cfg).iteration_time_s;
        let mut row = vec![name, format!("{}", nodes * 8), format!("{base:.2}")];
        for (_, plan) in CompressionPlan::table2_columns().into_iter().skip(1) {
            let t = simulate(&cfg.clone().with_plan(plan)).iteration_time_s;
            row.push(speedup_pct(base, t));
        }
        rows.push(row);
    }
    print_table(
        &[
            "model",
            "GPUs",
            "baseline iter (s)",
            "CB",
            "CB+FE",
            "CB+FE+SC",
        ],
        &rows,
    );
    println!("\nPaper shape: the full-stack speedup is sustained (and compression");
    println!("overhead shrinks) as the model grows to 175B.");
}
