//! §9.4 future work, implemented: automatically choosing the DP
//! compression rank and the number of selectively compressed stages.

use opt_bench::{banner, print_table, speedup_pct};
use opt_sim::{auto_tune, simulate, sweep, CompressionPlan, SimConfig};

fn main() {
    let cfg = SimConfig::paper_gpt_8_3b().with_plan(CompressionPlan::cb_fe());
    let base = simulate(&cfg).iteration_time_s;

    banner("Auto-tuner grid (GPT-8.3B, CB+FE fixed): iteration time vs error pressure");
    let pts = sweep(&cfg, &[64, 128, 256, 512], &[0.25, 0.5, 0.75, 1.0]);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.rank.to_string(),
                format!("{:.0}%", p.fraction * 100.0),
                format!("{:.3}", p.iteration_s),
                format!("{:.3}", p.error_pressure),
            ]
        })
        .collect();
    print_table(&["rank", "stages", "iter (s)", "error pressure"], &rows);

    banner("Auto-tuned picks per quality budget");
    let mut rows = Vec::new();
    for budget in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let p = auto_tune(&cfg, budget).expect("grid non-empty");
        rows.push(vec![
            format!("{budget:.2}"),
            p.rank.to_string(),
            format!("{:.0}%", p.fraction * 100.0),
            speedup_pct(base, p.iteration_s),
        ]);
    }
    print_table(
        &["error budget", "rank", "stages", "speedup vs CB+FE"],
        &rows,
    );
    println!("\nThe tuner trades budget for speed monotonically and never falls into the");
    println!("rank-512 trap of Fig. 13 (slow compression kernels).");
}
