//! `opt-worker` — one `(stage, dp)` rank of the training world as a real
//! OS process.
//!
//! Spawned by `optimus_cc::Trainer::launch_processes` (or the
//! fault-injection harness), configured entirely through the environment
//! protocol (`OPT_WORKER_RANK`, `OPT_WORKER_CFG`, `OPT_WORKER_RDV`,
//! `OPT_WORKER_STORE`): the process rendezvouses with its peers over
//! loopback TCP, joins the collective/p2p fabric, and runs the exact same
//! worker loop the in-process trainer runs on threads. Checkpoint shards
//! are published to and fetched from a TCP shard store.
//!
//! Exit status 0 means the worker was told to stop (or its coordinator
//! went away); any setup or protocol failure exits nonzero with the error
//! on stderr.

fn main() {
    if let Err(e) = optimus_cc::worker_main() {
        eprintln!("opt-worker failed: {e}");
        std::process::exit(1);
    }
}
