//! Table 2: pretraining time speedup and validation perplexity for
//! GPT-8.3B and GPT-2.5B under Baseline / CB / CB+FE / CB+FE+SC.
//!
//! Training time comes from the cluster simulator at paper scale (230K
//! iterations); validation perplexity comes from real training of the
//! small numerical model under the corresponding quality config.
//!
//! Knobs: `OPT_QUALITY_ITERS` (default 300) sets the small-model
//! quality-proxy training iterations; CI smoke uses `OPT_QUALITY_ITERS=5`.

use opt_bench::{banner, days, print_table, speedup_pct};
use opt_sim::{simulate, CompressionPlan, SimConfig};
use optimus_cc::{QualityConfig, Trainer, TrainerConfig};

fn main() {
    let iters: u64 = std::env::var("OPT_QUALITY_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300);

    for sim_cfg in [SimConfig::paper_gpt_8_3b(), SimConfig::paper_gpt_2_5b()] {
        banner(&format!(
            "Table 2 — {} (sim: days for 230K iters; PPL: small-model proxy)",
            sim_cfg.model.name
        ));
        let base_t = simulate(&sim_cfg).iteration_time_s;
        let mut rows = Vec::new();
        for ((label, plan), (_, quality)) in CompressionPlan::table2_columns()
            .into_iter()
            .zip(QualityConfig::table2_columns())
        {
            let t = simulate(&sim_cfg.clone().with_plan(plan)).iteration_time_s;
            let mut trainer = Trainer::launch(TrainerConfig::small_test(quality, iters));
            let report = trainer.train();
            trainer.shutdown();
            rows.push(vec![
                label.to_string(),
                days(t, 230_000),
                speedup_pct(base_t, t),
                format!("{:.3}", report.final_val_ppl()),
            ]);
        }
        print_table(
            &[
                "Config",
                "Training Time (days)",
                "Speedup",
                "Val. PPL (proxy)",
            ],
            &rows,
        );
    }
    println!("\nPaper reference — GPT-8.3B: 37.27d / +7.01% / +13.49% / +44.91%, PPL 8.10→8.20;");
    println!("GPT-2.5B: 14.72d / +8.00% / +15.09% / +17.29%, PPL 9.31→9.55.");
}
