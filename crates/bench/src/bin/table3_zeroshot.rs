//! Table 3: zero-shot task accuracy of pretrained models under the four
//! configurations, on the five synthetic probes (LAMBADA/PIQA/MathQA/
//! WinoGrande/RACE substitutes).
//!
//! Knobs: `OPT_QUALITY_ITERS` (default 400) sets the small-model
//! quality-proxy training iterations; CI smoke uses `OPT_QUALITY_ITERS=5`.

use opt_bench::{banner, print_table};
use opt_data::ZeroShotTask;
use optimus_cc::{QualityConfig, Trainer, TrainerConfig};

fn main() {
    let iters: u64 = std::env::var("OPT_QUALITY_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400);
    let n_examples = 200;

    banner("Table 3 — zero-shot accuracy (small-model proxy, no fine-tuning)");
    let mut scores: Vec<(String, Vec<f64>)> = Vec::new();
    for (label, q) in QualityConfig::table2_columns() {
        let mut t = Trainer::launch(TrainerConfig::small_test(q, iters));
        t.train();
        let suite = t.zero_shot_suite(n_examples, 99);
        t.shutdown();
        scores.push((
            label.to_string(),
            suite.iter().map(|(_, s)| s.accuracy()).collect(),
        ));
    }
    let mut rows = Vec::new();
    for (ti, task) in ZeroShotTask::ALL.iter().enumerate() {
        let mut row = vec![format!("{:?} ({})", task, task.paper_benchmark())];
        for (_, accs) in &scores {
            row.push(format!("{:.2}%", accs[ti] * 100.0));
        }
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("Task".to_string())
        .chain(scores.iter().map(|(l, _)| l.clone()))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(&headers_ref, &rows);
    println!("\nPaper shape: CB and CB+FE comparable to baseline; CB+FE+SC marginally lower.");
}
