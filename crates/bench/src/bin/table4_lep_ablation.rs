//! Table 4: effect of lazy error propagation on zero-shot accuracy —
//! Baseline vs CB without LEP vs CB with LEP.
//!
//! Knobs: `OPT_QUALITY_ITERS` (default 400) sets the small-model
//! quality-proxy training iterations; CI smoke uses `OPT_QUALITY_ITERS=5`.

use opt_bench::{banner, print_table};
use opt_data::ZeroShotTask;
use optimus_cc::{QualityConfig, Trainer, TrainerConfig};

fn main() {
    let iters: u64 = std::env::var("OPT_QUALITY_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400);
    let n_examples = 200;

    banner("Table 4 — lazy error propagation ablation (small-model proxy)");
    let configs: Vec<(&str, QualityConfig)> = vec![
        ("Baseline", QualityConfig::baseline()),
        ("CB (Non-LEP)", QualityConfig::cb_non_lep()),
        ("CB (LEP)", QualityConfig::cb()),
    ];
    let mut scores: Vec<(String, Vec<f64>, f32)> = Vec::new();
    for (label, q) in configs {
        let mut t = Trainer::launch(TrainerConfig::small_test(q, iters));
        let report = t.train();
        let suite = t.zero_shot_suite(n_examples, 7);
        t.shutdown();
        scores.push((
            label.to_string(),
            suite.iter().map(|(_, s)| s.accuracy()).collect(),
            report.final_val_ppl(),
        ));
    }
    let mut rows = Vec::new();
    for (ti, task) in ZeroShotTask::ALL.iter().enumerate() {
        let mut row = vec![format!("{:?} ({})", task, task.paper_benchmark())];
        for (_, accs, _) in &scores {
            row.push(format!("{:.2}%", accs[ti] * 100.0));
        }
        rows.push(row);
    }
    let mut ppl_row = vec!["Val. PPL".to_string()];
    for (_, _, ppl) in &scores {
        ppl_row.push(format!("{ppl:.3}"));
    }
    rows.push(ppl_row);
    let headers: Vec<String> = std::iter::once("Task".to_string())
        .chain(scores.iter().map(|(l, _, _)| l.clone()))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(&headers_ref, &rows);
    println!("\nPaper shape: Non-LEP has the lowest accuracies; LEP restores them to baseline.");
}
