//! `trace_report` — analyzes a Chrome-trace JSON exported by
//! `Trace::to_chrome_json` (the file the multiproc CI job uploads, or
//! whatever `examples/trace_profile.rs` wrote) without needing the run
//! that produced it.
//!
//! The exporter repeats every structural span field under each event's
//! `args`, so this tool can reconstruct the per-rank [`TraceBuffer`]s,
//! re-merge them, and run the same [`opt_trace::analyze`] pass the
//! trainer-side consumers use: per-rank pipeline-bubble fraction,
//! comm/compute overlap, and the top-k slowest spans.
//!
//! ```text
//! trace_report <trace.json> [--top K] [--require-compute]
//! ```
//!
//! * `--top K` — how many slowest spans to list (default 5);
//! * `--require-compute` — exit non-zero unless the trace holds at least
//!   one compute span (the CI assertion that tracing actually recorded
//!   the run, not an empty shell).

use opt_bench::json::Json;
use opt_trace::{analyze, render, SpanKind, SpanRecord, Trace, TraceBuffer, NO_MICRO};
use std::collections::BTreeMap;
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("trace_report: {msg}");
    ExitCode::FAILURE
}

/// Reads one `args` integer, tolerating the `-1` the exporter uses for
/// absent microbatches.
fn arg_i64(args: &Json, key: &str) -> Result<i64, String> {
    args.get(key)
        .and_then(Json::as_f64)
        .map(|f| f as i64)
        .ok_or_else(|| format!("event missing numeric args.{key}"))
}

fn arg_u64(args: &Json, key: &str) -> Result<u64, String> {
    args.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("event missing numeric args.{key}"))
}

/// Collects the `kernel_paths` metadata event the exporter emits: the
/// `{arch}/{dense|sparse}` kernel paths (with invocation counts) the
/// exporting process actually exercised. Absent in traces written before
/// the event existed, so an empty result is not an error.
fn kernel_paths(doc: &Json) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    let Some(events) = doc.get("traceEvents").and_then(Json::as_array) else {
        return out;
    };
    for ev in events {
        if ev.get("ph").and_then(Json::as_str) != Some("M")
            || ev.get("name").and_then(Json::as_str) != Some("kernel_paths")
        {
            continue;
        }
        if let Some(args) = ev.get("args").and_then(Json::as_object) {
            for (path, count) in args {
                out.push((path.clone(), count.as_u64().unwrap_or(0)));
            }
        }
    }
    out.sort();
    out
}

/// Rebuilds the per-rank buffers from the exported complete (`"X"`)
/// events; other metadata (`"M"`) events are skipped.
fn reconstruct(doc: &Json) -> Result<Trace, String> {
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or("missing \"traceEvents\" array — not a Chrome-trace document")?;
    let mut buffers: BTreeMap<u64, TraceBuffer> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let at = |e: String| format!("event {i}: {e}");
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| at("missing ph".to_string()))?;
        if ph != "X" {
            continue;
        }
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| at("missing name".to_string()))?;
        let kind =
            SpanKind::from_name(name).ok_or_else(|| at(format!("unknown span kind \"{name}\"")))?;
        let args = ev
            .get("args")
            .ok_or_else(|| at("missing args".to_string()))?;
        let ts_us = ev
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or_else(|| at("missing ts".to_string()))?;
        let dur_us = ev
            .get("dur")
            .and_then(Json::as_f64)
            .ok_or_else(|| at("missing dur".to_string()))?;
        let rank = arg_u64(args, "rank").map_err(&at)?;
        let micro = arg_i64(args, "micro").map_err(&at)?;
        let span = SpanRecord {
            seq: arg_u64(args, "seq").map_err(&at)?,
            parent: arg_u64(args, "parent").map_err(&at)?,
            kind,
            iter: arg_u64(args, "iter").map_err(&at)?,
            micro: if micro < 0 { NO_MICRO } else { micro as u32 },
            bytes: arg_u64(args, "bytes").map_err(&at)?,
            flags: arg_u64(args, "flags").map_err(&at)? as u8,
            start_ns: (ts_us * 1_000.0).round() as u64,
            dur_ns: (dur_us * 1_000.0).round() as u64,
        };
        let buf = buffers.entry(rank).or_insert_with(|| TraceBuffer {
            rank: rank as u32,
            stage: arg_u64(args, "stage").unwrap_or(0) as u32,
            dp: arg_u64(args, "dp").unwrap_or(0) as u32,
            spans: Vec::new(),
        });
        buf.spans.push(span);
    }
    Ok(Trace::merge(buffers.into_values().collect()))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let require_compute = args.iter().any(|a| a == "--require-compute");
    let top_k: usize = args
        .iter()
        .position(|a| a == "--top")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    // The first positional argument is the input path; the value of
    // `--top` is not positional.
    let mut path = None;
    let mut skip_next = false;
    for a in &args {
        if std::mem::take(&mut skip_next) {
            continue;
        }
        if a == "--top" {
            skip_next = true;
        } else if !a.starts_with("--") {
            path = Some(a);
            break;
        }
    }
    let Some(path) = path else {
        eprintln!("usage: trace_report <trace.json> [--top K] [--require-compute]");
        return ExitCode::from(2);
    };

    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("reading {path}: {e}")),
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => return fail(&format!("parsing {path}: {e}")),
    };
    let trace = match reconstruct(&doc) {
        Ok(t) => t,
        Err(e) => return fail(&format!("{path}: {e}")),
    };

    println!(
        "{path}: {} ranks, {} spans ({} compute), structural digest {:016x}",
        trace.buffers.len(),
        trace.span_count(),
        trace.compute_span_count(),
        trace.structural_digest()
    );
    let paths = kernel_paths(&doc);
    if !paths.is_empty() {
        let rendered: Vec<String> = paths.iter().map(|(p, n)| format!("{p} x{n}")).collect();
        println!(
            "kernel paths exercised (exporting process): {}",
            rendered.join(", ")
        );
    }
    print!("{}", render(&analyze(&trace, top_k)));

    if require_compute && trace.compute_span_count() == 0 {
        return fail("--require-compute: the trace holds no compute spans");
    }
    ExitCode::SUCCESS
}
