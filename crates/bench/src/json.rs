//! A minimal, dependency-free JSON reader/writer for the benchmark matrix.
//!
//! The committed `BENCH_*.json` perf records are written and re-read by
//! this module alone — the same "own the bytes" discipline as the
//! `Persist` binary codec in `opt-tensor`: no serde, a deterministic
//! writer (object keys keep insertion order, floats format canonically),
//! and a strict recursive-descent parser that rejects trailing garbage.
//!
//! # Example
//!
//! ```
//! use opt_bench::json::Json;
//! let v = Json::parse(r#"{"a": [1, 2.5], "b": "x"}"#).unwrap();
//! assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
//! assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
//! ```

use std::fmt::Write as _;

/// A parsed JSON value. Object member order is preserved, so
/// parse → render round trips are stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always held as `f64`).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object member list, if it is one.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Parses one JSON document. Trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

/// A parse error with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset the parser stopped at.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("non-UTF-8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by our own
                            // writer; map unpaired surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape character")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Escapes a string for embedding in a JSON document (adds no quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Canonical float formatting for the matrix codec: six decimal places,
/// trailing zeros trimmed, always at least one decimal digit.
///
/// The format is **idempotent under re-parsing**: for any `v` this
/// function emits, `fmt_f64(parse(fmt_f64(v)))` yields the same bytes —
/// the property the byte-identical-regeneration contract of the report
/// generator rests on.
///
/// # Example
///
/// ```
/// assert_eq!(opt_bench::json::fmt_f64(59766728.0), "59766728.0");
/// assert_eq!(opt_bench::json::fmt_f64(1.15), "1.15");
/// assert_eq!(opt_bench::json::fmt_f64(0.000000123), "0.0");
/// ```
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        // The matrix never records non-finite measurements; treat them as
        // an explicit "absent" marker rather than emitting invalid JSON.
        return "0.0".to_string();
    }
    let mut s = format!("{v:.6}");
    while s.ends_with('0') {
        s.pop();
    }
    if s.ends_with('.') {
        s.push('0');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = Json::parse(r#"{"a":{"b":[1,-2.5,1e3]},"c":null,"d":true,"e":"x\ny"}"#).unwrap();
        let b = v.get("a").unwrap().get("b").unwrap().as_array().unwrap();
        assert_eq!(b[0].as_f64(), Some(1.0));
        assert_eq!(b[1].as_f64(), Some(-2.5));
        assert_eq!(b[2].as_f64(), Some(1000.0));
        assert_eq!(v.get("c"), Some(&Json::Null));
        assert_eq!(v.get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn preserves_member_order() {
        let v = Json::parse(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
        assert!(Json::parse("01a").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let s = "a\"b\\c\nd\te\u{1}";
        let doc = format!("\"{}\"", escape(s));
        assert_eq!(Json::parse(&doc).unwrap().as_str(), Some(s));
    }

    #[test]
    fn fmt_f64_is_idempotent_under_reparse() {
        for v in [
            0.0,
            1.0,
            -3.75,
            1.15,
            59766728.0,
            0.000001,
            0.0000001,
            123456.654321,
            f64::NAN,
        ] {
            let once = fmt_f64(v);
            let back: f64 = once.parse().unwrap();
            assert_eq!(fmt_f64(back), once, "value {v}");
        }
    }

    #[test]
    fn as_u64_requires_whole_numbers() {
        assert_eq!(Json::Num(3.0).as_u64(), Some(3));
        assert_eq!(Json::Num(3.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }
}
