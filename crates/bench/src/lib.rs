//! `opt-bench` — experiment harness for the Optimus-CC reproduction.
//!
//! One binary per paper table/figure (see `src/bin/`), each printing the
//! same rows/series the paper reports, plus Criterion micro-benchmarks in
//! `benches/`, plus the repo's perf-observability layer:
//!
//! * [`matrix`] — the schema-versioned benchmark-matrix data model:
//!   `BENCH_<dimension>.json` codec, machine/git provenance, the
//!   median-regression gate with its allowlist, and the run trajectory;
//! * [`report`] — byte-deterministic markdown generation (`reports/`,
//!   README headline block) from the committed JSON records;
//! * [`json`] — the serde-free JSON reader/writer both build on.
//!
//! The `bench_matrix` binary runs the workload sweeps and emits the JSON
//! records; `bench_report` renders the reports and enforces the CI gate.

pub mod json;
pub mod matrix;
pub mod report;

use std::fmt::Display;

/// Prints a simple aligned table: a header row then data rows.
///
/// # Example
///
/// ```
/// opt_bench::print_table(
///     &["config", "time"],
///     &[vec!["baseline".to_string(), "1.00".to_string()]],
/// );
/// ```
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(header.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Formats a float with the given precision.
pub fn fmt<T: Display>(v: T) -> String {
    v.to_string()
}

/// Formats seconds as days for an `iters`-iteration training run.
pub fn days(iteration_s: f64, iters: u64) -> String {
    format!("{:.2}", iteration_s * iters as f64 / 86_400.0)
}

/// Formats a speedup of `slow` over `fast` as `+x.xx%`.
pub fn speedup_pct(slow: f64, fast: f64) -> String {
    format!("{:+.2}%", (slow / fast - 1.0) * 100.0)
}

/// Prints a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_formats_sign() {
        assert_eq!(speedup_pct(2.0, 1.0), "+100.00%");
        assert!(speedup_pct(1.0, 2.0).starts_with('-'));
    }

    #[test]
    fn days_projection() {
        assert_eq!(days(86_400.0, 2), "2.00");
    }
}
