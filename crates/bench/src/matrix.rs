//! The benchmark matrix: schema-versioned perf records, the regression
//! gate, and the run trajectory.
//!
//! This module is the data layer behind `bench_matrix` (the workload
//! runner) and `bench_report` (the report generator / CI gate). One
//! [`BenchFile`] holds one matrix *dimension* — a sweep along a single
//! axis (kernels, model size, pp×dp, compressor, transport, kernel
//! threads) with every other knob held at its base point — and is
//! committed at the repo root as `BENCH_<dimension>.json`.
//!
//! Design rules, in the spirit of cbp-experiments' committed report
//! tables:
//!
//! * **Schema-versioned.** Every file records [`SCHEMA_VERSION`]; readers
//!   refuse unknown versions instead of guessing.
//! * **Self-describing provenance.** Machine fingerprint (CPU model, core
//!   count, OS, plus any [`PROVENANCE_ENV_VARS`] overrides in effect),
//!   git revision, build profile, and warmup/repetition counts are
//!   recorded in the file, so a number can never be quoted without its
//!   measurement conditions.
//! * **Serde-free.** The codec is the repo's own [`crate::json`] module —
//!   deterministic writer, strict parser — mirroring how `opt-ckpt` owns
//!   its snapshot bytes.
//! * **Mechanically gated.** [`gate`] diffs a fresh run against the
//!   committed baselines and fails on a median regression beyond a
//!   threshold (default [`DEFAULT_THRESHOLD_PCT`] %), with an explicit
//!   [`Allowlist`] for intentional changes.

use crate::json::{escape, fmt_f64, Json};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Version of the `BENCH_*.json` schema this module reads and writes.
///
/// Version 1 was the ad-hoc, kernels-only `BENCH_kernels.json` emitted by
/// the retired `bench_kernels` binary (no provenance fields, one file).
/// Version 2 is the matrix schema documented field-by-field in
/// `reports/BENCHMARKS.md`.
pub const SCHEMA_VERSION: u64 = 2;

/// Default regression-gate threshold, in percent: a dimension fails the
/// gate when the *median* of its per-row `current/baseline` time ratios
/// exceeds `1 + DEFAULT_THRESHOLD_PCT/100`.
pub const DEFAULT_THRESHOLD_PCT: f64 = 15.0;

/// File name of the committed run trajectory (appended per matrix run).
pub const TRAJECTORY_FILE: &str = "BENCH_trajectory.json";

/// Environment knobs recorded in the machine fingerprint when set: they
/// change what a benchmark *measures* (kernel-pool width, net timeouts,
/// forced kernel arch, sparse crossover), so a run under an override must
/// never be silently compared against a baseline measured without it.
pub const PROVENANCE_ENV_VARS: [&str; 4] = [
    "OPT_KERNEL_THREADS",
    "OPT_NET_TIMEOUT_MS",
    "OPT_KERNEL_ARCH",
    "OPT_SPARSE_DENSITY_MAX",
];

/// Machine fingerprint recorded in every benchmark file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Machine {
    /// CPU model string (from `/proc/cpuinfo` where available).
    pub cpu: String,
    /// Logical core count visible to the process.
    pub cores: u64,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// Kernel arch the dispatcher resolved to, as
    /// `"<target>/<path>"` ([`opt_tensor::kernel_arch_name`], e.g.
    /// `"x86_64/avx2"`) — the detected path, or the `OPT_KERNEL_ARCH`
    /// override (which then also appears in `env`).
    pub arch: String,
    /// Environment overrides from [`PROVENANCE_ENV_VARS`] that were set
    /// when the run was measured, in that order. Empty (and absent from
    /// the JSON) when none were set.
    pub env: Vec<(String, String)>,
}

/// Reads the machine fingerprint of the current host.
pub fn machine() -> Machine {
    let cpu = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|text| {
            text.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|s| s.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".to_string());
    Machine {
        cpu,
        cores: std::thread::available_parallelism()
            .map(|n| n.get() as u64)
            .unwrap_or(1),
        os: std::env::consts::OS.to_string(),
        arch: opt_tensor::kernel_arch_name(),
        env: PROVENANCE_ENV_VARS
            .iter()
            .filter_map(|&k| std::env::var(k).ok().map(|v| (k.to_string(), v)))
            .collect(),
    }
}

/// Renders a machine's env overrides for human-readable notes.
fn fmt_env(env: &[(String, String)]) -> String {
    if env.is_empty() {
        return "none".to_string();
    }
    env.iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// The short git revision of the working tree, or `"unknown"` outside a
/// repository.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=9", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The cargo build profile of this binary (`"debug"` or `"release"`).
/// Recorded so a debug-profile run is never diffed against a release
/// baseline.
pub fn build_profile() -> &'static str {
    if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    }
}

/// Provenance and measurement-procedure header of one benchmark file.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMeta {
    /// Which matrix axis this file sweeps (`"kernels"`, `"model"`, …).
    pub dimension: String,
    /// `"smoke"` (CI-sized shapes/iterations) or `"full"`.
    pub mode: String,
    /// Build profile the numbers were measured under.
    pub profile: String,
    /// Git revision of the measured tree.
    pub git_rev: String,
    /// Host fingerprint.
    pub machine: Machine,
    /// Untimed warmup repetitions before measurement.
    pub warmup: u64,
    /// Timed repetitions; `best_ns` is the minimum over these.
    pub reps: u64,
    /// Kernel-pool width in effect outside the `threads` axis.
    pub kernel_threads: u64,
}

/// One measured point of a dimension sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Stable identity of the point within its dimension — the gate joins
    /// baseline and current rows on this.
    pub label: String,
    /// Human-readable axis coordinates (`("model", "GPT-tiny")`, …).
    pub config: Vec<(String, String)>,
    /// Best (minimum) wall time of the measured unit (one op, or one
    /// training iteration) over the timed repetitions, in nanoseconds.
    /// The gate metric: scheduling noise on a shared box only ever adds
    /// time, so the minimum is the robust estimator of true cost.
    pub best_ns: f64,
    /// Auxiliary metrics (gflops, wire bytes, simulator price, …).
    pub metrics: Vec<(String, f64)>,
}

impl Row {
    /// Looks up an auxiliary metric by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Looks up an axis coordinate by name.
    pub fn coord(&self, name: &str) -> Option<&str> {
        self.config
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// One committed `BENCH_<dimension>.json`: header plus sweep rows.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchFile {
    /// Provenance and measurement procedure.
    pub meta: RunMeta,
    /// The sweep, in measurement order.
    pub rows: Vec<Row>,
}

impl BenchFile {
    /// Canonical file name for a dimension (`BENCH_kernels.json`, …).
    pub fn file_name(dimension: &str) -> String {
        format!("BENCH_{dimension}.json")
    }

    /// Finds a row by label.
    pub fn row(&self, label: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.label == label)
    }

    /// Renders the file in the canonical byte-deterministic layout.
    pub fn to_json(&self) -> String {
        let m = &self.meta;
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema_version\": {},", SCHEMA_VERSION);
        let _ = writeln!(out, "  \"bench\": \"matrix\",");
        let _ = writeln!(out, "  \"dimension\": \"{}\",", escape(&m.dimension));
        let _ = writeln!(out, "  \"mode\": \"{}\",", escape(&m.mode));
        let _ = writeln!(out, "  \"profile\": \"{}\",", escape(&m.profile));
        let _ = writeln!(out, "  \"git_rev\": \"{}\",", escape(&m.git_rev));
        // The env member appears only when overrides were set, so files
        // measured without overrides keep their historical byte layout.
        let mut env_json = String::new();
        if !m.machine.env.is_empty() {
            env_json.push_str(", \"env\": { ");
            for (j, (k, v)) in m.machine.env.iter().enumerate() {
                let sep = if j + 1 == m.machine.env.len() {
                    ""
                } else {
                    ", "
                };
                let _ = write!(env_json, "\"{}\": \"{}\"{sep}", escape(k), escape(v));
            }
            env_json.push_str(" }");
        }
        let _ = writeln!(
            out,
            "  \"machine\": {{ \"cpu\": \"{}\", \"cores\": {}, \"os\": \"{}\", \"arch\": \"{}\"{} }},",
            escape(&m.machine.cpu),
            m.machine.cores,
            escape(&m.machine.os),
            escape(&m.machine.arch),
            env_json
        );
        let _ = writeln!(
            out,
            "  \"timing\": {{ \"warmup\": {}, \"reps\": {}, \"kernel_threads\": {} }},",
            m.warmup, m.reps, m.kernel_threads
        );
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("    { ");
            let _ = write!(out, "\"label\": \"{}\",\n      ", escape(&row.label));
            out.push_str("\"config\": { ");
            for (j, (k, v)) in row.config.iter().enumerate() {
                let sep = if j + 1 == row.config.len() { "" } else { ", " };
                let _ = write!(out, "\"{}\": \"{}\"{sep}", escape(k), escape(v));
            }
            out.push_str(" },\n      ");
            let _ = write!(out, "\"best_ns\": {},\n      ", fmt_f64(row.best_ns));
            out.push_str("\"metrics\": { ");
            for (j, (k, v)) in row.metrics.iter().enumerate() {
                let sep = if j + 1 == row.metrics.len() { "" } else { ", " };
                let _ = write!(out, "\"{}\": {}{sep}", escape(k), fmt_f64(*v));
            }
            out.push_str(" } }");
            out.push_str(if i + 1 == self.rows.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a canonical benchmark file; rejects unknown schema versions
    /// and structurally malformed documents with a human-readable error.
    pub fn parse(text: &str) -> Result<BenchFile, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        let version = doc
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("missing schema_version (a v1 ad-hoc file? re-run bench_matrix)")?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {version} (this build reads {SCHEMA_VERSION})"
            ));
        }
        let field = |key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field \"{key}\""))
        };
        let machine_obj = doc.get("machine").ok_or("missing \"machine\" object")?;
        let timing_obj = doc.get("timing").ok_or("missing \"timing\" object")?;
        let num = |obj: &Json, key: &str| -> Result<u64, String> {
            obj.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing integer field \"{key}\""))
        };
        let meta = RunMeta {
            dimension: field("dimension")?,
            mode: field("mode")?,
            profile: field("profile")?,
            git_rev: field("git_rev")?,
            machine: Machine {
                cpu: machine_obj
                    .get("cpu")
                    .and_then(Json::as_str)
                    .ok_or("missing machine.cpu")?
                    .to_string(),
                cores: num(machine_obj, "cores")?,
                os: machine_obj
                    .get("os")
                    .and_then(Json::as_str)
                    .ok_or("missing machine.os")?
                    .to_string(),
                arch: machine_obj
                    .get("arch")
                    .and_then(Json::as_str)
                    .ok_or("missing machine.arch (a pre-dispatch file? re-run bench_matrix)")?
                    .to_string(),
                // Absent in files measured without overrides.
                env: match machine_obj.get("env") {
                    None => Vec::new(),
                    Some(obj) => obj
                        .as_object()
                        .ok_or("machine.env is not an object")?
                        .iter()
                        .map(|(k, v)| {
                            v.as_str()
                                .map(|s| (k.clone(), s.to_string()))
                                .ok_or_else(|| format!("non-string machine.env value for {k}"))
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                },
            },
            warmup: num(timing_obj, "warmup")?,
            reps: num(timing_obj, "reps")?,
            kernel_threads: num(timing_obj, "kernel_threads")?,
        };
        let rows_json = doc
            .get("rows")
            .and_then(Json::as_array)
            .ok_or("missing \"rows\" array")?;
        let mut rows = Vec::with_capacity(rows_json.len());
        for (i, r) in rows_json.iter().enumerate() {
            let label = r
                .get("label")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("row {i}: missing label"))?
                .to_string();
            let config = r
                .get("config")
                .and_then(Json::as_object)
                .ok_or_else(|| format!("row {i}: missing config object"))?
                .iter()
                .map(|(k, v)| {
                    v.as_str()
                        .map(|s| (k.clone(), s.to_string()))
                        .ok_or_else(|| format!("row {i}: non-string config value for {k}"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            let best_ns = r
                .get("best_ns")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("row {i}: missing best_ns"))?;
            let metrics = r
                .get("metrics")
                .and_then(Json::as_object)
                .ok_or_else(|| format!("row {i}: missing metrics object"))?
                .iter()
                .map(|(k, v)| {
                    v.as_f64()
                        .map(|f| (k.clone(), f))
                        .ok_or_else(|| format!("row {i}: non-numeric metric {k}"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            rows.push(Row {
                label,
                config,
                best_ns,
                metrics,
            });
        }
        Ok(BenchFile { meta, rows })
    }
}

/// Loads every `BENCH_<dimension>.json` in `dir` (the trajectory file is
/// skipped), sorted by file name so downstream output is deterministic.
pub fn load_bench_dir(dir: &Path) -> Result<Vec<BenchFile>, String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            name.starts_with("BENCH_") && name.ends_with(".json") && name != TRAJECTORY_FILE
        })
        .collect();
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        files
            .push(BenchFile::parse(&text).map_err(|e| format!("parsing {}: {e}", path.display()))?);
    }
    Ok(files)
}

/// Median of a sample (empty samples yield 0.0; even lengths average the
/// two central order statistics).
pub fn median(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-finite sample"));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        0.5 * (sorted[mid - 1] + sorted[mid])
    }
}

/// Times `f`: `warmup` untimed calls, then `reps` timed calls, returning
/// the best (minimum) wall time in nanoseconds — additive scheduling
/// noise cannot make code *faster*, so the minimum estimates true cost
/// far more stably than the median on a busy box.
pub fn time_best_ns(warmup: u64, reps: u64, mut f: impl FnMut()) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = std::time::Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e9);
    }
    best
}

/// The regression-gate allowlist: dimensions or individual rows whose
/// regressions are intentional and accepted.
///
/// File format (one entry per line, `#` comments):
///
/// ```text
/// # whole dimension
/// kernels
/// # one row of a dimension
/// transport/tcp
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Allowlist {
    entries: Vec<String>,
}

impl Allowlist {
    /// Parses allowlist text (see type-level docs for the format).
    pub fn parse(text: &str) -> Allowlist {
        Allowlist {
            entries: text
                .lines()
                .map(|l| l.split('#').next().unwrap_or("").trim().to_string())
                .filter(|l| !l.is_empty())
                .collect(),
        }
    }

    /// Loads an allowlist file; a missing file is an empty allowlist.
    pub fn load(path: &Path) -> Allowlist {
        std::fs::read_to_string(path)
            .map(|t| Allowlist::parse(&t))
            .unwrap_or_default()
    }

    /// Whether `dimension` (and, if given, `row`) is allowlisted.
    pub fn covers(&self, dimension: &str, row: Option<&str>) -> bool {
        self.entries.iter().any(|e| {
            e == dimension
                || row.is_some_and(|r| {
                    e.split_once('/')
                        .is_some_and(|(d, l)| d == dimension && l == r)
                })
        })
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the allowlist is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Baseline-vs-current comparison of one row.
#[derive(Debug, Clone, PartialEq)]
pub struct RowDelta {
    /// Row label (join key).
    pub label: String,
    /// Baseline median, nanoseconds.
    pub baseline_ns: f64,
    /// Current median, nanoseconds.
    pub current_ns: f64,
    /// `current/baseline` — above 1.0 is a slowdown.
    pub ratio: f64,
    /// Whether this specific row is allowlisted.
    pub allowlisted: bool,
}

/// Gate verdict for one dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct DimVerdict {
    /// The dimension under test.
    pub dimension: String,
    /// Whether the whole dimension is allowlisted.
    pub allowlisted: bool,
    /// Median of `current/baseline` ratios over non-allowlisted rows
    /// (`None` when no rows were comparable).
    pub median_ratio: Option<f64>,
    /// Per-row deltas for rows present on both sides.
    pub rows: Vec<RowDelta>,
    /// Baseline rows missing from the current run (coverage shrank).
    pub missing: Vec<String>,
    /// Current rows absent from the baseline (new coverage; informational).
    pub added: Vec<String>,
    /// Human-readable findings (mode/profile mismatches, etc.).
    pub notes: Vec<String>,
    /// Whether this dimension passes the gate.
    pub pass: bool,
}

/// Gates one dimension: joins rows on label, medians the time ratios, and
/// fails on regression beyond `threshold_ratio` (e.g. `1.15`), missing
/// rows, or mode/profile mismatch — unless allowlisted.
pub fn gate_dimension(
    baseline: &BenchFile,
    current: &BenchFile,
    threshold_ratio: f64,
    allow: &Allowlist,
) -> DimVerdict {
    let dim = baseline.meta.dimension.clone();
    let allowlisted = allow.covers(&dim, None);
    let mut notes = Vec::new();
    let mut hard_fail = false;

    if baseline.meta.mode != current.meta.mode {
        notes.push(format!(
            "mode mismatch: baseline \"{}\" vs current \"{}\" — not comparable",
            baseline.meta.mode, current.meta.mode
        ));
        hard_fail = true;
    }
    if baseline.meta.profile != current.meta.profile {
        notes.push(format!(
            "profile mismatch: baseline \"{}\" vs current \"{}\" — not comparable",
            baseline.meta.profile, current.meta.profile
        ));
        hard_fail = true;
    }
    if baseline.meta.machine.env != current.meta.machine.env {
        notes.push(format!(
            "env-override mismatch: baseline measured with [{}], current with [{}] — knobs like OPT_KERNEL_THREADS change what is measured; rerun without overrides or refresh the baseline",
            fmt_env(&baseline.meta.machine.env),
            fmt_env(&current.meta.machine.env)
        ));
    }
    if baseline.meta.machine != current.meta.machine
        && baseline.meta.machine.env == current.meta.machine.env
    {
        notes.push(format!(
            "cross-machine comparison: baseline on \"{}\" ({} cores), current on \"{}\" ({} cores) — absolute times are noisy; refresh baselines from the gating box if this persists",
            baseline.meta.machine.cpu,
            baseline.meta.machine.cores,
            current.meta.machine.cpu,
            current.meta.machine.cores
        ));
    }

    let mut rows = Vec::new();
    let mut missing = Vec::new();
    for b in &baseline.rows {
        match current.row(&b.label) {
            Some(c) => {
                let ratio = if b.best_ns > 0.0 {
                    c.best_ns / b.best_ns
                } else {
                    1.0
                };
                rows.push(RowDelta {
                    label: b.label.clone(),
                    baseline_ns: b.best_ns,
                    current_ns: c.best_ns,
                    ratio,
                    allowlisted: allow.covers(&dim, Some(&b.label)),
                });
            }
            None => missing.push(b.label.clone()),
        }
    }
    let added = current
        .rows
        .iter()
        .filter(|c| baseline.row(&c.label).is_none())
        .map(|c| c.label.clone())
        .collect::<Vec<_>>();

    let gated: Vec<f64> = rows
        .iter()
        .filter(|r| !r.allowlisted)
        .map(|r| r.ratio)
        .collect();
    let median_ratio = (!gated.is_empty()).then(|| median(&gated));

    let missing_unallowed: Vec<&String> = missing
        .iter()
        .filter(|l| !allow.covers(&dim, Some(l)))
        .collect();
    if !missing_unallowed.is_empty() {
        notes.push(format!(
            "{} baseline row(s) missing from the current run: {}",
            missing_unallowed.len(),
            missing_unallowed
                .iter()
                .map(|s| s.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        ));
        hard_fail = true;
    }
    if let Some(m) = median_ratio {
        if m > threshold_ratio {
            notes.push(format!(
                "median slowdown {:.1}% exceeds the {:.0}% gate",
                (m - 1.0) * 100.0,
                (threshold_ratio - 1.0) * 100.0
            ));
            hard_fail = true;
        }
    }

    let pass = allowlisted || !hard_fail;
    if allowlisted && hard_fail {
        notes.push("dimension is allowlisted — failures above are accepted".to_string());
    }
    DimVerdict {
        dimension: dim,
        allowlisted,
        median_ratio,
        rows,
        missing,
        added,
        notes,
        pass,
    }
}

/// Gates every baseline dimension against the current run. A baseline
/// dimension with no current counterpart fails (unless allowlisted);
/// current-only dimensions are ignored (new coverage lands as a new
/// baseline when committed). Returns the per-dimension verdicts and the
/// overall pass flag.
pub fn gate(
    baselines: &[BenchFile],
    currents: &[BenchFile],
    threshold_ratio: f64,
    allow: &Allowlist,
) -> (Vec<DimVerdict>, bool) {
    let mut verdicts = Vec::new();
    for b in baselines {
        match currents
            .iter()
            .find(|c| c.meta.dimension == b.meta.dimension)
        {
            Some(c) => verdicts.push(gate_dimension(b, c, threshold_ratio, allow)),
            None => {
                let allowlisted = allow.covers(&b.meta.dimension, None);
                verdicts.push(DimVerdict {
                    dimension: b.meta.dimension.clone(),
                    allowlisted,
                    median_ratio: None,
                    rows: Vec::new(),
                    missing: b.rows.iter().map(|r| r.label.clone()).collect(),
                    added: Vec::new(),
                    notes: vec!["dimension absent from the current run".to_string()],
                    pass: allowlisted,
                });
            }
        }
    }
    let pass = verdicts.iter().all(|v| v.pass);
    (verdicts, pass)
}

/// One matrix run, as recorded in the committed trajectory: enough to
/// plot the repo's perf history PR over PR.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryEntry {
    /// Seconds since the Unix epoch at the end of the run.
    pub unix_time: u64,
    /// Git revision of the measured tree.
    pub git_rev: String,
    /// `"smoke"` or `"full"`.
    pub mode: String,
    /// Build profile.
    pub profile: String,
    /// CPU model of the measuring host.
    pub cpu: String,
    /// Logical cores of the measuring host.
    pub cores: u64,
    /// Per-dimension trajectory scalar: the median of the dimension's
    /// row best times, in nanoseconds (a trend line, not an absolute
    /// claim).
    pub headline: Vec<(String, f64)>,
}

/// The committed, append-only history of matrix runs
/// ([`TRAJECTORY_FILE`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trajectory {
    /// Entries in append order (oldest first).
    pub entries: Vec<TrajectoryEntry>,
}

impl Trajectory {
    /// Loads the trajectory; a missing file is an empty trajectory.
    pub fn load(path: &Path) -> Result<Trajectory, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                Trajectory::parse(&text).map_err(|e| format!("parsing {}: {e}", path.display()))
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Trajectory::default()),
            Err(e) => Err(format!("reading {}: {e}", path.display())),
        }
    }

    /// Parses the trajectory document.
    pub fn parse(text: &str) -> Result<Trajectory, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        let version = doc
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("missing schema_version")?;
        if version != SCHEMA_VERSION {
            return Err(format!("unsupported trajectory schema_version {version}"));
        }
        let entries_json = doc
            .get("entries")
            .and_then(Json::as_array)
            .ok_or("missing \"entries\" array")?;
        let mut entries = Vec::with_capacity(entries_json.len());
        for (i, e) in entries_json.iter().enumerate() {
            let s = |key: &str| -> Result<String, String> {
                e.get(key)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("entry {i}: missing \"{key}\""))
            };
            let headline = e
                .get("headline")
                .and_then(Json::as_object)
                .ok_or_else(|| format!("entry {i}: missing headline"))?
                .iter()
                .map(|(k, v)| {
                    v.as_f64()
                        .map(|f| (k.clone(), f))
                        .ok_or_else(|| format!("entry {i}: non-numeric headline {k}"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            entries.push(TrajectoryEntry {
                unix_time: e
                    .get("unix_time")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("entry {i}: missing unix_time"))?,
                git_rev: s("git_rev")?,
                mode: s("mode")?,
                profile: s("profile")?,
                cpu: s("cpu")?,
                cores: e
                    .get("cores")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("entry {i}: missing cores"))?,
                headline,
            });
        }
        Ok(Trajectory { entries })
    }

    /// Renders the trajectory in the canonical byte-deterministic layout.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema_version\": {},", SCHEMA_VERSION);
        let _ = writeln!(out, "  \"bench\": \"trajectory\",");
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str("    { ");
            let _ = write!(
                out,
                "\"unix_time\": {}, \"git_rev\": \"{}\", \"mode\": \"{}\", \"profile\": \"{}\",\n      \"cpu\": \"{}\", \"cores\": {},\n      \"headline\": {{ ",
                e.unix_time,
                escape(&e.git_rev),
                escape(&e.mode),
                escape(&e.profile),
                escape(&e.cpu),
                e.cores
            );
            for (j, (k, v)) in e.headline.iter().enumerate() {
                let sep = if j + 1 == e.headline.len() { "" } else { ", " };
                let _ = write!(out, "\"{}\": {}{sep}", escape(k), fmt_f64(*v));
            }
            out.push_str(" } }");
            out.push_str(if i + 1 == self.entries.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Builds the trajectory entry summarizing a finished matrix run.
pub fn trajectory_entry(files: &[BenchFile], unix_time: u64) -> TrajectoryEntry {
    let (mode, profile, machine, git) = files
        .first()
        .map(|f| {
            (
                f.meta.mode.clone(),
                f.meta.profile.clone(),
                f.meta.machine.clone(),
                f.meta.git_rev.clone(),
            )
        })
        .unwrap_or_else(|| {
            (
                "smoke".to_string(),
                build_profile().to_string(),
                machine(),
                git_rev(),
            )
        });
    let mut headline: Vec<(String, f64)> = files
        .iter()
        .map(|f| {
            let bests: Vec<f64> = f.rows.iter().map(|r| r.best_ns).collect();
            (f.meta.dimension.clone(), median(&bests))
        })
        .collect();
    // Trace-derived stats ride along when a dimension measured them: the
    // median over the rows carrying the metric, keyed
    // `<dimension>_<metric>` (older entries simply lack the keys).
    for f in files {
        for stat in ["bubble_frac", "comm_overlap"] {
            let vals: Vec<f64> = f.rows.iter().filter_map(|r| r.metric(stat)).collect();
            if !vals.is_empty() {
                headline.push((format!("{}_{stat}", f.meta.dimension), median(&vals)));
            }
        }
    }
    TrajectoryEntry {
        unix_time,
        git_rev: git,
        mode,
        profile,
        cpu: machine.cpu,
        cores: machine.cores,
        headline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_file(dimension: &str, times: &[(&str, f64)]) -> BenchFile {
        BenchFile {
            meta: RunMeta {
                dimension: dimension.to_string(),
                mode: "smoke".to_string(),
                profile: "release".to_string(),
                git_rev: "abc123def".to_string(),
                machine: Machine {
                    cpu: "TestCPU".to_string(),
                    cores: 4,
                    os: "linux".to_string(),
                    arch: "x86_64/scalar".to_string(),
                    env: Vec::new(),
                },
                warmup: 1,
                reps: 5,
                kernel_threads: 1,
            },
            rows: times
                .iter()
                .map(|(label, ns)| Row {
                    label: label.to_string(),
                    config: vec![("op".to_string(), label.to_string())],
                    best_ns: *ns,
                    metrics: vec![("gflops".to_string(), 1.5)],
                })
                .collect(),
        }
    }

    #[test]
    fn codec_round_trips_byte_identically() {
        let f = sample_file("kernels", &[("a", 100.0), ("b", 250.5)]);
        let text = f.to_json();
        let back = BenchFile::parse(&text).expect("parse");
        assert_eq!(back, f);
        assert_eq!(back.to_json(), text, "writer is not canonical");
    }

    #[test]
    fn machine_env_overrides_round_trip_and_stay_absent_when_empty() {
        // No overrides: the machine line keeps its historical layout.
        let plain = sample_file("kernels", &[("a", 100.0)]);
        let text = plain.to_json();
        assert!(
            !text.contains("\"env\""),
            "env member must be absent when no overrides were set"
        );

        // Overrides: recorded inside the machine object and parsed back.
        let mut tuned = plain.clone();
        tuned.meta.machine.env = vec![
            ("OPT_KERNEL_THREADS".to_string(), "4".to_string()),
            ("OPT_NET_TIMEOUT_MS".to_string(), "500".to_string()),
        ];
        let text = tuned.to_json();
        assert!(text.contains("\"env\": { \"OPT_KERNEL_THREADS\": \"4\""));
        let back = BenchFile::parse(&text).expect("parse");
        assert_eq!(back, tuned);
        assert_eq!(back.to_json(), text, "writer is not canonical with env");
    }

    #[test]
    fn gate_notes_env_override_mismatch_without_failing() {
        let base = sample_file("kernels", &[("a", 100.0)]);
        let mut cur = base.clone();
        cur.meta.machine.env = vec![("OPT_KERNEL_THREADS".to_string(), "4".to_string())];
        let v = gate_dimension(&base, &cur, 1.15, &Allowlist::default());
        assert!(v.pass, "env divergence warns, it does not fail the gate");
        assert!(
            v.notes.iter().any(|n| n.contains("env-override mismatch")
                && n.contains("OPT_KERNEL_THREADS=4")
                && n.contains("none")),
            "notes: {:?}",
            v.notes
        );
    }

    #[test]
    fn trajectory_entry_carries_trace_stats_when_measured() {
        let mut files = vec![sample_file("parallelism", &[("pp2xdp1", 100.0)])];
        files[0].rows[0]
            .metrics
            .push(("bubble_frac".to_string(), 0.25));
        files[0].rows[0]
            .metrics
            .push(("comm_overlap".to_string(), 0.5));
        let e = trajectory_entry(&files, 7);
        assert!(e
            .headline
            .contains(&("parallelism_bubble_frac".to_string(), 0.25)));
        assert!(e
            .headline
            .contains(&("parallelism_comm_overlap".to_string(), 0.5)));
        // A file without the metrics contributes no stat keys.
        let e = trajectory_entry(&[sample_file("kernels", &[("a", 1.0)])], 7);
        assert!(e.headline.iter().all(|(k, _)| !k.contains("bubble")));
    }

    #[test]
    fn parse_rejects_wrong_schema_version() {
        let text = sample_file("x", &[("a", 1.0)])
            .to_json()
            .replace("\"schema_version\": 2", "\"schema_version\": 1");
        let err = BenchFile::parse(&text).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
    }

    #[test]
    fn median_handles_even_and_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn gate_passes_identical_runs() {
        let base = sample_file("kernels", &[("a", 100.0), ("b", 200.0)]);
        let v = gate_dimension(&base, &base.clone(), 1.15, &Allowlist::default());
        assert!(v.pass);
        assert_eq!(v.median_ratio, Some(1.0));
    }

    #[test]
    fn gate_trips_on_median_regression() {
        let base = sample_file("kernels", &[("a", 100.0), ("b", 200.0), ("c", 300.0)]);
        let cur = sample_file("kernels", &[("a", 130.0), ("b", 260.0), ("c", 390.0)]);
        let v = gate_dimension(&base, &cur, 1.15, &Allowlist::default());
        assert!(!v.pass);
        assert!(v.median_ratio.unwrap() > 1.29);
    }

    #[test]
    fn gate_is_robust_to_one_noisy_row() {
        // One row 3x slower but the median of three ratios stays at 1.0:
        // the gate is a median, not a max.
        let base = sample_file("kernels", &[("a", 100.0), ("b", 200.0), ("c", 300.0)]);
        let cur = sample_file("kernels", &[("a", 300.0), ("b", 200.0), ("c", 300.0)]);
        let v = gate_dimension(&base, &cur, 1.15, &Allowlist::default());
        assert!(v.pass);
    }

    #[test]
    fn allowlist_covers_dimension_and_row() {
        let allow = Allowlist::parse("# comment\nkernels\ntransport/tcp  # note\n");
        assert_eq!(allow.len(), 2);
        assert!(allow.covers("kernels", None));
        assert!(allow.covers("kernels", Some("anything")));
        assert!(allow.covers("transport", Some("tcp")));
        assert!(!allow.covers("transport", None));
        assert!(!allow.covers("transport", Some("local")));
    }

    #[test]
    fn allowlisted_dimension_passes_despite_regression() {
        let base = sample_file("kernels", &[("a", 100.0)]);
        let cur = sample_file("kernels", &[("a", 500.0)]);
        let allow = Allowlist::parse("kernels");
        let v = gate_dimension(&base, &cur, 1.15, &allow);
        assert!(v.pass && v.allowlisted);
    }

    #[test]
    fn missing_rows_fail_unless_allowlisted() {
        let base = sample_file("kernels", &[("a", 100.0), ("b", 200.0)]);
        let cur = sample_file("kernels", &[("a", 100.0)]);
        let v = gate_dimension(&base, &cur, 1.15, &Allowlist::default());
        assert!(!v.pass);
        assert_eq!(v.missing, vec!["b".to_string()]);
        let v = gate_dimension(&base, &cur, 1.15, &Allowlist::parse("kernels/b"));
        assert!(v.pass);
    }

    #[test]
    fn mode_and_profile_mismatch_fail() {
        let base = sample_file("kernels", &[("a", 100.0)]);
        let mut cur = base.clone();
        cur.meta.mode = "full".to_string();
        assert!(!gate_dimension(&base, &cur, 1.15, &Allowlist::default()).pass);
        let mut cur = base.clone();
        cur.meta.profile = "debug".to_string();
        assert!(!gate_dimension(&base, &cur, 1.15, &Allowlist::default()).pass);
    }

    #[test]
    fn whole_gate_fails_on_absent_dimension() {
        let base = vec![sample_file("kernels", &[("a", 1.0)])];
        let (verdicts, pass) = gate(&base, &[], 1.15, &Allowlist::default());
        assert!(!pass);
        assert_eq!(verdicts.len(), 1);
        let (_, pass) = gate(&base, &[], 1.15, &Allowlist::parse("kernels"));
        assert!(pass);
    }

    #[test]
    fn trajectory_codec_round_trips() {
        let t = Trajectory {
            entries: vec![TrajectoryEntry {
                unix_time: 1_700_000_000,
                git_rev: "abc123def".to_string(),
                mode: "smoke".to_string(),
                profile: "release".to_string(),
                cpu: "TestCPU".to_string(),
                cores: 4,
                headline: vec![("kernels".to_string(), 123.5)],
            }],
        };
        let text = t.to_json();
        let back = Trajectory::parse(&text).expect("parse");
        assert_eq!(back, t);
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn trajectory_entry_summarizes_run() {
        let files = vec![
            sample_file("kernels", &[("a", 100.0), ("b", 300.0)]),
            sample_file("model", &[("x", 50.0)]),
        ];
        let e = trajectory_entry(&files, 42);
        assert_eq!(e.unix_time, 42);
        assert_eq!(
            e.headline,
            vec![("kernels".to_string(), 200.0), ("model".to_string(), 50.0)]
        );
    }

    #[test]
    fn machine_fingerprint_is_populated() {
        let m = machine();
        assert!(m.cores >= 1);
        assert!(!m.os.is_empty());
        // "<target>/<path>" from the kernel dispatcher, e.g. "x86_64/avx2".
        assert!(m.arch.contains('/'), "arch: {}", m.arch);
    }
}
