//! The acceptance gate of the transport refactor: a loopback TCP world of
//! **real `opt-worker` OS processes** must reproduce the single-process
//! in-process run bit for bit — through training, a `SIGKILL`ed worker
//! process, and a per-rank self-restore from a TCP shard store.
//!
//! `CARGO_BIN_EXE_opt_worker` points at the compiled worker binary; cargo
//! builds it before running this test.

use opt_ckpt::{shard_file_name, FaultPlan, ShardManifest, MANIFEST_FILE};
use opt_net::{MemShardStore, ShardStore, ShardStoreServer, TcpShardStore};
use opt_trace::Trace;
use optimus_cc::{
    run_with_faults_sharded, run_with_faults_sharded_proc, ProcFaultOptions, ProcOptions,
    QualityConfig, TraceMode, Trainer, TrainerConfig, WorldError,
};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_opt_worker"))
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("opt-multiproc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Losses must agree bit-for-bit, NaN pattern included.
fn assert_bit_identical(a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "loss curves have different lengths");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        if x.is_nan() {
            assert!(y.is_nan(), "iteration {i}: {x} vs {y}");
        } else {
            assert_eq!(x.to_bits(), y.to_bits(), "iteration {i}: {x} vs {y}");
        }
    }
}

#[test]
fn tcp_process_world_matches_in_process_run_bit_for_bit() {
    let cfg = TrainerConfig::tiny_test(QualityConfig::cb_fe_sc(), 6);

    // Reference: the ordinary single-process, thread-based trainer.
    let mut reference = Trainer::launch(cfg.clone());
    let ref_report = reference.train();
    let ref_traffic = ref_report.traffic;
    reference.shutdown();

    // Same run, but every rank is a real OS process over loopback TCP.
    let store: Arc<dyn ShardStore> = Arc::new(MemShardStore::new());
    let server = ShardStoreServer::spawn(store, "127.0.0.1:0").expect("store server");
    let mut proc_world = Trainer::launch_processes(
        cfg,
        ProcOptions {
            worker_bin: worker_bin(),
            store_addr: server.addr(),
            scratch_dir: scratch("plain"),
        },
    )
    .expect("process world");
    let proc_report = proc_world.train().expect("proc train");
    proc_world.shutdown().expect("shutdown");

    assert_bit_identical(&ref_report.train_loss, &proc_report.train_loss);
    assert_eq!(ref_report.val_points.len(), proc_report.val_points.len());
    for (a, b) in ref_report.val_points.iter().zip(&proc_report.val_points) {
        assert_eq!(a.iter, b.iter);
        assert_eq!(a.loss.to_bits(), b.loss.to_bits(), "val loss at {}", a.iter);
    }
    assert_eq!(ref_traffic, proc_report.traffic, "wire accounting diverged");
}

#[test]
fn killed_process_self_restores_from_tcp_store_bit_for_bit() {
    // The headline scenario: train, publish shards over TCP, SIGKILL one
    // worker process, relaunch, self-restore every rank from the TCP
    // store, finish — and match the in-process sharded faulted run
    // exactly (losses AND ledger deltas).
    let cfg = TrainerConfig::tiny_test(QualityConfig::cb_fe_sc(), 8);
    let plan = FaultPlan::new(1, 6, 3); // kill rank 1 at iter 6, shards at 3 + 6

    let store: Arc<dyn ShardStore> = Arc::new(MemShardStore::new());
    let in_process = run_with_faults_sharded(&cfg, &plan, &store).expect("in-process run");

    // Keep the shard directory around: CI archives the manifest from the
    // fixed workspace-root path below (tests run with the package dir as
    // CWD, so anchor on the manifest dir).
    let store_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target")
        .join("multiproc-smoke");
    let _ = std::fs::remove_dir_all(&store_dir);
    let outcome = run_with_faults_sharded_proc(
        &cfg,
        &plan,
        &ProcFaultOptions {
            worker_bin: worker_bin(),
            scratch_dir: scratch("faulted"),
            store_dir: Some(store_dir.clone()),
        },
    )
    .expect("multi-process faulted run");

    assert_eq!(outcome.restarts, in_process.restarts);
    assert_eq!(outcome.snapshots_taken, in_process.snapshots_taken);
    assert_eq!(outcome.lost_iters, in_process.lost_iters);
    assert_eq!(outcome.resumed_from, in_process.resumed_from);
    assert_bit_identical(&in_process.report.train_loss, &outcome.report.train_loss);
    assert_eq!(
        in_process.report.traffic, outcome.report.traffic,
        "post-restore ledger deltas diverged"
    );

    // The store the processes checkpointed through holds a valid
    // manifest naming one shard per rank.
    let manifest = ShardManifest::load(store_dir.join(MANIFEST_FILE)).expect("manifest on disk");
    assert_eq!(manifest.world_size(), cfg.pp * cfg.dp);
    for entry in &manifest.shards {
        assert!(
            store_dir.join(&entry.name).exists(),
            "shard {} missing",
            entry.name
        );
    }
}

/// Spans-mode run of a real TCP process world: returns the merged trace.
fn traced_proc_run(cfg: &TrainerConfig, tag: &str, iters: u64) -> Trace {
    let store: Arc<dyn ShardStore> = Arc::new(MemShardStore::new());
    let server = ShardStoreServer::spawn(store, "127.0.0.1:0").expect("store server");
    let mut world = Trainer::launch_processes_traced(
        cfg.clone(),
        ProcOptions {
            worker_bin: worker_bin(),
            store_addr: server.addr(),
            scratch_dir: scratch(tag),
        },
        TraceMode::Spans,
    )
    .expect("traced process world");
    world.train_more(iters).expect("traced train");
    let trace = world
        .take_trace()
        .expect("fetching traces")
        .expect("spans mode is enabled");
    world.shutdown().expect("shutdown");
    trace
}

#[test]
fn traced_process_world_exports_deterministic_chrome_trace() {
    // The observability acceptance gate: a 2x2 pp×dp world of real OS
    // processes under OPT_TRACE=spans yields one merged trace whose
    // *structure* (span kinds, nesting, ordering, byte counts) and
    // bubble-replay numbers are identical across reruns AND identical to
    // the in-process LocalTransport world — only wall-clock timestamps
    // may differ.
    let cfg = TrainerConfig::tiny_test(QualityConfig::cb_fe_sc(), 4);
    let iters = 4;

    let mut in_proc = Trainer::launch_with_trace(cfg.clone(), TraceMode::Spans);
    in_proc.train_more(iters);
    let local_trace = in_proc.take_trace().expect("spans mode is enabled");
    in_proc.shutdown();

    let proc_trace = traced_proc_run(&cfg, "trace-a", iters);
    let rerun_trace = traced_proc_run(&cfg, "trace-b", iters);

    assert_eq!(local_trace.buffers.len(), cfg.pp * cfg.dp);
    assert!(local_trace.compute_span_count() > 0, "no compute spans");
    assert_eq!(
        proc_trace.structural_digest(),
        rerun_trace.structural_digest(),
        "process-world trace structure is not reproducible"
    );
    assert_eq!(
        local_trace.structural_digest(),
        proc_trace.structural_digest(),
        "LocalTransport and TCP worlds recorded different span trees"
    );

    // The bubble analysis is a pure function of the structure, so the
    // per-rank fractions are bit-equal across backends and reruns.
    let bubbles = |t: &Trace| -> Vec<f64> {
        opt_trace::analyze(t, 0)
            .ranks
            .iter()
            .map(|r| r.bubble_fraction)
            .collect()
    };
    assert_eq!(bubbles(&local_trace), bubbles(&proc_trace));
    assert_eq!(bubbles(&proc_trace), bubbles(&rerun_trace));

    // Export the merged trace where CI archives it and trace_report
    // asserts on it (a directory of its own: the fault-tolerance test
    // clears target/multiproc-smoke at will).
    let out_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target")
        .join("multiproc-trace");
    std::fs::create_dir_all(&out_dir).expect("trace out dir");
    let json = proc_trace.to_chrome_json();
    assert!(json.contains("\"traceEvents\""));
    std::fs::write(out_dir.join("trace.json"), json).expect("writing trace.json");
}

#[test]
fn sigkilled_rank_rejoins_with_survivors_untouched_bit_for_bit() {
    // The elastic-rejoin acceptance gate (and the CI chaos smoke job,
    // which runs it under OPT_TRACE=spans): SIGKILL one rank of a 2x2 TCP
    // world mid-training, let the coordinator's heartbeat detector notice
    // (no survivor recv timeout), splice a replacement into the live
    // mesh, and finish — survivors keep their PIDs and the final losses
    // and post-rejoin wire traffic are bit-identical to an uninterrupted
    // run.
    let cfg = TrainerConfig::tiny_test(QualityConfig::cb_fe_sc(), 8);

    // Uninterrupted in-process reference, snapshotting the ledger at the
    // same segment boundary the faulted world rejoins at.
    let mut reference = Trainer::launch(cfg.clone());
    reference.train_more(4);
    let ref_mid = reference.traffic();
    reference.train_more(4);
    let ref_tail = reference.traffic().delta_since(&ref_mid);
    let ref_report = reference.report();
    reference.shutdown();

    let store: Arc<dyn ShardStore> = Arc::new(MemShardStore::new());
    let server = ShardStoreServer::spawn(store, "127.0.0.1:0").expect("store server");
    let mut world = Trainer::launch_processes_traced(
        cfg,
        ProcOptions {
            worker_bin: worker_bin(),
            store_addr: server.addr(),
            scratch_dir: scratch("rejoin"),
        },
        TraceMode::from_env(),
    )
    .expect("process world");

    world.train_more(4).expect("train to snapshot");
    // False-positive guard: every rank is alive (if slow), so even after
    // a long gap without polling, draining the queued beats flags nobody.
    assert_eq!(world.await_failure(Duration::from_millis(50)), None);

    world.save_sharded().expect("publish shards"); // iter 4
    let pids_before = world.worker_pids();
    world.train_more(2).expect("train past snapshot"); // iters 4, 5

    world.kill_rank(0).expect("SIGKILL rank 0");
    let dead = world
        .await_failure(Duration::from_secs(60))
        .expect("heartbeat detector flags the SIGKILLed rank");
    assert_eq!(dead, 0);
    assert_eq!(world.rejoin_rank(0).expect("rejoin"), 4);

    // Only the dead rank was re-execed; every survivor kept its PID.
    let pids_after = world.worker_pids();
    assert_ne!(pids_before[0], pids_after[0], "dead rank kept its process");
    assert_eq!(
        pids_before[1..],
        pids_after[1..],
        "a survivor was relaunched"
    );

    // Replay 4..6 and train on to 8: the post-rejoin traffic segment
    // matches the reference's iterations 4..8 lane for lane.
    let mid = world.traffic().expect("traffic");
    world.train_more(4).expect("replay and finish");
    let tail = world.traffic().expect("traffic").delta_since(&mid);
    assert_eq!(ref_tail, tail, "post-rejoin wire traffic diverged");

    let report = world.report().expect("report");
    assert!(
        report.train_loss.iter().all(|l| l.is_finite()),
        "rejoin left holes in the loss curve"
    );
    assert_bit_identical(&ref_report.train_loss, &report.train_loss);

    // Double-kill the same rank: a second detect/quiesce/rejoin cycle
    // against the same survivors.
    world.save_sharded().expect("publish shards again"); // iter 8
    world.kill_rank(0).expect("SIGKILL rank 0 again");
    assert_eq!(
        world.await_failure(Duration::from_secs(60)),
        Some(0),
        "second failure went undetected"
    );
    assert_eq!(world.rejoin_rank(0).expect("second rejoin"), 8);
    let pids_final = world.worker_pids();
    assert_eq!(
        pids_after[1..],
        pids_final[1..],
        "survivors must outlive the second rejoin"
    );
    let report = world.report().expect("report after second rejoin");
    assert_bit_identical(&ref_report.train_loss, &report.train_loss);

    // Under OPT_TRACE=spans (the CI chaos job) the coordinator recorded
    // the detect/rejoin/restore spans; export them for the artifact.
    if let Some(trace) = world.take_trace().expect("fetching traces") {
        let json = trace.to_chrome_json();
        assert!(json.contains("detect"), "recovery spans missing from trace");
        assert!(json.contains("rejoin"), "recovery spans missing from trace");
        let out_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target")
            .join("chaos-trace");
        std::fs::create_dir_all(&out_dir).expect("trace out dir");
        std::fs::write(out_dir.join("trace.json"), json).expect("writing trace.json");
    }
    world.shutdown().expect("shutdown");
}

#[test]
fn rejoin_without_a_snapshot_is_typed_unrecoverable() {
    // Graceful degradation: a death before any checkpoint was committed
    // cannot be healed by rejoin — the caller gets a typed error, never a
    // hung recv timeout.
    let cfg = TrainerConfig::tiny_test(QualityConfig::cb(), 4);
    let store: Arc<dyn ShardStore> = Arc::new(MemShardStore::new());
    let server = ShardStoreServer::spawn(store, "127.0.0.1:0").expect("store server");
    let mut world = Trainer::launch_processes(
        cfg,
        ProcOptions {
            worker_bin: worker_bin(),
            store_addr: server.addr(),
            scratch_dir: scratch("unrecoverable"),
        },
    )
    .expect("process world");
    world.train_more(1).expect("train");
    world.kill_rank(1).expect("kill");
    let err = world.rejoin_rank(1).expect_err("nothing to restore from");
    assert!(
        matches!(err, WorldError::Unrecoverable { .. }),
        "wrong escalation: {err}"
    );
    assert!(err.to_string().contains("no committed checkpoint manifest"));
    world.abort();
}

#[test]
fn rejoin_survives_interrupted_publish_and_refuses_corrupt_shards() {
    let cfg = TrainerConfig::tiny_test(QualityConfig::cb_fe_sc(), 8);
    let store: Arc<dyn ShardStore> = Arc::new(MemShardStore::new());
    let server = ShardStoreServer::spawn(Arc::clone(&store), "127.0.0.1:0").expect("store server");
    let mut world = Trainer::launch_processes(
        cfg.clone(),
        ProcOptions {
            worker_bin: worker_bin(),
            store_addr: server.addr(),
            scratch_dir: scratch("matrix"),
        },
    )
    .expect("process world");
    world.train_more(2).expect("train");
    let manifest = world.save_sharded().expect("save"); // iter 2
    world.train_more(2).expect("train on"); // iters 2, 3

    // A save that died between shard upload and manifest commit leaves
    // orphan blobs in the store; the previous checkpoint must stay
    // restorable through a rejoin.
    for entry in &manifest.shards {
        let half_published = shard_file_name(entry.stage, entry.dp, 4);
        store
            .put(&half_published, b"torn mid-upload")
            .expect("orphan blob");
    }
    world.kill_rank(0).expect("kill during interrupted publish");
    assert_eq!(
        world.rejoin_rank(0).expect("previous manifest restorable"),
        2
    );
    world.train_more(1).expect("world is live after rejoin");

    // A corrupted shard is refused by the replacement (digest validation)
    // and the world escalates with a typed error instead of hanging.
    let name = shard_file_name(0, 0, 2); // rank 0 = (stage 0, dp 0)
    let mut blob = store.get(&name).expect("fetch shard");
    let mid = blob.len() / 2;
    blob[mid] ^= 0x40;
    store.put(&name, &blob).expect("corrupt the shard in place");
    world.kill_rank(0).expect("kill again");
    let err = world.rejoin_rank(0).expect_err("corrupt shard accepted");
    assert!(
        matches!(err, WorldError::Proc(_)),
        "wrong escalation: {err}"
    );
    world.abort();
}

#[test]
fn process_world_save_and_monitoring_roundtrip() {
    // save_sharded over TCP produces a manifest any client can read back;
    // dead_ranks reports a SIGKILLed process; abort tears the world down.
    let cfg = TrainerConfig::tiny_test(QualityConfig::cb(), 4);
    let store: Arc<dyn ShardStore> = Arc::new(MemShardStore::new());
    let server = ShardStoreServer::spawn(Arc::clone(&store), "127.0.0.1:0").expect("store server");
    let mut world = Trainer::launch_processes(
        cfg.clone(),
        ProcOptions {
            worker_bin: worker_bin(),
            store_addr: server.addr(),
            scratch_dir: scratch("save"),
        },
    )
    .expect("process world");
    world.train_more(2).expect("train");
    let manifest = world.save_sharded().expect("save");
    assert_eq!(manifest.meta.iter, 2);
    assert_eq!(manifest.world_size(), cfg.pp * cfg.dp);

    // Every shard the manifest names is fetchable and verifies, through
    // a fresh TCP client.
    let client = TcpShardStore::connect(server.addr());
    for entry in &manifest.shards {
        let blob = client.get(&entry.name).expect("fetch shard");
        entry.verify(&blob).expect("shard verifies");
    }

    assert!(world.dead_ranks().is_empty());
    world.kill_rank(0).expect("kill");
    assert_eq!(world.dead_ranks(), vec![0]);
    world.abort();
}
