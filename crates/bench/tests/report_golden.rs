//! Golden-file tests for the benchmark-report generator, plus end-to-end
//! regression-gate behaviour on committed fixtures.
//!
//! The fixed inputs live in `tests/fixtures/{base,regressed}/`; the
//! expected markdown lives next to them as `golden_*.md`. The renderer
//! must be a *byte-identical* function of the JSON records — any
//! formatting drift fails here before it can dirty the committed
//! `reports/`. To re-bless after an intentional format change:
//!
//! ```text
//! BLESS=1 cargo test -p opt-bench --test report_golden
//! ```

use opt_bench::matrix::{gate, load_bench_dir, Allowlist, Trajectory};
use opt_bench::report::{
    render_gate, render_summary, render_trajectory, splice_readme, README_BEGIN, README_END,
};
use std::path::{Path, PathBuf};

fn fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Compares `actual` against the committed golden file, or rewrites the
/// golden when `BLESS=1` is set.
fn assert_golden(name: &str, actual: &str) {
    let path = fixtures().join(name);
    if std::env::var("BLESS").is_ok_and(|v| v == "1") {
        std::fs::write(&path, actual).expect("blessing golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {path:?} ({e}); run with BLESS=1 to create"));
    assert_eq!(
        actual, expected,
        "{name} drifted from the golden; if intentional, re-bless with BLESS=1"
    );
}

#[test]
fn summary_matches_golden_byte_for_byte() {
    let files = load_bench_dir(&fixtures().join("base")).expect("fixtures parse");
    assert_eq!(files.len(), 2, "alpha + beta");
    assert_golden("golden_summary.md", &render_summary(&files));
}

#[test]
fn trajectory_matches_golden_byte_for_byte() {
    let t = Trajectory::load(&fixtures().join("base/BENCH_trajectory.json")).expect("parses");
    assert_golden("golden_trajectory.md", &render_trajectory(&t));
}

#[test]
fn readme_splice_is_idempotent_and_matches_golden() {
    let files = load_bench_dir(&fixtures().join("base")).expect("fixtures parse");
    let readme = format!("# Repo\n\nIntro.\n\n{README_BEGIN}\nstale\n{README_END}\n\nOutro.\n");
    let once = splice_readme(&readme, &files).expect("markers present");
    let twice = splice_readme(&once, &files).expect("markers survive");
    assert_eq!(once, twice, "splice must be idempotent");
    assert!(once.starts_with("# Repo\n\nIntro.\n\n"));
    assert!(once.ends_with("\n\nOutro.\n"));
    assert_golden("golden_readme.md", &once);
}

#[test]
fn rendering_same_inputs_twice_is_byte_identical() {
    let files = load_bench_dir(&fixtures().join("base")).expect("fixtures parse");
    assert_eq!(render_summary(&files), render_summary(&files));
    // And the codec round-trips the fixtures canonically: parse -> emit
    // -> parse yields the same in-memory value.
    for f in &files {
        let reparsed = opt_bench::matrix::BenchFile::parse(&f.to_json()).expect("round trip");
        assert_eq!(&reparsed, f);
    }
}

#[test]
fn gate_passes_on_identical_run() {
    let base = load_bench_dir(&fixtures().join("base")).expect("base");
    let (verdicts, pass) = gate(&base, &base, 1.15, &Allowlist::parse(""));
    assert!(pass, "identical run must pass: {verdicts:?}");
    assert_eq!(verdicts.len(), 2);
}

#[test]
fn gate_trips_on_regressed_fixture() {
    let base = load_bench_dir(&fixtures().join("base")).expect("base");
    let cur = load_bench_dir(&fixtures().join("regressed")).expect("regressed");
    let (verdicts, pass) = gate(&base, &cur, 1.15, &Allowlist::parse(""));
    assert!(!pass, "alpha is 50% slower; the gate must trip");
    let alpha = verdicts.iter().find(|v| v.dimension == "alpha").unwrap();
    assert!(!alpha.pass);
    let ratio = alpha.median_ratio.expect("comparable rows");
    assert!((ratio - 1.5).abs() < 1e-9, "median ratio 1.5, got {ratio}");
    // beta moved ~1%, well under the threshold.
    assert!(
        verdicts
            .iter()
            .find(|v| v.dimension == "beta")
            .unwrap()
            .pass
    );
    // The human-readable verdict names the tripped dimension.
    let text = render_gate(&verdicts, 1.15);
    assert!(text.contains("[FAIL] alpha"), "{text}");
    assert!(text.contains("overall: FAIL"), "{text}");
}

#[test]
fn allowlisted_regression_passes() {
    let base = load_bench_dir(&fixtures().join("base")).expect("base");
    let cur = load_bench_dir(&fixtures().join("regressed")).expect("regressed");
    let allow = Allowlist::parse("# temporary: alpha kernels reworked in #42\nalpha\n");
    let (verdicts, pass) = gate(&base, &cur, 1.15, &allow);
    assert!(
        pass,
        "dimension-level allowlist must override: {verdicts:?}"
    );
    assert!(
        verdicts
            .iter()
            .find(|v| v.dimension == "alpha")
            .unwrap()
            .allowlisted
    );
}

#[test]
fn row_level_allowlist_covers_only_that_row() {
    let base = load_bench_dir(&fixtures().join("base")).expect("base");
    let cur = load_bench_dir(&fixtures().join("regressed")).expect("regressed");
    // Allowlisting two of four alpha rows leaves the other two regressed
    // rows in the median, which still trips.
    let allow = Allowlist::parse("alpha/gemm/64x64/naive\nalpha/gemm/64x64/blocked\n");
    let (_, pass) = gate(&base, &cur, 1.15, &allow);
    assert!(!pass);
    // Allowlisting all four passes the dimension.
    let allow_all = Allowlist::parse(
        "alpha/gemm/64x64/naive\nalpha/gemm/64x64/blocked\n\
         alpha/ortho/64x8/naive\nalpha/ortho/64x8/blocked\n",
    );
    let (verdicts, pass) = gate(&base, &cur, 1.15, &allow_all);
    assert!(pass, "{verdicts:?}");
}

#[test]
fn committed_repo_baselines_parse_and_render() {
    // The real committed records at the repo root must always be
    // readable by the current schema and renderable without panicking.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = load_bench_dir(&root).expect("committed BENCH_*.json parse");
    if files.is_empty() {
        return; // fresh checkout before the first matrix run
    }
    let md = render_summary(&files);
    assert!(md.contains("Generated file"), "banner present");
    let t = Trajectory::load(&root.join(opt_bench::matrix::TRAJECTORY_FILE)).expect("trajectory");
    if !t.entries.is_empty() {
        render_trajectory(&t);
    }
}
