//! Checkpoint subsystem errors.

use opt_tensor::PersistError;
use std::fmt;
use std::io;

/// Everything that can go wrong saving, loading, or applying a snapshot.
#[derive(Debug)]
pub enum CkptError {
    /// Filesystem I/O failure.
    Io(io::Error),
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The snapshot was written by an unknown format version.
    UnsupportedVersion(u32),
    /// The file is shorter than its header claims (e.g. a partially
    /// written snapshot after a crash mid-save).
    Truncated {
        /// Bytes the header claims the snapshot occupies.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// The body checksum does not match — bit rot or tampering.
    ChecksumMismatch {
        /// Checksum recorded in the file.
        stored: u64,
        /// Checksum recomputed over the body.
        computed: u64,
    },
    /// The body failed structural decoding.
    Decode(PersistError),
    /// The snapshot's world shape does not match the restoring trainer.
    WorldMismatch {
        /// `(pp, dp)` recorded in the snapshot.
        snapshot: (usize, usize),
        /// `(pp, dp)` of the restoring configuration.
        config: (usize, usize),
    },
    /// The snapshot was taken under a different training configuration
    /// (fingerprint over every state-affecting config field).
    ConfigMismatch {
        /// Fingerprint recorded in the snapshot.
        snapshot: u64,
        /// Fingerprint of the restoring configuration.
        config: u64,
    },
    /// A `(stage, dp)` rank section is missing or duplicated.
    MissingRank {
        /// Pipeline stage of the missing section.
        stage: usize,
        /// Data-parallel rank of the missing section.
        dp: usize,
    },
    /// A shard-store operation (rendezvous or fetch) failed. Carries the
    /// backend's description; the store lives in `opt-net` and this crate
    /// cannot name its error type without inverting the dependency DAG.
    Store {
        /// What the store reported.
        what: String,
    },
    /// A fetched shard decodes cleanly but disagrees with the manifest
    /// entry that named it (wrong rank identity or wrong iteration).
    ShardMismatch {
        /// Pipeline stage of the offending shard.
        stage: usize,
        /// Data-parallel rank of the offending shard.
        dp: usize,
        /// Description of the disagreement.
        what: &'static str,
    },
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            CkptError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            CkptError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot format version {v}")
            }
            CkptError::Truncated { expected, actual } => {
                write!(
                    f,
                    "truncated snapshot: expected {expected} bytes, found {actual}"
                )
            }
            CkptError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            CkptError::Decode(e) => write!(f, "snapshot decode error: {e}"),
            CkptError::WorldMismatch { snapshot, config } => write!(
                f,
                "snapshot world (pp={}, dp={}) does not match config (pp={}, dp={})",
                snapshot.0, snapshot.1, config.0, config.1
            ),
            CkptError::ConfigMismatch { snapshot, config } => write!(
                f,
                "snapshot config fingerprint {snapshot:#018x} does not match {config:#018x}"
            ),
            CkptError::MissingRank { stage, dp } => {
                write!(
                    f,
                    "snapshot is missing the section for stage {stage}, dp rank {dp}"
                )
            }
            CkptError::Store { what } => write!(f, "shard store error: {what}"),
            CkptError::ShardMismatch { stage, dp, what } => {
                write!(f, "shard for stage {stage}, dp rank {dp}: {what}")
            }
        }
    }
}

impl std::error::Error for CkptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CkptError::Io(e) => Some(e),
            CkptError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CkptError {
    fn from(e: io::Error) -> Self {
        CkptError::Io(e)
    }
}

impl From<PersistError> for CkptError {
    fn from(e: PersistError) -> Self {
        CkptError::Decode(e)
    }
}
