//! Fault-injection plans shared by the numerical trainer and the
//! discrete-event simulator.

/// A scripted failure: kill worker `kill_rank` once `kill_at_iter`
/// iterations have completed, then elastically restart from the newest
/// snapshot (or from scratch if none was taken yet).
///
/// The same plan drives both substrates: `optimus-cc`'s
/// `run_with_faults` replays it against real worker threads, `opt-sim`'s
/// `simulate_with_faults` prices it in wall-clock seconds.
///
/// # Example
///
/// ```
/// use opt_ckpt::FaultPlan;
///
/// let plan = FaultPlan::new(2, 17, 5);
/// assert_eq!(plan.last_snapshot_before(17), Some(15));
/// assert_eq!(plan.lost_iters(17), 2); // iters 16..17 must be replayed
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Global rank of the worker that dies. In the in-process trainer a
    /// single worker death tears down the whole job (an all-reduce world
    /// cannot make progress minus one member) — which is exactly what
    /// happens to a real 3D-parallel job when one GPU drops out.
    pub kill_rank: usize,
    /// Failure strikes after this many completed iterations.
    pub kill_at_iter: u64,
    /// Snapshot cadence in iterations (`0` = never snapshot).
    pub snapshot_every: u64,
}

impl FaultPlan {
    /// Creates a plan.
    pub fn new(kill_rank: usize, kill_at_iter: u64, snapshot_every: u64) -> Self {
        Self {
            kill_rank,
            kill_at_iter,
            snapshot_every,
        }
    }

    /// Whether a snapshot is due after `completed` iterations.
    pub fn snapshot_due(&self, completed: u64) -> bool {
        self.snapshot_every > 0 && completed > 0 && completed.is_multiple_of(self.snapshot_every)
    }

    /// The newest snapshot iteration at or before `iter`, if any.
    pub fn last_snapshot_before(&self, iter: u64) -> Option<u64> {
        if self.snapshot_every == 0 || iter < self.snapshot_every {
            return None;
        }
        Some(iter - iter % self.snapshot_every)
    }

    /// Iterations of work lost (to be replayed) when failing after `at`
    /// completed iterations: everything since the newest snapshot.
    pub fn lost_iters(&self, at: u64) -> u64 {
        at - self.last_snapshot_before(at).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_cadence() {
        let plan = FaultPlan::new(0, 100, 10);
        assert!(!plan.snapshot_due(0));
        assert!(plan.snapshot_due(10));
        assert!(!plan.snapshot_due(11));
        assert!(plan.snapshot_due(20));
        let never = FaultPlan::new(0, 100, 0);
        assert!(!never.snapshot_due(10));
    }

    #[test]
    fn last_snapshot_and_lost_work() {
        let plan = FaultPlan::new(1, 23, 10);
        assert_eq!(plan.last_snapshot_before(23), Some(20));
        assert_eq!(plan.last_snapshot_before(20), Some(20));
        assert_eq!(plan.last_snapshot_before(9), None);
        assert_eq!(plan.lost_iters(23), 3);
        assert_eq!(plan.lost_iters(20), 0);
        assert_eq!(plan.lost_iters(9), 9);
        let never = FaultPlan::new(1, 23, 0);
        assert_eq!(never.last_snapshot_before(23), None);
        assert_eq!(never.lost_iters(23), 23);
    }
}
