//! The shared file/wire frame: magic, version, length, FNV-1a checksum.
//!
//! Every durable or wire-crossing byte blob in the reproduction — the
//! monolithic [`crate::Snapshot`], per-rank [`crate::Shard`]s and their
//! manifest, and `opt-net`'s TCP transport messages — wears the same
//! frame, produced and validated by this module alone:
//!
//! ```text
//! magic    8 bytes   format discriminator (e.g. "OPTCKPT\0")
//! version  u32 LE    format version
//! body_len u64 LE    byte length of the body
//! body     body_len  format-specific payload
//! checksum u64 LE    FNV-1a over the body
//! ```
//!
//! Keeping one implementation means every consumer gets the same
//! validation order (magic, version, length arithmetic, checksum — all
//! with checked arithmetic so corrupt length fields surface as typed
//! errors, never panics) and the same atomic-write discipline.

use crate::CkptError;
use std::path::Path;

/// FNV-1a 64-bit hash, used both as the frame body checksum and (by
/// `optimus-cc`) as the config fingerprint. Not cryptographic — it guards
/// against truncation, bit rot, and accidental config drift, which is the
/// threat model of a training checkpoint on a trusted filesystem and of a
/// length-framed stream on a trusted network.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fixed prefix every frame starts with: magic (8) + format version
/// (u32 LE) + body length (u64 LE).
pub const HEADER_LEN: usize = 20;

/// Bytes a frame adds around its body: the [`HEADER_LEN`] prefix plus the
/// trailing 8-byte checksum.
pub const FRAME_OVERHEAD: usize = HEADER_LEN + 8;

/// Wraps `body` in the shared frame: header, body, FNV-1a checksum.
pub fn frame(magic: &[u8; 8], version: u32, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_OVERHEAD + body.len());
    out.extend_from_slice(magic);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(body);
    out.extend_from_slice(&fnv1a64(body).to_le_bytes());
    out
}

/// Validates the fixed-size prefix (magic and version) and returns the
/// claimed body length — without touching the body, so callers can reject
/// garbage before reading further.
pub fn parse_header(bytes: &[u8], magic: &[u8; 8], version: u32) -> Result<u64, CkptError> {
    if bytes.len() < HEADER_LEN {
        return Err(CkptError::Truncated {
            expected: HEADER_LEN,
            actual: bytes.len(),
        });
    }
    if &bytes[..8] != magic {
        return Err(CkptError::BadMagic);
    }
    let got = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if got != version {
        return Err(CkptError::UnsupportedVersion(got));
    }
    Ok(u64::from_le_bytes(bytes[12..20].try_into().unwrap()))
}

/// Validates a full in-memory frame and returns the checksummed body.
pub fn unframe<'a>(bytes: &'a [u8], magic: &[u8; 8], version: u32) -> Result<&'a [u8], CkptError> {
    let body_len64 = parse_header(bytes, magic, version)?;
    // Checked arithmetic: a corrupt length field must surface as
    // Truncated, not as an overflow panic or a wrapped-slice panic.
    let total = usize::try_from(body_len64)
        .ok()
        .and_then(|b| HEADER_LEN.checked_add(b))
        .and_then(|t| t.checked_add(8));
    let total = match total {
        Some(t) if t <= bytes.len() => t,
        _ => {
            return Err(CkptError::Truncated {
                expected: total.unwrap_or(usize::MAX),
                actual: bytes.len(),
            })
        }
    };
    let body_len = body_len64 as usize;
    let body = &bytes[HEADER_LEN..HEADER_LEN + body_len];
    let stored = u64::from_le_bytes(bytes[HEADER_LEN + body_len..total].try_into().unwrap());
    let computed = fnv1a64(body);
    if stored != computed {
        return Err(CkptError::ChecksumMismatch { stored, computed });
    }
    Ok(body)
}

/// Reads a framed file header-first: the magic/version/length prefix is
/// validated against the real file size *before* the body is read, so an
/// oversized or garbage file is rejected early without pulling its
/// contents into memory. Returns the checksum-verified body.
pub fn read_framed_file(path: &Path, magic: &[u8; 8], version: u32) -> Result<Vec<u8>, CkptError> {
    use std::io::Read;
    let mut file = std::fs::File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut header = [0u8; HEADER_LEN];
    if file_len < HEADER_LEN as u64 {
        return Err(CkptError::Truncated {
            expected: HEADER_LEN,
            actual: file_len as usize,
        });
    }
    file.read_exact(&mut header)?;
    let body_len64 = parse_header(&header, magic, version)?;
    // Checked arithmetic: the claimed length must agree exactly with the
    // bytes actually on disk (header + body + trailing checksum).
    let expected = (HEADER_LEN as u64)
        .checked_add(body_len64)
        .and_then(|t| t.checked_add(8));
    match expected {
        Some(e) if e == file_len => {}
        _ => {
            return Err(CkptError::Truncated {
                expected: expected
                    .and_then(|e| usize::try_from(e).ok())
                    .unwrap_or(usize::MAX),
                actual: file_len as usize,
            })
        }
    }
    let body_len = usize::try_from(body_len64).map_err(|_| CkptError::Truncated {
        expected: usize::MAX,
        actual: file_len as usize,
    })?;
    let mut rest = vec![0u8; body_len + 8];
    file.read_exact(&mut rest)?;
    let stored = u64::from_le_bytes(rest[body_len..].try_into().unwrap());
    rest.truncate(body_len);
    let computed = fnv1a64(&rest);
    if stored != computed {
        return Err(CkptError::ChecksumMismatch { stored, computed });
    }
    Ok(rest)
}

/// Writes `bytes` to `path` via a sibling temp file and an atomic rename,
/// so a crash mid-write can never destroy the previous good file at that
/// path — the overwrite happens only after the new bytes are fully on
/// disk.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), CkptError> {
    let mut tmp_name = path.file_name().unwrap_or_default().to_os_string();
    tmp_name.push(".partial");
    let tmp = path.with_file_name(tmp_name);
    std::fs::write(&tmp, bytes)?;
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e.into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: &[u8; 8] = b"OPTTEST\0";

    #[test]
    fn frame_unframe_roundtrip() {
        let body = b"hello framing";
        let framed = frame(MAGIC, 3, body);
        assert_eq!(framed.len(), body.len() + FRAME_OVERHEAD);
        assert_eq!(unframe(&framed, MAGIC, 3).expect("roundtrip"), body);
    }

    #[test]
    fn wrong_magic_version_and_corruption_rejected() {
        let framed = frame(MAGIC, 1, b"payload");
        assert!(matches!(
            unframe(&framed, b"OTHERMG\0", 1),
            Err(CkptError::BadMagic)
        ));
        assert!(matches!(
            unframe(&framed, MAGIC, 2),
            Err(CkptError::UnsupportedVersion(1))
        ));
        let mut flipped = framed.clone();
        flipped[HEADER_LEN + 2] ^= 0x80;
        assert!(matches!(
            unframe(&flipped, MAGIC, 1),
            Err(CkptError::ChecksumMismatch { .. })
        ));
        assert!(matches!(
            unframe(&framed[..framed.len() - 1], MAGIC, 1),
            Err(CkptError::Truncated { .. })
        ));
    }

    #[test]
    fn fnv_is_stable() {
        // Pin the hash so old snapshots stay loadable across refactors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
