//! `opt-ckpt` — deterministic checkpoint/restore and fault injection for
//! the Optimus-CC reproduction.
//!
//! A practical large-scale training run must survive preemption and worker
//! failure, and in this reproduction the *compression state itself* is
//! training state: PowerSGD warm-start factors, lazy-error-propagation
//! residuals, and data-parallel error-feedback buffers all influence every
//! subsequent gradient. Dropping them on restart silently degrades quality.
//! This crate therefore treats "resume" as a bit-exactness contract:
//!
//! > train `N` iterations straight, versus train `k`, snapshot, kill,
//! > restore, train `N - k` — the two runs must produce **identical**
//! > per-iteration losses and identical post-restore traffic-ledger deltas.
//!
//! Four pieces:
//!
//! * [`Snapshot`] — the versioned monolithic on-disk format: a header
//!   ([`SnapshotMeta`]: world shape, completed iterations, config
//!   fingerprint) plus one [`RankSection`] per `(stage, dp)` worker, all
//!   encoded with the byte codec from `opt_tensor::{Persist, Writer,
//!   Reader}` and guarded by a length header and FNV-1a checksum. A
//!   truncated or bit-flipped file is rejected at load, never half-applied.
//! * [`Shard`] + [`ShardManifest`] — the same state split per rank for
//!   **cross-host elastic restore**: each worker's state in its own
//!   checksummed shard file, named by a small versioned manifest, so a
//!   replacement worker on a different host can rendezvous on the
//!   manifest, fetch only its own shard, validate it, and apply it.
//!   Conversion to/from the monolithic format
//!   ([`Snapshot::to_shards`]/[`Snapshot::from_shards`]) is lossless.
//! * [`CkptError`] — why a snapshot, manifest, or shard was rejected.
//! * [`FaultPlan`] — a scripted failure (kill rank *r* after iteration
//!   *k*, snapshot every *n*) interpreted by both the numerical trainer
//!   (`optimus_cc::run_with_faults`) and the event simulator
//!   (`opt_sim::simulate_with_faults`).
//!
//! The save/load drivers live in `optimus-cc` (`Trainer::save_snapshot`,
//! `Trainer::restore_from_file`, `Trainer::save_sharded`,
//! `Trainer::restore_sharded`), which owns the worker protocol; the shard
//! store abstraction lives in `opt-net`; this crate owns the formats and
//! the failure vocabulary.
//!
//! # Example
//!
//! ```
//! use opt_ckpt::{CkptError, Snapshot, SnapshotMeta};
//!
//! let snap = Snapshot {
//!     meta: SnapshotMeta { pp: 1, dp: 1, seed: 0, iter: 3, config_fingerprint: 1 },
//!     ranks: vec![opt_ckpt::RankSection {
//!         stage: 0, dp: 0, params: vec![], optimizer: vec![], cb_link: vec![], dp_state: vec![],
//!     }],
//! };
//! let mut bytes = snap.encode();
//! assert_eq!(Snapshot::decode(&bytes).unwrap(), snap);
//! // One flipped bit in the body -> checksum rejection.
//! let n = bytes.len();
//! bytes[n - 12] ^= 1;
//! assert!(matches!(Snapshot::decode(&bytes), Err(CkptError::ChecksumMismatch { .. })));
//! ```

mod error;
mod fault;
pub mod framing;
mod shard;
mod snapshot;

pub use error::CkptError;
pub use fault::FaultPlan;
pub use framing::fnv1a64;
pub use shard::{
    shard_file_name, Shard, ShardEntry, ShardManifest, MANIFEST_FILE, MANIFEST_MAGIC,
    SHARD_FORMAT_VERSION, SHARD_MAGIC,
};
pub use snapshot::{RankSection, Snapshot, SnapshotMeta, FORMAT_VERSION, MAGIC};
