//! Per-rank snapshot shards and the shard manifest.
//!
//! The monolithic [`Snapshot`] serializes the whole world into one blob
//! that only the coordinating trainer can reload. Elastic restart across
//! hosts needs the opposite shape: each `(stage, dp)` worker's state in
//! its **own** checksummed file ([`Shard`]), plus a small versioned
//! [`ShardManifest`] naming every shard, so a replacement worker can
//! rendezvous on the manifest, fetch *only its own shard*, validate it
//! (config fingerprint + checksum), and apply it — no process ever has to
//! hold all state.
//!
//! # On-disk layout of a sharded checkpoint directory
//!
//! ```text
//! manifest.ckpt          ShardManifest (magic "OPTMANI\0", versioned, checksummed)
//! rank-0-0-<iter>.shard  Shard for stage 0, dp 0 (magic "OPTSHRD\0")
//! rank-1-0-<iter>.shard  Shard for stage 1, dp 0
//! ...                    one shard per (stage, dp) pair
//! ```
//!
//! Shard names carry the checkpoint iteration so a *re*-save never
//! clobbers the previous checkpoint's blobs: new shards land under fresh
//! names, the manifest is replaced atomically last, and only then are
//! shards the new manifest no longer references garbage-collected. A
//! crash at any point leaves a store whose manifest names fully-written,
//! matching shards.
//!
//! Every file reuses the snapshot frame: magic, format version (u32 LE),
//! body length (u64 LE), `Persist`-encoded body, FNV-1a checksum. The
//! manifest additionally records each shard's byte size and checksum, so a
//! fetched blob is validated against the manifest *before* it is decoded.
//!
//! Conversion to and from the monolithic format is lossless:
//! [`Snapshot::to_shards`] followed by [`Snapshot::from_shards`]
//! reproduces the snapshot bit for bit.

use crate::framing::{atomic_write, fnv1a64, frame, read_framed_file, unframe};
use crate::{CkptError, RankSection, Snapshot, SnapshotMeta};
use opt_tensor::{Persist, PersistError, Reader, Writer};
use std::path::Path;

/// Magic bytes opening every shard file.
pub const SHARD_MAGIC: &[u8; 8] = b"OPTSHRD\0";

/// Magic bytes opening every shard-manifest file.
pub const MANIFEST_MAGIC: &[u8; 8] = b"OPTMANI\0";

/// Current shard/manifest format version (versioned independently of the
/// monolithic snapshot format).
pub const SHARD_FORMAT_VERSION: u32 = 1;

/// Well-known object name of the manifest in a shard store or directory.
pub const MANIFEST_FILE: &str = "manifest.ckpt";

/// Object name of the shard holding `(stage, dp)`'s state at checkpoint
/// iteration `iter`.
///
/// The iteration is part of the name so that re-saving into the same
/// store or directory never overwrites the previous checkpoint's shards:
/// the old manifest and every blob it names stay intact until the new
/// manifest commits, and only then are stale shards garbage-collected.
pub fn shard_file_name(stage: usize, dp: usize, iter: u64) -> String {
    format!("rank-{stage}-{dp}-{iter}.shard")
}

/// One worker's slice of a sharded checkpoint: the [`RankSection`] plus
/// enough header context (iteration, config fingerprint) for the fetching
/// worker to validate the shard *standalone*, without trusting anything
/// the coordinator holds.
#[derive(Debug, Clone, PartialEq)]
pub struct Shard {
    /// Training iterations completed when the shard was taken.
    pub iter: u64,
    /// Fingerprint of the configuration the shard was taken under.
    pub config_fingerprint: u64,
    /// The worker's training state.
    pub section: RankSection,
}

impl Shard {
    /// Pipeline stage this shard belongs to.
    pub fn stage(&self) -> usize {
        self.section.stage
    }

    /// Data-parallel rank this shard belongs to.
    pub fn dp(&self) -> usize {
        self.section.dp
    }

    /// Serializes to the framed on-disk byte format.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Writer::new();
        body.u64(self.iter);
        body.u64(self.config_fingerprint);
        self.section.persist(&mut body);
        frame(SHARD_MAGIC, SHARD_FORMAT_VERSION, &body.into_bytes())
    }

    /// Parses and validates the framed byte format (magic, version,
    /// length, checksum, structure).
    pub fn decode(bytes: &[u8]) -> Result<Self, CkptError> {
        let body = unframe(bytes, SHARD_MAGIC, SHARD_FORMAT_VERSION)?;
        let mut r = Reader::new(body);
        let iter = r.u64()?;
        let config_fingerprint = r.u64()?;
        let section = RankSection::restore(&mut r)?;
        r.finish().map_err(CkptError::Decode)?;
        Ok(Shard {
            iter,
            config_fingerprint,
            section,
        })
    }

    /// Checks that this shard belongs to the checkpoint described by
    /// `meta`: same iteration, same config fingerprint, rank inside the
    /// world. Returns typed errors so callers can report *why* a shard was
    /// refused.
    pub fn validate_against(&self, meta: &SnapshotMeta) -> Result<(), CkptError> {
        if self.config_fingerprint != meta.config_fingerprint {
            return Err(CkptError::ConfigMismatch {
                snapshot: self.config_fingerprint,
                config: meta.config_fingerprint,
            });
        }
        if self.iter != meta.iter {
            return Err(CkptError::ShardMismatch {
                stage: self.stage(),
                dp: self.dp(),
                what: "shard iteration does not match the manifest",
            });
        }
        if self.stage() >= meta.pp || self.dp() >= meta.dp {
            return Err(CkptError::ShardMismatch {
                stage: self.stage(),
                dp: self.dp(),
                what: "shard rank lies outside the manifest's world",
            });
        }
        Ok(())
    }
}

/// One line of the manifest: which shard holds `(stage, dp)`, under what
/// object name, and what its exact size and checksum must be.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardEntry {
    /// Pipeline stage of the shard.
    pub stage: usize,
    /// Data-parallel rank of the shard.
    pub dp: usize,
    /// Object name of the shard in the store (by convention
    /// [`shard_file_name`]).
    pub name: String,
    /// Exact encoded size of the shard file in bytes.
    pub bytes: u64,
    /// FNV-1a checksum over the full encoded shard file.
    pub checksum: u64,
}

impl ShardEntry {
    /// Builds the entry describing `blob`, an encoded shard.
    pub fn for_blob(stage: usize, dp: usize, name: String, blob: &[u8]) -> Self {
        Self {
            stage,
            dp,
            name,
            bytes: blob.len() as u64,
            checksum: fnv1a64(blob),
        }
    }

    /// Verifies a fetched blob against this entry: exact size, matching
    /// checksum. Run *before* decoding, so a truncated or bit-rotted fetch
    /// never reaches the structural decoder.
    pub fn verify(&self, blob: &[u8]) -> Result<(), CkptError> {
        if blob.len() as u64 != self.bytes {
            return Err(CkptError::Truncated {
                expected: usize::try_from(self.bytes).unwrap_or(usize::MAX),
                actual: blob.len(),
            });
        }
        let computed = fnv1a64(blob);
        if computed != self.checksum {
            return Err(CkptError::ChecksumMismatch {
                stored: self.checksum,
                computed,
            });
        }
        Ok(())
    }
}

impl Persist for ShardEntry {
    fn persist(&self, w: &mut Writer) {
        w.usize(self.stage);
        w.usize(self.dp);
        w.bytes(self.name.as_bytes());
        w.u64(self.bytes);
        w.u64(self.checksum);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let stage = r.usize()?;
        let dp = r.usize()?;
        let name = String::from_utf8(r.bytes()?).map_err(|_| PersistError::Invalid {
            what: "shard name is not valid UTF-8",
        })?;
        Ok(Self {
            stage,
            dp,
            name,
            bytes: r.u64()?,
            checksum: r.u64()?,
        })
    }
}

/// The rendezvous document of a sharded checkpoint: the [`SnapshotMeta`]
/// header plus one [`ShardEntry`] per `(stage, dp)` worker.
///
/// A restarting worker needs only this (small) manifest and its own shard
/// to rejoin a run; [`ShardManifest::decode`] rejects bad magic, stale
/// versions, truncation, checksum mismatches, and incomplete worlds.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardManifest {
    /// Checkpoint header: world shape, iteration, config fingerprint.
    pub meta: SnapshotMeta,
    /// One entry per worker, ordered by `dp * pp + stage`.
    pub shards: Vec<ShardEntry>,
}

impl ShardManifest {
    /// Number of shards this manifest should name.
    pub fn world_size(&self) -> usize {
        self.meta.pp * self.meta.dp
    }

    /// The entry for `(stage, dp)`, if present.
    pub fn entry(&self, stage: usize, dp: usize) -> Option<&ShardEntry> {
        self.shards.iter().find(|e| e.stage == stage && e.dp == dp)
    }

    /// Verifies that exactly one entry exists per `(stage, dp)` pair and
    /// nothing else.
    pub fn validate_complete(&self) -> Result<(), CkptError> {
        if self.shards.len() != self.world_size() {
            return Err(CkptError::Decode(PersistError::Invalid {
                what: "manifest entry count does not match its world size",
            }));
        }
        for d in 0..self.meta.dp {
            for s in 0..self.meta.pp {
                let n = self
                    .shards
                    .iter()
                    .filter(|e| e.stage == s && e.dp == d)
                    .count();
                if n != 1 {
                    return Err(CkptError::MissingRank { stage: s, dp: d });
                }
            }
        }
        Ok(())
    }

    /// Serializes to the framed on-disk byte format.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Writer::new();
        self.meta.persist(&mut body);
        self.shards.persist(&mut body);
        frame(MANIFEST_MAGIC, SHARD_FORMAT_VERSION, &body.into_bytes())
    }

    /// Parses and validates the framed byte format, including world
    /// completeness.
    pub fn decode(bytes: &[u8]) -> Result<Self, CkptError> {
        let body = unframe(bytes, MANIFEST_MAGIC, SHARD_FORMAT_VERSION)?;
        Self::decode_body(body)
    }

    fn decode_body(body: &[u8]) -> Result<Self, CkptError> {
        let mut r = Reader::new(body);
        let meta = SnapshotMeta::restore(&mut r)?;
        let shards = Vec::<ShardEntry>::restore(&mut r)?;
        r.finish().map_err(CkptError::Decode)?;
        let manifest = ShardManifest { meta, shards };
        manifest.validate_complete()?;
        Ok(manifest)
    }

    /// Writes the manifest to `path` atomically (temp file + rename).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CkptError> {
        atomic_write(path.as_ref(), &self.encode())
    }

    /// Reads and validates a manifest from `path`, header first.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CkptError> {
        let body = read_framed_file(path.as_ref(), MANIFEST_MAGIC, SHARD_FORMAT_VERSION)?;
        Self::decode_body(&body)
    }
}

impl Snapshot {
    /// Splits the snapshot into per-rank shards plus the manifest naming
    /// them: the manifest and the encoded, ready-to-store blob of every
    /// shard (keyed by [`shard_file_name`]).
    ///
    /// The conversion is lossless — [`Snapshot::from_shards`] over the
    /// result reproduces `self` exactly.
    pub fn to_shards(&self) -> (ShardManifest, Vec<(String, Vec<u8>)>) {
        let mut entries = Vec::with_capacity(self.ranks.len());
        let mut blobs = Vec::with_capacity(self.ranks.len());
        for section in &self.ranks {
            let shard = Shard {
                iter: self.meta.iter,
                config_fingerprint: self.meta.config_fingerprint,
                section: section.clone(),
            };
            let name = shard_file_name(section.stage, section.dp, self.meta.iter);
            let blob = shard.encode();
            entries.push(ShardEntry::for_blob(
                section.stage,
                section.dp,
                name.clone(),
                &blob,
            ));
            blobs.push((name, blob));
        }
        let manifest = ShardManifest {
            meta: self.meta.clone(),
            shards: entries,
        };
        (manifest, blobs)
    }

    /// Reassembles a monolithic snapshot from a manifest, fetching each
    /// shard blob through `fetch` (a directory read, a store get, ...).
    ///
    /// Every fetched blob is verified against its manifest entry (size +
    /// checksum) before decoding, and every decoded shard is validated
    /// against the manifest header (rank identity, iteration, config
    /// fingerprint) before it is accepted.
    pub fn from_shards(
        manifest: &ShardManifest,
        mut fetch: impl FnMut(&ShardEntry) -> Result<Vec<u8>, CkptError>,
    ) -> Result<Snapshot, CkptError> {
        manifest.validate_complete()?;
        let mut ranks = Vec::with_capacity(manifest.shards.len());
        for entry in &manifest.shards {
            let blob = fetch(entry)?;
            entry.verify(&blob)?;
            let shard = Shard::decode(&blob)?;
            if (shard.stage(), shard.dp()) != (entry.stage, entry.dp) {
                return Err(CkptError::ShardMismatch {
                    stage: entry.stage,
                    dp: entry.dp,
                    what: "shard rank identity does not match its manifest entry",
                });
            }
            shard.validate_against(&manifest.meta)?;
            ranks.push(shard.section);
        }
        let snap = Snapshot {
            meta: manifest.meta.clone(),
            ranks,
        };
        snap.validate_complete()?;
        Ok(snap)
    }

    /// Writes the snapshot as a sharded checkpoint directory: every shard
    /// via an atomic temp-file + rename, then [`MANIFEST_FILE`] last — so
    /// a crash mid-save can never leave a manifest naming shards that are
    /// not fully on disk. Shard names carry the checkpoint iteration, so
    /// re-saving a *newer* snapshot into the same directory leaves the
    /// previous checkpoint fully restorable until the new manifest lands;
    /// shards the new manifest no longer references are then
    /// garbage-collected (best effort — a leftover blob is harmless, the
    /// manifest is authoritative).
    pub fn save_sharded(&self, dir: impl AsRef<Path>) -> Result<ShardManifest, CkptError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let (manifest, blobs) = self.to_shards();
        for (name, blob) in &blobs {
            atomic_write(&dir.join(name), blob)?;
        }
        manifest.save(dir.join(MANIFEST_FILE))?;
        let live: std::collections::HashSet<&str> =
            manifest.shards.iter().map(|e| e.name.as_str()).collect();
        if let Ok(entries) = std::fs::read_dir(dir) {
            for entry in entries.flatten() {
                if let Ok(name) = entry.file_name().into_string() {
                    if name.ends_with(".shard") && !live.contains(name.as_str()) {
                        let _ = std::fs::remove_file(entry.path());
                    }
                }
            }
        }
        Ok(manifest)
    }

    /// Reads a sharded checkpoint directory back into a monolithic
    /// snapshot: manifest first, then each shard, fully validated.
    pub fn load_sharded(dir: impl AsRef<Path>) -> Result<Snapshot, CkptError> {
        let dir = dir.as_ref();
        let manifest = ShardManifest::load(dir.join(MANIFEST_FILE))?;
        Snapshot::from_shards(&manifest, |entry| {
            std::fs::read(dir.join(&entry.name)).map_err(CkptError::Io)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opt_tensor::Matrix;

    fn sample() -> Snapshot {
        let section = |stage: usize, dp: usize| RankSection {
            stage,
            dp,
            params: vec![Matrix::full(2, 3, 0.25), Matrix::zeros(1, 4)],
            optimizer: vec![1, 2, 3, stage as u8, dp as u8],
            cb_link: vec![7; stage],
            dp_state: vec![9; 5],
        };
        Snapshot {
            meta: SnapshotMeta {
                pp: 2,
                dp: 2,
                seed: 11,
                iter: 17,
                config_fingerprint: 0xFEED_BEEF,
            },
            ranks: vec![section(0, 0), section(1, 0), section(0, 1), section(1, 1)],
        }
    }

    fn store(snap: &Snapshot) -> (ShardManifest, std::collections::HashMap<String, Vec<u8>>) {
        let (manifest, blobs) = snap.to_shards();
        (manifest, blobs.into_iter().collect())
    }

    fn fetch_from(
        map: &std::collections::HashMap<String, Vec<u8>>,
    ) -> impl FnMut(&ShardEntry) -> Result<Vec<u8>, CkptError> + '_ {
        |entry: &ShardEntry| {
            map.get(&entry.name).cloned().ok_or(CkptError::Store {
                what: format!("missing blob {}", entry.name),
            })
        }
    }

    #[test]
    fn shard_roundtrip_is_lossless() {
        let snap = sample();
        let (manifest, map) = store(&snap);
        assert_eq!(manifest.world_size(), 4);
        assert_eq!(map.len(), 4);
        let back = Snapshot::from_shards(&manifest, fetch_from(&map)).expect("roundtrip");
        assert_eq!(back, snap);
    }

    #[test]
    fn single_shard_roundtrip_preserves_everything() {
        let snap = sample();
        let shard = Shard {
            iter: snap.meta.iter,
            config_fingerprint: snap.meta.config_fingerprint,
            section: snap.ranks[2].clone(),
        };
        let back = Shard::decode(&shard.encode()).expect("decode");
        assert_eq!(back, shard);
        assert_eq!(back.stage(), 0);
        assert_eq!(back.dp(), 1);
        back.validate_against(&snap.meta).expect("belongs");
    }

    #[test]
    fn truncated_shard_is_rejected() {
        let snap = sample();
        let (manifest, map) = store(&snap);
        let entry = &manifest.shards[0];
        let blob = &map[&entry.name];
        for cut in [0, 5, 19, blob.len() / 2, blob.len() - 1] {
            assert!(
                matches!(
                    entry.verify(&blob[..cut.min(blob.len())]),
                    Err(CkptError::Truncated { .. })
                ),
                "cut at {cut} accepted by manifest verification"
            );
        }
        // The standalone decoder rejects truncation too (a worker with no
        // manifest copy still cannot apply half a shard).
        let name = &manifest.shards[0].name;
        let own = &map[name];
        assert!(Shard::decode(&own[..own.len() - 1]).is_err());
    }

    #[test]
    fn shard_checksum_mismatch_is_rejected() {
        let snap = sample();
        let (manifest, mut map) = store(&snap);
        let entry = manifest.shards[1].clone();
        let blob = map.get_mut(&entry.name).unwrap();
        let mid = blob.len() / 2;
        blob[mid] ^= 0x10;
        assert!(matches!(
            entry.verify(blob),
            Err(CkptError::ChecksumMismatch { .. })
        ));
        let err = Snapshot::from_shards(&manifest, fetch_from(&map)).unwrap_err();
        assert!(matches!(err, CkptError::ChecksumMismatch { .. }));
    }

    #[test]
    fn missing_rank_in_manifest_is_rejected() {
        let snap = sample();
        let (mut manifest, map) = store(&snap);
        manifest.shards.remove(2);
        assert!(matches!(
            Snapshot::from_shards(&manifest, fetch_from(&map)),
            Err(CkptError::Decode(PersistError::Invalid { .. }))
        ));
        // Right count but a duplicated rank: caught per-pair.
        let (mut dup, map2) = store(&snap);
        dup.shards[3] = dup.shards[0].clone();
        assert!(matches!(
            Snapshot::from_shards(&dup, fetch_from(&map2)),
            Err(CkptError::MissingRank { .. })
        ));
        // And the encoded manifest refuses to decode at all.
        assert!(ShardManifest::decode(&dup.encode()).is_err());
    }

    #[test]
    fn wrong_config_fingerprint_is_rejected() {
        let snap = sample();
        let (mut manifest, map) = store(&snap);
        manifest.meta.config_fingerprint ^= 1;
        assert!(matches!(
            Snapshot::from_shards(&manifest, fetch_from(&map)),
            Err(CkptError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn shard_from_a_different_iteration_is_rejected() {
        let snap = sample();
        let mut older = snap.clone();
        older.meta.iter -= 1;
        let (_, stale_blobs) = older.to_shards();
        let stale: std::collections::HashMap<_, _> = stale_blobs.into_iter().collect();
        // Stale blobs fail the manifest checksum (contents differ) — but
        // even a re-indexed manifest pointing at them trips the iteration
        // check inside the shard header.
        let (stale_manifest, _) = older.to_shards();
        let mut crossed = stale_manifest;
        crossed.meta.iter = snap.meta.iter;
        assert!(matches!(
            Snapshot::from_shards(&crossed, fetch_from(&stale)),
            Err(CkptError::ShardMismatch { .. })
        ));
    }

    #[test]
    fn stale_manifest_version_is_rejected() {
        let snap = sample();
        let (manifest, _) = store(&snap);
        let mut bytes = manifest.encode();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            ShardManifest::decode(&bytes),
            Err(CkptError::UnsupportedVersion(99))
        ));
        // A stale shard version is equally fatal.
        let (_, blobs) = snap.to_shards();
        let mut shard_bytes = blobs[0].1.clone();
        shard_bytes[8..12].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            Shard::decode(&shard_bytes),
            Err(CkptError::UnsupportedVersion(0))
        ));
    }

    #[test]
    fn manifest_magic_and_corruption_are_rejected() {
        let manifest = sample().to_shards().0;
        let clean = manifest.encode();
        let mut bad_magic = clean.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            ShardManifest::decode(&bad_magic),
            Err(CkptError::BadMagic)
        ));
        let mut flipped = clean.clone();
        let mid = clean.len() / 2;
        flipped[mid] ^= 0xFF;
        assert!(matches!(
            ShardManifest::decode(&flipped),
            Err(CkptError::ChecksumMismatch { .. })
        ));
        assert_eq!(
            ShardManifest::decode(&clean).expect("clean decodes"),
            manifest
        );
    }

    #[test]
    fn swapped_shard_blobs_are_rejected_by_identity_check() {
        // Two shards swapped behind the manifest's back: sizes may match,
        // but checksums differ, and even with a doctored manifest the
        // rank identity inside the shard gives the swap away.
        let snap = sample();
        let (mut manifest, map) = store(&snap);
        let name0 = manifest.shards[0].name.clone();
        let name1 = manifest.shards[1].name.clone();
        let e0 = manifest.shards[0].clone();
        let e1 = manifest.shards[1].clone();
        // Doctor the manifest so entry 0 points at shard 1's blob.
        manifest.shards[0] = ShardEntry {
            stage: e0.stage,
            dp: e0.dp,
            name: name1,
            bytes: e1.bytes,
            checksum: e1.checksum,
        };
        manifest.shards[1] = ShardEntry {
            stage: e1.stage,
            dp: e1.dp,
            name: name0,
            bytes: e0.bytes,
            checksum: e0.checksum,
        };
        assert!(matches!(
            Snapshot::from_shards(&manifest, fetch_from(&map)),
            Err(CkptError::ShardMismatch { .. })
        ));
    }

    #[test]
    fn sharded_directory_roundtrip() {
        let snap = sample();
        let dir = std::env::temp_dir().join(format!("optckpt-shards-{}", std::process::id()));
        let manifest = snap.save_sharded(&dir).expect("save");
        assert!(dir.join(MANIFEST_FILE).exists());
        for entry in &manifest.shards {
            assert!(dir.join(&entry.name).exists(), "{} missing", entry.name);
            assert!(
                !dir.join(format!("{}.partial", entry.name)).exists(),
                "temp file left behind"
            );
        }
        let back = Snapshot::load_sharded(&dir).expect("load");
        assert_eq!(back, snap);
        // Re-saving a newer checkpoint writes fresh names, then
        // garbage-collects the old iteration's shards after the manifest
        // commit — the directory always holds exactly one checkpoint.
        let mut newer = snap.clone();
        newer.meta.iter += 5;
        let newer_manifest = newer.save_sharded(&dir).expect("re-save");
        assert_ne!(newer_manifest.shards[0].name, manifest.shards[0].name);
        for entry in &manifest.shards {
            assert!(
                !dir.join(&entry.name).exists(),
                "stale shard {} not garbage-collected",
                entry.name
            );
        }
        assert_eq!(Snapshot::load_sharded(&dir).expect("load newer"), newer);
        // Corrupting one shard on disk breaks only that fetch, loudly.
        let victim = dir.join(&newer_manifest.shards[0].name);
        let mut bytes = std::fs::read(&victim).expect("read shard");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&victim, &bytes).expect("write corrupted shard");
        assert!(matches!(
            Snapshot::load_sharded(&dir),
            Err(CkptError::ChecksumMismatch { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_file_names_are_per_rank_and_per_iteration() {
        assert_eq!(shard_file_name(0, 0, 0), "rank-0-0-0.shard");
        assert_eq!(shard_file_name(3, 1, 42), "rank-3-1-42.shard");
        let snap = sample();
        let (manifest, blobs) = snap.to_shards();
        for (entry, (name, _)) in manifest.shards.iter().zip(&blobs) {
            assert_eq!(&entry.name, name);
            assert_eq!(
                entry.name,
                shard_file_name(entry.stage, entry.dp, snap.meta.iter)
            );
        }
    }
}
