//! The versioned on-disk snapshot format.

use crate::framing::{atomic_write, frame, read_framed_file, unframe};
use crate::CkptError;
use opt_tensor::{Matrix, Persist, PersistError, Reader, Writer};
use std::path::Path;

/// Magic bytes opening every snapshot file.
pub const MAGIC: &[u8; 8] = b"OPTCKPT\0";

/// Current snapshot format version.
pub const FORMAT_VERSION: u32 = 1;

/// Snapshot header: who took it, when (in iterations), and under what
/// configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Pipeline stages of the run.
    pub pp: usize,
    /// Data-parallel ways of the run.
    pub dp: usize,
    /// Master seed of the run.
    pub seed: u64,
    /// Training iterations completed when the snapshot was taken.
    pub iter: u64,
    /// Fingerprint over every state-affecting configuration field
    /// (model shape, parallelism, batching, compression plan, seed, lr).
    pub config_fingerprint: u64,
}

impl Persist for SnapshotMeta {
    fn persist(&self, w: &mut Writer) {
        w.usize(self.pp);
        w.usize(self.dp);
        w.u64(self.seed);
        w.u64(self.iter);
        w.u64(self.config_fingerprint);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            pp: r.usize()?,
            dp: r.usize()?,
            seed: r.u64()?,
            iter: r.u64()?,
            config_fingerprint: r.u64()?,
        })
    }
}

/// One worker's slice of the training state.
///
/// Parameter tensors are stored structurally (the restoring trainer needs
/// their shapes); optimizer and compressor state are opaque [`Persist`]
/// blobs encoded and decoded by the crates that own those types — the
/// snapshot container does not need to know what a warm-start factor is.
#[derive(Debug, Clone, PartialEq)]
pub struct RankSection {
    /// Pipeline stage index.
    pub stage: usize,
    /// Data-parallel rank.
    pub dp: usize,
    /// Every parameter tensor of the stage, in `Stage::params` order.
    pub params: Vec<Matrix>,
    /// Optimizer state (Adam moments + step counter).
    pub optimizer: Vec<u8>,
    /// Inter-stage compressed-backpropagation link state (PowerSGD
    /// warm-start factors + RNG, lazy-error residual), if the worker has
    /// an upstream link.
    pub cb_link: Vec<u8>,
    /// Data-parallel distributed-PowerSGD state (per-slot warm starts +
    /// error-feedback residuals), if the stage's DP traffic is compressed.
    pub dp_state: Vec<u8>,
}

impl Persist for RankSection {
    fn persist(&self, w: &mut Writer) {
        w.usize(self.stage);
        w.usize(self.dp);
        self.params.persist(w);
        w.bytes(&self.optimizer);
        w.bytes(&self.cb_link);
        w.bytes(&self.dp_state);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            stage: r.usize()?,
            dp: r.usize()?,
            params: Vec::restore(r)?,
            optimizer: r.bytes()?,
            cb_link: r.bytes()?,
            dp_state: r.bytes()?,
        })
    }
}

/// A complete, self-validating training snapshot: header plus one
/// [`RankSection`] per `(stage, dp)` worker.
///
/// # On-disk layout
///
/// ```text
/// magic    8 bytes   "OPTCKPT\0"
/// version  u32 LE
/// body_len u64 LE
/// body     body_len  SnapshotMeta + Vec<RankSection> (Persist codec)
/// checksum u64 LE    FNV-1a over body
/// ```
///
/// [`Snapshot::decode`] rejects bad magic, unknown versions, truncation,
/// checksum mismatches, and structurally invalid bodies — a snapshot that
/// loads is a snapshot that was written completely and has not rotted.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Header.
    pub meta: SnapshotMeta,
    /// Per-worker sections, ordered by `dp * pp + stage`.
    pub ranks: Vec<RankSection>,
}

impl Snapshot {
    /// Number of worker sections this snapshot should contain.
    pub fn world_size(&self) -> usize {
        self.meta.pp * self.meta.dp
    }

    /// The section for `(stage, dp)`, if present.
    pub fn section(&self, stage: usize, dp: usize) -> Option<&RankSection> {
        self.ranks.iter().find(|s| s.stage == stage && s.dp == dp)
    }

    /// Verifies that exactly one section exists per `(stage, dp)` pair and
    /// nothing else (a stray out-of-world section would index out of
    /// bounds during restore).
    pub fn validate_complete(&self) -> Result<(), CkptError> {
        if self.ranks.len() != self.world_size() {
            return Err(CkptError::Decode(PersistError::Invalid {
                what: "snapshot section count does not match its world size",
            }));
        }
        for d in 0..self.meta.dp {
            for s in 0..self.meta.pp {
                let n = self
                    .ranks
                    .iter()
                    .filter(|sec| sec.stage == s && sec.dp == d)
                    .count();
                if n != 1 {
                    return Err(CkptError::MissingRank { stage: s, dp: d });
                }
            }
        }
        Ok(())
    }

    /// Serializes to the on-disk byte format.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Writer::new();
        self.meta.persist(&mut body);
        self.ranks.persist(&mut body);
        frame(MAGIC, FORMAT_VERSION, &body.into_bytes())
    }

    /// Parses and validates the on-disk byte format.
    pub fn decode(bytes: &[u8]) -> Result<Self, CkptError> {
        let body = unframe(bytes, MAGIC, FORMAT_VERSION)?;
        Self::decode_body(body)
    }

    /// Decodes a checksum-verified snapshot body.
    fn decode_body(body: &[u8]) -> Result<Self, CkptError> {
        let mut r = Reader::new(body);
        let meta = SnapshotMeta::restore(&mut r)?;
        let ranks = Vec::<RankSection>::restore(&mut r)?;
        r.finish().map_err(CkptError::Decode)?;
        let snap = Snapshot { meta, ranks };
        snap.validate_complete()?;
        Ok(snap)
    }

    /// Writes the snapshot to `path` via a sibling temp file and an atomic
    /// rename, so a crash mid-save can never destroy the previous good
    /// snapshot at that path — the overwrite happens only after the new
    /// bytes are fully on disk.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CkptError> {
        atomic_write(path.as_ref(), &self.encode())
    }

    /// Reads and validates a snapshot from `path`.
    ///
    /// The magic/version/length prefix is validated against the real file
    /// size *before* the body is read, so a garbage file or a corrupt
    /// length field is rejected early, without loading the whole file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CkptError> {
        let body = read_framed_file(path.as_ref(), MAGIC, FORMAT_VERSION)?;
        Self::decode_body(&body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let section = |stage: usize, dp: usize| RankSection {
            stage,
            dp,
            params: vec![Matrix::full(2, 3, 1.5), Matrix::zeros(1, 4)],
            optimizer: vec![1, 2, 3],
            cb_link: vec![],
            dp_state: vec![9; 5],
        };
        Snapshot {
            meta: SnapshotMeta {
                pp: 2,
                dp: 1,
                seed: 7,
                iter: 42,
                config_fingerprint: 0xABCD,
            },
            ranks: vec![section(0, 0), section(1, 0)],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let snap = sample();
        let back = Snapshot::decode(&snap.encode()).expect("roundtrip");
        assert_eq!(back, snap);
        assert_eq!(back.world_size(), 2);
        assert!(back.section(1, 0).is_some());
        assert!(back.section(2, 0).is_none());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().encode();
        bytes[0] = b'X';
        assert!(matches!(Snapshot::decode(&bytes), Err(CkptError::BadMagic)));
    }

    #[test]
    fn unknown_version_rejected() {
        let mut bytes = sample().encode();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(CkptError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn truncation_rejected_at_every_cut() {
        let bytes = sample().encode();
        for cut in [1, 10, 21, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                Snapshot::decode(&bytes[..cut]).is_err(),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn corruption_rejected_everywhere_in_body() {
        let clean = sample().encode();
        let body_start = MAGIC.len() + 12;
        for pos in (body_start..clean.len() - 8).step_by(7) {
            let mut bytes = clean.clone();
            bytes[pos] ^= 0xFF;
            assert!(
                matches!(
                    Snapshot::decode(&bytes),
                    Err(CkptError::ChecksumMismatch { .. })
                ),
                "flip at {pos} not caught by checksum"
            );
        }
    }

    #[test]
    fn missing_rank_rejected() {
        let mut snap = sample();
        snap.ranks.pop();
        let err = Snapshot::decode(&snap.encode()).unwrap_err();
        assert!(matches!(
            err,
            CkptError::Decode(PersistError::Invalid { .. })
        ));
        // Right count but a duplicated section: caught per-pair.
        let mut dup = sample();
        dup.ranks[1] = dup.ranks[0].clone();
        let err = Snapshot::decode(&dup.encode()).unwrap_err();
        assert!(matches!(err, CkptError::MissingRank { .. }));
    }

    #[test]
    fn huge_length_field_is_truncation_not_panic() {
        let mut bytes = sample().encode();
        // Length field with the top bit set: must report Truncated, not
        // overflow or slice out of range.
        bytes[12..20].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(CkptError::Truncated { .. })
        ));
        let mut bytes2 = sample().encode();
        bytes2[12..20].copy_from_slice(&(1u64 << 62).to_le_bytes());
        assert!(matches!(
            Snapshot::decode(&bytes2),
            Err(CkptError::Truncated { .. })
        ));
    }

    #[test]
    fn save_leaves_no_partial_file() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("optckpt-atomic-{}.snap", std::process::id()));
        let snap = sample();
        snap.save(&path).expect("first save");
        snap.save(&path).expect("overwrite save");
        let partial = dir.join(format!(
            "optckpt-atomic-{}.snap.partial",
            std::process::id()
        ));
        assert!(!partial.exists(), "temp file left behind");
        assert_eq!(Snapshot::load(&path).expect("load"), snap);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn save_load_file_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("optckpt-test-{}.snap", std::process::id()));
        let snap = sample();
        snap.save(&path).expect("save");
        let back = Snapshot::load(&path).expect("load");
        let _ = std::fs::remove_file(&path);
        assert_eq!(back, snap);
    }

    #[test]
    fn load_validates_header_before_reading_the_body() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();

        // Garbage that isn't even a header: rejected as Truncated.
        let tiny = dir.join(format!("optckpt-tiny-{pid}.snap"));
        std::fs::write(&tiny, b"short").expect("write");
        assert!(matches!(
            Snapshot::load(&tiny),
            Err(CkptError::Truncated { .. })
        ));
        let _ = std::fs::remove_file(&tiny);

        // A huge length field is rejected from the 20-byte prefix alone —
        // the (absent) multi-terabyte body is never read.
        let mut bytes = sample().encode();
        bytes[12..20].copy_from_slice(&u64::MAX.to_le_bytes());
        let huge = dir.join(format!("optckpt-huge-{pid}.snap"));
        std::fs::write(&huge, &bytes).expect("write");
        assert!(matches!(
            Snapshot::load(&huge),
            Err(CkptError::Truncated { .. })
        ));
        let _ = std::fs::remove_file(&huge);

        // An oversized file (trailing junk after the checksum) is rejected:
        // the header's length claim must match the file exactly.
        let mut padded = sample().encode();
        padded.extend_from_slice(&[0u8; 64]);
        let fat = dir.join(format!("optckpt-fat-{pid}.snap"));
        std::fs::write(&fat, &padded).expect("write");
        assert!(matches!(
            Snapshot::load(&fat),
            Err(CkptError::Truncated { .. })
        ));
        let _ = std::fs::remove_file(&fat);

        // Wrong magic and stale version are caught from the prefix too.
        let mut foreign = sample().encode();
        foreign[0] = b'Z';
        let bad = dir.join(format!("optckpt-magic-{pid}.snap"));
        std::fs::write(&bad, &foreign).expect("write");
        assert!(matches!(Snapshot::load(&bad), Err(CkptError::BadMagic)));
        let _ = std::fs::remove_file(&bad);
    }
}
