//! Property-based tests of the shard codec: every structurally valid
//! shard/manifest round-trips bit-exactly, and random corruption of the
//! encoded bytes is always rejected with a typed error, never accepted or
//! panicked on.

use opt_ckpt::{
    shard_file_name, CkptError, RankSection, Shard, ShardEntry, ShardManifest, Snapshot,
    SnapshotMeta,
};
use opt_tensor::SeedStream;
use proptest::prelude::*;

/// Deterministically builds a rank section with shapes and blob lengths
/// drawn from `seed`.
fn section(stage: usize, dp: usize, seed: u64) -> RankSection {
    let mut rng = SeedStream::new(seed ^ ((stage as u64) << 32) ^ dp as u64);
    let params = (0..1 + (seed as usize % 3))
        .map(|i| rng.uniform_matrix(1 + (seed as usize + i) % 4, 1 + i, 2.0))
        .collect();
    let blob = |n: usize| (0..n).map(|i| (seed as u8).wrapping_add(i as u8)).collect();
    RankSection {
        stage,
        dp,
        params,
        optimizer: blob(seed as usize % 40),
        cb_link: blob((seed as usize / 7) % 25),
        dp_state: blob((seed as usize / 3) % 33),
    }
}

fn snapshot(pp: usize, dp: usize, iter: u64, seed: u64) -> Snapshot {
    let mut ranks = Vec::new();
    for d in 0..dp {
        for s in 0..pp {
            ranks.push(section(s, d, seed));
        }
    }
    Snapshot {
        meta: SnapshotMeta {
            pp,
            dp,
            seed,
            iter,
            config_fingerprint: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        },
        ranks,
    }
}

proptest! {
    #[test]
    fn shard_codec_roundtrips_bit_exactly(
        stage in 0usize..4,
        dp in 0usize..3,
        iter in 0u64..1000,
        seed in 0u64..500,
    ) {
        let shard = Shard {
            iter,
            config_fingerprint: seed ^ 0xC0FFEE,
            section: section(stage, dp, seed),
        };
        let blob = shard.encode();
        let back = Shard::decode(&blob).expect("valid shard decodes");
        prop_assert_eq!(&back, &shard);
        // Bit-exact float round-trip, not just PartialEq.
        for (a, b) in shard.section.params.iter().zip(&back.section.params) {
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        // Encoding is deterministic (manifest checksums rely on this).
        prop_assert_eq!(blob, back.encode());
    }

    #[test]
    fn snapshot_to_shards_and_back_is_lossless(
        pp in 1usize..4,
        dp in 1usize..3,
        iter in 0u64..100,
        seed in 0u64..200,
    ) {
        let snap = snapshot(pp, dp, iter, seed);
        let (manifest, blobs) = snap.to_shards();
        prop_assert_eq!(manifest.world_size(), pp * dp);
        let map: std::collections::HashMap<String, Vec<u8>> = blobs.into_iter().collect();
        let back = Snapshot::from_shards(&manifest, |e: &ShardEntry| {
            Ok(map[&e.name].clone())
        }).expect("lossless");
        prop_assert_eq!(back, snap);
        // The manifest itself round-trips through its framed codec.
        let again = ShardManifest::decode(&manifest.encode()).expect("manifest decodes");
        prop_assert_eq!(again, manifest);
    }

    #[test]
    fn corrupted_shard_bytes_never_decode_silently(
        seed in 0u64..300,
        pos_mul in 0.0f64..1.0,
        flip in 1u8..255,
    ) {
        let shard = Shard {
            iter: seed,
            config_fingerprint: seed,
            section: section(seed as usize % 3, seed as usize % 2, seed),
        };
        let clean = shard.encode();
        let entry = ShardEntry::for_blob(
            shard.stage(),
            shard.dp(),
            shard_file_name(shard.stage(), shard.dp(), shard.iter),
            &clean,
        );
        let mut bytes = clean.clone();
        let pos = ((bytes.len() - 1) as f64 * pos_mul) as usize;
        bytes[pos] ^= flip;
        // The manifest-side check always notices (size or checksum).
        prop_assert!(entry.verify(&bytes).is_err(), "flip at {pos} accepted by verify");
        // The standalone decoder either rejects or — when the flip hits
        // the checksum bytes themselves it still lands in the frame's own
        // checksum check — never accepts silently.
        match Shard::decode(&bytes) {
            Err(_) => {}
            Ok(decoded) => prop_assert!(
                false,
                "flip at {pos} decoded into {:?}",
                decoded.section.stage
            ),
        }
        // Truncation at any cut is rejected by both layers.
        let cut = pos.min(clean.len() - 1);
        let truncated = matches!(entry.verify(&clean[..cut]), Err(CkptError::Truncated { .. }));
        prop_assert!(truncated, "cut at {cut} not reported as truncation");
        prop_assert!(Shard::decode(&clean[..cut]).is_err());
    }
}
