//! Classic error feedback (EF) for across-iteration gradient compression.

use crate::{Compressed, Compressor};
use opt_tensor::{Matrix, Persist, PersistError, Reader, Writer};

/// Wraps a compressor with classic error feedback: the residual of this
/// iteration's compression is added to the *next iteration's* gradient
/// before compressing.
///
/// This is the standard mechanism used by PowerSGD and ScaleCom for
/// data-parallel traffic. The paper's §7 observes its weakness: because
/// the residual is applied after the weight update, it acts on a *stale*
/// weight version — which is why naive DP compression hurts quality and
/// why Optimus-CC adds selective stage compression on top rather than
/// relying on EF alone.
///
/// # Example
///
/// ```
/// use opt_compress::{Compressor, ErrorFeedback, PowerSgd};
/// use opt_tensor::SeedStream;
///
/// let mut rng = SeedStream::new(0);
/// let mut ef = ErrorFeedback::new(PowerSgd::new(2, 1));
/// let g = rng.uniform_matrix(16, 16, 1.0);
/// let _ = ef.compress(&g);
/// assert!(ef.residual_norm() > 0.0); // lossy -> residual retained
/// ```
#[derive(Debug)]
pub struct ErrorFeedback<C> {
    inner: C,
    residual: Option<Matrix>,
}

impl<C: Compressor> ErrorFeedback<C> {
    /// Wraps `inner` with an (initially empty) residual buffer.
    pub fn new(inner: C) -> Self {
        Self {
            inner,
            residual: None,
        }
    }

    /// Frobenius norm of the current residual (0 before the first call).
    pub fn residual_norm(&self) -> f32 {
        self.residual.as_ref().map_or(0.0, Matrix::norm)
    }

    /// Extra memory held by the residual buffer, in elements. Used by the
    /// Fig. 12 memory-overhead experiment.
    pub fn residual_elems(&self) -> usize {
        self.residual.as_ref().map_or(0, Matrix::len)
    }

    /// Access to the wrapped compressor.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Consumes the wrapper, returning the wrapped compressor.
    pub fn into_inner(self) -> C {
        self.inner
    }
}

impl<C: Compressor + Persist> Persist for ErrorFeedback<C> {
    fn persist(&self, w: &mut Writer) {
        self.inner.persist(w);
        self.residual.persist(w);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            inner: C::restore(r)?,
            residual: Option::restore(r)?,
        })
    }
}

impl<C: Compressor> Compressor for ErrorFeedback<C> {
    fn compress(&mut self, grad: &Matrix) -> Compressed {
        // Fold the gradient into the retired residual buffer in place
        // (IEEE addition commutes, so `r + g` is bit-identical to the seed
        // code's `g + r`) instead of allocating a corrected copy.
        let mut corrected = match self.residual.take() {
            Some(mut r) if r.shape() == grad.shape() => {
                r.add_assign(grad);
                r
            }
            _ => grad.clone(),
        };
        let payload = self.inner.compress(&corrected);
        // Residual = corrected - decode(payload), through the sparse fast
        // path when the payload qualifies (bit-identical either way).
        payload.apply_sub(&mut corrected);
        self.residual = Some(corrected);
        payload
    }

    fn name(&self) -> &'static str {
        "error-feedback"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Identity, PowerSgd, TopK};
    use opt_tensor::SeedStream;

    #[test]
    fn lossless_inner_keeps_zero_residual() {
        let mut rng = SeedStream::new(1);
        let mut ef = ErrorFeedback::new(Identity);
        for _ in 0..3 {
            let g = rng.uniform_matrix(4, 4, 1.0);
            ef.compress(&g);
            assert!(ef.residual_norm() < 1e-6);
        }
    }

    #[test]
    fn residual_is_reinjected() {
        // With a compressor that zeroes everything (top-k density -> 1 elem
        // of a big matrix), the residual accumulates the lost mass and the
        // *sum of transmitted* gradients over time approaches the sum of
        // true gradients (EF's defining property).
        let g = Matrix::full(8, 8, 1.0);
        let mut ef = ErrorFeedback::new(TopK::new(0.02)); // keeps 2 of 64
        let mut transmitted = Matrix::zeros(8, 8);
        let steps = 200;
        for _ in 0..steps {
            transmitted.add_assign(&ef.compress(&g).decompress());
        }
        let true_sum = g.scale(steps as f32);
        // Relative error of accumulated transmission must be far below the
        // per-step loss (which is ~97 % of mass per step).
        let rel = transmitted.sub(&true_sum).norm() / true_sum.norm();
        assert!(rel < 0.2, "EF failed to recover lost mass: rel {rel}");
    }

    #[test]
    fn shape_change_resets_residual_use() {
        let mut ef = ErrorFeedback::new(PowerSgd::new(1, 0));
        let mut rng = SeedStream::new(2);
        ef.compress(&rng.uniform_matrix(8, 8, 1.0));
        // Different shape: residual must be ignored, not panic.
        let payload = ef.compress(&rng.uniform_matrix(4, 12, 1.0));
        assert_eq!(payload.dense_shape(), (4, 12));
    }

    #[test]
    fn persisted_ef_resumes_bit_exactly() {
        let mut rng = SeedStream::new(9);
        let mut ef = ErrorFeedback::new(PowerSgd::new(2, 4));
        ef.compress(&rng.uniform_matrix(10, 6, 1.0));
        let mut restored: ErrorFeedback<PowerSgd> =
            ErrorFeedback::from_bytes(&ef.to_bytes()).expect("roundtrip");
        for _ in 0..3 {
            let g = rng.uniform_matrix(10, 6, 1.0);
            assert_eq!(ef.compress(&g), restored.compress(&g));
            assert_eq!(ef.residual_norm(), restored.residual_norm());
        }
    }

    #[test]
    fn residual_elems_track_buffer() {
        let mut ef = ErrorFeedback::new(PowerSgd::new(1, 0));
        assert_eq!(ef.residual_elems(), 0);
        let mut rng = SeedStream::new(3);
        ef.compress(&rng.uniform_matrix(6, 5, 1.0));
        assert_eq!(ef.residual_elems(), 30);
    }
}
