//! Lazy error propagation (Optimus-CC §5.1) for inter-stage backpropagation.

use crate::{Compressed, Compressor};
use opt_tensor::{Matrix, Persist, PersistError, Reader, Writer};

/// Per-call statistics of the lazy-error state, used by the Fig. 11
/// reproduction (error/activation-difference independence analysis).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LinkErrorStats {
    /// Mean of the preserved error elements (paper: `Avg(eps) ~ 0`).
    pub error_mean: f32,
    /// Frobenius norm of the preserved error.
    pub error_norm: f32,
    /// Wire bytes of the payload that was produced.
    pub wire_bytes: usize,
    /// Whether this call actually compressed (epilogue sends) or passed
    /// the tensor through dense (hidden, overlapped sends).
    pub compressed: bool,
}

/// Lazy error propagation for an inter-stage (point-to-point) link.
///
/// The paper's key enabler for compressed backpropagation (§5.1): when the
/// activation gradient of micro-batch *i* is compressed, the residual
/// `eps_i = corrected - decompress(compress(corrected))` is *preserved in
/// device memory* and added to the gradient of micro-batch *i+n* of the
/// **same iteration**. Because all micro-batches execute on the same weight
/// version, the delayed error does not suffer from weight staleness — in
/// contrast to classic [`crate::ErrorFeedback`] on data-parallel traffic.
/// The residual of the last micro-batch carries into the first micro-batch
/// of the next iteration, as the paper notes at the end of §5.1.
///
/// [`LazyErrorPropagator::process`] also supports *epilogue-only
/// compression* (§5.2): sends not on the critical path pass through dense.
/// A pending residual is folded into the next send either way — delivering
/// it exactly when that send is dense.
///
/// # Example
///
/// ```
/// use opt_compress::{LazyErrorPropagator, PowerSgd};
/// use opt_tensor::SeedStream;
///
/// let mut rng = SeedStream::new(0);
/// let mut link = LazyErrorPropagator::new(PowerSgd::new(2, 1), true);
/// let g1 = rng.uniform_matrix(16, 8, 1.0);
/// let (_payload, stats) = link.process(&g1, true);
/// assert!(stats.compressed);
/// assert!(link.error_norm() > 0.0); // residual preserved for next micro-batch
/// ```
#[derive(Debug)]
pub struct LazyErrorPropagator<C> {
    inner: C,
    error: Option<Matrix>,
    lep_enabled: bool,
}

impl<C: Compressor> LazyErrorPropagator<C> {
    /// Wraps `inner`. With `lep_enabled = false` the residual is simply
    /// discarded after each compression — the "CB (Non-LEP)" ablation of
    /// the paper's Table 4.
    pub fn new(inner: C, lep_enabled: bool) -> Self {
        Self {
            inner,
            error: None,
            lep_enabled,
        }
    }

    /// Whether lazy error propagation is active.
    pub fn lep_enabled(&self) -> bool {
        self.lep_enabled
    }

    /// Processes one micro-batch's activation gradient.
    ///
    /// * `compress = true` — the send is on the pipeline epilogue (critical
    ///   path): compress it, preserving the new residual.
    /// * `compress = false` — the send is hidden by computation: transmit
    ///   dense. Any pending residual is folded in (and thereby delivered
    ///   exactly), so the buffer empties.
    ///
    /// Returns the wire payload and the post-call error statistics.
    pub fn process(&mut self, grad: &Matrix, compress: bool) -> (Compressed, LinkErrorStats) {
        let span = opt_trace::begin(opt_trace::SpanKind::Encode, 0, opt_trace::NO_MICRO, 0, 0);
        // Fold the gradient into the retired error buffer in place (IEEE
        // addition commutes, so `e + g` is bit-identical to the seed
        // code's `g + e`) instead of allocating a corrected copy.
        let corrected = match (self.error.take(), self.lep_enabled) {
            (Some(mut e), true) if e.shape() == grad.shape() => {
                e.add_assign(grad);
                e
            }
            _ => grad.clone(),
        };
        let (payload, new_error) = if compress {
            let payload = self.inner.compress(&corrected);
            // Residual = corrected - decode(payload), through the sparse
            // fast path when the payload qualifies (bit-identical either
            // way).
            let mut residual = corrected;
            payload.apply_sub(&mut residual);
            (payload, Some(residual))
        } else {
            (Compressed::Dense { matrix: corrected }, None)
        };
        self.error = if self.lep_enabled { new_error } else { None };
        let stats = LinkErrorStats {
            error_mean: self.error.as_ref().map_or(0.0, Matrix::mean_all),
            error_norm: self.error_norm(),
            wire_bytes: payload.wire_bytes(),
            compressed: compress,
        };
        span.set_bytes(stats.wire_bytes as u64);
        (payload, stats)
    }

    /// Frobenius norm of the preserved error (0 when the buffer is empty).
    pub fn error_norm(&self) -> f32 {
        self.error.as_ref().map_or(0.0, Matrix::norm)
    }

    /// Borrow of the preserved error, if any (Fig. 11 instrumentation).
    pub fn error(&self) -> Option<&Matrix> {
        self.error.as_ref()
    }

    /// Extra memory held by the error buffer, in elements (Fig. 12).
    pub fn error_elems(&self) -> usize {
        self.error.as_ref().map_or(0, Matrix::len)
    }

    /// Access to the wrapped compressor.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: Compressor + Persist> Persist for LazyErrorPropagator<C> {
    fn persist(&self, w: &mut Writer) {
        self.inner.persist(w);
        self.error.persist(w);
        w.u8(self.lep_enabled as u8);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            inner: C::restore(r)?,
            error: Option::restore(r)?,
            lep_enabled: r.u8()? != 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PowerSgd, TopK};
    use opt_tensor::SeedStream;

    #[test]
    fn uncompressed_send_delivers_pending_error_exactly() {
        let mut rng = SeedStream::new(1);
        let mut link = LazyErrorPropagator::new(PowerSgd::new(1, 2), true);
        let g1 = rng.uniform_matrix(8, 8, 1.0);
        let (p1, _) = link.process(&g1, true);
        let eps = g1.sub(&p1.decompress());
        assert!(eps.norm() > 0.0);
        // Next micro-batch goes dense: wire tensor must equal g2 + eps.
        let g2 = rng.uniform_matrix(8, 8, 1.0);
        let (p2, stats) = link.process(&g2, false);
        assert!(!stats.compressed);
        let expected = g2.add(&eps);
        assert!(p2.decompress().sub(&expected).max_abs() < 1e-5);
        assert_eq!(link.error_norm(), 0.0); // buffer emptied
    }

    #[test]
    fn total_delivered_mass_is_preserved_within_iteration() {
        // Over a full iteration (all micro-batches through the same link),
        // sum(delivered) + final residual == sum(true gradients): nothing
        // is lost, only delayed — the invariant behind the paper's Eq. 10.
        let mut rng = SeedStream::new(2);
        let mut link = LazyErrorPropagator::new(TopK::new(0.1), true);
        let micro_batches: Vec<_> = (0..8).map(|_| rng.uniform_matrix(10, 10, 1.0)).collect();
        let mut delivered = opt_tensor::Matrix::zeros(10, 10);
        let mut true_sum = opt_tensor::Matrix::zeros(10, 10);
        for g in &micro_batches {
            let (p, _) = link.process(g, true);
            delivered.add_assign(&p.decompress());
            true_sum.add_assign(g);
        }
        let residual = link.error().expect("residual present").clone();
        let reconstructed = delivered.add(&residual);
        assert!(
            reconstructed.sub(&true_sum).max_abs() < 1e-4,
            "mass not conserved: {}",
            reconstructed.sub(&true_sum).max_abs()
        );
    }

    #[test]
    fn non_lep_discards_error() {
        let mut rng = SeedStream::new(3);
        let mut link = LazyErrorPropagator::new(PowerSgd::new(1, 4), false);
        let g = rng.uniform_matrix(8, 8, 1.0);
        let (_, stats) = link.process(&g, true);
        assert_eq!(stats.error_norm, 0.0);
        assert!(link.error().is_none());
    }

    #[test]
    fn lep_reduces_accumulated_error_vs_non_lep() {
        // Compress a stream of correlated gradients; the accumulated
        // delivered sum should be closer to the true sum with LEP.
        let mut rng = SeedStream::new(4);
        let base = rng.uniform_matrix(16, 16, 1.0);
        let make_stream = |rng: &mut SeedStream| {
            (0..16)
                .map(|_| base.add(&rng.uniform_matrix(16, 16, 0.3)))
                .collect::<Vec<_>>()
        };
        let mut rng_a = SeedStream::new(99);
        let mut rng_b = SeedStream::new(99);
        let stream_a = make_stream(&mut rng_a);
        let stream_b = make_stream(&mut rng_b);
        assert_eq!(stream_a.len(), stream_b.len());

        let run = |lep: bool, stream: &[opt_tensor::Matrix]| {
            let mut link = LazyErrorPropagator::new(PowerSgd::new(2, 5), lep);
            let mut delivered = opt_tensor::Matrix::zeros(16, 16);
            let mut truth = opt_tensor::Matrix::zeros(16, 16);
            for g in stream {
                let (p, _) = link.process(g, true);
                delivered.add_assign(&p.decompress());
                truth.add_assign(g);
            }
            delivered.sub(&truth).norm() / truth.norm()
        };
        let err_lep = run(true, &stream_a);
        let err_nolep = run(false, &stream_b);
        assert!(
            err_lep < err_nolep,
            "LEP ({err_lep}) should beat non-LEP ({err_nolep})"
        );
    }

    #[test]
    fn shape_change_is_tolerated() {
        let mut rng = SeedStream::new(5);
        let mut link = LazyErrorPropagator::new(PowerSgd::new(2, 6), true);
        link.process(&rng.uniform_matrix(8, 4, 1.0), true);
        let (p, _) = link.process(&rng.uniform_matrix(4, 8, 1.0), true);
        assert_eq!(p.dense_shape(), (4, 8));
    }

    #[test]
    fn persisted_link_resumes_bit_exactly() {
        // Snapshot a link mid-stream; the restored link must deliver the
        // same payloads and residuals for the remaining micro-batches.
        let mut rng = SeedStream::new(10);
        let mut link = LazyErrorPropagator::new(PowerSgd::new(2, 3), true);
        link.process(&rng.uniform_matrix(8, 8, 1.0), true);
        let mut restored: LazyErrorPropagator<PowerSgd> =
            LazyErrorPropagator::from_bytes(&link.to_bytes()).expect("roundtrip");
        assert_eq!(restored.lep_enabled(), link.lep_enabled());
        for compress in [true, false, true] {
            let g = rng.uniform_matrix(8, 8, 1.0);
            let (pa, sa) = link.process(&g, compress);
            let (pb, sb) = restored.process(&g, compress);
            assert_eq!(pa, pb);
            assert_eq!(sa, sb);
        }
    }

    #[test]
    fn error_elems_report_buffer_size() {
        let mut rng = SeedStream::new(6);
        let mut link = LazyErrorPropagator::new(PowerSgd::new(1, 7), true);
        assert_eq!(link.error_elems(), 0);
        link.process(&rng.uniform_matrix(6, 7, 1.0), true);
        assert_eq!(link.error_elems(), 42);
    }
}
