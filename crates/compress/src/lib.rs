//! `opt-compress` — gradient compression algorithms for the Optimus-CC
//! reproduction.
//!
//! The paper (§2.3, §8) builds on three families of lossy gradient
//! compression and two error-handling mechanisms:
//!
//! * **Low-rank approximation** — [`PowerSgd`] (Vogels et al., NeurIPS'19),
//!   the compressor Optimus-CC adopts for both inter-stage backpropagation
//!   traffic and data-parallel gradients.
//! * **Top-k sparsification** — [`TopK`], the baseline shown in the paper's
//!   Fig. 3 to be unsuitable for point-to-point compression.
//! * **Quantization** — [`SignQuantizer`] (signSGD-style 1-bit) and
//!   [`TernaryQuantizer`] (TernGrad-style), included as the quantization
//!   baselines discussed in §2.3.
//! * **Error feedback** — [`ErrorFeedback`], the classic across-iteration
//!   residual correction used for data-parallel compression. The paper (§7)
//!   points out this residual is applied *after* the weight update and thus
//!   suffers from staleness.
//! * **Lazy error propagation** — [`LazyErrorPropagator`] (§5.1), the
//!   paper's contribution: the compression residual of micro-batch *i* is
//!   added to micro-batch *i+n* **within the same iteration**, before the
//!   weight update, so no staleness is introduced.
//!
//! All compressors produce a self-describing [`Compressed`] payload that
//! knows how to [`Compressed::decompress`] itself and how many bytes it
//! would occupy on the wire ([`Compressed::wire_bytes`], fp16 accounting as
//! in the paper).
//!
//! # Example
//!
//! ```
//! use opt_compress::{Compressor, PowerSgd};
//! use opt_tensor::{Matrix, SeedStream};
//!
//! let mut rng = SeedStream::new(0);
//! let grad = rng.uniform_matrix(64, 32, 1.0);
//! let mut comp = PowerSgd::new(4, 42);
//! let payload = comp.compress(&grad);
//! let approx = payload.decompress();
//! assert_eq!(approx.shape(), grad.shape());
//! assert!(payload.wire_bytes() < grad.len() * 2);
//! ```

mod error_feedback;
mod lazy;
mod payload;
mod powersgd;
mod quant;
mod topk;

pub use error_feedback::ErrorFeedback;
pub use lazy::{LazyErrorPropagator, LinkErrorStats};
pub use payload::{Compressed, PayloadKind, PayloadKindError, FP16_BYTES};
pub use powersgd::PowerSgd;
pub use quant::{SignQuantizer, TernaryQuantizer};
pub use topk::TopK;

use opt_tensor::Matrix;

/// A lossy gradient compressor.
///
/// Compressors are stateful: PowerSGD keeps its warm-start factor between
/// calls, quantizers keep RNG state. Decompression is stateless and lives
/// on [`Compressed`].
pub trait Compressor: Send {
    /// Compresses a gradient matrix into a wire payload.
    fn compress(&mut self, grad: &Matrix) -> Compressed;

    /// A short human-readable name ("powersgd", "topk", ...).
    fn name(&self) -> &'static str;

    /// Compress, then immediately decompress — the round trip every lossy
    /// link performs. Provided for convenience and tests.
    fn round_trip(&mut self, grad: &Matrix) -> Matrix {
        self.compress(grad).decompress()
    }
}

impl Compressor for Box<dyn Compressor> {
    fn compress(&mut self, grad: &Matrix) -> Compressed {
        (**self).compress(grad)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// A pass-through "compressor" used for baselines (no compression).
///
/// # Example
///
/// ```
/// use opt_compress::{Compressor, Identity};
/// use opt_tensor::Matrix;
/// let g = Matrix::full(2, 2, 3.0);
/// assert_eq!(Identity.compress(&g).decompress(), g);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Identity;

impl Compressor for Identity {
    fn compress(&mut self, grad: &Matrix) -> Compressed {
        Compressed::Dense {
            matrix: grad.clone(),
        }
    }

    fn name(&self) -> &'static str {
        "identity"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opt_tensor::SeedStream;

    #[test]
    fn identity_round_trip_is_exact() {
        let mut rng = SeedStream::new(1);
        let g = rng.uniform_matrix(5, 7, 3.0);
        assert_eq!(Identity.round_trip(&g), g);
    }

    #[test]
    fn identity_wire_bytes_match_dense_fp16() {
        let g = Matrix::zeros(10, 10);
        assert_eq!(Identity.compress(&g).wire_bytes(), 100 * FP16_BYTES);
    }
}
