//! Self-describing compressed payloads and their wire-size accounting.

use opt_tensor::{Matrix, Persist, PersistError, Reader, SparseMatrix, Writer};
use std::fmt;

/// Bytes per floating-point element on the wire.
///
/// The paper's cluster communicates activations and gradients in fp16, so
/// volume accounting uses 2 bytes per element even though our CPU numerics
/// are f32.
pub const FP16_BYTES: usize = 2;

/// Bytes per sparse index on the wire (top-k sends 32-bit indices).
const INDEX_BYTES: usize = 4;

/// The discriminant of a [`Compressed`] payload, without its data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PayloadKind {
    /// [`Compressed::Dense`].
    Dense,
    /// [`Compressed::LowRank`].
    LowRank,
    /// [`Compressed::Sparse`].
    Sparse,
    /// [`Compressed::Sign`].
    Sign,
    /// [`Compressed::Ternary`].
    Ternary,
}

impl fmt::Display for PayloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PayloadKind::Dense => "dense",
            PayloadKind::LowRank => "low-rank",
            PayloadKind::Sparse => "sparse",
            PayloadKind::Sign => "sign",
            PayloadKind::Ternary => "ternary",
        };
        f.write_str(s)
    }
}

/// Error returned by the `try_*` payload accessors when the payload holds a
/// different variant than the caller expected.
///
/// # Example
///
/// ```
/// use opt_compress::{Compressed, PayloadKind};
/// use opt_tensor::Matrix;
///
/// let payload = Compressed::Dense { matrix: Matrix::zeros(2, 2) };
/// let err = payload.try_low_rank().unwrap_err();
/// assert_eq!(err.expected, PayloadKind::LowRank);
/// assert_eq!(err.found, PayloadKind::Dense);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PayloadKindError {
    /// The variant the accessor was asked for.
    pub expected: PayloadKind,
    /// The variant the payload actually holds.
    pub found: PayloadKind,
}

impl fmt::Display for PayloadKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "expected {} payload, found {}",
            self.expected, self.found
        )
    }
}

impl std::error::Error for PayloadKindError {}

/// A compressed gradient payload.
///
/// Payloads are self-describing: they carry enough metadata to reconstruct
/// a dense approximation via [`Compressed::decompress`] and to compute the
/// exact number of bytes they would occupy on the interconnect via
/// [`Compressed::wire_bytes`].
#[derive(Debug, Clone, PartialEq)]
pub enum Compressed {
    /// Uncompressed matrix (baseline / `Identity` compressor).
    Dense {
        /// The matrix itself.
        matrix: Matrix,
    },
    /// PowerSGD low-rank factorization; decompresses to `p * q^T`.
    LowRank {
        /// Left factor, `rows x rank`, orthonormal columns.
        p: Matrix,
        /// Right factor, `cols x rank`.
        q: Matrix,
    },
    /// Top-k sparsification: `values[i]` belongs at flat index `indices[i]`.
    Sparse {
        /// Dense row count.
        rows: usize,
        /// Dense column count.
        cols: usize,
        /// Flat (row-major) indices of the kept elements.
        indices: Vec<u32>,
        /// Kept element values.
        values: Vec<f32>,
    },
    /// 1-bit sign quantization with a single positive scale.
    Sign {
        /// Dense row count.
        rows: usize,
        /// Dense column count.
        cols: usize,
        /// Reconstruction magnitude (mean absolute value).
        scale: f32,
        /// One bit per element, LSB-first within each word.
        bits: Vec<u64>,
    },
    /// Ternary quantization (TernGrad): each element in {-1, 0, +1} x scale.
    Ternary {
        /// Dense row count.
        rows: usize,
        /// Dense column count.
        cols: usize,
        /// Reconstruction magnitude (max absolute value).
        scale: f32,
        /// One entry per element.
        trits: Vec<i8>,
    },
}

impl Compressed {
    /// Reconstructs the dense approximation this payload encodes.
    ///
    /// # Example
    ///
    /// ```
    /// use opt_compress::Compressed;
    /// use opt_tensor::Matrix;
    /// let c = Compressed::Sparse {
    ///     rows: 2, cols: 2, indices: vec![3], values: vec![5.0],
    /// };
    /// assert_eq!(c.decompress()[(1, 1)], 5.0);
    /// ```
    pub fn decompress(&self) -> Matrix {
        let _span = opt_trace::begin(
            opt_trace::SpanKind::Decode,
            0,
            opt_trace::NO_MICRO,
            self.wire_bytes() as u64,
            0,
        );
        match self {
            Compressed::Dense { matrix } => matrix.clone(),
            Compressed::LowRank { p, q } => p.matmul_t(q),
            Compressed::Sparse {
                rows,
                cols,
                indices,
                values,
            } => {
                let mut m = Matrix::zeros(*rows, *cols);
                let slice = m.as_mut_slice();
                for (&idx, &v) in indices.iter().zip(values) {
                    slice[idx as usize] = v;
                }
                m
            }
            Compressed::Sign {
                rows,
                cols,
                scale,
                bits,
            } => {
                let mut m = Matrix::zeros(*rows, *cols);
                for (i, e) in m.as_mut_slice().iter_mut().enumerate() {
                    let bit = (bits[i / 64] >> (i % 64)) & 1;
                    *e = if bit == 1 { *scale } else { -*scale };
                }
                m
            }
            Compressed::Ternary {
                rows,
                cols,
                scale,
                trits,
            } => {
                let data = trits.iter().map(|&t| t as f32 * scale).collect();
                Matrix::from_vec(*rows, *cols, data)
            }
        }
    }

    /// Subtracts this payload's dense approximation from `target` in
    /// place — the error-feedback residual update — taking the sparse
    /// fast path when the payload is sparse enough.
    ///
    /// Top-k ([`Compressed::Sparse`]) and ternary payloads whose density
    /// (`nnz / (rows * cols)`) is at or below
    /// [`opt_tensor::sparse_density_max`] are applied through
    /// [`SparseMatrix`] CSR kernels, touching only the stored entries;
    /// anything else falls back to [`Compressed::decompress`] +
    /// dense subtract. The two paths are **bit-identical**: the entries
    /// the sparse path skips subtract an exact `+0.0` in the dense path
    /// (`x - (+0.0) == x` bitwise; ternary zeros decode to `+0.0` because
    /// the scale is non-negative), so the crossover knob only ever changes
    /// speed. The sparse path records its Decode span with
    /// [`opt_trace::FLAG_SPARSE`] so traces show which path ran.
    ///
    /// # Panics
    ///
    /// Panics if `target`'s shape differs from [`Compressed::dense_shape`].
    pub fn apply_sub(&self, target: &mut Matrix) {
        let threshold = opt_tensor::sparse_density_max();
        match self {
            Compressed::Sparse {
                rows,
                cols,
                indices,
                values,
            } => {
                let total = rows * cols;
                if total > 0 && values.len() as f32 <= threshold * total as f32 {
                    let _span = opt_trace::begin(
                        opt_trace::SpanKind::Decode,
                        0,
                        opt_trace::NO_MICRO,
                        self.wire_bytes() as u64,
                        opt_trace::FLAG_SPARSE,
                    );
                    SparseMatrix::from_flat_payload(*rows, *cols, indices, values).sub_from(target);
                    return;
                }
            }
            Compressed::Ternary {
                rows,
                cols,
                scale,
                trits,
            } => {
                let total = rows * cols;
                let nnz = trits.iter().filter(|&&t| t != 0).count();
                if total > 0 && nnz as f32 <= threshold * total as f32 {
                    let _span = opt_trace::begin(
                        opt_trace::SpanKind::Decode,
                        0,
                        opt_trace::NO_MICRO,
                        self.wire_bytes() as u64,
                        opt_trace::FLAG_SPARSE,
                    );
                    SparseMatrix::from_ternary(*rows, *cols, trits, *scale).sub_from(target);
                    return;
                }
            }
            _ => {}
        }
        let approx = self.decompress();
        target.sub_assign(&approx);
    }

    /// Number of bytes this payload occupies on the interconnect, using the
    /// paper's fp16 wire format for floats, 4-byte sparse indices, 1 bit
    /// per sign, and 2 bits per ternary value.
    pub fn wire_bytes(&self) -> usize {
        match self {
            Compressed::Dense { matrix } => matrix.len() * FP16_BYTES,
            Compressed::LowRank { p, q } => (p.len() + q.len()) * FP16_BYTES,
            Compressed::Sparse {
                indices, values, ..
            } => indices.len() * INDEX_BYTES + values.len() * FP16_BYTES,
            Compressed::Sign { rows, cols, .. } => (rows * cols).div_ceil(8) + 4,
            Compressed::Ternary { rows, cols, .. } => (rows * cols * 2).div_ceil(8) + 4,
        }
    }

    /// Dense shape `(rows, cols)` of the gradient this payload encodes.
    pub fn dense_shape(&self) -> (usize, usize) {
        match self {
            Compressed::Dense { matrix } => matrix.shape(),
            Compressed::LowRank { p, q } => (p.rows(), q.rows()),
            Compressed::Sparse { rows, cols, .. }
            | Compressed::Sign { rows, cols, .. }
            | Compressed::Ternary { rows, cols, .. } => (*rows, *cols),
        }
    }

    /// Compression ratio: dense wire bytes / compressed wire bytes.
    ///
    /// A ratio of 10 means the payload is 10x smaller than sending the
    /// dense fp16 matrix.
    pub fn ratio(&self) -> f64 {
        let (r, c) = self.dense_shape();
        let dense = (r * c * FP16_BYTES) as f64;
        dense / self.wire_bytes().max(1) as f64
    }

    /// The variant this payload holds.
    pub fn kind(&self) -> PayloadKind {
        match self {
            Compressed::Dense { .. } => PayloadKind::Dense,
            Compressed::LowRank { .. } => PayloadKind::LowRank,
            Compressed::Sparse { .. } => PayloadKind::Sparse,
            Compressed::Sign { .. } => PayloadKind::Sign,
            Compressed::Ternary { .. } => PayloadKind::Ternary,
        }
    }

    /// The dense matrix, if this is a [`Compressed::Dense`] payload.
    pub fn try_dense(&self) -> Result<&Matrix, PayloadKindError> {
        match self {
            Compressed::Dense { matrix } => Ok(matrix),
            other => Err(PayloadKindError {
                expected: PayloadKind::Dense,
                found: other.kind(),
            }),
        }
    }

    /// The `(P, Q)` factors, if this is a [`Compressed::LowRank`] payload.
    pub fn try_low_rank(&self) -> Result<(&Matrix, &Matrix), PayloadKindError> {
        match self {
            Compressed::LowRank { p, q } => Ok((p, q)),
            other => Err(PayloadKindError {
                expected: PayloadKind::LowRank,
                found: other.kind(),
            }),
        }
    }

    /// The `(indices, values)` pair, if this is a [`Compressed::Sparse`]
    /// payload.
    pub fn try_sparse(&self) -> Result<(&[u32], &[f32]), PayloadKindError> {
        match self {
            Compressed::Sparse {
                indices, values, ..
            } => Ok((indices, values)),
            other => Err(PayloadKindError {
                expected: PayloadKind::Sparse,
                found: other.kind(),
            }),
        }
    }

    /// The `(scale, bit words)` pair, if this is a [`Compressed::Sign`]
    /// payload.
    pub fn try_sign(&self) -> Result<(f32, &[u64]), PayloadKindError> {
        match self {
            Compressed::Sign { scale, bits, .. } => Ok((*scale, bits)),
            other => Err(PayloadKindError {
                expected: PayloadKind::Sign,
                found: other.kind(),
            }),
        }
    }

    /// The `(scale, trits)` pair, if this is a [`Compressed::Ternary`]
    /// payload.
    pub fn try_ternary(&self) -> Result<(f32, &[i8]), PayloadKindError> {
        match self {
            Compressed::Ternary { scale, trits, .. } => Ok((*scale, trits)),
            other => Err(PayloadKindError {
                expected: PayloadKind::Ternary,
                found: other.kind(),
            }),
        }
    }
}

impl Persist for Compressed {
    fn persist(&self, w: &mut Writer) {
        match self {
            Compressed::Dense { matrix } => {
                w.u8(0);
                matrix.persist(w);
            }
            Compressed::LowRank { p, q } => {
                w.u8(1);
                p.persist(w);
                q.persist(w);
            }
            Compressed::Sparse {
                rows,
                cols,
                indices,
                values,
            } => {
                w.u8(2);
                w.usize(*rows);
                w.usize(*cols);
                w.usize(indices.len());
                for &i in indices {
                    w.u32(i);
                }
                for &v in values {
                    w.f32(v);
                }
            }
            Compressed::Sign {
                rows,
                cols,
                scale,
                bits,
            } => {
                w.u8(3);
                w.usize(*rows);
                w.usize(*cols);
                w.f32(*scale);
                w.usize(bits.len());
                for &b in bits {
                    w.u64(b);
                }
            }
            Compressed::Ternary {
                rows,
                cols,
                scale,
                trits,
            } => {
                w.u8(4);
                w.usize(*rows);
                w.usize(*cols);
                w.f32(*scale);
                w.usize(trits.len());
                for &t in trits {
                    w.u8(t as u8);
                }
            }
        }
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match r.u8()? {
            0 => Ok(Compressed::Dense {
                matrix: Matrix::restore(r)?,
            }),
            1 => Ok(Compressed::LowRank {
                p: Matrix::restore(r)?,
                q: Matrix::restore(r)?,
            }),
            2 => {
                let rows = r.usize()?;
                let cols = r.usize()?;
                let len = rows.checked_mul(cols).ok_or(PersistError::Invalid {
                    what: "sparse shape overflows",
                })?;
                let n = r.checked_len(4 + 4)?;
                let mut indices = Vec::with_capacity(n);
                for _ in 0..n {
                    indices.push(r.u32()?);
                }
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    values.push(r.f32()?);
                }
                if indices.iter().any(|&i| i as usize >= len) {
                    return Err(PersistError::Invalid {
                        what: "sparse index out of bounds",
                    });
                }
                Ok(Compressed::Sparse {
                    rows,
                    cols,
                    indices,
                    values,
                })
            }
            3 => {
                let rows = r.usize()?;
                let cols = r.usize()?;
                let len = rows.checked_mul(cols).ok_or(PersistError::Invalid {
                    what: "sign shape overflows",
                })?;
                let scale = r.f32()?;
                let n = r.checked_len(8)?;
                if n < len.div_ceil(64) {
                    return Err(PersistError::Invalid {
                        what: "sign payload has too few bit words",
                    });
                }
                let mut bits = Vec::with_capacity(n);
                for _ in 0..n {
                    bits.push(r.u64()?);
                }
                Ok(Compressed::Sign {
                    rows,
                    cols,
                    scale,
                    bits,
                })
            }
            4 => {
                let rows = r.usize()?;
                let cols = r.usize()?;
                let len = rows.checked_mul(cols).ok_or(PersistError::Invalid {
                    what: "ternary shape overflows",
                })?;
                let scale = r.f32()?;
                let n = r.checked_len(1)?;
                if n != len {
                    return Err(PersistError::Invalid {
                        what: "ternary payload length mismatch",
                    });
                }
                let mut trits = Vec::with_capacity(n);
                for _ in 0..n {
                    trits.push(r.u8()? as i8);
                }
                Ok(Compressed::Ternary {
                    rows,
                    cols,
                    scale,
                    trits,
                })
            }
            tag => Err(PersistError::BadTag {
                what: "Compressed",
                tag,
            }),
        }
    }

    fn persist_len(&self) -> usize {
        // Arithmetic mirror of `persist`, so the zero-copy transport can
        // account wire bytes without serializing (one tag byte plus the
        // per-variant fields).
        1 + match self {
            Compressed::Dense { matrix } => matrix.persist_len(),
            Compressed::LowRank { p, q } => p.persist_len() + q.persist_len(),
            Compressed::Sparse {
                indices, values, ..
            } => 8 + 8 + 8 + 4 * indices.len() + 4 * values.len(),
            Compressed::Sign { bits, .. } => 8 + 8 + 4 + 8 + 8 * bits.len(),
            Compressed::Ternary { trits, .. } => 8 + 8 + 4 + 8 + trits.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]);
        let c = Compressed::Dense { matrix: m.clone() };
        assert_eq!(c.decompress(), m);
        assert_eq!(c.wire_bytes(), 4 * FP16_BYTES);
        assert_eq!(c.dense_shape(), (2, 2));
        assert!((c.ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lowrank_decompress_is_outer_product() {
        let p = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let q = Matrix::from_rows(&[&[3.0], &[4.0], &[5.0]]);
        let c = Compressed::LowRank { p, q };
        let m = c.decompress();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(1, 2)], 10.0);
        assert_eq!(c.dense_shape(), (2, 3));
    }

    #[test]
    fn sparse_scatter() {
        let c = Compressed::Sparse {
            rows: 2,
            cols: 3,
            indices: vec![0, 5],
            values: vec![7.0, -1.0],
        };
        let m = c.decompress();
        assert_eq!(m[(0, 0)], 7.0);
        assert_eq!(m[(1, 2)], -1.0);
        assert_eq!(m[(0, 1)], 0.0);
        assert_eq!(c.wire_bytes(), 2 * 4 + 2 * FP16_BYTES);
    }

    #[test]
    fn sign_bits_roundtrip() {
        // Elements: +s, -s, -s, +s
        let c = Compressed::Sign {
            rows: 2,
            cols: 2,
            scale: 0.5,
            bits: vec![0b1001],
        };
        let m = c.decompress();
        assert_eq!(m.as_slice(), &[0.5, -0.5, -0.5, 0.5]);
        assert_eq!(c.wire_bytes(), 1 + 4); // 4 bits -> 1 byte + scale
    }

    #[test]
    fn ternary_decompress() {
        let c = Compressed::Ternary {
            rows: 1,
            cols: 4,
            scale: 2.0,
            trits: vec![-1, 0, 1, 0],
        };
        assert_eq!(c.decompress().as_slice(), &[-2.0, 0.0, 2.0, 0.0]);
        assert_eq!(c.wire_bytes(), 1 + 4); // 8 bits -> 1 byte + scale
    }

    #[test]
    fn try_accessors_match_kind() {
        let dense = Compressed::Dense {
            matrix: Matrix::zeros(2, 2),
        };
        assert_eq!(dense.kind(), PayloadKind::Dense);
        assert!(dense.try_dense().is_ok());
        let err = dense.try_sparse().unwrap_err();
        assert_eq!(err.expected, PayloadKind::Sparse);
        assert_eq!(err.found, PayloadKind::Dense);
        assert_eq!(err.to_string(), "expected sparse payload, found dense");

        let sign = Compressed::Sign {
            rows: 1,
            cols: 2,
            scale: 0.5,
            bits: vec![0b10],
        };
        let (scale, bits) = sign.try_sign().expect("sign payload");
        assert_eq!(scale, 0.5);
        assert_eq!(bits, &[0b10]);
        assert!(sign.try_low_rank().is_err());

        let tern = Compressed::Ternary {
            rows: 1,
            cols: 2,
            scale: 1.0,
            trits: vec![-1, 1],
        };
        let (_, trits) = tern.try_ternary().expect("ternary payload");
        assert_eq!(trits, &[-1, 1]);
    }

    #[test]
    fn persist_roundtrip_every_variant() {
        use opt_tensor::Persist;
        let payloads = vec![
            Compressed::Dense {
                matrix: Matrix::from_rows(&[&[1.0, -2.0]]),
            },
            Compressed::LowRank {
                p: Matrix::full(3, 2, 0.5),
                q: Matrix::full(4, 2, -1.5),
            },
            Compressed::Sparse {
                rows: 2,
                cols: 3,
                indices: vec![0, 5],
                values: vec![7.0, -1.0],
            },
            Compressed::Sign {
                rows: 2,
                cols: 2,
                scale: 0.25,
                bits: vec![0b1001],
            },
            Compressed::Ternary {
                rows: 1,
                cols: 4,
                scale: 2.0,
                trits: vec![-1, 0, 1, 0],
            },
        ];
        for p in payloads {
            let back = Compressed::from_bytes(&p.to_bytes()).expect("roundtrip");
            assert_eq!(back, p);
        }
    }

    #[test]
    fn persist_len_matches_encoded_length_every_variant() {
        use opt_tensor::Persist;
        let payloads = vec![
            Compressed::Dense {
                matrix: Matrix::from_rows(&[&[1.0, -2.0]]),
            },
            Compressed::LowRank {
                p: Matrix::full(3, 2, 0.5),
                q: Matrix::full(4, 2, -1.5),
            },
            Compressed::Sparse {
                rows: 2,
                cols: 3,
                indices: vec![0, 5],
                values: vec![7.0, -1.0],
            },
            Compressed::Sign {
                rows: 2,
                cols: 2,
                scale: 0.25,
                bits: vec![0b1001],
            },
            Compressed::Ternary {
                rows: 1,
                cols: 4,
                scale: 2.0,
                trits: vec![-1, 0, 1, 0],
            },
        ];
        for p in payloads {
            assert_eq!(
                p.persist_len(),
                p.to_bytes().len(),
                "variant {:?}",
                p.kind()
            );
        }
    }

    #[test]
    fn apply_sub_sparse_and_dense_paths_are_bit_identical() {
        use opt_tensor::{set_sparse_density_max, sparse_density_max, SeedStream};
        let mut rng = SeedStream::new(42);
        let base = rng.uniform_matrix(6, 7, 1.0);
        let payloads = vec![
            Compressed::Sparse {
                rows: 6,
                cols: 7,
                indices: vec![0, 9, 13, 41],
                values: vec![0.5, -1.25, 2.0, -0.0625],
            },
            Compressed::Ternary {
                rows: 6,
                cols: 7,
                scale: 0.75,
                trits: (0..42).map(|i| [0i8, 1, 0, -1][i % 4]).collect(),
            },
            // Never sparse-eligible; exercises the fallback arm.
            Compressed::Dense {
                matrix: rng.uniform_matrix(6, 7, 1.0),
            },
        ];
        let orig = sparse_density_max();
        for payload in payloads {
            let mut dense_path = base.clone();
            set_sparse_density_max(0.0); // force densify-then-dense
            payload.apply_sub(&mut dense_path);
            let mut sparse_path = base.clone();
            set_sparse_density_max(1.0); // force the sparse path where eligible
            payload.apply_sub(&mut sparse_path);
            for (a, b) in sparse_path.as_slice().iter().zip(dense_path.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "variant {:?}", payload.kind());
            }
            // And both agree with the reference spelled out longhand.
            let mut reference = base.clone();
            reference.sub_assign(&payload.decompress());
            for (a, b) in sparse_path.as_slice().iter().zip(reference.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "variant {:?}", payload.kind());
            }
        }
        set_sparse_density_max(orig);
    }

    #[test]
    fn persist_rejects_out_of_bounds_sparse_index() {
        use opt_tensor::Persist;
        let bad = Compressed::Sparse {
            rows: 2,
            cols: 2,
            indices: vec![9],
            values: vec![1.0],
        };
        assert!(Compressed::from_bytes(&bad.to_bytes()).is_err());
    }

    #[test]
    fn ratio_reflects_lowrank_savings() {
        // 100x100 dense vs rank-2 factors (100x2 + 100x2).
        let p = Matrix::zeros(100, 2);
        let q = Matrix::zeros(100, 2);
        let c = Compressed::LowRank { p, q };
        assert!((c.ratio() - 25.0).abs() < 1e-9);
    }
}
