//! Self-describing compressed payloads and their wire-size accounting.

use opt_tensor::Matrix;

/// Bytes per floating-point element on the wire.
///
/// The paper's cluster communicates activations and gradients in fp16, so
/// volume accounting uses 2 bytes per element even though our CPU numerics
/// are f32.
pub const FP16_BYTES: usize = 2;

/// Bytes per sparse index on the wire (top-k sends 32-bit indices).
const INDEX_BYTES: usize = 4;

/// A compressed gradient payload.
///
/// Payloads are self-describing: they carry enough metadata to reconstruct
/// a dense approximation via [`Compressed::decompress`] and to compute the
/// exact number of bytes they would occupy on the interconnect via
/// [`Compressed::wire_bytes`].
#[derive(Debug, Clone, PartialEq)]
pub enum Compressed {
    /// Uncompressed matrix (baseline / `Identity` compressor).
    Dense {
        /// The matrix itself.
        matrix: Matrix,
    },
    /// PowerSGD low-rank factorization; decompresses to `p * q^T`.
    LowRank {
        /// Left factor, `rows x rank`, orthonormal columns.
        p: Matrix,
        /// Right factor, `cols x rank`.
        q: Matrix,
    },
    /// Top-k sparsification: `values[i]` belongs at flat index `indices[i]`.
    Sparse {
        /// Dense row count.
        rows: usize,
        /// Dense column count.
        cols: usize,
        /// Flat (row-major) indices of the kept elements.
        indices: Vec<u32>,
        /// Kept element values.
        values: Vec<f32>,
    },
    /// 1-bit sign quantization with a single positive scale.
    Sign {
        /// Dense row count.
        rows: usize,
        /// Dense column count.
        cols: usize,
        /// Reconstruction magnitude (mean absolute value).
        scale: f32,
        /// One bit per element, LSB-first within each word.
        bits: Vec<u64>,
    },
    /// Ternary quantization (TernGrad): each element in {-1, 0, +1} x scale.
    Ternary {
        /// Dense row count.
        rows: usize,
        /// Dense column count.
        cols: usize,
        /// Reconstruction magnitude (max absolute value).
        scale: f32,
        /// One entry per element.
        trits: Vec<i8>,
    },
}

impl Compressed {
    /// Reconstructs the dense approximation this payload encodes.
    ///
    /// # Example
    ///
    /// ```
    /// use opt_compress::Compressed;
    /// use opt_tensor::Matrix;
    /// let c = Compressed::Sparse {
    ///     rows: 2, cols: 2, indices: vec![3], values: vec![5.0],
    /// };
    /// assert_eq!(c.decompress()[(1, 1)], 5.0);
    /// ```
    pub fn decompress(&self) -> Matrix {
        match self {
            Compressed::Dense { matrix } => matrix.clone(),
            Compressed::LowRank { p, q } => p.matmul_t(q),
            Compressed::Sparse {
                rows,
                cols,
                indices,
                values,
            } => {
                let mut m = Matrix::zeros(*rows, *cols);
                let slice = m.as_mut_slice();
                for (&idx, &v) in indices.iter().zip(values) {
                    slice[idx as usize] = v;
                }
                m
            }
            Compressed::Sign {
                rows,
                cols,
                scale,
                bits,
            } => {
                let mut m = Matrix::zeros(*rows, *cols);
                for (i, e) in m.as_mut_slice().iter_mut().enumerate() {
                    let bit = (bits[i / 64] >> (i % 64)) & 1;
                    *e = if bit == 1 { *scale } else { -*scale };
                }
                m
            }
            Compressed::Ternary {
                rows,
                cols,
                scale,
                trits,
            } => {
                let data = trits.iter().map(|&t| t as f32 * scale).collect();
                Matrix::from_vec(*rows, *cols, data)
            }
        }
    }

    /// Number of bytes this payload occupies on the interconnect, using the
    /// paper's fp16 wire format for floats, 4-byte sparse indices, 1 bit
    /// per sign, and 2 bits per ternary value.
    pub fn wire_bytes(&self) -> usize {
        match self {
            Compressed::Dense { matrix } => matrix.len() * FP16_BYTES,
            Compressed::LowRank { p, q } => (p.len() + q.len()) * FP16_BYTES,
            Compressed::Sparse {
                indices, values, ..
            } => indices.len() * INDEX_BYTES + values.len() * FP16_BYTES,
            Compressed::Sign { rows, cols, .. } => (rows * cols).div_ceil(8) + 4,
            Compressed::Ternary { rows, cols, .. } => (rows * cols * 2).div_ceil(8) + 4,
        }
    }

    /// Dense shape `(rows, cols)` of the gradient this payload encodes.
    pub fn dense_shape(&self) -> (usize, usize) {
        match self {
            Compressed::Dense { matrix } => matrix.shape(),
            Compressed::LowRank { p, q } => (p.rows(), q.rows()),
            Compressed::Sparse { rows, cols, .. }
            | Compressed::Sign { rows, cols, .. }
            | Compressed::Ternary { rows, cols, .. } => (*rows, *cols),
        }
    }

    /// Compression ratio: dense wire bytes / compressed wire bytes.
    ///
    /// A ratio of 10 means the payload is 10x smaller than sending the
    /// dense fp16 matrix.
    pub fn ratio(&self) -> f64 {
        let (r, c) = self.dense_shape();
        let dense = (r * c * FP16_BYTES) as f64;
        dense / self.wire_bytes().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]);
        let c = Compressed::Dense { matrix: m.clone() };
        assert_eq!(c.decompress(), m);
        assert_eq!(c.wire_bytes(), 4 * FP16_BYTES);
        assert_eq!(c.dense_shape(), (2, 2));
        assert!((c.ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lowrank_decompress_is_outer_product() {
        let p = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let q = Matrix::from_rows(&[&[3.0], &[4.0], &[5.0]]);
        let c = Compressed::LowRank { p, q };
        let m = c.decompress();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(1, 2)], 10.0);
        assert_eq!(c.dense_shape(), (2, 3));
    }

    #[test]
    fn sparse_scatter() {
        let c = Compressed::Sparse {
            rows: 2,
            cols: 3,
            indices: vec![0, 5],
            values: vec![7.0, -1.0],
        };
        let m = c.decompress();
        assert_eq!(m[(0, 0)], 7.0);
        assert_eq!(m[(1, 2)], -1.0);
        assert_eq!(m[(0, 1)], 0.0);
        assert_eq!(c.wire_bytes(), 2 * 4 + 2 * FP16_BYTES);
    }

    #[test]
    fn sign_bits_roundtrip() {
        // Elements: +s, -s, -s, +s
        let c = Compressed::Sign {
            rows: 2,
            cols: 2,
            scale: 0.5,
            bits: vec![0b1001],
        };
        let m = c.decompress();
        assert_eq!(m.as_slice(), &[0.5, -0.5, -0.5, 0.5]);
        assert_eq!(c.wire_bytes(), 1 + 4); // 4 bits -> 1 byte + scale
    }

    #[test]
    fn ternary_decompress() {
        let c = Compressed::Ternary {
            rows: 1,
            cols: 4,
            scale: 2.0,
            trits: vec![-1, 0, 1, 0],
        };
        assert_eq!(c.decompress().as_slice(), &[-2.0, 0.0, 2.0, 0.0]);
        assert_eq!(c.wire_bytes(), 1 + 4); // 8 bits -> 1 byte + scale
    }

    #[test]
    fn ratio_reflects_lowrank_savings() {
        // 100x100 dense vs rank-2 factors (100x2 + 100x2).
        let p = Matrix::zeros(100, 2);
        let q = Matrix::zeros(100, 2);
        let c = Compressed::LowRank { p, q };
        assert!((c.ratio() - 25.0).abs() < 1e-9);
    }
}
