//! PowerSGD low-rank gradient compression (Vogels et al., NeurIPS'19).
//!
//! This is the compressor Optimus-CC adopts (§8): a *single* power
//! iteration per gradient, warm-started from the previous step's right
//! factor, with Gram–Schmidt orthogonalization of the left factor.

use crate::{Compressed, Compressor};
use opt_tensor::{
    orthonormalize_columns, Matrix, Persist, PersistError, Reader, SeedStream, Writer,
};

/// PowerSGD compressor with warm-started single power iteration.
///
/// For a gradient `M` of shape `n x m` and rank `r`:
///
/// 1. `P = M * Q_prev` (`n x r`), where `Q_prev` is the previous call's
///    right factor (or a random Gaussian on the first call),
/// 2. orthonormalize the columns of `P` (the step that dominates
///    compression time per the paper's §9.6),
/// 3. `Q = M^T * P` (`m x r`),
/// 4. transmit `(P, Q)`; the receiver reconstructs `P * Q^T`.
///
/// The warm start is what lets a single power iteration track the dominant
/// gradient subspace across steps.
///
/// # Example
///
/// ```
/// use opt_compress::{Compressor, PowerSgd};
/// use opt_tensor::{relative_error, Matrix, SeedStream};
///
/// // A rank-1 matrix is reconstructed (almost) exactly at rank >= 1.
/// let mut rng = SeedStream::new(0);
/// let u = rng.uniform_matrix(32, 1, 1.0);
/// let v = rng.uniform_matrix(16, 1, 1.0);
/// let grad = u.matmul_t(&v);
/// let mut c = PowerSgd::new(2, 7);
/// let approx = c.round_trip(&grad);
/// assert!(relative_error(&grad, &approx) < 1e-3);
/// ```
#[derive(Debug)]
pub struct PowerSgd {
    rank: usize,
    rng: SeedStream,
    /// Warm-start right factor from the previous compression of the same
    /// link, keyed implicitly by shape (reset when the shape changes).
    q_prev: Option<Matrix>,
}

impl PowerSgd {
    /// Creates a PowerSGD compressor with the given rank and RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `rank == 0`.
    pub fn new(rank: usize, seed: u64) -> Self {
        assert!(rank > 0, "PowerSGD rank must be positive");
        Self {
            rank,
            rng: SeedStream::new(seed),
            q_prev: None,
        }
    }

    /// The configured rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Drops the warm-start state (used when the link is re-purposed for a
    /// different tensor shape).
    pub fn reset(&mut self) {
        self.q_prev = None;
    }

    /// Elements held in the warm-start factor (Fig. 12 memory accounting).
    pub fn warm_start_elems(&self) -> usize {
        self.q_prev.as_ref().map_or(0, Matrix::len)
    }

    fn effective_rank(&self, rows: usize, cols: usize) -> usize {
        self.rank.min(rows).min(cols).max(1)
    }
}

impl Persist for PowerSgd {
    fn persist(&self, w: &mut Writer) {
        w.usize(self.rank);
        self.rng.persist(w);
        self.q_prev.persist(w);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let rank = r.usize()?;
        if rank == 0 {
            return Err(PersistError::Invalid {
                what: "PowerSGD rank must be positive",
            });
        }
        Ok(Self {
            rank,
            rng: SeedStream::restore(r)?,
            q_prev: Option::restore(r)?,
        })
    }
}

impl Compressor for PowerSgd {
    fn compress(&mut self, grad: &Matrix) -> Compressed {
        let (n, m) = grad.shape();
        let r = self.effective_rank(n, m);
        // Warm start against the previous right factor by reference — no
        // clone of the `m x r` factor on the hot path.
        let cold_start;
        let q_start: &Matrix = match &self.q_prev {
            Some(q) if q.shape() == (m, r) => q,
            _ => {
                cold_start = self.rng.normal_matrix(m, r, 1.0);
                &cold_start
            }
        };
        // Single power iteration.
        let mut p = grad.matmul(q_start);
        orthonormalize_columns(&mut p);
        // Reuse the retired warm-start buffer for the new right factor.
        let mut q = self.q_prev.take().unwrap_or_default();
        grad.t_matmul_into(&p, &mut q);
        self.q_prev = Some(q.clone());
        Compressed::LowRank { p, q }
    }

    fn name(&self) -> &'static str {
        "powersgd"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opt_tensor::relative_error;

    fn low_rank_matrix(rng: &mut SeedStream, n: usize, m: usize, true_rank: usize) -> Matrix {
        let a = rng.uniform_matrix(n, true_rank, 1.0);
        let b = rng.uniform_matrix(true_rank, m, 1.0);
        a.matmul(&b)
    }

    #[test]
    #[should_panic(expected = "rank must be positive")]
    fn zero_rank_panics() {
        let _ = PowerSgd::new(0, 0);
    }

    #[test]
    fn exact_recovery_of_low_rank_input() {
        let mut rng = SeedStream::new(1);
        let grad = low_rank_matrix(&mut rng, 40, 24, 3);
        let mut c = PowerSgd::new(4, 2);
        // Warm-started iterations converge on a fixed matrix.
        let mut approx = c.round_trip(&grad);
        for _ in 0..5 {
            approx = c.round_trip(&grad);
        }
        assert!(
            relative_error(&grad, &approx) < 1e-3,
            "err = {}",
            relative_error(&grad, &approx)
        );
    }

    #[test]
    fn warm_start_improves_over_cold_start() {
        let mut rng = SeedStream::new(3);
        let grad = low_rank_matrix(&mut rng, 64, 32, 6);
        let mut c = PowerSgd::new(4, 5);
        let cold = relative_error(&grad, &c.round_trip(&grad));
        // Repeated compression of the same matrix refines Q.
        for _ in 0..8 {
            c.round_trip(&grad);
        }
        let warm = relative_error(&grad, &c.round_trip(&grad));
        assert!(warm <= cold + 1e-6, "cold {cold} vs warm {warm}");
    }

    #[test]
    fn approximation_error_decreases_with_rank() {
        let mut rng = SeedStream::new(4);
        let grad = rng.uniform_matrix(48, 48, 1.0);
        let mut errs = Vec::new();
        for rank in [1usize, 4, 16, 48] {
            let mut c = PowerSgd::new(rank, 9);
            // A few warm-start refinements for a fair comparison.
            let mut approx = c.round_trip(&grad);
            for _ in 0..4 {
                approx = c.round_trip(&grad);
            }
            errs.push(relative_error(&grad, &approx));
        }
        for w in errs.windows(2) {
            assert!(w[1] <= w[0] + 1e-4, "errors not decreasing: {errs:?}");
        }
        // Full rank recovers (numerically) exactly.
        assert!(errs[3] < 1e-2, "full-rank error {}", errs[3]);
    }

    #[test]
    fn wire_bytes_shrink_with_compression() {
        let mut rng = SeedStream::new(5);
        let grad = rng.uniform_matrix(128, 128, 1.0);
        let mut c = PowerSgd::new(8, 1);
        let payload = c.compress(&grad);
        // rank-8 factors: 2 * 128 * 8 = 2048 elements vs 16384 dense.
        assert_eq!(payload.wire_bytes(), 2048 * crate::FP16_BYTES);
        assert!(payload.ratio() > 7.9);
    }

    #[test]
    fn rank_clamped_to_matrix_dims() {
        let mut c = PowerSgd::new(64, 0);
        let grad = Matrix::full(4, 3, 1.0);
        let payload = c.compress(&grad);
        let (p, q) = payload.try_low_rank().expect("low-rank payload");
        assert_eq!(p.shape(), (4, 3));
        assert_eq!(q.shape(), (3, 3));
        // Full-rank clamp recovers the matrix.
        assert!(relative_error(&grad, &payload.decompress()) < 1e-3);
    }

    #[test]
    fn shape_change_resets_warm_start() {
        let mut rng = SeedStream::new(6);
        let mut c = PowerSgd::new(2, 3);
        let a = rng.uniform_matrix(10, 8, 1.0);
        let b = rng.uniform_matrix(6, 12, 1.0);
        c.compress(&a);
        // Must not panic on shape change; q_prev is discarded.
        let payload = c.compress(&b);
        assert_eq!(payload.dense_shape(), (6, 12));
    }

    #[test]
    fn persisted_state_continues_bit_exactly() {
        // A restored compressor must produce bit-identical payloads to the
        // original — warm-start factor *and* RNG position both matter.
        let mut rng = SeedStream::new(8);
        let mut c = PowerSgd::new(3, 11);
        c.compress(&rng.uniform_matrix(12, 10, 1.0));
        let mut restored = PowerSgd::from_bytes(&c.to_bytes()).expect("state roundtrip");
        for _ in 0..4 {
            let g = rng.uniform_matrix(12, 10, 1.0);
            assert_eq!(c.compress(&g), restored.compress(&g));
        }
        // Force both back onto the cold-start path: RNG streams must agree.
        let small = rng.uniform_matrix(2, 2, 1.0);
        assert_eq!(c.compress(&small), restored.compress(&small));
    }

    #[test]
    fn restore_rejects_zero_rank() {
        let mut bytes = PowerSgd::new(1, 0).to_bytes();
        bytes[..8].copy_from_slice(&0u64.to_le_bytes());
        assert!(PowerSgd::from_bytes(&bytes).is_err());
    }

    #[test]
    fn reset_discards_state() {
        let mut rng = SeedStream::new(7);
        let grad = rng.uniform_matrix(8, 8, 1.0);
        let mut c = PowerSgd::new(2, 3);
        c.compress(&grad);
        c.reset();
        let payload = c.compress(&grad);
        assert_eq!(payload.dense_shape(), (8, 8));
    }
}
