//! Quantization compressors: signSGD-style 1-bit and TernGrad ternary.

use crate::{Compressed, Compressor};
use opt_tensor::{Matrix, SeedStream};

/// 1-bit sign quantization with mean-magnitude scaling (signSGD family).
///
/// Each element is transmitted as its sign; the receiver reconstructs
/// `sign(x) * mean(|x|)`. This preserves the expected descent direction
/// while compressing by ~16x relative to fp16.
///
/// # Example
///
/// ```
/// use opt_compress::{Compressor, SignQuantizer};
/// use opt_tensor::Matrix;
/// let g = Matrix::from_rows(&[&[2.0, -4.0]]);
/// let out = SignQuantizer::new().compress(&g).decompress();
/// assert_eq!(out.as_slice(), &[3.0, -3.0]); // mean |x| = 3
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SignQuantizer;

impl SignQuantizer {
    /// Creates a sign quantizer.
    pub fn new() -> Self {
        Self
    }
}

impl Compressor for SignQuantizer {
    fn compress(&mut self, grad: &Matrix) -> Compressed {
        let len = grad.len();
        let scale = if len == 0 {
            0.0
        } else {
            grad.as_slice().iter().map(|x| x.abs()).sum::<f32>() / len as f32
        };
        let mut bits = vec![0u64; len.div_ceil(64)];
        for (i, &x) in grad.as_slice().iter().enumerate() {
            if x >= 0.0 {
                bits[i / 64] |= 1 << (i % 64);
            }
        }
        Compressed::Sign {
            rows: grad.rows(),
            cols: grad.cols(),
            scale,
            bits,
        }
    }

    fn name(&self) -> &'static str {
        "sign1bit"
    }
}

/// TernGrad-style stochastic ternary quantization.
///
/// Each element becomes `s_t * sign(x)` with probability `|x| / s_t` and 0
/// otherwise, where `s_t = max(|x|)`. The quantization is *unbiased*:
/// `E[quantized] = x`, which is the property TernGrad's convergence proof
/// rests on and which the property tests assert.
#[derive(Debug)]
pub struct TernaryQuantizer {
    rng: SeedStream,
}

impl TernaryQuantizer {
    /// Creates a ternary quantizer with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SeedStream::new(seed),
        }
    }
}

impl Compressor for TernaryQuantizer {
    fn compress(&mut self, grad: &Matrix) -> Compressed {
        let scale = grad.max_abs();
        let trits = if scale == 0.0 {
            vec![0i8; grad.len()]
        } else {
            grad.as_slice()
                .iter()
                .map(|&x| {
                    let p = x.abs() / scale;
                    if self.rng.unit() < p {
                        if x >= 0.0 {
                            1
                        } else {
                            -1
                        }
                    } else {
                        0
                    }
                })
                .collect()
        };
        Compressed::Ternary {
            rows: grad.rows(),
            cols: grad.cols(),
            scale,
            trits,
        }
    }

    fn name(&self) -> &'static str {
        "ternary"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_preserves_signs() {
        let g = Matrix::from_rows(&[&[0.5, -1.5, 2.0, -0.1]]);
        let out = SignQuantizer::new().round_trip(&g);
        for (&orig, &rec) in g.as_slice().iter().zip(out.as_slice()) {
            assert_eq!(orig.signum(), rec.signum());
        }
    }

    #[test]
    fn sign_scale_is_mean_abs() {
        let g = Matrix::from_rows(&[&[1.0, -3.0]]);
        let payload = SignQuantizer::new().compress(&g);
        let (scale, _bits) = payload.try_sign().expect("sign payload");
        assert_eq!(scale, 2.0);
    }

    #[test]
    fn sign_handles_many_words() {
        let mut rng = SeedStream::new(1);
        let g = rng.uniform_matrix(17, 11, 1.0); // 187 elems -> 3 words
        let out = SignQuantizer::new().round_trip(&g);
        assert_eq!(out.shape(), g.shape());
        for (&orig, &rec) in g.as_slice().iter().zip(out.as_slice()) {
            assert_eq!(orig >= 0.0, rec >= 0.0);
        }
    }

    #[test]
    fn ternary_zero_matrix_stays_zero() {
        let g = Matrix::zeros(4, 4);
        let out = TernaryQuantizer::new(0).round_trip(&g);
        assert_eq!(out, g);
    }

    #[test]
    fn ternary_is_approximately_unbiased() {
        // Average many independent quantizations of a fixed vector: the
        // mean must approach the original values (TernGrad unbiasedness).
        let g = Matrix::from_rows(&[&[0.8, -0.4, 0.2, -1.0]]);
        let mut q = TernaryQuantizer::new(7);
        let trials = 4000;
        let mut acc = Matrix::zeros(1, 4);
        for _ in 0..trials {
            acc.add_assign(&q.round_trip(&g));
        }
        acc.scale_assign(1.0 / trials as f32);
        for (&orig, &est) in g.as_slice().iter().zip(acc.as_slice()) {
            assert!((orig - est).abs() < 0.05, "bias at {orig}: est {est}");
        }
    }

    #[test]
    fn ternary_values_in_support() {
        let mut rng = SeedStream::new(2);
        let g = rng.uniform_matrix(8, 8, 2.0);
        let scale = g.max_abs();
        let out = TernaryQuantizer::new(3).round_trip(&g);
        for &v in out.as_slice() {
            assert!(
                v == 0.0 || (v.abs() - scale).abs() < 1e-6,
                "value {v} outside ternary support"
            );
        }
    }

    #[test]
    fn quantizers_compress_hard() {
        let mut rng = SeedStream::new(4);
        let g = rng.uniform_matrix(64, 64, 1.0);
        let sign = SignQuantizer::new().compress(&g);
        let tern = TernaryQuantizer::new(1).compress(&g);
        assert!(sign.ratio() > 14.0, "sign ratio {}", sign.ratio());
        assert!(tern.ratio() > 7.0, "ternary ratio {}", tern.ratio());
    }
}
