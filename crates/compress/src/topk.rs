//! Top-k sparsification (Deep Gradient Compression style).

use crate::{Compressed, Compressor};
use opt_tensor::{Matrix, Persist, PersistError, Reader, Writer};

/// Keeps the `k` largest-magnitude elements of each gradient.
///
/// `k` is derived from a target density: `k = ceil(density * len)`, with at
/// least one element kept. The paper's Fig. 3 shows this family performs
/// poorly on point-to-point (inter-stage) traffic — reproduced by the
/// `fig03_motivation` experiment — because each micro-batch's activation
/// gradient has a different support, so the warm-start/error dynamics that
/// help all-reduce compression do not transfer.
///
/// # Example
///
/// ```
/// use opt_compress::{Compressor, TopK};
/// use opt_tensor::Matrix;
///
/// let g = Matrix::from_rows(&[&[0.1, -5.0], &[3.0, 0.2]]);
/// let mut c = TopK::new(0.5);
/// let approx = c.compress(&g).decompress();
/// assert_eq!(approx[(0, 1)], -5.0); // kept
/// assert_eq!(approx[(0, 0)], 0.0);  // dropped
/// ```
#[derive(Debug, Clone)]
pub struct TopK {
    density: f64,
}

impl TopK {
    /// Creates a top-k compressor keeping a `density` fraction of elements.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < density <= 1.0`.
    pub fn new(density: f64) -> Self {
        assert!(density > 0.0 && density <= 1.0, "density must be in (0, 1]");
        Self { density }
    }

    /// The configured density.
    pub fn density(&self) -> f64 {
        self.density
    }

    /// Number of elements kept for a gradient with `len` elements.
    pub fn k_for_len(&self, len: usize) -> usize {
        ((self.density * len as f64).ceil() as usize).clamp(1, len.max(1))
    }
}

impl Persist for TopK {
    fn persist(&self, w: &mut Writer) {
        w.f64(self.density);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let density = r.f64()?;
        if !(density > 0.0 && density <= 1.0) {
            return Err(PersistError::Invalid {
                what: "top-k density must be in (0, 1]",
            });
        }
        Ok(Self { density })
    }
}

impl Compressor for TopK {
    fn compress(&mut self, grad: &Matrix) -> Compressed {
        let len = grad.len();
        let k = self.k_for_len(len);
        // Partial selection: indices sorted by |value| descending.
        let mut order: Vec<u32> = (0..len as u32).collect();
        let data = grad.as_slice();
        order.select_nth_unstable_by(k.saturating_sub(1), |&a, &b| {
            data[b as usize]
                .abs()
                .partial_cmp(&data[a as usize].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut indices: Vec<u32> = order[..k].to_vec();
        indices.sort_unstable();
        let values = indices.iter().map(|&i| data[i as usize]).collect();
        Compressed::Sparse {
            rows: grad.rows(),
            cols: grad.cols(),
            indices,
            values,
        }
    }

    fn name(&self) -> &'static str {
        "topk"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opt_tensor::SeedStream;

    #[test]
    #[should_panic(expected = "density must be in (0, 1]")]
    fn zero_density_panics() {
        let _ = TopK::new(0.0);
    }

    #[test]
    fn keeps_largest_magnitudes() {
        let g = Matrix::from_rows(&[&[1.0, -10.0, 0.5, 7.0]]);
        let mut c = TopK::new(0.5);
        let out = c.compress(&g).decompress();
        assert_eq!(out.as_slice(), &[0.0, -10.0, 0.0, 7.0]);
    }

    #[test]
    fn density_one_is_lossless() {
        let mut rng = SeedStream::new(2);
        let g = rng.uniform_matrix(6, 6, 3.0);
        let mut c = TopK::new(1.0);
        assert_eq!(c.round_trip(&g), g);
    }

    #[test]
    fn k_at_least_one() {
        let c = TopK::new(0.001);
        assert_eq!(c.k_for_len(10), 1);
    }

    #[test]
    fn wire_bytes_scale_with_density() {
        let mut rng = SeedStream::new(3);
        let g = rng.uniform_matrix(100, 10, 1.0);
        let mut small = TopK::new(0.01);
        let mut large = TopK::new(0.5);
        assert!(small.compress(&g).wire_bytes() < large.compress(&g).wire_bytes());
    }

    #[test]
    fn reconstruction_error_decreases_with_density() {
        let mut rng = SeedStream::new(4);
        let g = rng.uniform_matrix(32, 32, 1.0);
        let mut prev_err = f32::INFINITY;
        for density in [0.05, 0.25, 0.75, 1.0] {
            let mut c = TopK::new(density);
            let err = g.sub(&c.round_trip(&g)).norm();
            assert!(
                err <= prev_err + 1e-6,
                "density {density}: {err} > {prev_err}"
            );
            prev_err = err;
        }
        assert!(prev_err < 1e-6); // density 1.0 exact
    }

    #[test]
    fn indices_are_sorted_and_unique() {
        let mut rng = SeedStream::new(5);
        let g = rng.uniform_matrix(16, 16, 1.0);
        let mut c = TopK::new(0.3);
        let payload = c.compress(&g);
        let (indices, _values) = payload.try_sparse().expect("sparse payload");
        for w in indices.windows(2) {
            assert!(w[0] < w[1], "indices not strictly increasing");
        }
    }

    #[test]
    fn persist_roundtrip_preserves_density() {
        let c = TopK::new(0.37);
        let back = TopK::from_bytes(&c.to_bytes()).expect("roundtrip");
        assert_eq!(back.density(), 0.37);
        let mut bytes = c.to_bytes();
        bytes[..8].copy_from_slice(&2.0f64.to_bits().to_le_bytes());
        assert!(TopK::from_bytes(&bytes).is_err(), "density > 1 rejected");
    }
}
