//! Property-based tests on compression invariants.

use opt_compress::{
    Compressed, Compressor, ErrorFeedback, Identity, LazyErrorPropagator, PowerSgd, SignQuantizer,
    TernaryQuantizer, TopK,
};
use opt_tensor::{Matrix, Persist, SeedStream};
use proptest::prelude::*;

proptest! {
    #[test]
    fn powersgd_shape_preserved(rows in 1usize..24, cols in 1usize..24, rank in 1usize..8, seed in 0u64..200) {
        let mut rng = SeedStream::new(seed);
        let g = rng.uniform_matrix(rows, cols, 1.0);
        let mut c = PowerSgd::new(rank, seed);
        let out = c.round_trip(&g);
        prop_assert_eq!(out.shape(), g.shape());
        prop_assert!(out.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn powersgd_wire_bytes_formula(rows in 1usize..32, cols in 1usize..32, rank in 1usize..8, seed in 0u64..100) {
        let mut rng = SeedStream::new(seed);
        let g = rng.uniform_matrix(rows, cols, 1.0);
        let mut c = PowerSgd::new(rank, seed);
        let payload = c.compress(&g);
        let r = rank.min(rows).min(cols).max(1);
        prop_assert_eq!(payload.wire_bytes(), (rows * r + cols * r) * opt_compress::FP16_BYTES);
    }

    #[test]
    fn topk_never_increases_norm(rows in 1usize..16, cols in 1usize..16, density in 0.01f64..1.0, seed in 0u64..200) {
        let mut rng = SeedStream::new(seed);
        let g = rng.uniform_matrix(rows, cols, 5.0);
        let mut c = TopK::new(density);
        let out = c.round_trip(&g);
        prop_assert!(out.norm() <= g.norm() + 1e-4);
    }

    #[test]
    fn topk_kept_values_are_exact(seed in 0u64..200) {
        let mut rng = SeedStream::new(seed);
        let g = rng.uniform_matrix(8, 8, 3.0);
        let mut c = TopK::new(0.25);
        let out = c.round_trip(&g);
        for (o, r) in g.as_slice().iter().zip(out.as_slice()) {
            prop_assert!(*r == 0.0 || r == o);
        }
    }

    #[test]
    fn sign_reconstruction_has_constant_magnitude(seed in 0u64..200) {
        let mut rng = SeedStream::new(seed);
        let g = rng.uniform_matrix(4, 9, 2.0);
        let out = SignQuantizer::new().round_trip(&g);
        let mag = out.as_slice()[0].abs();
        for &v in out.as_slice() {
            prop_assert!((v.abs() - mag).abs() < 1e-6);
        }
    }

    #[test]
    fn error_feedback_residual_equals_loss(seed in 0u64..200) {
        // After one EF step from empty state: residual == grad - decompressed.
        let mut rng = SeedStream::new(seed);
        let g = rng.uniform_matrix(12, 6, 1.0);
        let mut ef = ErrorFeedback::new(PowerSgd::new(2, seed));
        let payload = ef.compress(&g);
        let loss = g.sub(&payload.decompress()).norm();
        prop_assert!((ef.residual_norm() - loss).abs() < 1e-4);
    }

    #[test]
    fn lazy_error_mass_conservation(seed in 0u64..100, n_micro in 1usize..12) {
        let mut rng = SeedStream::new(seed);
        let mut link = LazyErrorPropagator::new(PowerSgd::new(1, seed), true);
        let mut delivered = Matrix::zeros(6, 6);
        let mut truth = Matrix::zeros(6, 6);
        for _ in 0..n_micro {
            let g = rng.uniform_matrix(6, 6, 1.0);
            let (p, _) = link.process(&g, true);
            delivered.add_assign(&p.decompress());
            truth.add_assign(&g);
        }
        if let Some(resid) = link.error() {
            delivered.add_assign(resid);
        }
        prop_assert!(delivered.sub(&truth).max_abs() < 1e-3);
    }

    #[test]
    fn identity_is_lossless(rows in 1usize..10, cols in 1usize..10, seed in 0u64..200) {
        let mut rng = SeedStream::new(seed);
        let g = rng.uniform_matrix(rows, cols, 10.0);
        prop_assert_eq!(Identity.round_trip(&g), g);
    }

    #[test]
    fn payload_codec_roundtrip_is_identity(rows in 1usize..16, cols in 1usize..16, seed in 0u64..200) {
        // The on-disk codec and the in-memory payloads share one invariant:
        // encode/decode is the identity on every payload family the
        // compressors can emit (dense, low-rank, top-k sparse, sign,
        // ternary). Equality on `Compressed` is exact (bit-level floats).
        let mut rng = SeedStream::new(seed);
        let g = rng.uniform_matrix(rows, cols, 2.0);
        let payloads = vec![
            Identity.compress(&g),
            PowerSgd::new(1 + (seed as usize % 4), seed).compress(&g),
            TopK::new(0.25).compress(&g),
            SignQuantizer::new().compress(&g),
            TernaryQuantizer::new(seed).compress(&g),
        ];
        for p in payloads {
            let back = Compressed::from_bytes(&p.to_bytes());
            prop_assert_eq!(back.as_ref(), Ok(&p));
            // Decoded payloads reconstruct the same dense matrix.
            prop_assert_eq!(back.unwrap().decompress(), p.decompress());
        }
    }

    #[test]
    fn payload_codec_rejects_truncation(seed in 0u64..100, cut in 1usize..12) {
        let mut rng = SeedStream::new(seed);
        let g = rng.uniform_matrix(6, 5, 1.0);
        let bytes = TopK::new(0.4).compress(&g).to_bytes();
        let cut = cut.min(bytes.len() - 1);
        prop_assert!(Compressed::from_bytes(&bytes[..bytes.len() - cut]).is_err());
    }

    #[test]
    fn compressor_state_codec_roundtrip(seed in 0u64..100, rank in 1usize..5) {
        // Stateful compressor checkpointing: a restored PowerSGD (alone or
        // wrapped in LEP / EF) continues bit-exactly.
        let mut rng = SeedStream::new(seed);
        let mut c = PowerSgd::new(rank, seed ^ 1);
        c.compress(&rng.uniform_matrix(9, 7, 1.0));
        let mut c2 = PowerSgd::from_bytes(&c.to_bytes()).unwrap();
        let g = rng.uniform_matrix(9, 7, 1.0);
        prop_assert_eq!(c.compress(&g), c2.compress(&g));

        let mut lep = LazyErrorPropagator::new(PowerSgd::new(rank, seed ^ 2), true);
        lep.process(&rng.uniform_matrix(9, 7, 1.0), true);
        let mut lep2: LazyErrorPropagator<PowerSgd> =
            LazyErrorPropagator::from_bytes(&lep.to_bytes()).unwrap();
        let g = rng.uniform_matrix(9, 7, 1.0);
        let (pa, _) = lep.process(&g, true);
        let (pb, _) = lep2.process(&g, true);
        prop_assert_eq!(pa, pb);
    }

    #[test]
    fn all_payloads_report_consistent_shape(seed in 0u64..100) {
        let mut rng = SeedStream::new(seed);
        let g = rng.uniform_matrix(7, 5, 1.0);
        let payloads = vec![
            Identity.compress(&g),
            PowerSgd::new(2, seed).compress(&g),
            TopK::new(0.3).compress(&g),
            SignQuantizer::new().compress(&g),
        ];
        for p in payloads {
            prop_assert_eq!(p.dense_shape(), (7, 5));
            prop_assert_eq!(p.decompress().shape(), (7, 5));
            prop_assert!(p.wire_bytes() > 0);
        }
    }
}
