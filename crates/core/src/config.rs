//! Quality-experiment configuration (the numerical twin of `opt-sim`'s
//! `CompressionPlan`).

use opt_data::SyntheticCorpus;
use opt_model::GptConfig;

/// Which compressor compressed backpropagation uses on the inter-stage
/// link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CbMethod {
    /// PowerSGD low-rank factorization at the given rank (the paper's
    /// choice, §8).
    LowRank(usize),
    /// Top-k sparsification at the given density (the "Opt-CC (TopK)"
    /// bar of Fig. 3, shown by the paper to be unsuitable for p2p).
    TopK(f64),
}

/// Compressed-backpropagation quality knobs (§5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CbQuality {
    /// Compression method for the backward inter-stage traffic.
    pub method: CbMethod,
    /// Compress only epilogue sends (§5.2).
    pub epilogue_only: bool,
    /// Lazy error propagation on/off (§5.1; Table 4's LEP ablation).
    pub lazy_error: bool,
}

impl CbQuality {
    /// The paper's setting for the small numerical model: low-rank with
    /// LEP and epilogue-only compression.
    pub fn paper(rank: usize) -> Self {
        Self {
            method: CbMethod::LowRank(rank),
            epilogue_only: true,
            lazy_error: true,
        }
    }
}

/// Selective-stage-compression quality knobs (§7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScQuality {
    /// Fraction of stages (earliest first) whose DP traffic is compressed.
    pub fraction: f64,
    /// PowerSGD rank for DP gradients.
    pub rank: usize,
}

/// The full compression configuration of a quality experiment.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QualityConfig {
    /// Compressed backpropagation.
    pub cb: Option<CbQuality>,
    /// Fused embedding synchronization.
    pub fused_embedding: bool,
    /// Selective stage compression.
    pub sc: Option<ScQuality>,
    /// Naive DP compression of *all* stages at the given rank (Fig. 3
    /// "naive DP", Fig. 13 rank sweep).
    pub naive_dp_rank: Option<usize>,
}

impl QualityConfig {
    /// Default CB rank for the small numerical model (hidden 32): rank 4
    /// keeps roughly the paper's ~10x compression ratio on the
    /// `(micro*seq) x hidden` activation matrix.
    pub const SMALL_CB_RANK: usize = 4;
    /// Default DP rank for the small numerical model.
    pub const SMALL_DP_RANK: usize = 4;

    /// Megatron-LM baseline: no compression.
    pub fn baseline() -> Self {
        Self::default()
    }

    /// Compressed backpropagation only.
    pub fn cb() -> Self {
        Self {
            cb: Some(CbQuality::paper(Self::SMALL_CB_RANK)),
            ..Self::default()
        }
    }

    /// CB without lazy error propagation (Table 4 "CB (Non-LEP)").
    pub fn cb_non_lep() -> Self {
        Self {
            cb: Some(CbQuality {
                lazy_error: false,
                ..CbQuality::paper(Self::SMALL_CB_RANK)
            }),
            ..Self::default()
        }
    }

    /// CB + fused embedding synchronization.
    pub fn cb_fe() -> Self {
        Self {
            fused_embedding: true,
            ..Self::cb()
        }
    }

    /// Full Optimus-CC: CB + FE + selective stage compression at the
    /// paper's 75 % fraction.
    pub fn cb_fe_sc() -> Self {
        Self {
            sc: Some(ScQuality {
                fraction: 0.75,
                rank: Self::SMALL_DP_RANK,
            }),
            ..Self::cb_fe()
        }
    }

    /// Naive full-DP compression (Fig. 3 "naive DP").
    pub fn naive_dp(rank: usize) -> Self {
        Self {
            naive_dp_rank: Some(rank),
            ..Self::default()
        }
    }

    /// Naive CB: compress every backward send, no LEP (Fig. 3 "naive CB").
    pub fn naive_cb(rank: usize) -> Self {
        Self {
            cb: Some(CbQuality {
                method: CbMethod::LowRank(rank),
                epilogue_only: false,
                lazy_error: false,
            }),
            ..Self::default()
        }
    }

    /// Full Optimus-CC but with top-k inter-stage compression (Fig. 3
    /// "Opt-CC (TopK)") — the paper's evidence that top-k is unsuitable
    /// for point-to-point traffic.
    pub fn cb_topk(density: f64) -> Self {
        Self {
            cb: Some(CbQuality {
                method: CbMethod::TopK(density),
                epilogue_only: true,
                lazy_error: true,
            }),
            ..Self::cb_fe_sc()
        }
    }

    /// Table 2 column order for quality experiments.
    pub fn table2_columns() -> Vec<(&'static str, QualityConfig)> {
        vec![
            ("Baseline", Self::baseline()),
            ("CB", Self::cb()),
            ("CB+FE", Self::cb_fe()),
            ("CB+FE+SC", Self::cb_fe_sc()),
        ]
    }
}

/// Full configuration of a numerical training run.
#[derive(Debug, Clone)]
pub struct TrainerConfig {
    /// Model architecture (small, trainable configs).
    pub model: GptConfig,
    /// Pipeline stages.
    pub pp: usize,
    /// Data-parallel ways.
    pub dp: usize,
    /// Sequences per micro-batch.
    pub micro_batch: usize,
    /// Micro-batches per iteration.
    pub n_micro: usize,
    /// Training iterations.
    pub iters: u64,
    /// Adam learning rate.
    pub lr: f32,
    /// Master seed (weights, data, compressors).
    pub seed: u64,
    /// Compression configuration under test.
    pub quality: QualityConfig,
    /// Run validation every this many iterations (0 = only at the end).
    pub validate_every: u64,
    /// Sequences per validation batch.
    pub val_sequences: usize,
    /// Collect Fig. 11 error statistics (costs memory/time).
    pub collect_error_stats: bool,
    /// Fraction of repetition-structured sequences in the corpus.
    pub repeat_fraction: f64,
}

impl TrainerConfig {
    /// A small 4-stage, 2-way-DP configuration used by most quality
    /// experiments: GPT-small (4 layers, hidden 32, vocab 64).
    pub fn small_test(quality: QualityConfig, iters: u64) -> Self {
        Self {
            model: GptConfig::small(),
            pp: 4,
            dp: 2,
            micro_batch: 4,
            n_micro: 8,
            iters,
            lr: 2e-3,
            seed: 1234,
            quality,
            validate_every: 10,
            val_sequences: 32,
            collect_error_stats: false,
            repeat_fraction: 0.5,
        }
    }

    /// A tiny 2-stage configuration for fast unit tests.
    pub fn tiny_test(quality: QualityConfig, iters: u64) -> Self {
        Self {
            model: GptConfig::tiny(),
            pp: 2,
            dp: 2,
            micro_batch: 2,
            n_micro: 4,
            iters,
            lr: 3e-3,
            seed: 7,
            quality,
            validate_every: 0,
            val_sequences: 16,
            collect_error_stats: false,
            repeat_fraction: 0.5,
        }
    }

    /// The corpus this run trains on (a pure function of the config).
    pub fn corpus(&self) -> SyntheticCorpus {
        SyntheticCorpus::new(
            self.model.vocab,
            self.model.seq_len,
            self.repeat_fraction,
            self.seed ^ 0xDA7A,
        )
    }

    /// Number of earliest stages covered by selective stage compression.
    pub fn sc_stage_count(&self) -> usize {
        match (self.quality.sc, self.quality.naive_dp_rank) {
            (Some(sc), _) => ((sc.fraction * self.pp as f64).round() as usize).min(self.pp),
            (None, Some(_)) => self.pp,
            (None, None) => 0,
        }
    }

    /// The DP compression rank in effect (SC or naive), if any.
    pub fn dp_rank(&self) -> Option<usize> {
        self.quality
            .sc
            .map(|s| s.rank)
            .or(self.quality.naive_dp_rank)
    }

    /// Fingerprint over every *state-affecting* configuration field, used
    /// to refuse restoring a snapshot into an incompatible run.
    ///
    /// Fields that change what training state means (model shape,
    /// parallelism, batching, seed, learning rate, compression plan, data
    /// mix) are hashed; fields that only change observation (`iters`,
    /// `validate_every`, `val_sequences`, `collect_error_stats`) are not —
    /// resuming a snapshot to train *longer* or validate *more often* is
    /// legitimate.
    pub fn fingerprint(&self) -> u64 {
        use opt_tensor::Writer;
        let mut w = Writer::new();
        w.usize(self.model.n_layers);
        w.usize(self.model.hidden);
        w.usize(self.model.heads);
        w.usize(self.model.vocab);
        w.usize(self.model.seq_len);
        w.usize(self.pp);
        w.usize(self.dp);
        w.usize(self.micro_batch);
        w.usize(self.n_micro);
        w.f32(self.lr);
        w.u64(self.seed);
        w.f64(self.repeat_fraction);
        match self.quality.cb {
            None => w.u8(0),
            Some(cb) => {
                w.u8(1);
                match cb.method {
                    CbMethod::LowRank(rank) => {
                        w.u8(0);
                        w.usize(rank);
                    }
                    CbMethod::TopK(density) => {
                        w.u8(1);
                        w.f64(density);
                    }
                }
                w.u8(cb.epilogue_only as u8);
                w.u8(cb.lazy_error as u8);
            }
        }
        w.u8(self.quality.fused_embedding as u8);
        match self.quality.sc {
            None => w.u8(0),
            Some(sc) => {
                w.u8(1);
                w.f64(sc.fraction);
                w.usize(sc.rank);
            }
        }
        match self.quality.naive_dp_rank {
            None => w.u8(0),
            Some(rank) => {
                w.u8(1);
                w.usize(rank);
            }
        }
        opt_ckpt::fnv1a64(&w.into_bytes())
    }
}

impl opt_tensor::Persist for TrainerConfig {
    fn persist(&self, w: &mut opt_tensor::Writer) {
        self.model.name.persist(w);
        w.usize(self.model.n_layers);
        w.usize(self.model.hidden);
        w.usize(self.model.heads);
        w.usize(self.model.vocab);
        w.usize(self.model.seq_len);
        w.usize(self.pp);
        w.usize(self.dp);
        w.usize(self.micro_batch);
        w.usize(self.n_micro);
        w.u64(self.iters);
        w.f32(self.lr);
        w.u64(self.seed);
        match self.quality.cb {
            None => w.u8(0),
            Some(cb) => {
                w.u8(1);
                match cb.method {
                    CbMethod::LowRank(rank) => {
                        w.u8(0);
                        w.usize(rank);
                    }
                    CbMethod::TopK(density) => {
                        w.u8(1);
                        w.f64(density);
                    }
                }
                w.u8(cb.epilogue_only as u8);
                w.u8(cb.lazy_error as u8);
            }
        }
        w.u8(self.quality.fused_embedding as u8);
        match self.quality.sc {
            None => w.u8(0),
            Some(sc) => {
                w.u8(1);
                w.f64(sc.fraction);
                w.usize(sc.rank);
            }
        }
        match self.quality.naive_dp_rank {
            None => w.u8(0),
            Some(rank) => {
                w.u8(1);
                w.usize(rank);
            }
        }
        w.u64(self.validate_every);
        w.usize(self.val_sequences);
        w.u8(self.collect_error_stats as u8);
        w.f64(self.repeat_fraction);
    }

    fn restore(r: &mut opt_tensor::Reader<'_>) -> Result<Self, opt_tensor::PersistError> {
        use opt_tensor::PersistError;
        let flag = |r: &mut opt_tensor::Reader<'_>, what| match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(PersistError::BadTag { what, tag }),
        };
        let model = GptConfig {
            name: String::restore(r)?,
            n_layers: r.usize()?,
            hidden: r.usize()?,
            heads: r.usize()?,
            vocab: r.usize()?,
            seq_len: r.usize()?,
        };
        let pp = r.usize()?;
        let dp = r.usize()?;
        let micro_batch = r.usize()?;
        let n_micro = r.usize()?;
        let iters = r.u64()?;
        let lr = r.f32()?;
        let seed = r.u64()?;
        let cb = match r.u8()? {
            0 => None,
            1 => {
                let method = match r.u8()? {
                    0 => CbMethod::LowRank(r.usize()?),
                    1 => CbMethod::TopK(r.f64()?),
                    tag => {
                        return Err(PersistError::BadTag {
                            what: "CbMethod",
                            tag,
                        })
                    }
                };
                Some(CbQuality {
                    method,
                    epilogue_only: flag(r, "CbQuality.epilogue_only")?,
                    lazy_error: flag(r, "CbQuality.lazy_error")?,
                })
            }
            tag => {
                return Err(PersistError::BadTag {
                    what: "CbQuality",
                    tag,
                })
            }
        };
        let fused_embedding = flag(r, "QualityConfig.fused_embedding")?;
        let sc = match r.u8()? {
            0 => None,
            1 => Some(ScQuality {
                fraction: r.f64()?,
                rank: r.usize()?,
            }),
            tag => {
                return Err(PersistError::BadTag {
                    what: "ScQuality",
                    tag,
                })
            }
        };
        let naive_dp_rank = match r.u8()? {
            0 => None,
            1 => Some(r.usize()?),
            tag => {
                return Err(PersistError::BadTag {
                    what: "naive_dp_rank",
                    tag,
                })
            }
        };
        Ok(TrainerConfig {
            model,
            pp,
            dp,
            micro_batch,
            n_micro,
            iters,
            lr,
            seed,
            quality: QualityConfig {
                cb,
                fused_embedding,
                sc,
                naive_dp_rank,
            },
            validate_every: r.u64()?,
            val_sequences: r.usize()?,
            collect_error_stats: flag(r, "collect_error_stats")?,
            repeat_fraction: r.f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_compose() {
        assert!(QualityConfig::baseline().cb.is_none());
        assert!(QualityConfig::cb().cb.unwrap().lazy_error);
        assert!(!QualityConfig::cb_non_lep().cb.unwrap().lazy_error);
        assert!(QualityConfig::cb_fe().fused_embedding);
        assert!(QualityConfig::cb_fe_sc().sc.is_some());
        assert!(matches!(
            QualityConfig::cb_topk(0.1).cb.unwrap().method,
            CbMethod::TopK(_)
        ));
        assert!(!QualityConfig::naive_cb(4).cb.unwrap().epilogue_only);
    }

    #[test]
    fn sc_stage_count_follows_fraction() {
        let mut cfg = TrainerConfig::small_test(QualityConfig::cb_fe_sc(), 1);
        assert_eq!(cfg.sc_stage_count(), 3); // 0.75 * 4
        cfg.quality = QualityConfig::naive_dp(4);
        assert_eq!(cfg.sc_stage_count(), 4);
        cfg.quality = QualityConfig::baseline();
        assert_eq!(cfg.sc_stage_count(), 0);
    }

    #[test]
    fn fingerprint_tracks_state_affecting_fields_only() {
        let base = TrainerConfig::small_test(QualityConfig::cb_fe_sc(), 10);
        let fp = base.fingerprint();
        assert_eq!(fp, base.clone().fingerprint(), "fingerprint is stable");

        // Observation-only fields do not change the fingerprint.
        let mut obs = base.clone();
        obs.iters = 999;
        obs.validate_every = 1;
        obs.val_sequences = 4;
        obs.collect_error_stats = true;
        assert_eq!(obs.fingerprint(), fp);

        // State-affecting fields do.
        let mut seed = base.clone();
        seed.seed ^= 1;
        assert_ne!(seed.fingerprint(), fp);
        let mut quality = base.clone();
        quality.quality = QualityConfig::baseline();
        assert_ne!(quality.fingerprint(), fp);
        let mut shape = base;
        shape.n_micro += 1;
        assert_ne!(shape.fingerprint(), fp);
    }

    #[test]
    fn config_wire_codec_roundtrips() {
        use opt_tensor::Persist;
        for cfg in [
            TrainerConfig::small_test(QualityConfig::cb_fe_sc(), 10),
            TrainerConfig::tiny_test(QualityConfig::baseline(), 3),
            TrainerConfig::tiny_test(QualityConfig::cb_topk(0.1), 5),
            TrainerConfig::tiny_test(QualityConfig::naive_dp(2), 5),
            TrainerConfig::tiny_test(QualityConfig::cb_non_lep(), 4),
        ] {
            let back = TrainerConfig::from_bytes(&cfg.to_bytes()).expect("roundtrip");
            // The fingerprint covers every state-affecting field; check
            // the observation-only fields separately.
            assert_eq!(back.fingerprint(), cfg.fingerprint());
            assert_eq!(back.model.name, cfg.model.name);
            assert_eq!(back.iters, cfg.iters);
            assert_eq!(back.validate_every, cfg.validate_every);
            assert_eq!(back.val_sequences, cfg.val_sequences);
            assert_eq!(back.collect_error_stats, cfg.collect_error_stats);
        }
    }

    #[test]
    fn corpus_is_deterministic() {
        let cfg = TrainerConfig::small_test(QualityConfig::baseline(), 1);
        assert_eq!(
            cfg.corpus().train_batch(2, 0),
            cfg.corpus().train_batch(2, 0)
        );
    }
}
