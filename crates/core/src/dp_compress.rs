//! Distributed PowerSGD all-reduce for data-parallel gradients.

use opt_net::{CollectiveGroup, TrafficClass, TrafficLedger, Transport};
use opt_tensor::{
    orthonormalize_columns, Matrix, Persist, PersistError, Reader, SeedStream, Writer,
};

/// The distributed form of PowerSGD (Vogels et al. §3) used for
/// data-parallel gradient exchange under selective stage compression:
///
/// 1. every rank computes `P_d = (G_d + e_d) * Q_prev` with its local
///    gradient and error-feedback residual,
/// 2. `P = mean_d(P_d)` by all-reduce — valid because the map is linear,
/// 3. every rank orthonormalizes `P` (deterministic, identical result),
/// 4. `Q_d = (G_d + e_d)^T * P`, `Q = mean_d(Q_d)` by all-reduce,
/// 5. the reconstruction `P Q^T` approximates `mean_d(G_d + e_d)`; each
///    rank updates its residual `e_d += G_d - P Q^T` *after* the weight
///    update — the staleness the paper's §7 calls out.
///
/// Only the `P` and `Q` factors cross the wire: `(n + m) r` elements per
/// matrix versus `n m` dense.
#[derive(Debug)]
pub struct DistPowerSgd {
    rank: usize,
    /// Warm-start Q and error-feedback residual per parameter slot.
    q_prev: Vec<Option<Matrix>>,
    residual: Vec<Option<Matrix>>,
    seed: u64,
}

impl DistPowerSgd {
    /// Creates state for `n_slots` parameter tensors at the given rank.
    /// `seed` must be identical across data-parallel ranks so cold-start
    /// `Q` matrices agree.
    ///
    /// # Panics
    ///
    /// Panics if `rank == 0`.
    pub fn new(rank: usize, n_slots: usize, seed: u64) -> Self {
        assert!(rank > 0, "PowerSGD rank must be positive");
        Self {
            rank,
            q_prev: (0..n_slots).map(|_| None).collect(),
            residual: (0..n_slots).map(|_| None).collect(),
            seed,
        }
    }

    /// Total elements held in residual + warm-start buffers (Fig. 12).
    pub fn buffer_elems(&self) -> usize {
        self.q_prev.iter().flatten().map(Matrix::len).sum::<usize>()
            + self
                .residual
                .iter()
                .flatten()
                .map(Matrix::len)
                .sum::<usize>()
    }

    fn effective_rank(&self, n: usize, m: usize) -> usize {
        self.rank.min(n).min(m).max(1)
    }

    /// All-reduces `grad` (slot `slot`) over `group`, replacing it with
    /// the compressed mean across ranks. Vector parameters (single row or
    /// column) are too small to factorize and are all-reduced densely, as
    /// PowerSGD's reference implementation does.
    ///
    /// Records wire bytes in `ledger` (fp16 accounting, per rank).
    pub fn all_reduce<Tr: Transport>(
        &mut self,
        group: &CollectiveGroup<Tr>,
        my_rank: usize,
        slot: usize,
        grad: &mut Matrix,
        ledger: &TrafficLedger,
    ) {
        let (n, m) = grad.shape();
        if n == 1 || m == 1 {
            // Dense fallback for vectors (biases, LN params).
            let wire = ring_wire_bytes(grad.len(), group.size());
            ledger.record(TrafficClass::DataParallel, wire);
            *grad = group
                .all_reduce_mean(my_rank, grad.clone())
                .expect("dense all-reduce decode");
            return;
        }
        let r = self.effective_rank(n, m);
        // Error-feedback correction.
        let corrected = match &self.residual[slot] {
            Some(e) if e.shape() == grad.shape() => grad.add(e),
            _ => grad.clone(),
        };
        // Identical cold-start Q on every rank (shared seed per slot).
        let q_start = match &self.q_prev[slot] {
            Some(q) if q.shape() == (m, r) => q.clone(),
            _ => SeedStream::new(self.seed ^ (slot as u64) << 4).normal_matrix(m, r, 1.0),
        };
        let p_local = corrected.matmul(&q_start);
        let mut p = group
            .all_reduce_mean(my_rank, p_local)
            .expect("P factor all-reduce decode");
        orthonormalize_columns(&mut p);
        let q_local = corrected.t_matmul(&p);
        let q = group
            .all_reduce_mean(my_rank, q_local)
            .expect("Q factor all-reduce decode");
        let approx = p.matmul_t(&q);
        // Residual holds the *local* information the factorization lost.
        self.residual[slot] = Some(corrected.sub(&approx));
        self.q_prev[slot] = Some(q.clone());
        let wire = ring_wire_bytes(p.len(), group.size()) + ring_wire_bytes(q.len(), group.size());
        ledger.record(TrafficClass::DataParallel, wire);
        *grad = approx;
    }
}

impl Persist for DistPowerSgd {
    fn persist(&self, w: &mut Writer) {
        w.usize(self.rank);
        w.u64(self.seed);
        self.q_prev.persist(w);
        self.residual.persist(w);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let rank = r.usize()?;
        if rank == 0 {
            return Err(PersistError::Invalid {
                what: "PowerSGD rank must be positive",
            });
        }
        let seed = r.u64()?;
        let q_prev = Vec::restore(r)?;
        let residual: Vec<Option<Matrix>> = Vec::restore(r)?;
        if residual.len() != q_prev.len() {
            return Err(PersistError::Invalid {
                what: "DistPowerSgd slot count mismatch",
            });
        }
        Ok(Self {
            rank,
            q_prev,
            residual,
            seed,
        })
    }
}

/// Per-rank ring all-reduce wire bytes for `elems` fp16 elements.
fn ring_wire_bytes(elems: usize, ranks: usize) -> u64 {
    if ranks <= 1 {
        return 0;
    }
    (2 * elems * opt_compress::FP16_BYTES) as u64 * (ranks as u64 - 1) / ranks as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use opt_net::CollectiveWorld;
    use opt_tensor::relative_error;
    use std::thread;

    /// Runs one distributed PowerSGD round over `grads` (one per rank) and
    /// returns each rank's resulting gradient.
    fn round(rank: usize, grads: Vec<Matrix>, states: &mut [DistPowerSgd]) -> Vec<Matrix> {
        let world = CollectiveWorld::new(grads.len());
        let group = world.group(&(0..grads.len()).collect::<Vec<_>>());
        let ledger = TrafficLedger::new();
        let _ = rank;
        thread::scope(|scope| {
            let mut handles = Vec::new();
            for (d, (mut g, st)) in grads.into_iter().zip(states.iter_mut()).enumerate() {
                let group = group.clone();
                let ledger = ledger.clone();
                handles.push(scope.spawn(move || {
                    st.all_reduce(&group, d, 0, &mut g, &ledger);
                    g
                }));
            }
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    #[test]
    fn all_ranks_agree_on_result() {
        let mut rng = SeedStream::new(1);
        let grads: Vec<Matrix> = (0..4).map(|_| rng.uniform_matrix(16, 12, 1.0)).collect();
        let mut states: Vec<_> = (0..4).map(|_| DistPowerSgd::new(4, 1, 9)).collect();
        let outs = round(4, grads, &mut states);
        for o in &outs[1..] {
            assert_eq!(o, &outs[0], "ranks disagree after compressed all-reduce");
        }
    }

    #[test]
    fn approximates_the_mean_gradient() {
        // With warm start over repeated rounds on a fixed low-rank mean,
        // the compressed all-reduce converges to the true mean.
        let mut rng = SeedStream::new(2);
        let base_u = rng.uniform_matrix(20, 3, 1.0);
        let base_v = rng.uniform_matrix(3, 14, 1.0);
        let mean = base_u.matmul(&base_v); // true rank-3 mean
        let mut states: Vec<_> = (0..2).map(|_| DistPowerSgd::new(4, 1, 5)).collect();
        let mut out = Vec::new();
        for _ in 0..6 {
            // Rank d sees mean + opposite noise; the mean over ranks is exact.
            let noise = rng.uniform_matrix(20, 14, 0.2);
            let grads = vec![mean.add(&noise), mean.sub(&noise)];
            out = round(2, grads, &mut states);
        }
        let err = relative_error(&mean, &out[0]);
        assert!(err < 0.05, "compressed mean error {err}");
    }

    #[test]
    fn vectors_are_all_reduced_exactly() {
        let grads = vec![
            Matrix::from_rows(&[&[2.0, 4.0, 6.0]]),
            Matrix::from_rows(&[&[0.0, 0.0, 0.0]]),
        ];
        let mut states: Vec<_> = (0..2).map(|_| DistPowerSgd::new(4, 1, 5)).collect();
        let outs = round(2, grads, &mut states);
        assert_eq!(outs[0].as_slice(), &[1.0, 2.0, 3.0]);
        assert_eq!(outs[1].as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn error_feedback_accumulates_lost_mass() {
        // A rank-1 compressor on a full-rank gradient loses mass each
        // round; EF must deliver it over time: the *sum* of transmitted
        // gradients approaches the sum of true means.
        let mut rng = SeedStream::new(3);
        let g = rng.uniform_matrix(10, 10, 1.0);
        let mut states: Vec<_> = (0..2).map(|_| DistPowerSgd::new(1, 1, 5)).collect();
        let mut delivered = Matrix::zeros(10, 10);
        let rounds = 60;
        for _ in 0..rounds {
            let outs = round(2, vec![g.clone(), g.clone()], &mut states);
            delivered.add_assign(&outs[0]);
        }
        let want = g.scale(rounds as f32);
        let rel = delivered.sub(&want).norm() / want.norm();
        assert!(rel < 0.15, "EF failed: accumulated rel error {rel}");
    }

    #[test]
    fn persisted_state_continues_bit_exactly() {
        // Restore one of two dp ranks mid-run; both pairs must keep
        // producing identical all-reduce results (warm start + residual
        // both matter).
        let mut rng = SeedStream::new(7);
        let mut states: Vec<_> = (0..2).map(|_| DistPowerSgd::new(2, 1, 3)).collect();
        let g0 = rng.uniform_matrix(10, 8, 1.0);
        let g1 = rng.uniform_matrix(10, 8, 1.0);
        let first = round(2, vec![g0.clone(), g1.clone()], &mut states);
        let mut restored: Vec<DistPowerSgd> = states
            .iter()
            .map(|s| DistPowerSgd::from_bytes(&s.to_bytes()).expect("roundtrip"))
            .collect();
        let g2 = rng.uniform_matrix(10, 8, 1.0);
        let a = round(2, vec![g2.clone(), g2.clone()], &mut states);
        let b = round(2, vec![g2.clone(), g2.clone()], &mut restored);
        assert_eq!(a, b, "restored DP state diverged");
        assert_ne!(first[0], a[0], "sanity: state actually evolved");
    }

    #[test]
    fn traffic_is_recorded() {
        let world = CollectiveWorld::new(1);
        let group = world.group(&[0]);
        let ledger = TrafficLedger::new();
        let mut st = DistPowerSgd::new(2, 1, 0);
        let mut g = SeedStream::new(4).uniform_matrix(8, 8, 1.0);
        st.all_reduce(&group, 0, 0, &mut g, &ledger);
        // Single-rank group: ring wire bytes are zero but the call works.
        assert_eq!(ledger.snapshot().bytes(TrafficClass::DataParallel), 0);
        assert!(st.buffer_elems() > 0);
    }
}
