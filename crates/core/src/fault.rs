//! Fault-injection harness: scripted worker failures with elastic restart
//! from the newest snapshot — held by the coordinator (monolithic),
//! fetched per rank from a shard store (the cross-host simulation), or
//! fetched per **process** from a TCP shard store (the real thing:
//! [`run_with_faults_sharded_proc`]).

use crate::proc::{ProcError, ProcOptions, ProcTrainer, WorldError};
use crate::{TrainReport, Trainer, TrainerConfig};
use opt_ckpt::{CkptError, FaultPlan, Snapshot};
use opt_net::{FsShardStore, MemShardStore, ShardStore, ShardStoreServer};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// What a faulted run went through, alongside its final metrics.
#[derive(Debug, Clone)]
pub struct FaultOutcome {
    /// Metrics of the run that reached the configured iteration count.
    /// Iterations executed only by a killed incarnation show up as `NaN`
    /// in `report.train_loss`; everything from the resume point onward is
    /// recorded (and, per the bit-exact-resume guarantee, identical to an
    /// uninterrupted run).
    pub report: TrainReport,
    /// Snapshots taken across all incarnations.
    pub snapshots_taken: u64,
    /// Elastic restarts performed.
    pub restarts: u64,
    /// Iterations that had to be re-executed after failures.
    pub lost_iters: u64,
    /// Iteration the final incarnation resumed from (`None` if the run
    /// never failed).
    pub resumed_from: Option<u64>,
}

/// Trains `cfg.iters` iterations under a scripted [`FaultPlan`]: snapshot
/// every `plan.snapshot_every` iterations, kill worker `plan.kill_rank`
/// once `plan.kill_at_iter` iterations complete, and elastically restart
/// from the newest snapshot (or from scratch if none exists yet).
///
/// In this in-process runtime a single worker death tears down the whole
/// job — the collective world cannot make progress minus one member, which
/// mirrors a real 3D-parallel job losing a GPU. The "kill" therefore
/// quiesces and drops every worker thread without the clean `Stop`
/// handshake, and the restart relaunches all of them before overwriting
/// their state from the snapshot.
///
/// # Example
///
/// ```no_run
/// use opt_ckpt::FaultPlan;
/// use optimus_cc::{run_with_faults, QualityConfig, TrainerConfig};
///
/// let cfg = TrainerConfig::tiny_test(QualityConfig::cb_fe_sc(), 12);
/// let outcome = run_with_faults(&cfg, &FaultPlan::new(1, 10, 4)).unwrap();
/// assert_eq!(outcome.restarts, 1);
/// assert_eq!(outcome.lost_iters, 2); // killed at 10, snapshot at 8
/// ```
pub fn run_with_faults(cfg: &TrainerConfig, plan: &FaultPlan) -> Result<FaultOutcome, CkptError> {
    run_with_faults_impl(cfg, plan, None)
}

/// [`run_with_faults`], but checkpointing through a [`ShardStore`]: every
/// snapshot is taken as per-rank shards published by the workers
/// themselves ([`Trainer::save_sharded`]), and after the scripted failure
/// the killed rank — like every other member of this in-process world —
/// is relaunched as a **fresh worker that self-restores from the shard
/// store** ([`Trainer::restore_sharded`]): it rendezvouses on the
/// manifest and fetches only its own shard, exactly what a replacement
/// worker on a different host would do. No coordinator-held state
/// survives the failure.
///
/// # Example
///
/// ```no_run
/// use opt_ckpt::FaultPlan;
/// use opt_net::{MemShardStore, ShardStore};
/// use optimus_cc::{run_with_faults_sharded, QualityConfig, TrainerConfig};
/// use std::sync::Arc;
///
/// let cfg = TrainerConfig::tiny_test(QualityConfig::cb_fe_sc(), 12);
/// let store: Arc<dyn ShardStore> = Arc::new(MemShardStore::new());
/// let outcome = run_with_faults_sharded(&cfg, &FaultPlan::new(1, 10, 4), &store).unwrap();
/// assert_eq!(outcome.restarts, 1);
/// assert_eq!(outcome.lost_iters, 2); // killed at 10, shards published at 8
/// ```
pub fn run_with_faults_sharded(
    cfg: &TrainerConfig,
    plan: &FaultPlan,
    store: &Arc<dyn ShardStore>,
) -> Result<FaultOutcome, CkptError> {
    run_with_faults_impl(cfg, plan, Some(store))
}

/// Launch parameters for the real multi-process faulted run.
#[derive(Debug, Clone)]
pub struct ProcFaultOptions {
    /// Path to the compiled `opt-worker` binary.
    pub worker_bin: PathBuf,
    /// Scratch directory for rendezvous state (fresh subdirectories are
    /// created per world incarnation).
    pub scratch_dir: PathBuf,
    /// Where the shard store's blobs live: a directory (so the manifest
    /// survives the run, e.g. for CI artifacts) or `None` for an
    /// in-memory store inside the coordinator — workers reach it over TCP
    /// either way.
    pub store_dir: Option<PathBuf>,
}

/// [`run_with_faults_sharded`], but with **real OS-process workers**: the
/// world runs as `opt-worker` processes meshed over loopback TCP,
/// checkpoint shards travel through a [`opt_net::TcpShardStore`] served
/// by the coordinator, the scripted failure `SIGKILL`s an actual worker
/// process, and the replacement world self-restores from the TCP store —
/// rendezvous on the manifest, per-rank fetch, full validation, all
/// across real process boundaries.
///
/// The returned [`FaultOutcome`] is **bit-identical** (losses and
/// traffic-ledger deltas) to what [`run_with_faults_sharded`] produces
/// for the same config and plan in a single process — the acceptance
/// guarantee of the transport refactor, enforced by the `multiproc`
/// integration test and the CI smoke job.
pub fn run_with_faults_sharded_proc(
    cfg: &TrainerConfig,
    plan: &FaultPlan,
    opts: &ProcFaultOptions,
) -> Result<FaultOutcome, ProcError> {
    assert!(
        plan.kill_rank < cfg.pp * cfg.dp,
        "kill_rank {} outside the {}x{} world",
        plan.kill_rank,
        cfg.pp,
        cfg.dp
    );
    let inner: Arc<dyn ShardStore> = match &opts.store_dir {
        Some(dir) => Arc::new(FsShardStore::new(dir)),
        None => Arc::new(MemShardStore::new()),
    };
    let server = ShardStoreServer::spawn(inner, "127.0.0.1:0")
        .map_err(|e| ProcError::Protocol(format!("shard store server: {e}")))?;
    let popts = ProcOptions {
        worker_bin: opts.worker_bin.clone(),
        store_addr: server.addr(),
        scratch_dir: opts.scratch_dir.clone(),
    };

    let total = cfg.iters;
    let mut trainer = ProcTrainer::launch(cfg.clone(), popts.clone())?;
    let mut newest: Option<u64> = None;
    let mut snapshots_taken = 0;
    let mut restarts = 0;
    let mut lost_iters = 0;
    let mut resumed_from = None;
    let mut failed = false;

    let mut completed: u64 = 0;
    while completed < total {
        trainer.train_more(1)?;
        completed += 1;
        if plan.snapshot_due(completed) && completed < total {
            newest = Some(trainer.save_sharded()?.meta.iter);
            snapshots_taken += 1;
        }
        if !failed && completed == plan.kill_at_iter {
            failed = true;
            restarts += 1;
            // The scripted failure: SIGKILL one real worker process. The
            // collective world cannot progress minus a member, so the rest
            // of the incarnation is torn down too — exactly what the
            // in-process harness models with Trainer::kill.
            trainer.kill_rank(plan.kill_rank)?;
            debug_assert!(trainer.dead_ranks().contains(&plan.kill_rank));
            trainer.abort();
            match newest {
                Some(iter) => {
                    lost_iters += completed - iter;
                    resumed_from = Some(iter);
                    trainer = ProcTrainer::launch(cfg.clone(), popts.clone())?;
                    trainer.self_restore_all()?;
                    completed = iter;
                }
                None => {
                    // No checkpoint yet: restart from scratch.
                    lost_iters += completed;
                    resumed_from = Some(0);
                    trainer = ProcTrainer::launch(cfg.clone(), popts.clone())?;
                    completed = 0;
                }
            }
        }
    }
    let report = trainer.report()?;
    trainer.shutdown()?;
    Ok(FaultOutcome {
        report,
        snapshots_taken,
        restarts,
        lost_iters,
        resumed_from,
    })
}

/// [`run_with_faults_sharded_proc`], but recovering through the **elastic
/// single-rank rejoin protocol** instead of a wholesale world relaunch:
/// the scripted `SIGKILL` is *detected* by the coordinator's heartbeat
/// failure detector (no survivor ever trips a recv timeout), survivors
/// quiesce at a barrier while only the dead rank is re-execed, the
/// replacement self-restores its shard from the last committed manifest
/// and splices back into the survivors' live mesh, and training resumes
/// from the checkpoint iteration — survivors keep their PIDs, sockets to
/// each other, and already-recorded metrics (rolled-back iterations are
/// truncated, so the final report stays bit-identical to an uninterrupted
/// run).
///
/// A failure before any snapshot was committed is unrecoverable by
/// rejoin — there is nothing to restore the replacement from — and
/// surfaces as a typed [`WorldError::Unrecoverable`] after the world is
/// torn down cleanly, never as a hung recv timeout.
pub fn run_with_faults_rejoin(
    cfg: &TrainerConfig,
    plan: &FaultPlan,
    opts: &ProcFaultOptions,
) -> Result<FaultOutcome, WorldError> {
    assert!(
        plan.kill_rank < cfg.pp * cfg.dp,
        "kill_rank {} outside the {}x{} world",
        plan.kill_rank,
        cfg.pp,
        cfg.dp
    );
    let inner: Arc<dyn ShardStore> = match &opts.store_dir {
        Some(dir) => Arc::new(FsShardStore::new(dir)),
        None => Arc::new(MemShardStore::new()),
    };
    let server = ShardStoreServer::spawn(inner, "127.0.0.1:0")
        .map_err(|e| ProcError::Protocol(format!("shard store server: {e}")))?;
    let popts = ProcOptions {
        worker_bin: opts.worker_bin.clone(),
        store_addr: server.addr(),
        scratch_dir: opts.scratch_dir.clone(),
    };

    let total = cfg.iters;
    let mut trainer = ProcTrainer::launch(cfg.clone(), popts)?;
    let mut snapshots_taken = 0;
    let mut restarts = 0;
    let mut lost_iters = 0;
    let mut resumed_from = None;
    let mut failed = false;

    let mut completed: u64 = 0;
    while completed < total {
        trainer.train_more(1)?;
        completed += 1;
        if plan.snapshot_due(completed) && completed < total {
            trainer.save_sharded()?;
            snapshots_taken += 1;
        }
        if !failed && completed == plan.kill_at_iter {
            failed = true;
            restarts += 1;
            trainer.kill_rank(plan.kill_rank)?;
            // The heartbeat detector — not a survivor's recv timeout —
            // notices the death.
            let Some(dead) = trainer.await_failure(Duration::from_secs(60)) else {
                trainer.abort();
                return Err(WorldError::Unrecoverable {
                    reason: format!(
                        "killed rank {} was never flagged by the failure detector",
                        plan.kill_rank
                    ),
                });
            };
            match trainer.rejoin_rank(dead) {
                Ok(iter) => {
                    lost_iters += completed - iter;
                    resumed_from = Some(iter);
                    completed = iter;
                }
                Err(e) => {
                    trainer.abort();
                    return Err(e);
                }
            }
        }
    }
    let report = trainer.report()?;
    trainer.shutdown()?;
    Ok(FaultOutcome {
        report,
        snapshots_taken,
        restarts,
        lost_iters,
        resumed_from,
    })
}

/// The newest checkpoint a faulted run can restart from.
enum Newest {
    /// No snapshot taken yet — a failure restarts from scratch.
    None,
    /// Coordinator-held monolithic snapshot.
    Monolithic(Box<Snapshot>),
    /// Shards live in the store; only the checkpoint iteration is known
    /// to the coordinator.
    Sharded(u64),
}

fn run_with_faults_impl(
    cfg: &TrainerConfig,
    plan: &FaultPlan,
    store: Option<&Arc<dyn ShardStore>>,
) -> Result<FaultOutcome, CkptError> {
    assert!(
        plan.kill_rank < cfg.pp * cfg.dp,
        "kill_rank {} outside the {}x{} world",
        plan.kill_rank,
        cfg.pp,
        cfg.dp
    );
    let total = cfg.iters;
    let mut trainer = Trainer::launch(cfg.clone());
    let mut newest = Newest::None;
    let mut snapshots_taken = 0;
    let mut restarts = 0;
    let mut lost_iters = 0;
    let mut resumed_from = None;
    let mut failed = false;

    let mut completed: u64 = 0;
    while completed < total {
        trainer.train_more(1);
        completed += 1;
        if plan.snapshot_due(completed) && completed < total {
            newest = match store {
                Some(store) => Newest::Sharded(trainer.save_sharded(store)?.meta.iter),
                None => Newest::Monolithic(Box::new(trainer.snapshot())),
            };
            snapshots_taken += 1;
        }
        if !failed && completed == plan.kill_at_iter {
            failed = true;
            restarts += 1;
            trainer.kill();
            match &newest {
                Newest::Monolithic(snap) => {
                    lost_iters += completed - snap.meta.iter;
                    resumed_from = Some(snap.meta.iter);
                    trainer = Trainer::restore(cfg.clone(), snap)?;
                    completed = snap.meta.iter;
                }
                Newest::Sharded(iter) => {
                    lost_iters += completed - iter;
                    resumed_from = Some(*iter);
                    trainer =
                        Trainer::restore_sharded(cfg.clone(), store.expect("sharded checkpoint"))?;
                    completed = *iter;
                }
                Newest::None => {
                    // No snapshot yet: restart from scratch.
                    lost_iters += completed;
                    resumed_from = Some(0);
                    trainer = Trainer::launch(cfg.clone());
                    completed = 0;
                }
            }
        }
    }
    let report = trainer.report();
    trainer.shutdown();
    Ok(FaultOutcome {
        report,
        snapshots_taken,
        restarts,
        lost_iters,
        resumed_from,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QualityConfig;

    #[test]
    fn faulted_run_completes_and_accounts_for_lost_work() {
        let cfg = TrainerConfig::tiny_test(QualityConfig::cb(), 9);
        let outcome = run_with_faults(&cfg, &FaultPlan::new(2, 7, 3)).expect("faulted run");
        assert_eq!(outcome.restarts, 1);
        assert_eq!(outcome.snapshots_taken, 2); // iters 3 and 6
        assert_eq!(outcome.lost_iters, 1); // killed at 7, resumed from 6
        assert_eq!(outcome.resumed_from, Some(6));
        assert_eq!(outcome.report.train_loss.len(), 9);
        // Post-resume iterations all have recorded losses.
        for (i, l) in outcome.report.train_loss[6..].iter().enumerate() {
            assert!(l.is_finite(), "iteration {} lost its loss", 6 + i);
        }
    }

    #[test]
    fn failure_before_first_snapshot_restarts_from_scratch() {
        let cfg = TrainerConfig::tiny_test(QualityConfig::baseline(), 5);
        let outcome = run_with_faults(&cfg, &FaultPlan::new(0, 2, 4)).expect("faulted run");
        assert_eq!(outcome.restarts, 1);
        assert_eq!(outcome.lost_iters, 2);
        assert_eq!(outcome.resumed_from, Some(0));
        // From-scratch restart re-executes everything: full loss curve.
        assert!(outcome.report.train_loss.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn run_without_reaching_kill_iter_never_restarts() {
        let cfg = TrainerConfig::tiny_test(QualityConfig::baseline(), 3);
        let outcome = run_with_faults(&cfg, &FaultPlan::new(0, 100, 2)).expect("run");
        assert_eq!(outcome.restarts, 0);
        assert_eq!(outcome.resumed_from, None);
        assert_eq!(outcome.snapshots_taken, 1); // iter 2
    }

    #[test]
    fn sharded_fault_run_matches_the_monolithic_one() {
        use opt_net::MemShardStore;

        let cfg = TrainerConfig::tiny_test(QualityConfig::cb(), 9);
        let plan = FaultPlan::new(2, 7, 3);
        let mono = run_with_faults(&cfg, &plan).expect("monolithic run");
        let store: Arc<dyn ShardStore> = Arc::new(MemShardStore::new());
        let sharded = run_with_faults_sharded(&cfg, &plan, &store).expect("sharded run");

        assert_eq!(sharded.restarts, mono.restarts);
        assert_eq!(sharded.snapshots_taken, mono.snapshots_taken);
        assert_eq!(sharded.lost_iters, mono.lost_iters);
        assert_eq!(sharded.resumed_from, mono.resumed_from);
        for (i, (a, b)) in mono
            .report
            .train_loss
            .iter()
            .zip(&sharded.report.train_loss)
            .enumerate()
        {
            if a.is_nan() {
                assert!(b.is_nan(), "iteration {i}: {a} vs {b}");
            } else {
                assert_eq!(a.to_bits(), b.to_bits(), "iteration {i}: {a} vs {b}");
            }
        }
        // The store ends up holding the manifest plus one shard per rank.
        let names = store.list().expect("list");
        assert_eq!(names.len(), 1 + cfg.pp * cfg.dp);
        assert!(names.iter().any(|n| n == "manifest.ckpt"));
    }
}
