//! `optimus-cc` — the paper's contribution: 3D-parallelism-aware
//! communication compression, implemented as a real (CPU, multi-threaded)
//! pipeline+data-parallel training runtime.
//!
//! Every (pipeline stage, data-parallel rank) pair runs as a worker thread
//! owning its slice of the model (`opt-model::Stage`). Workers execute the
//! 1F1B schedule from `opt-schedule`, exchanging *actual tensors* through
//! `opt-net` channels and collectives. The paper's three techniques hook
//! into this runtime exactly where the paper hooks into Megatron-LM:
//!
//! * **Compressed backpropagation** (§5) — inter-stage activation
//!   gradients pass through an [`opt_compress::LazyErrorPropagator`];
//!   epilogue-only selection comes from `opt_schedule::is_epilogue_send`.
//! * **Fused embedding synchronization** (§6) — the first/last stage
//!   embedding-gradient replicas are reduced in a single `2D`-way
//!   all-reduce instead of per-stage EMB DP plus a 2-way sync. The two
//!   paths are mathematically identical, which integration tests assert.
//! * **Selective stage compression** (§7) — data-parallel gradients of
//!   the earliest stages go through a distributed PowerSGD all-reduce
//!   ([`DistPowerSgd`]) with error feedback; later stages stay dense.
//!
//! The runtime measures what the paper measures: validation perplexity
//! over training (Fig. 9, Table 2), zero-shot task accuracy (Tables 3-4),
//! lazy-error statistics (Fig. 11), memory overhead (Fig. 12), and
//! per-class wire traffic.
//!
//! It is also **fault tolerant**: [`Trainer::snapshot`] serializes every
//! worker's parameters, optimizer moments, and compression state (PowerSGD
//! warm starts, lazy-error residuals, DP error feedback) into an
//! `opt-ckpt` snapshot with barrier semantics; [`Trainer::restore`] brings
//! a fresh world back to that exact point. The guarantee is bit-exact
//! resume — train `N` straight vs. train `k`, snapshot, [`Trainer::kill`],
//! restore, train `N - k` produce identical losses and identical wire
//! traffic — and [`run_with_faults`] scripts whole kill/restart scenarios
//! from an `opt_ckpt::FaultPlan`.
//!
//! Checkpoints also exist in **sharded** form for cross-host elastic
//! restore: [`Trainer::save_sharded`] has every worker publish its own
//! checksummed shard to an `opt_net::ShardStore`, and
//! [`Trainer::restore_sharded`] / [`Trainer::restore_rank`] relaunch
//! workers that rendezvous on the manifest and fetch *only their own
//! shard* — no process ever holds the whole world's state.
//! [`run_with_faults_sharded`] scripts the full cross-host simulation.
//!
//! # Example
//!
//! ```no_run
//! use optimus_cc::{QualityConfig, Trainer, TrainerConfig};
//!
//! let cfg = TrainerConfig::small_test(QualityConfig::cb_fe(), 50);
//! let mut trainer = Trainer::launch(cfg);
//! let report = trainer.train();
//! println!("final validation PPL: {:.2}", report.final_val_ppl());
//! trainer.shutdown();
//! ```

mod config;
mod dp_compress;
mod fault;
mod memory;
mod proc;
mod stats;
mod trainer;
mod worker;

pub use config::{CbMethod, CbQuality, QualityConfig, ScQuality, TrainerConfig};
pub use dp_compress::DistPowerSgd;
pub use fault::{
    run_with_faults, run_with_faults_rejoin, run_with_faults_sharded, run_with_faults_sharded_proc,
    FaultOutcome, ProcFaultOptions,
};
pub use memory::MemoryReport;
pub use proc::{
    worker_main, ProcError, ProcOptions, ProcTrainer, WorldError, ENV_CFG, ENV_RANK, ENV_RDV,
    ENV_REJOIN, ENV_STORE,
};
pub use stats::{ErrorStatPoint, TrainReport, ValPoint};
pub use trainer::Trainer;

// Tracing types surface in the trainer API (`Trainer::launch_with_trace`,
// `Trainer::take_trace`), so re-export them for callers that do not
// depend on `opt-trace` directly.
pub use opt_trace::{Trace, TraceMode};
