//! Memory-overhead accounting (paper Fig. 12).

use crate::config::TrainerConfig;
use crate::worker::WorkerAck;

/// Per-GPU (per-worker) peak memory estimate, in f32 elements, split the
/// way the paper's Fig. 12 splits it: the training baseline (weights,
/// gradients, optimizer state, activation caches) plus the additional
/// buffers compression introduces (low-rank factors / EF residuals) and
/// the lazy-error buffers of LEP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryReport {
    /// Parameters (max over workers).
    pub param_elems: usize,
    /// Gradient accumulators (== params).
    pub grad_elems: usize,
    /// Adam moments (2x params).
    pub optimizer_elems: usize,
    /// Peak pipeline activation stash (1F1B: stage 0 holds `pp` in-flight
    /// micro-batches x layer activations).
    pub activation_elems: usize,
    /// Compression working buffers: PowerSGD warm-start factors and DP
    /// error-feedback residuals (max over workers).
    pub compressor_elems: usize,
    /// Lazy-error-propagation buffers (max over workers).
    pub lazy_error_elems: usize,
}

impl MemoryReport {
    /// Baseline footprint (no compression), elements.
    pub fn baseline_total(&self) -> usize {
        self.param_elems + self.grad_elems + self.optimizer_elems + self.activation_elems
    }

    /// Total footprint including compression buffers, elements.
    pub fn total(&self) -> usize {
        self.baseline_total() + self.compressor_elems + self.lazy_error_elems
    }

    /// Fractional overhead of compression buffers over the baseline
    /// (paper: 5-10 % for the low-rank buffers).
    pub fn compression_overhead(&self) -> f64 {
        self.compressor_elems as f64 / self.baseline_total() as f64
    }

    /// Fractional overhead of the LEP buffers (paper: ~1 %).
    pub fn lep_overhead(&self) -> f64 {
        self.lazy_error_elems as f64 / self.baseline_total() as f64
    }
}

/// Builds the report from worker acks plus the analytic activation model.
pub(crate) fn memory_report(cfg: &TrainerConfig, acks: &[WorkerAck]) -> MemoryReport {
    let param_elems = acks.iter().map(|a| a.param_elems).max().unwrap_or(0);
    let compressor_elems = acks.iter().map(|a| a.compressor_elems).max().unwrap_or(0);
    let lazy_error_elems = acks.iter().map(|a| a.lazy_error_elems).max().unwrap_or(0);
    // 1F1B peak in-flight micro-batches on stage 0 is `pp`; each stashes
    // roughly (layers_on_stage x ~12 intermediate tensors + boundary) of
    // (micro_batch*seq) x hidden activations. A coarse but config-driven
    // model: in_flight * layers * 12 * micro_tokens * hidden.
    let micro_tokens = cfg.micro_batch * cfg.model.seq_len;
    let layers0 = cfg.model.layers_on_stage(0, cfg.pp);
    let activation_elems = cfg.pp * layers0 * 12 * micro_tokens * cfg.model.hidden;
    MemoryReport {
        param_elems,
        grad_elems: param_elems,
        optimizer_elems: 2 * param_elems,
        activation_elems,
        compressor_elems,
        lazy_error_elems,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QualityConfig;

    fn ack(param: usize, lazy: usize, comp: usize) -> WorkerAck {
        WorkerAck {
            id: 0,
            stage: 0,
            dp: 0,
            param_elems: param,
            lazy_error_elems: lazy,
            compressor_elems: comp,
        }
    }

    #[test]
    fn report_takes_max_over_workers() {
        let cfg = TrainerConfig::small_test(QualityConfig::cb(), 1);
        let r = memory_report(&cfg, &[ack(100, 5, 20), ack(80, 9, 10)]);
        assert_eq!(r.param_elems, 100);
        assert_eq!(r.lazy_error_elems, 9);
        assert_eq!(r.compressor_elems, 20);
        assert_eq!(r.optimizer_elems, 200);
        assert!(r.total() > r.baseline_total());
    }

    #[test]
    fn overheads_are_fractions_of_baseline() {
        let cfg = TrainerConfig::small_test(QualityConfig::cb(), 1);
        let r = memory_report(&cfg, &[ack(1000, 10, 50)]);
        let base = r.baseline_total() as f64;
        assert!((r.compression_overhead() - 50.0 / base).abs() < 1e-12);
        assert!((r.lep_overhead() - 10.0 / base).abs() < 1e-12);
    }
}
