//! Real multi-process workers: one `opt-worker` OS process per
//! `(stage, dp)` rank, meshed over TCP, driven by a coordinator.
//!
//! The in-process [`crate::Trainer`] runs its world as threads over
//! `opt-net`'s `LocalTransport`. This module runs the **same worker
//! loop** (`run_worker`, generic over the transport) as real OS processes
//! over [`TcpTransport`]:
//!
//! ```text
//!   coordinator (ProcTrainer, rank W = pp*dp)
//!     | spawn + monitor            | WireCmd / acks / metrics (TCP lanes)
//!     v                            v
//!   opt-worker rank 0  <—— collectives + p2p over TcpTransport ——>  rank W-1
//!     |                                                                |
//!     +——— put/get shards over TcpShardStore ———> ShardStoreServer <———+
//!                                                (in the coordinator)
//! ```
//!
//! Rendezvous: every process (workers and coordinator) binds an ephemeral
//! loopback listener and publishes it in a shared scratch directory
//! ([`opt_net::tcp_rendezvous`]); checkpoint shards move through a
//! [`TcpShardStore`] client talking to a [`ShardStoreServer`] hosted by
//! the coordinator — a real remote blob store as far as any worker can
//! tell.
//!
//! The payoff is the determinism contract, now across process
//! boundaries: because collectives reduce in member order, batch keys are
//! pure functions of the config, and loss aggregation sorts before
//! reducing, a multi-process run — including one that loses a worker
//! process mid-run and self-restores a replacement from the shard store —
//! produces **bit-identical** losses and traffic-ledger deltas to the
//! single-process in-process run ([`run_with_faults_sharded_proc`] vs.
//! [`crate::run_with_faults_sharded`], enforced by `opt-bench`'s
//! `multiproc` integration test and the CI smoke job).

use crate::config::TrainerConfig;
use crate::stats::{Collector, RawSamples, TrainReport};
use crate::worker::{
    build_groups, run_worker, Cmd, WorkerAck, WorkerCtx, WorldGroups, CH_BWD, CH_FWD,
};
use crossbeam::channel::unbounded;
use opt_ckpt::{CkptError, ShardEntry, ShardManifest, MANIFEST_FILE};
use opt_net::{
    channel_id, tcp_rejoin, tcp_rendezvous, ChannelStat, CollectiveWorld, FailureDetector,
    HeartbeatConfig, P2pMesh, RecvError, ShardStore, SharedPayload, TcpShardStore, TcpTransport,
    TrafficBreakdown, TrafficLedger, TrafficSnapshot, Transport, TransportError, CH_HEARTBEAT,
};
use opt_tensor::{Persist, PersistError, Reader, Writer};
use opt_trace::{SpanKind, Trace, TraceBuffer, TraceMode, ENV_TRACE};
use std::fmt;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::Child;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Channel namespace 3: the coordinator <-> worker control plane. (The
/// pipeline-mesh channels `CH_FWD`/`CH_BWD` live in `crate::worker`,
/// shared with the in-process trainer.)
const CH_CMD: u64 = channel_id(3, 0);
const CH_ACK: u64 = channel_id(3, 1);
const CH_SHARD: u64 = channel_id(3, 2);
const CH_RESTORE: u64 = channel_id(3, 3);
const CH_METRICS: u64 = channel_id(3, 4);
const CH_TRACE: u64 = channel_id(3, 5);

/// How long the coordinator waits for one control-plane response. A
/// barrier ack covers a whole batch of training iterations, so this is
/// deliberately generous.
const CTRL_TIMEOUT: Duration = Duration::from_secs(600);

/// How long processes wait for the world to rendezvous and mesh.
const RDV_TIMEOUT: Duration = Duration::from_secs(120);

/// Environment protocol between the coordinator and `opt-worker`.
pub const ENV_RANK: &str = "OPT_WORKER_RANK";
pub const ENV_CFG: &str = "OPT_WORKER_CFG";
pub const ENV_RDV: &str = "OPT_WORKER_RDV";
pub const ENV_STORE: &str = "OPT_WORKER_STORE";
/// Set to `"1"` on a replacement process: instead of the initial
/// rendezvous barrier it re-meshes into the live world via
/// [`opt_net::tcp_rejoin`], splicing over its dead predecessor.
pub const ENV_REJOIN: &str = "OPT_WORKER_REJOIN";

/// Why a multi-process operation failed.
#[derive(Debug)]
pub enum ProcError {
    /// Spawning or signalling a worker process failed.
    Io(std::io::Error),
    /// The TCP fabric failed (rendezvous, send, recv).
    Transport(TransportError),
    /// A point-to-point mesh lane failed (pipeline or collective hop).
    Recv(RecvError),
    /// A checkpoint operation failed.
    Ckpt(CkptError),
    /// A control-plane message violated the protocol.
    Protocol(String),
    /// Killing or reaping a worker process failed; the rank is attached
    /// so a failed fence is attributable instead of silently dropped.
    Reap {
        /// Global rank of the worker being reaped.
        rank: usize,
        /// What the kill/wait syscall reported.
        detail: String,
    },
}

impl fmt::Display for ProcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcError::Io(e) => write!(f, "worker process I/O failed: {e}"),
            ProcError::Transport(e) => write!(f, "worker fabric failed: {e}"),
            ProcError::Recv(e) => write!(f, "worker mesh lane failed: {e}"),
            ProcError::Ckpt(e) => write!(f, "checkpoint operation failed: {e}"),
            ProcError::Protocol(d) => write!(f, "control protocol violation: {d}"),
            ProcError::Reap { rank, detail } => {
                write!(f, "reaping worker rank {rank} failed: {detail}")
            }
        }
    }
}

impl std::error::Error for ProcError {}

impl From<std::io::Error> for ProcError {
    fn from(e: std::io::Error) -> Self {
        ProcError::Io(e)
    }
}

impl From<TransportError> for ProcError {
    fn from(e: TransportError) -> Self {
        ProcError::Transport(e)
    }
}

impl From<CkptError> for ProcError {
    fn from(e: CkptError) -> Self {
        ProcError::Ckpt(e)
    }
}

impl From<PersistError> for ProcError {
    fn from(e: PersistError) -> Self {
        ProcError::Protocol(format!("malformed control message: {e}"))
    }
}

impl From<RecvError> for ProcError {
    fn from(e: RecvError) -> Self {
        ProcError::Recv(e)
    }
}

/// Why an elastic-membership operation could not keep the world alive.
///
/// [`ProcTrainer::rejoin_rank`] (and the [`crate::run_with_faults_rejoin`]
/// harness on top of it) distinguishes *recoverable-layer* failures
/// ([`WorldError::Proc`]) from the terminal case: a dead rank with **no
/// committed checkpoint to restore a replacement from**. The latter is
/// surfaced as [`WorldError::Unrecoverable`] so the caller can tear the
/// survivors down cleanly instead of leaving them to die one by one on
/// recv timeouts.
#[derive(Debug)]
pub enum WorldError {
    /// The world cannot be made whole again; escalate and tear down.
    Unrecoverable {
        /// Why recovery is impossible.
        reason: String,
    },
    /// A multi-process operation failed for an ordinary reason.
    Proc(ProcError),
}

impl fmt::Display for WorldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorldError::Unrecoverable { reason } => {
                write!(f, "world is unrecoverable: {reason}")
            }
            WorldError::Proc(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for WorldError {}

impl From<ProcError> for WorldError {
    fn from(e: ProcError) -> Self {
        WorldError::Proc(e)
    }
}

impl From<TransportError> for WorldError {
    fn from(e: TransportError) -> Self {
        WorldError::Proc(ProcError::Transport(e))
    }
}

impl From<RecvError> for WorldError {
    fn from(e: RecvError) -> Self {
        WorldError::Proc(ProcError::Recv(e))
    }
}

impl From<CkptError> for WorldError {
    fn from(e: CkptError) -> Self {
        WorldError::Proc(ProcError::Ckpt(e))
    }
}

/// The control commands the coordinator broadcasts to worker processes —
/// the wire twin of the in-process `Cmd`, minus anything that cannot
/// cross a process boundary (stores travel as the worker's own
/// [`TcpShardStore`] client; monolithic snapshot sections never leave
/// their process on this path).
#[derive(Debug, Clone, PartialEq)]
enum WireCmd {
    TrainIter { iter: u64 },
    Validate { iter: u64, index: u64, n_seq: usize },
    Barrier { id: u64 },
    PublishShard { id: u64, iter: u64 },
    SelfRestore { id: u64 },
    FetchMetrics { id: u64 },
    FetchTrace { id: u64 },
    Stop,
}

impl Persist for WireCmd {
    fn persist(&self, w: &mut Writer) {
        match self {
            WireCmd::TrainIter { iter } => {
                w.u8(0);
                w.u64(*iter);
            }
            WireCmd::Validate { iter, index, n_seq } => {
                w.u8(1);
                w.u64(*iter);
                w.u64(*index);
                w.usize(*n_seq);
            }
            WireCmd::Barrier { id } => {
                w.u8(2);
                w.u64(*id);
            }
            WireCmd::PublishShard { id, iter } => {
                w.u8(3);
                w.u64(*id);
                w.u64(*iter);
            }
            WireCmd::SelfRestore { id } => {
                w.u8(4);
                w.u64(*id);
            }
            WireCmd::FetchMetrics { id } => {
                w.u8(5);
                w.u64(*id);
            }
            WireCmd::Stop => w.u8(6),
            WireCmd::FetchTrace { id } => {
                w.u8(7);
                w.u64(*id);
            }
        }
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match r.u8()? {
            0 => WireCmd::TrainIter { iter: r.u64()? },
            1 => WireCmd::Validate {
                iter: r.u64()?,
                index: r.u64()?,
                n_seq: r.usize()?,
            },
            2 => WireCmd::Barrier { id: r.u64()? },
            3 => WireCmd::PublishShard {
                id: r.u64()?,
                iter: r.u64()?,
            },
            4 => WireCmd::SelfRestore { id: r.u64()? },
            5 => WireCmd::FetchMetrics { id: r.u64()? },
            6 => WireCmd::Stop,
            7 => WireCmd::FetchTrace { id: r.u64()? },
            tag => {
                return Err(PersistError::BadTag {
                    what: "WireCmd",
                    tag,
                })
            }
        })
    }
}

impl Persist for WorkerAck {
    fn persist(&self, w: &mut Writer) {
        w.u64(self.id);
        w.usize(self.stage);
        w.usize(self.dp);
        w.usize(self.param_elems);
        w.usize(self.lazy_error_elems);
        w.usize(self.compressor_elems);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(WorkerAck {
            id: r.u64()?,
            stage: r.usize()?,
            dp: r.usize()?,
            param_elems: r.usize()?,
            lazy_error_elems: r.usize()?,
            compressor_elems: r.usize()?,
        })
    }
}

impl Persist for RawSamples {
    fn persist(&self, w: &mut Writer) {
        self.train.persist(w);
        self.val.persist(w);
        self.error_stats.persist(w);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(RawSamples {
            train: Vec::restore(r)?,
            val: Vec::restore(r)?,
            error_stats: Vec::restore(r)?,
        })
    }
}

/// A checkpoint outcome crossing the control plane carries its error as
/// the display string — `CkptError` itself is not `Clone` (it can wrap an
/// `io::Error`), and typed lanes require cloneable messages. The
/// coordinator rewraps the string as [`CkptError::Store`], which is how
/// every remote failure is surfaced.
fn stringify_ckpt<T>(result: Result<T, CkptError>) -> Result<T, String> {
    result.map_err(|e| e.to_string())
}

/// The coordinator-side inverse of [`stringify_ckpt`].
fn rewrap_ckpt<T>(result: Result<T, String>) -> Result<T, CkptError> {
    result.map_err(|what| CkptError::Store { what })
}

fn persist_string_result<T: Persist>(result: &Result<T, String>, w: &mut Writer) {
    match result {
        Ok(v) => {
            w.u8(0);
            v.persist(w);
        }
        Err(e) => {
            w.u8(1);
            e.persist(w);
        }
    }
}

fn restore_string_result<T: Persist>(
    r: &mut Reader<'_>,
    what: &'static str,
) -> Result<Result<T, String>, PersistError> {
    Ok(match r.u8()? {
        0 => Ok(T::restore(r)?),
        1 => Err(String::restore(r)?),
        tag => return Err(PersistError::BadTag { what, tag }),
    })
}

/// One worker's metrics reply: its raw samples plus its own transport's
/// half of every lane it touched, tagged with the request id.
#[derive(Debug, Clone)]
struct MetricsMsg {
    id: u64,
    raw: RawSamples,
    traffic: TrafficSnapshot,
    channels: Vec<ChannelStat>,
}

impl Persist for MetricsMsg {
    fn persist(&self, w: &mut Writer) {
        w.u64(self.id);
        self.raw.persist(w);
        self.traffic.persist(w);
        self.channels.persist(w);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(MetricsMsg {
            id: r.u64()?,
            raw: RawSamples::restore(r)?,
            traffic: TrafficSnapshot::restore(r)?,
            channels: Vec::restore(r)?,
        })
    }
}

/// One worker's shard-publish outcome.
#[derive(Debug, Clone)]
struct ShardMsg {
    id: u64,
    result: Result<ShardEntry, String>,
}

impl Persist for ShardMsg {
    fn persist(&self, w: &mut Writer) {
        w.u64(self.id);
        persist_string_result(&self.result, w);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(ShardMsg {
            id: r.u64()?,
            result: restore_string_result(r, "ShardMsg")?,
        })
    }
}

/// One worker's self-restore outcome: which `(stage, dp)` it serves and
/// the checkpoint iteration it restored to.
#[derive(Debug, Clone)]
struct RestoreMsg {
    id: u64,
    stage: usize,
    dp: usize,
    outcome: Result<u64, String>,
}

impl Persist for RestoreMsg {
    fn persist(&self, w: &mut Writer) {
        w.u64(self.id);
        w.usize(self.stage);
        w.usize(self.dp);
        persist_string_result(&self.outcome, w);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(RestoreMsg {
            id: r.u64()?,
            stage: r.usize()?,
            dp: r.usize()?,
            outcome: restore_string_result(r, "RestoreMsg")?,
        })
    }
}

fn to_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len() / 2)
        .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).ok())
        .collect()
}

/// Launch parameters for a multi-process world.
#[derive(Debug, Clone)]
pub struct ProcOptions {
    /// Path to the compiled `opt-worker` binary.
    pub worker_bin: PathBuf,
    /// Address of the [`opt_net::ShardStoreServer`] workers fetch shards
    /// from.
    pub store_addr: SocketAddr,
    /// Directory rendezvous scratch lives under (a fresh subdirectory is
    /// created per world incarnation).
    pub scratch_dir: PathBuf,
}

/// Monotonic incarnation counter, so successive worlds under one scratch
/// directory never share a rendezvous namespace.
static INCARNATION: AtomicU64 = AtomicU64::new(0);

/// One spawned worker process plus whether it has been reaped.
/// `Child::kill` on an already-reaped child fails with `InvalidInput`;
/// the flag keeps fences idempotent and makes reap failures attributable
/// to a rank instead of silently swallowed.
struct WorkerSlot {
    child: Child,
    reaped: bool,
}

impl WorkerSlot {
    /// Kills and reaps the process if it has not been reaped yet.
    fn reap(&mut self, rank: usize) -> Result<(), ProcError> {
        if self.reaped {
            return Ok(());
        }
        let wrap = |what: &str, e: std::io::Error| ProcError::Reap {
            rank,
            detail: format!("{what}: {e}"),
        };
        self.child.kill().map_err(|e| wrap("kill", e))?;
        self.child.wait().map_err(|e| wrap("wait", e))?;
        self.reaped = true;
        Ok(())
    }
}

/// Kills and reaps every not-yet-reaped worker, collecting (rank, error)
/// pairs instead of aborting on the first failure — teardown must visit
/// every child even when one refuses to die.
fn reap_all(children: &mut [WorkerSlot]) -> Vec<(usize, ProcError)> {
    let mut failures = Vec::new();
    for (rank, slot) in children.iter_mut().enumerate() {
        if let Err(e) = slot.reap(rank) {
            failures.push((rank, e));
        }
    }
    failures
}

/// Spawns one `opt-worker` process with the launch environment; `rejoin`
/// marks a replacement that must re-mesh into a live world instead of
/// waiting at the initial rendezvous barrier.
fn spawn_worker(
    cfg: &TrainerConfig,
    opts: &ProcOptions,
    rdv_dir: &Path,
    trace: TraceMode,
    rank: usize,
    rejoin: bool,
) -> Result<Child, ProcError> {
    let mut cmd = std::process::Command::new(&opts.worker_bin);
    cmd.env(ENV_RANK, rank.to_string())
        .env(ENV_CFG, to_hex(&cfg.to_bytes()))
        .env(ENV_RDV, rdv_dir)
        .env(ENV_STORE, opts.store_addr.to_string())
        .env(ENV_TRACE, trace.as_str());
    if rejoin {
        cmd.env(ENV_REJOIN, "1");
    }
    cmd.spawn().map_err(ProcError::Io)
}

/// The coordinator of a multi-process training world: spawns one
/// `opt-worker` OS process per `(stage, dp)` rank, meshes with them over
/// TCP as the extra rank `pp * dp`, and drives the same command protocol
/// the in-process [`crate::Trainer`] drives over channels.
///
/// Created via [`crate::Trainer::launch_processes`].
pub struct ProcTrainer {
    cfg: TrainerConfig,
    opts: ProcOptions,
    transport: Arc<TcpTransport>,
    children: Vec<WorkerSlot>,
    /// The coordinator's own client view of the shard store.
    store: TcpShardStore,
    trace: TraceMode,
    next_id: u64,
    trained_iters: u64,
    /// The rendezvous directory this world meshed in; survivors' endpoint
    /// files stay valid for the world's whole life, so a replacement rank
    /// can [`opt_net::tcp_rejoin`] through the same directory.
    rdv_dir: PathBuf,
    /// Heartbeat bookkeeping over the worker ranks, fed by
    /// [`ProcTrainer::await_failure`].
    detector: FailureDetector,
}

impl fmt::Debug for ProcTrainer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ProcTrainer(pp={}, dp={}, workers={})",
            self.cfg.pp,
            self.cfg.dp,
            self.children.len()
        )
    }
}

impl ProcTrainer {
    /// Spawns the worker processes and meshes the world. The coordinator
    /// participates in the TCP world as rank `pp * dp`.
    pub(crate) fn launch(cfg: TrainerConfig, opts: ProcOptions) -> Result<ProcTrainer, ProcError> {
        Self::launch_traced(cfg, opts, TraceMode::from_env())
    }

    /// [`ProcTrainer::launch`] with an explicit trace mode, propagated to
    /// every worker process through the [`ENV_TRACE`] variable.
    pub(crate) fn launch_traced(
        cfg: TrainerConfig,
        opts: ProcOptions,
        trace: TraceMode,
    ) -> Result<ProcTrainer, ProcError> {
        assert!(cfg.pp > 0 && cfg.dp > 0, "pp and dp must be positive");
        let world = cfg.pp * cfg.dp;
        let coord = world;
        let incarnation = INCARNATION.fetch_add(1, Ordering::SeqCst);
        let rdv_dir = opts
            .scratch_dir
            .join(format!("rdv-{}-{incarnation}", std::process::id()));
        std::fs::create_dir_all(&rdv_dir)?;
        let mut children: Vec<WorkerSlot> = Vec::with_capacity(world);
        for rank in 0..world {
            match spawn_worker(&cfg, &opts, &rdv_dir, trace, rank, false) {
                Ok(child) => children.push(WorkerSlot {
                    child,
                    reaped: false,
                }),
                Err(e) => {
                    // Reap anything already spawned before reporting; a
                    // reap failure on top of a failed launch is logged
                    // rather than masking the original error.
                    for (r, re) in reap_all(&mut children) {
                        eprintln!("coordinator: cleanup after failed launch, rank {r}: {re}");
                    }
                    return Err(e);
                }
            }
        }
        let transport = match tcp_rendezvous(&rdv_dir, world + 1, coord, RDV_TIMEOUT) {
            Ok(t) => Arc::new(t),
            Err(e) => {
                for (r, re) in reap_all(&mut children) {
                    eprintln!("coordinator: cleanup after failed rendezvous, rank {r}: {re}");
                }
                return Err(ProcError::Transport(e));
            }
        };
        // The coordinator records its own (recovery) spans: failure
        // detection and rejoin orchestration happen here, not in any
        // worker, so observability of those phases needs a tracer on this
        // thread. `take_trace` drains this buffer alongside the workers'.
        opt_trace::install(trace);
        Ok(ProcTrainer {
            cfg,
            store: TcpShardStore::connect(opts.store_addr),
            opts,
            transport,
            children,
            trace,
            next_id: 0,
            trained_iters: 0,
            rdv_dir,
            detector: FailureDetector::new(HeartbeatConfig::from_env(), world, Instant::now()),
        })
    }

    /// The configuration of this run.
    pub fn config(&self) -> &TrainerConfig {
        &self.cfg
    }

    /// Iterations completed so far (includes iterations inherited from a
    /// restored checkpoint).
    pub fn trained_iters(&self) -> u64 {
        self.trained_iters
    }

    fn world(&self) -> usize {
        self.cfg.pp * self.cfg.dp
    }

    fn coord(&self) -> usize {
        self.world()
    }

    fn broadcast(&self, cmd: &WireCmd) -> Result<(), ProcError> {
        let coord = self.coord();
        // One shared payload for the whole fan-out: the command is encoded
        // once into the payload's cache, not once per rank.
        let payload = SharedPayload::new(cmd.clone());
        for rank in 0..self.world() {
            self.transport.send_shared(coord, rank, CH_CMD, &payload)?;
        }
        Ok(())
    }

    /// Receives one typed control message from `rank` on `channel`,
    /// skipping stale ids (`id_of(msg) < id`) left over from abandoned
    /// requests. FIFO per lane makes this loss-free.
    fn recv_matching<T>(
        &self,
        rank: usize,
        channel: u64,
        id: u64,
        id_of: impl Fn(&T) -> u64,
    ) -> Result<T, ProcError>
    where
        T: Persist + Clone + Send + Sync + 'static,
    {
        let coord = self.coord();
        loop {
            let value: T = match self
                .transport
                .recv_value(rank, coord, channel, CTRL_TIMEOUT)
            {
                Ok(v) => v,
                Err(TransportError::Decode { detail }) => {
                    return Err(ProcError::Protocol(format!(
                        "malformed control message: {detail}"
                    )))
                }
                Err(e) => return Err(e.into()),
            };
            let got = id_of(&value);
            if got == id {
                return Ok(value);
            }
            if got > id {
                return Err(ProcError::Protocol(format!(
                    "rank {rank} answered request {got} while {id} was pending"
                )));
            }
        }
    }

    /// Broadcasts a barrier and waits for every worker's ack.
    fn barrier(&mut self) -> Result<Vec<WorkerAck>, ProcError> {
        self.next_id += 1;
        let id = self.next_id;
        self.broadcast(&WireCmd::Barrier { id })?;
        let mut acks = Vec::with_capacity(self.world());
        for rank in 0..self.world() {
            acks.push(self.recv_matching(rank, CH_ACK, id, |a: &WorkerAck| a.id)?);
        }
        Ok(acks)
    }

    /// The quiesce step of the rejoin protocol: barriers every rank
    /// *except* the dead one and collects the survivors' acks, proving
    /// they are idle (no in-flight pipeline or collective frames) before
    /// a replacement splices into their mesh.
    fn barrier_except(&mut self, skip: usize) -> Result<Vec<WorkerAck>, ProcError> {
        self.next_id += 1;
        let id = self.next_id;
        let coord = self.coord();
        let payload = SharedPayload::new(WireCmd::Barrier { id });
        for rank in (0..self.world()).filter(|&r| r != skip) {
            self.transport.send_shared(coord, rank, CH_CMD, &payload)?;
        }
        let mut acks = Vec::with_capacity(self.world().saturating_sub(1));
        for rank in (0..self.world()).filter(|&r| r != skip) {
            acks.push(self.recv_matching(rank, CH_ACK, id, |a: &WorkerAck| a.id)?);
        }
        Ok(acks)
    }

    /// Drains every queued heartbeat into the failure detector.
    fn poll_heartbeats(&mut self) {
        let coord = self.coord();
        let now = Instant::now();
        for rank in 0..self.world() {
            while let Ok(Some(_)) = self
                .transport
                .try_recv_value::<u64>(rank, coord, CH_HEARTBEAT)
            {
                self.detector.record_beat(rank, now);
            }
        }
    }

    /// Watches the heartbeat lanes for up to `timeout` and returns the
    /// first rank the failure detector declares dead — silence longer
    /// than `OPT_NET_HEARTBEAT_MS × OPT_NET_HEARTBEAT_MISSES`. Returns
    /// `None` if every rank kept beating for the whole window.
    ///
    /// This is how a dead rank is *detected*: the coordinator notices the
    /// missing beats instead of a survivor tripping a long recv timeout
    /// deep inside a collective.
    pub fn await_failure(&mut self, timeout: Duration) -> Option<usize> {
        let deadline = Instant::now() + timeout;
        loop {
            self.poll_heartbeats();
            if let Some(rank) = self.detector.first_dead(Instant::now()) {
                // Zero-length marker span: the instant of detection, with
                // the detected rank in the micro field.
                drop(opt_trace::begin(
                    SpanKind::Detect,
                    self.trained_iters,
                    rank as u32,
                    0,
                    0,
                ));
                return Some(rank);
            }
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(
                self.detector
                    .config()
                    .interval
                    .min(Duration::from_millis(25)),
            );
        }
    }

    /// Replaces a dead rank without touching the survivors — the
    /// coordinator half of the elastic rejoin protocol:
    ///
    /// 1. **Fence** the dead process (kill + reap, idempotent), so the
    ///    rank identity cannot be claimed while its old incarnation
    ///    lingers.
    /// 2. Check a committed checkpoint manifest exists; without one the
    ///    world cannot be made whole and the caller gets a typed
    ///    [`WorldError::Unrecoverable`] instead of hung recv timeouts.
    /// 3. **Quiesce** the survivors at a barrier (they are never
    ///    re-execed — same PIDs, same sockets to each other).
    /// 4. Relaunch *only* the dead rank with [`ENV_REJOIN`] set; it
    ///    re-meshes via [`opt_net::tcp_rejoin`] and every survivor's
    ///    background acceptor splices the fresh connection over the dead
    ///    one, draining stale per-lane state.
    /// 5. Wait for the splice to land in the coordinator's own mesh.
    /// 6. Roll the whole world back to the manifest
    ///    ([`ProcTrainer::self_restore_all`]): the replacement fetches
    ///    its shard from the store, survivors re-apply theirs and
    ///    truncate replayed metrics.
    /// 7. Re-arm the failure detector for the replacement.
    ///
    /// Returns the checkpoint iteration the world resumed at.
    ///
    /// # Panics
    ///
    /// Panics if `rank` lies outside the world.
    pub fn rejoin_rank(&mut self, rank: usize) -> Result<u64, WorldError> {
        assert!(rank < self.world(), "rank {rank} outside the world");
        let _rejoin_span =
            opt_trace::begin(SpanKind::Rejoin, self.trained_iters, rank as u32, 0, 0);
        self.children[rank].reap(rank)?;
        let manifest_iter = match self.store.get(MANIFEST_FILE) {
            Ok(bytes) => ShardManifest::decode(&bytes)?.meta.iter,
            Err(e) => {
                return Err(WorldError::Unrecoverable {
                    reason: format!(
                        "rank {rank} is dead and no committed checkpoint manifest exists \
                         to restore a replacement from: {e}"
                    ),
                })
            }
        };
        self.barrier_except(rank)?;
        let generation = self.transport.peer_generation(rank);
        let child = spawn_worker(&self.cfg, &self.opts, &self.rdv_dir, self.trace, rank, true)?;
        self.children[rank] = WorkerSlot {
            child,
            reaped: false,
        };
        self.transport
            .wait_peer_generation(rank, generation, RDV_TIMEOUT)?;
        let resumed = {
            let _restore_span =
                opt_trace::begin(SpanKind::Restore, manifest_iter, rank as u32, 0, 0);
            self.self_restore_all()?
        };
        self.detector.reset(rank, Instant::now());
        Ok(resumed)
    }

    /// OS process ids of the current worker incarnations, indexed by
    /// rank. A rejoin replaces exactly one entry; the failure-matrix
    /// tests pin the survivors' entries across it.
    pub fn worker_pids(&self) -> Vec<u32> {
        self.children.iter().map(|s| s.child.id()).collect()
    }

    /// Runs extra training iterations, leaving the world quiesced.
    pub fn train_more(&mut self, extra: u64) -> Result<(), ProcError> {
        for iter in self.trained_iters..self.trained_iters + extra {
            self.broadcast(&WireCmd::TrainIter { iter })?;
        }
        self.trained_iters += extra;
        self.barrier()?;
        Ok(())
    }

    /// Runs training up to the configured iteration count with periodic
    /// validation — the multi-process mirror of [`crate::Trainer::train`],
    /// same command schedule, same aggregation, bit-identical report.
    pub fn train(&mut self) -> Result<TrainReport, ProcError> {
        let iters = self.cfg.iters;
        for iter in self.trained_iters..iters {
            self.broadcast(&WireCmd::TrainIter { iter })?;
            let validate_now =
                self.cfg.validate_every > 0 && (iter + 1) % self.cfg.validate_every == 0;
            if validate_now {
                self.broadcast(&WireCmd::Validate {
                    iter,
                    index: iter,
                    n_seq: self.cfg.val_sequences,
                })?;
            }
        }
        self.broadcast(&WireCmd::Validate {
            iter: iters.saturating_sub(1),
            index: iters,
            n_seq: self.cfg.val_sequences,
        })?;
        self.trained_iters = iters.max(self.trained_iters);
        self.report()
    }

    /// Quiesces the workers, gathers every process's raw samples and
    /// ledger, and aggregates them exactly as the in-process collector
    /// does (per-iteration sort before the floating-point mean, exact
    /// integer traffic sums) — so the report is bit-identical to the one
    /// a single-process run would produce.
    pub fn report(&mut self) -> Result<TrainReport, ProcError> {
        let (collector, traffic) = self.gather_metrics()?;
        Ok(collector.into_report(self.trained_iters, traffic))
    }

    /// Quiesces the workers and returns the merged traffic counters:
    /// per-class totals plus the per-(src, dst, channel) breakdown. Each
    /// worker ships only its own transport's half of every lane (its sends
    /// and its receives); the merge reassembles full lanes, so the result
    /// is identical to the in-process trainer's single shared ledger.
    pub fn traffic(&mut self) -> Result<TrafficBreakdown, ProcError> {
        Ok(self.gather_metrics()?.1)
    }

    fn gather_metrics(&mut self) -> Result<(Collector, TrafficBreakdown), ProcError> {
        // The barrier quiesces every worker; FetchMetrics is then handled
        // by the worker's control bridge while its loop is idle.
        self.barrier()?;
        self.next_id += 1;
        let id = self.next_id;
        self.broadcast(&WireCmd::FetchMetrics { id })?;
        let collector = Collector::default();
        let mut traffic = TrafficBreakdown::default();
        for rank in 0..self.world() {
            let msg = self.recv_matching(rank, CH_METRICS, id, |m: &MetricsMsg| m.id)?;
            collector.absorb(&msg.raw);
            traffic.absorb(&TrafficBreakdown::new(msg.traffic, msg.channels));
        }
        Ok((collector, traffic))
    }

    /// Drains every worker process's trace buffer over the control plane
    /// into one merged [`Trace`] — the multi-process mirror of
    /// [`crate::Trainer::take_trace`]. Returns `None` when the world was
    /// launched with tracing off.
    pub fn take_trace(&mut self) -> Result<Option<Trace>, ProcError> {
        if !self.trace.enabled() {
            return Ok(None);
        }
        self.barrier()?;
        self.next_id += 1;
        let id = self.next_id;
        self.broadcast(&WireCmd::FetchTrace { id })?;
        let mut buffers = Vec::with_capacity(self.world() + 1);
        for rank in 0..self.world() {
            let (_, buf) = self.recv_matching(rank, CH_TRACE, id, |m: &(u64, TraceBuffer)| m.0)?;
            buffers.push(buf);
        }
        // The coordinator thread records only recovery spans
        // (detect/rejoin/restore); include its buffer when a failure
        // actually happened so `trace_report` can show the outage, and
        // leave clean runs byte-identical to the pre-recovery format.
        let coord_buf =
            opt_trace::take_buffer(self.coord() as u32, self.cfg.pp as u32, self.cfg.dp as u32);
        if !coord_buf.spans.is_empty() {
            buffers.push(coord_buf);
        }
        Ok(Some(Trace::merge(buffers)))
    }

    /// Captures a sharded checkpoint: every worker process publishes its
    /// own shard to the store **over TCP**, the coordinator assembles and
    /// publishes the manifest last — the same commit order as the
    /// in-process path, so a crash mid-save leaves the previous
    /// checkpoint fully restorable.
    pub fn save_sharded(&mut self) -> Result<ShardManifest, ProcError> {
        self.next_id += 1;
        let id = self.next_id;
        let iter = self.trained_iters;
        self.broadcast(&WireCmd::PublishShard { id, iter })?;
        let world = self.world();
        let pp = self.cfg.pp;
        let mut entries: Vec<Option<ShardEntry>> = vec![None; world];
        let mut first_err = None;
        for rank in 0..world {
            let msg = self.recv_matching(rank, CH_SHARD, id, |m: &ShardMsg| m.id)?;
            match rewrap_ckpt(msg.result) {
                Ok(entry) => {
                    let idx = entry.dp * pp + entry.stage;
                    if entries[idx].is_some() {
                        return Err(ProcError::Protocol(format!(
                            "duplicate shard entry for (stage {}, dp {})",
                            entry.stage, entry.dp
                        )));
                    }
                    entries[idx] = Some(entry);
                }
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        if let Some(e) = first_err {
            return Err(ProcError::Ckpt(e));
        }
        // The same commit path as the in-process trainer (manifest last,
        // then GC), through the coordinator's own TCP client.
        crate::trainer::commit_manifest(&self.cfg, iter, entries, &self.store)
            .map_err(ProcError::Ckpt)
    }

    /// Has every worker process rendezvous on the store's manifest, fetch
    /// only its own shard over TCP, validate, and apply it. Returns the
    /// checkpoint iteration the world resumed at.
    pub fn self_restore_all(&mut self) -> Result<u64, ProcError> {
        let manifest_bytes = self.store.get(MANIFEST_FILE).map_err(|e| {
            ProcError::Ckpt(CkptError::Store {
                what: e.to_string(),
            })
        })?;
        let manifest = ShardManifest::decode(&manifest_bytes)?;
        let want_iter = manifest.meta.iter;
        self.next_id += 1;
        let id = self.next_id;
        self.broadcast(&WireCmd::SelfRestore { id })?;
        let mut first_err = None;
        for rank in 0..self.world() {
            let RestoreMsg {
                stage, dp, outcome, ..
            } = self.recv_matching(rank, CH_RESTORE, id, |m: &RestoreMsg| m.id)?;
            match rewrap_ckpt(outcome) {
                Ok(iter) if iter == want_iter => {}
                Ok(_) => {
                    first_err = first_err.or(Some(CkptError::ShardMismatch {
                        stage,
                        dp,
                        what: "restored shard is from a different checkpoint than the manifest",
                    }))
                }
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        if let Some(e) = first_err {
            return Err(ProcError::Ckpt(e));
        }
        self.trained_iters = want_iter;
        Ok(want_iter)
    }

    /// Kills the worker process for global rank `rank` the way a real
    /// failure does: `SIGKILL`, no handshake, no flushing.
    ///
    /// # Panics
    ///
    /// Panics if `rank` lies outside the world.
    pub fn kill_rank(&mut self, rank: usize) -> Result<(), ProcError> {
        assert!(rank < self.world(), "rank {rank} outside the world");
        self.children[rank].reap(rank)
    }

    /// Ranks whose worker process has exited (monitoring; an unexpected
    /// entry here means the world has lost a member and cannot progress).
    pub fn dead_ranks(&mut self) -> Vec<usize> {
        self.children
            .iter_mut()
            .enumerate()
            .filter_map(|(rank, slot)| slot.child.try_wait().ok().flatten().map(|_| rank))
            .collect()
    }

    /// Tears the whole world down the way a fatal failure does: every
    /// worker process is killed and reaped, no handshake. The shard store
    /// (which lives with the caller) survives — exactly the state a
    /// cluster is in after a job-level abort.
    ///
    /// Reap failures are returned (and logged to stderr) rather than
    /// silently swallowed — an unkillable worker means a leaked process.
    pub fn abort(mut self) -> Vec<(usize, ProcError)> {
        let failures = reap_all(&mut self.children);
        for (rank, e) in &failures {
            eprintln!("coordinator: reaping worker rank {rank} during abort failed: {e}");
        }
        // Dropping the transport shuts the control sockets down.
        failures
    }

    /// Clean shutdown: broadcast `Stop`, then reap every worker process.
    pub fn shutdown(mut self) -> Result<(), ProcError> {
        self.broadcast(&WireCmd::Stop)?;
        for (rank, slot) in self.children.iter_mut().enumerate() {
            slot.child.wait().map_err(|e| ProcError::Reap {
                rank,
                detail: format!("wait: {e}"),
            })?;
            slot.reaped = true;
        }
        Ok(())
    }

    /// The launch options this world was spawned with (reused to relaunch
    /// a replacement world against the same store and scratch space).
    pub fn options(&self) -> &ProcOptions {
        &self.opts
    }
}

/// The body of the `opt-worker` binary: runs **one** `(stage, dp)` rank
/// as a real OS process. Reads the environment protocol
/// ([`ENV_RANK`], [`ENV_CFG`], [`ENV_RDV`], [`ENV_STORE`]), rendezvouses
/// with the rest of the world over TCP, builds the exact same
/// `WorkerCtx` the in-process trainer builds (meshes, collective groups —
/// through the same order-fixing `build_groups`), and enters the shared
/// `run_worker` loop. Control commands arrive over TCP and are bridged
/// onto the worker's command channel; acks, shard digests, restore
/// outcomes, and metrics are bridged back.
pub fn worker_main() -> Result<(), ProcError> {
    let env = |key: &str| {
        std::env::var(key).map_err(|_| ProcError::Protocol(format!("{key} is not set")))
    };
    let rank: usize = env(ENV_RANK)?
        .parse()
        .map_err(|_| ProcError::Protocol(format!("{ENV_RANK} is not a rank")))?;
    let cfg_bytes = from_hex(&env(ENV_CFG)?)
        .ok_or_else(|| ProcError::Protocol(format!("{ENV_CFG} is not hex")))?;
    let cfg = TrainerConfig::from_bytes(&cfg_bytes)?;
    let rdv_dir = PathBuf::from(env(ENV_RDV)?);
    let store_addr: SocketAddr = env(ENV_STORE)?
        .parse()
        .map_err(|_| ProcError::Protocol(format!("{ENV_STORE} is not an address")))?;
    // Trace mode travels in the environment like the rest of the launch
    // protocol; the coordinator sets it explicitly on every spawn.
    let trace = TraceMode::from_env();

    let pp = cfg.pp;
    let dp = cfg.dp;
    let world = pp * dp;
    if rank >= world {
        return Err(ProcError::Protocol(format!(
            "rank {rank} outside the {pp}x{dp} world"
        )));
    }
    let coord = world;
    let stage_idx = rank % pp;
    let dp_idx = rank / pp;

    // Mesh the world: workers + the coordinator as rank `world`. A
    // replacement rank (ENV_REJOIN) dials into the *existing* mesh —
    // every survivor's acceptor splices the fresh sockets over the dead
    // incarnation's — instead of re-running the full-world rendezvous.
    let rejoin = std::env::var(ENV_REJOIN).is_ok_and(|v| v == "1");
    let transport = if rejoin {
        Arc::new(tcp_rejoin(&rdv_dir, world + 1, rank, RDV_TIMEOUT)?)
    } else {
        Arc::new(tcp_rendezvous(&rdv_dir, world + 1, rank, RDV_TIMEOUT)?)
    };
    let store: Arc<dyn ShardStore> = Arc::new(TcpShardStore::connect(store_addr));

    // Heartbeat: a dedicated thread beats on the control-plane heartbeat
    // lane so the coordinator can tell "dead" from "busy". Control lanes
    // are excluded from the traffic contract, so beating at wall-clock
    // cadence cannot perturb bit-exactness.
    let hb_stop = Arc::new(AtomicBool::new(false));
    let hb_transport = Arc::clone(&transport);
    let hb_flag = Arc::clone(&hb_stop);
    let hb_interval = HeartbeatConfig::from_env().interval;
    let heartbeat = std::thread::Builder::new()
        .name("heartbeat".to_string())
        .spawn(move || {
            let mut seq: u64 = 0;
            while !hb_flag.load(Ordering::Relaxed) {
                if hb_transport
                    .send_value(rank, coord, CH_HEARTBEAT, seq)
                    .is_err()
                {
                    return; // coordinator gone: nothing left to reassure
                }
                seq += 1;
                std::thread::sleep(hb_interval);
            }
        })
        .map_err(ProcError::Io)?;

    // Same construction sequence as Trainer::launch, so collective
    // channel ids agree across every process of the world.
    let fwd_mesh = P2pMesh::over(Arc::clone(&transport), CH_FWD);
    let bwd_mesh = P2pMesh::over(Arc::clone(&transport), CH_BWD);
    let collective_world = CollectiveWorld::over(Arc::clone(&transport));
    let WorldGroups {
        stage_groups,
        emb_pair_groups,
        fused_group,
    } = build_groups(&collective_world, pp, dp);

    let (cmd_tx, cmd_rx) = unbounded();
    let (ack_tx, ack_rx) = unbounded();
    let (snap_tx, snap_rx) = unbounded();
    let (shard_tx, shard_rx) = unbounded();
    let (restore_tx, restore_rx) = unbounded();
    let (predict_tx, predict_rx) = unbounded();
    let (trace_tx, trace_rx) = unbounded();
    let collector = Collector::default();
    let ledger = TrafficLedger::new();

    let ctx = WorkerCtx {
        cfg: cfg.clone(),
        stage_idx,
        dp_idx,
        stage: opt_model::Stage::build_pipeline(&cfg.model, pp, cfg.seed)
            .into_iter()
            .nth(stage_idx)
            .expect("stage exists"),
        corpus: cfg.corpus(),
        fwd_mesh,
        bwd_mesh,
        stage_group: stage_groups[stage_idx].clone(),
        emb_pair_group: if stage_idx == 0 || stage_idx == pp - 1 {
            emb_pair_groups[dp_idx].clone()
        } else {
            None
        },
        fused_group: if stage_idx == 0 || stage_idx == pp - 1 {
            fused_group.clone()
        } else {
            None
        },
        cmds: cmd_rx,
        acks: ack_tx,
        snap_out: snap_tx,
        shard_out: shard_tx,
        restore_out: restore_tx,
        predict_out: predict_tx,
        collector: collector.clone(),
        ledger: ledger.clone(),
        trace,
        trace_out: trace_tx,
    };

    // Control bridge in: TCP command lane -> worker command channel.
    // FetchMetrics is answered here directly — the coordinator only sends
    // it after a barrier ack, i.e. while the worker loop is idle.
    let bridge_transport = Arc::clone(&transport);
    let bridge_collector = collector.clone();
    let bridge_ledger = ledger.clone();
    let bridge_store = Arc::clone(&store);
    let bridge = std::thread::Builder::new()
        .name("ctrl-bridge".to_string())
        .spawn(move || loop {
            let cmd =
                match bridge_transport.recv_value::<WireCmd>(coord, rank, CH_CMD, CTRL_TIMEOUT) {
                    Ok(c) => c,
                    Err(TransportError::Timeout { .. }) => continue, // idle world
                    Err(_) => {
                        // Coordinator died (or sent garbage): stop the worker
                        // loop and exit.
                        let _ = cmd_tx.send(Cmd::Stop);
                        return;
                    }
                };
            let forward = match cmd {
                WireCmd::TrainIter { iter } => Cmd::TrainIter { iter },
                WireCmd::Validate { iter, index, n_seq } => Cmd::Validate { iter, index, n_seq },
                WireCmd::Barrier { id } => Cmd::Barrier { id },
                WireCmd::PublishShard { id, iter } => Cmd::PublishShard {
                    id,
                    iter,
                    store: Arc::clone(&bridge_store),
                },
                WireCmd::SelfRestore { id } => Cmd::SelfRestore {
                    id,
                    store: Arc::clone(&bridge_store),
                },
                WireCmd::FetchMetrics { id } => {
                    let msg = MetricsMsg {
                        id,
                        raw: bridge_collector.raw_samples(),
                        traffic: bridge_ledger.snapshot(),
                        // This process's half of every lane it touched; the
                        // coordinator reassembles full lanes across ranks.
                        channels: bridge_transport.channel_stats(),
                    };
                    let _ = bridge_transport.send_value(rank, coord, CH_METRICS, msg);
                    continue;
                }
                WireCmd::FetchTrace { id } => Cmd::FetchTrace { id },
                WireCmd::Stop => {
                    let _ = cmd_tx.send(Cmd::Stop);
                    return;
                }
            };
            if cmd_tx.send(forward).is_err() {
                return;
            }
        })
        .map_err(ProcError::Io)?;

    // Control bridges out: worker result channels -> TCP lanes.
    let ack_transport = Arc::clone(&transport);
    let ack_bridge = std::thread::spawn(move || {
        while let Ok(ack) = ack_rx.recv() {
            let _ = ack_transport.send_value(rank, coord, CH_ACK, ack);
        }
    });
    let shard_transport = Arc::clone(&transport);
    let shard_bridge = std::thread::spawn(move || {
        while let Ok((id, result)) = shard_rx.recv() {
            let msg = ShardMsg {
                id,
                result: stringify_ckpt(result),
            };
            let _ = shard_transport.send_value(rank, coord, CH_SHARD, msg);
        }
    });
    let restore_transport = Arc::clone(&transport);
    let restore_bridge = std::thread::spawn(move || {
        while let Ok((id, stage, dp, result)) = restore_rx.recv() {
            let msg = RestoreMsg {
                id,
                stage,
                dp,
                outcome: stringify_ckpt(result),
            };
            let _ = restore_transport.send_value(rank, coord, CH_RESTORE, msg);
        }
    });
    let trace_transport = Arc::clone(&transport);
    let trace_bridge = std::thread::spawn(move || {
        while let Ok((id, buf)) = trace_rx.recv() {
            let _ = trace_transport.send_value(rank, coord, CH_TRACE, (id, buf));
        }
    });

    // The worker loop proper — identical code to the in-process threads.
    run_worker(ctx);

    // ctx dropped inside run_worker: the out-bridge channels close and
    // their threads drain; the in-bridge exits on Stop (or coordinator
    // death). The unused monolithic-snapshot and predict receivers were
    // simply never sent to on this path.
    drop(snap_rx);
    drop(predict_rx);
    hb_stop.store(true, Ordering::Relaxed);
    let _ = heartbeat.join();
    let _ = bridge.join();
    let _ = ack_bridge.join();
    let _ = shard_bridge.join();
    let _ = restore_bridge.join();
    let _ = trace_bridge.join();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_cmds_roundtrip() {
        let cmds = [
            WireCmd::TrainIter { iter: 7 },
            WireCmd::Validate {
                iter: 3,
                index: 4,
                n_seq: 32,
            },
            WireCmd::Barrier { id: 9 },
            WireCmd::PublishShard { id: 1, iter: 2 },
            WireCmd::SelfRestore { id: 5 },
            WireCmd::FetchMetrics { id: 6 },
            WireCmd::FetchTrace { id: 8 },
            WireCmd::Stop,
        ];
        for cmd in cmds {
            assert_eq!(WireCmd::from_bytes(&cmd.to_bytes()).unwrap(), cmd);
        }
    }

    #[test]
    fn ckpt_results_roundtrip_with_error_as_store() {
        let ok = RestoreMsg {
            id: 3,
            stage: 1,
            dp: 2,
            outcome: stringify_ckpt(Ok(42)),
        };
        let back = RestoreMsg::from_bytes(&ok.to_bytes()).unwrap();
        assert_eq!(back.id, 3);
        assert_eq!((back.stage, back.dp), (1, 2));
        assert_eq!(rewrap_ckpt(back.outcome).unwrap(), 42);

        let err = RestoreMsg {
            id: 4,
            stage: 0,
            dp: 0,
            outcome: stringify_ckpt(Err(CkptError::BadMagic)),
        };
        let back = RestoreMsg::from_bytes(&err.to_bytes()).unwrap();
        match rewrap_ckpt(back.outcome) {
            Err(CkptError::Store { what }) => assert!(!what.is_empty()),
            other => panic!("expected Store error, got {other:?}"),
        }
    }

    #[test]
    fn hex_roundtrips() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(from_hex(&to_hex(&bytes)).unwrap(), bytes);
        assert!(from_hex("abc").is_none());
        assert!(from_hex("zz").is_none());
    }
}
