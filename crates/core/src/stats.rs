//! Metrics collected during a training run.

use opt_net::TrafficBreakdown;
use parking_lot::Mutex;
use std::sync::Arc;

/// One validation measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValPoint {
    /// Iteration at which validation ran.
    pub iter: u64,
    /// Mean validation loss (nats/token).
    pub loss: f32,
}

impl ValPoint {
    /// Validation perplexity `exp(loss)` — the paper's metric.
    pub fn perplexity(&self) -> f32 {
        self.loss.exp()
    }
}

/// One Fig. 11 sample from an inter-stage link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStatPoint {
    /// Iteration the sample was taken in.
    pub iter: u64,
    /// Pipeline stage holding the lazy-error buffer (the sender).
    pub stage: usize,
    /// Mean of the preserved error elements (`Avg(eps)`, ~0 per Eq. 14).
    pub error_mean: f32,
    /// Mean of the activation difference `Y(i) - Y(i+n)` (~0 per Eq. 14).
    pub act_diff_mean: f32,
    /// Cosine similarity between error and activation difference (~0:
    /// independence, the paper's empirical validation of Eq. 14).
    pub cosine: f32,
}

impl opt_tensor::Persist for ErrorStatPoint {
    fn persist(&self, w: &mut opt_tensor::Writer) {
        w.u64(self.iter);
        w.usize(self.stage);
        w.f32(self.error_mean);
        w.f32(self.act_diff_mean);
        w.f32(self.cosine);
    }

    fn restore(r: &mut opt_tensor::Reader<'_>) -> Result<Self, opt_tensor::PersistError> {
        Ok(Self {
            iter: r.u64()?,
            stage: r.usize()?,
            error_mean: r.f32()?,
            act_diff_mean: r.f32()?,
            cosine: r.f32()?,
        })
    }
}

/// Final report of a training run.
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    /// Mean training loss per iteration (averaged over micro-batches and
    /// data-parallel ranks).
    pub train_loss: Vec<f32>,
    /// Validation curve.
    pub val_points: Vec<ValPoint>,
    /// Fig. 11 error statistics (empty unless enabled).
    pub error_stats: Vec<ErrorStatPoint>,
    /// Wire traffic of the whole run: per-class totals plus the
    /// per-(src, dst, channel) breakdown behind them.
    pub traffic: TrafficBreakdown,
}

impl TrainReport {
    /// The last validation perplexity (NaN if validation never ran).
    pub fn final_val_ppl(&self) -> f32 {
        self.val_points
            .last()
            .map_or(f32::NAN, ValPoint::perplexity)
    }

    /// The last validation loss (NaN if validation never ran).
    pub fn final_val_loss(&self) -> f32 {
        self.val_points.last().map_or(f32::NAN, |p| p.loss)
    }
}

/// Shared collector the worker threads append into.
#[derive(Debug, Clone, Default)]
pub(crate) struct Collector {
    inner: Arc<Mutex<CollectorInner>>,
}

#[derive(Debug, Default)]
struct CollectorInner {
    /// (iter, loss) samples from last-stage workers, one per micro-batch.
    train_samples: Vec<(u64, f32)>,
    /// (iter, loss) validation samples (dp rank 0's pipeline).
    val_samples: Vec<(u64, f32)>,
    error_stats: Vec<ErrorStatPoint>,
}

/// The raw samples of one worker's collector, in wire-friendly form —
/// what a remote worker ships to the coordinator at report time. Merge
/// order across workers does not matter: [`Collector::into_report`] sorts
/// each iteration's samples before the floating-point reduction, so a
/// merged multi-process report is bit-identical to the single shared
/// collector of an in-process run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RawSamples {
    /// (iter, loss) training samples, one per micro-batch.
    pub train: Vec<(u64, f32)>,
    /// (iter, loss) validation samples.
    pub val: Vec<(u64, f32)>,
    /// Fig. 11 samples.
    pub error_stats: Vec<ErrorStatPoint>,
}

impl Collector {
    pub fn record_train(&self, iter: u64, loss: f32) {
        self.inner.lock().train_samples.push((iter, loss));
    }

    /// Snapshots the raw samples recorded so far (quiesce first: callers
    /// barrier the workers before reading).
    pub fn raw_samples(&self) -> RawSamples {
        let inner = self.inner.lock();
        RawSamples {
            train: inner.train_samples.clone(),
            val: inner.val_samples.clone(),
            error_stats: inner.error_stats.clone(),
        }
    }

    /// Folds another worker's raw samples into this collector.
    pub fn absorb(&self, raw: &RawSamples) {
        let mut inner = self.inner.lock();
        inner.train_samples.extend_from_slice(&raw.train);
        inner.val_samples.extend_from_slice(&raw.val);
        inner.error_stats.extend_from_slice(&raw.error_stats);
    }

    pub fn record_val(&self, iter: u64, loss: f32) {
        self.inner.lock().val_samples.push((iter, loss));
    }

    /// Discards every sample recorded at or after `iter`. A survivor
    /// rolled back to a checkpoint calls this so the iterations it is
    /// about to replay are not recorded twice — the report after a
    /// rejoin stays bit-identical to an uninterrupted run. Idempotent.
    pub fn truncate_from(&self, iter: u64) {
        let mut inner = self.inner.lock();
        inner.train_samples.retain(|&(i, _)| i < iter);
        inner.val_samples.retain(|&(i, _)| i < iter);
        inner.error_stats.retain(|p| p.iter < iter);
    }

    pub fn record_error_stat(&self, p: ErrorStatPoint) {
        self.inner.lock().error_stats.push(p);
    }

    /// Aggregates the raw samples into a [`TrainReport`].
    pub fn into_report(self, iters: u64, traffic: TrafficBreakdown) -> TrainReport {
        let inner = Arc::try_unwrap(self.inner)
            .map(Mutex::into_inner)
            .unwrap_or_else(|arc| {
                let guard = arc.lock();
                CollectorInner {
                    train_samples: guard.train_samples.clone(),
                    val_samples: guard.val_samples.clone(),
                    error_stats: guard.error_stats.clone(),
                }
            });
        // Samples arrive in thread-scheduling order; sort before summing
        // so the floating-point reduction is identical across runs. This
        // is what lets the checkpoint tests assert *bit-equal* losses
        // between a straight run and a kill/restore run.
        let mean_sorted = |mut ls: Vec<f32>| -> f32 {
            ls.sort_unstable_by(f32::total_cmp);
            ls.iter().sum::<f32>() / ls.len() as f32
        };
        let mut train_loss = Vec::with_capacity(iters as usize);
        for it in 0..iters {
            let samples: Vec<f32> = inner
                .train_samples
                .iter()
                .filter(|(i, _)| *i == it)
                .map(|(_, l)| *l)
                .collect();
            if samples.is_empty() {
                train_loss.push(f32::NAN);
            } else {
                train_loss.push(mean_sorted(samples));
            }
        }
        // Error stats arrive in thread-scheduling (or, multi-process,
        // rank-merge) order; each (iter, stage) subsequence comes from a
        // single worker in micro order, so a stable key sort makes the
        // final vector identical however the worlds interleaved.
        let mut error_stats = inner.error_stats;
        error_stats.sort_by_key(|p| (p.iter, p.stage));
        let mut val_iters: Vec<u64> = inner.val_samples.iter().map(|(i, _)| *i).collect();
        val_iters.sort_unstable();
        val_iters.dedup();
        let val_points = val_iters
            .into_iter()
            .map(|it| {
                let ls: Vec<f32> = inner
                    .val_samples
                    .iter()
                    .filter(|(i, _)| *i == it)
                    .map(|(_, l)| *l)
                    .collect();
                ValPoint {
                    iter: it,
                    loss: mean_sorted(ls),
                }
            })
            .collect();
        TrainReport {
            train_loss,
            val_points,
            error_stats,
            traffic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_aggregates_per_iteration() {
        let c = Collector::default();
        c.record_train(0, 2.0);
        c.record_train(0, 4.0);
        c.record_train(1, 1.0);
        c.record_val(1, 0.5);
        let report = c.into_report(2, TrafficBreakdown::default());
        assert_eq!(report.train_loss, vec![3.0, 1.0]);
        assert_eq!(report.val_points.len(), 1);
        assert!((report.final_val_ppl() - 0.5f32.exp()).abs() < 1e-6);
    }

    #[test]
    fn empty_report_is_nan() {
        let c = Collector::default();
        let report = c.into_report(1, TrafficBreakdown::default());
        assert!(report.train_loss[0].is_nan());
        assert!(report.final_val_ppl().is_nan());
    }

    #[test]
    fn truncate_from_drops_replayed_iterations() {
        let c = Collector::default();
        c.record_train(0, 2.0);
        c.record_train(1, 4.0);
        c.record_train(2, 8.0);
        c.record_val(2, 0.5);
        // Rolled back to the iteration-2 checkpoint: iterations >= 2 will
        // be replayed and re-recorded.
        c.truncate_from(2);
        c.truncate_from(2); // idempotent
        let raw = c.raw_samples();
        assert_eq!(raw.train, vec![(0, 2.0), (1, 4.0)]);
        assert!(raw.val.is_empty());
        c.record_train(2, 8.0);
        c.record_val(2, 0.5);
        let report = c.into_report(3, TrafficBreakdown::default());
        assert_eq!(report.train_loss, vec![2.0, 4.0, 8.0]);
        assert_eq!(report.val_points.len(), 1);
    }
}
