//! The trainer: spawns workers, drives the run, gathers results.

use crate::config::TrainerConfig;
use crate::stats::{Collector, TrainReport};
use crate::worker::{run_worker, Cmd, WorkerAck, WorkerCtx};
use crate::MemoryReport;
use crossbeam::channel::{unbounded, Receiver, Sender};
use opt_data::{TaskScore, ZeroShotTask};
use opt_model::Stage;
use opt_net::{CollectiveWorld, P2pMesh, TrafficLedger};
use std::thread::JoinHandle;

/// A running 3D-parallel training job: `pp x dp` worker threads, each
/// owning one model slice.
///
/// Workers are driven by broadcast commands; [`Trainer::train`] runs the
/// configured number of iterations with periodic validation,
/// [`Trainer::predict`] and [`Trainer::zero_shot`] evaluate the frozen
/// model, and [`Trainer::shutdown`] joins all threads.
pub struct Trainer {
    cfg: TrainerConfig,
    cmd_txs: Vec<Sender<Cmd>>,
    ack_rx: Receiver<WorkerAck>,
    predict_rx: Receiver<(u64, Vec<usize>)>,
    handles: Vec<JoinHandle<()>>,
    collector: Collector,
    ledger: TrafficLedger,
    next_id: u64,
    trained_iters: u64,
}

impl std::fmt::Debug for Trainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Trainer(pp={}, dp={}, workers={})",
            self.cfg.pp,
            self.cfg.dp,
            self.handles.len()
        )
    }
}

impl Trainer {
    /// Builds all model slices and spawns the worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `pp` or `dp` is zero, or `pp > model.n_layers`.
    pub fn launch(cfg: TrainerConfig) -> Trainer {
        assert!(cfg.pp > 0 && cfg.dp > 0, "pp and dp must be positive");
        let pp = cfg.pp;
        let dp = cfg.dp;
        let world_size = pp * dp;
        let fwd_mesh: P2pMesh<opt_tensor::Matrix> = P2pMesh::new(world_size);
        let bwd_mesh: P2pMesh<opt_compress::Compressed> = P2pMesh::new(world_size);
        let world = CollectiveWorld::new(world_size);
        let collector = Collector::default();
        let ledger = TrafficLedger::new();
        let (ack_tx, ack_rx) = unbounded();
        let (predict_tx, predict_rx) = unbounded();

        // Shared groups: one DP group per stage, one 2-way embedding pair
        // per dp rank, one fused group over all end-stage ranks.
        let stage_groups: Vec<_> = (0..pp)
            .map(|s| world.group(&(0..dp).map(|d| d * pp + s).collect::<Vec<_>>()))
            .collect();
        let emb_pair_groups: Vec<_> = (0..dp)
            .map(|d| {
                if pp > 1 {
                    Some(world.group(&[d * pp, d * pp + pp - 1]))
                } else {
                    None
                }
            })
            .collect();
        let fused_group = if pp > 1 {
            let mut ranks: Vec<usize> = (0..dp).map(|d| d * pp).collect();
            ranks.extend((0..dp).map(|d| d * pp + pp - 1));
            ranks.sort_unstable();
            Some(world.group(&ranks))
        } else {
            None
        };

        let corpus = cfg.corpus();
        let mut handles = Vec::with_capacity(world_size);
        let mut cmd_txs = Vec::with_capacity(world_size);
        for d in 0..dp {
            // Every dp rank builds the identical pipeline (same seed).
            let mut stages = Stage::build_pipeline(&cfg.model, pp, cfg.seed);
            for s in (0..pp).rev() {
                let stage = stages.pop().expect("stage built");
                let (cmd_tx, cmd_rx) = unbounded();
                let ctx = WorkerCtx {
                    cfg: cfg.clone(),
                    stage_idx: s,
                    dp_idx: d,
                    stage,
                    corpus: corpus.clone(),
                    fwd_mesh: fwd_mesh.clone(),
                    bwd_mesh: bwd_mesh.clone(),
                    stage_group: stage_groups[s].clone(),
                    emb_pair_group: if s == 0 || s == pp - 1 {
                        emb_pair_groups[d].clone()
                    } else {
                        None
                    },
                    fused_group: if s == 0 || s == pp - 1 {
                        fused_group.clone()
                    } else {
                        None
                    },
                    cmds: cmd_rx,
                    acks: ack_tx.clone(),
                    predict_out: predict_tx.clone(),
                    collector: collector.clone(),
                    ledger: ledger.clone(),
                };
                let name = format!("worker-s{s}-d{d}");
                handles.push(
                    std::thread::Builder::new()
                        .name(name)
                        .spawn(move || run_worker(ctx))
                        .expect("spawn worker"),
                );
                cmd_txs.push(cmd_tx);
            }
        }
        // cmd_txs were pushed in reverse stage order per dp rank; order is
        // irrelevant (commands are broadcast), but keep deterministic.
        Trainer {
            cfg,
            cmd_txs,
            ack_rx,
            predict_rx,
            handles,
            collector,
            ledger,
            next_id: 0,
            trained_iters: 0,
        }
    }

    /// The configuration of this run.
    pub fn config(&self) -> &TrainerConfig {
        &self.cfg
    }

    fn broadcast(&self, cmd: Cmd) {
        for tx in &self.cmd_txs {
            tx.send(cmd.clone()).expect("worker channel closed");
        }
    }

    fn barrier(&mut self) -> Vec<WorkerAck> {
        self.next_id += 1;
        let id = self.next_id;
        self.broadcast(Cmd::Barrier { id });
        let mut acks = Vec::with_capacity(self.cmd_txs.len());
        while acks.len() < self.cmd_txs.len() {
            let ack = self.ack_rx.recv().expect("worker dropped ack channel");
            if ack.id == id {
                acks.push(ack);
            }
        }
        acks
    }

    /// Runs the configured number of training iterations with periodic
    /// validation, returning the aggregated report.
    pub fn train(&mut self) -> TrainReport {
        let iters = self.cfg.iters;
        for iter in 0..iters {
            self.broadcast(Cmd::TrainIter { iter });
            let validate_now =
                self.cfg.validate_every > 0 && (iter + 1) % self.cfg.validate_every == 0;
            if validate_now {
                self.broadcast(Cmd::Validate {
                    iter,
                    index: iter,
                    n_seq: self.cfg.val_sequences,
                });
            }
        }
        // Final validation at the last iteration tag.
        self.broadcast(Cmd::Validate {
            iter: iters.saturating_sub(1),
            index: iters,
            n_seq: self.cfg.val_sequences,
        });
        self.barrier();
        self.trained_iters = iters;
        self.collector
            .clone()
            .into_report(iters, self.ledger.snapshot())
    }

    /// Runs extra training iterations beyond `cfg.iters` (used by
    /// long-horizon experiments that checkpoint metrics between phases).
    pub fn train_more(&mut self, extra: u64) {
        for iter in self.trained_iters..self.trained_iters + extra {
            self.broadcast(Cmd::TrainIter { iter });
        }
        self.trained_iters += extra;
        self.barrier();
    }

    /// Predicts the next token at the final position of each sequence in
    /// `tokens` (grouped in `seq_len` chunks), using dp rank 0's pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `tokens.len()` is not a multiple of the sequence length.
    pub fn predict(&mut self, tokens: &[usize]) -> Vec<usize> {
        assert!(
            tokens.len().is_multiple_of(self.cfg.model.seq_len),
            "token count must be a multiple of seq_len"
        );
        self.next_id += 1;
        let id = self.next_id;
        self.broadcast(Cmd::Predict {
            id,
            tokens: tokens.to_vec(),
        });
        loop {
            let (got, answers) = self.predict_rx.recv().expect("predict channel closed");
            if got == id {
                return answers;
            }
        }
    }

    /// Evaluates a zero-shot probe on the frozen model (Table 3 protocol):
    /// `n` generated examples, accuracy of last-position argmax.
    pub fn zero_shot(&mut self, task: ZeroShotTask, n: usize, seed: u64) -> TaskScore {
        let corpus = self.cfg.corpus();
        let examples = task.generate(&corpus, n, seed);
        let mut correct = 0;
        // Batch examples to amortize pipeline latency.
        let batch = 16usize;
        for chunk in examples.chunks(batch) {
            let mut tokens = Vec::with_capacity(chunk.len() * self.cfg.model.seq_len);
            for ex in chunk {
                tokens.extend_from_slice(&ex.context);
            }
            let preds = self.predict(&tokens);
            for (p, ex) in preds.iter().zip(chunk) {
                if *p == ex.answer {
                    correct += 1;
                }
            }
        }
        TaskScore { correct, total: n }
    }

    /// Evaluates all five zero-shot probes (Table 3 row order).
    pub fn zero_shot_suite(&mut self, n: usize, seed: u64) -> Vec<(ZeroShotTask, TaskScore)> {
        ZeroShotTask::ALL
            .into_iter()
            .map(|t| (t, self.zero_shot(t, n, seed)))
            .collect()
    }

    /// Memory accounting across workers (Fig. 12).
    pub fn memory_report(&mut self) -> MemoryReport {
        let acks = self.barrier();
        crate::memory::memory_report(&self.cfg, &acks)
    }

    /// Stops and joins every worker thread.
    pub fn shutdown(mut self) {
        self.broadcast(Cmd::Stop);
        for h in self.handles.drain(..) {
            h.join().expect("worker panicked");
        }
    }
}
