//! The trainer: spawns workers, drives the run, gathers results.

use crate::config::TrainerConfig;
use crate::stats::{Collector, TrainReport};
use crate::worker::{
    decode_cb_link, decode_dp_state, run_worker, Cmd, WorkerAck, WorkerCtx, CH_BWD, CH_FWD,
};
use crate::MemoryReport;
use crossbeam::channel::{unbounded, Receiver, Sender};
use opt_ckpt::{
    CkptError, RankSection, ShardEntry, ShardManifest, Snapshot, SnapshotMeta, MANIFEST_FILE,
};
use opt_data::{TaskScore, ZeroShotTask};
use opt_model::{Adam, Stage};
use opt_net::{
    CollectiveWorld, LocalTransport, P2pMesh, ShardStore, TrafficBreakdown, TrafficLedger,
    Transport,
};
use opt_tensor::Persist;
use opt_trace::{Trace, TraceBuffer, TraceMode};
use std::path::Path;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Assembles and commits a sharded-checkpoint manifest from fully
/// published per-rank entries (ordered by `dp * pp + stage`), then
/// garbage-collects shards the new manifest no longer references.
///
/// Shared by the in-process trainer and the multi-process coordinator —
/// one implementation is what keeps the checkpoint format and commit
/// order (shards first, manifest last, GC only after the commit)
/// identical across both worlds.
pub(crate) fn commit_manifest(
    cfg: &TrainerConfig,
    iter: u64,
    entries: Vec<Option<ShardEntry>>,
    store: &dyn ShardStore,
) -> Result<ShardManifest, CkptError> {
    let manifest = ShardManifest {
        meta: SnapshotMeta {
            pp: cfg.pp,
            dp: cfg.dp,
            seed: cfg.seed,
            iter,
            config_fingerprint: cfg.fingerprint(),
        },
        shards: entries.into_iter().map(|e| e.expect("filled")).collect(),
    };
    store
        .put(MANIFEST_FILE, &manifest.encode())
        .map_err(|e| CkptError::Store {
            what: e.to_string(),
        })?;
    // The new manifest is committed; stale shards from earlier
    // checkpoints can go. Best effort only — failures here cannot
    // invalidate the checkpoint that was just published.
    let live: std::collections::HashSet<&str> =
        manifest.shards.iter().map(|e| e.name.as_str()).collect();
    if let Ok(names) = store.list() {
        for name in names {
            if name.ends_with(".shard") && !live.contains(name.as_str()) {
                let _ = store.delete(&name);
            }
        }
    }
    Ok(manifest)
}

/// A running 3D-parallel training job: `pp x dp` worker threads, each
/// owning one model slice.
///
/// Workers are driven by broadcast commands; [`Trainer::train`] runs the
/// configured number of iterations with periodic validation,
/// [`Trainer::predict`] and [`Trainer::zero_shot`] evaluate the frozen
/// model, and [`Trainer::shutdown`] joins all threads.
pub struct Trainer {
    cfg: TrainerConfig,
    /// Command channel per worker, indexed by global rank `d * pp + s`.
    cmd_txs: Vec<Sender<Cmd>>,
    ack_rx: Receiver<WorkerAck>,
    snap_rx: Receiver<(u64, RankSection)>,
    shard_rx: Receiver<(u64, Result<ShardEntry, CkptError>)>,
    restore_rx: Receiver<(u64, usize, usize, Result<u64, CkptError>)>,
    predict_rx: Receiver<(u64, Vec<usize>)>,
    trace_rx: Receiver<(u64, TraceBuffer)>,
    handles: Vec<JoinHandle<()>>,
    collector: Collector,
    ledger: TrafficLedger,
    /// The shared transport carrying meshes and collectives — kept so
    /// reports can read its per-channel traffic stats.
    transport: Arc<LocalTransport>,
    trace: TraceMode,
    next_id: u64,
    trained_iters: u64,
}

impl std::fmt::Debug for Trainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Trainer(pp={}, dp={}, workers={})",
            self.cfg.pp,
            self.cfg.dp,
            self.handles.len()
        )
    }
}

impl Trainer {
    /// Builds all model slices and spawns the worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `pp` or `dp` is zero, or `pp > model.n_layers`.
    pub fn launch(cfg: TrainerConfig) -> Trainer {
        Self::launch_with_trace(cfg, TraceMode::from_env())
    }

    /// [`Trainer::launch`] with an explicit trace mode instead of the
    /// `OPT_TRACE` environment variable. With [`TraceMode::Spans`] (or
    /// `Full`) every worker thread records a span tree that
    /// [`Trainer::take_trace`] later drains; with [`TraceMode::Off`] the
    /// run is byte-identical to an uninstrumented one.
    pub fn launch_with_trace(cfg: TrainerConfig, trace: TraceMode) -> Trainer {
        assert!(cfg.pp > 0 && cfg.dp > 0, "pp and dp must be positive");
        let pp = cfg.pp;
        let dp = cfg.dp;
        let world_size = pp * dp;
        // One shared transport for both meshes and all collectives, on the
        // same channel ids the multi-process world uses — so per-channel
        // traffic stats agree between the two worlds.
        let transport = Arc::new(LocalTransport::new(world_size));
        let fwd_mesh: P2pMesh<opt_tensor::Matrix, _> =
            P2pMesh::over(Arc::clone(&transport), CH_FWD);
        let bwd_mesh: P2pMesh<opt_compress::Compressed, _> =
            P2pMesh::over(Arc::clone(&transport), CH_BWD);
        let world = CollectiveWorld::over(Arc::clone(&transport));
        let collector = Collector::default();
        let ledger = TrafficLedger::new();
        let (ack_tx, ack_rx) = unbounded();
        let (snap_tx, snap_rx) = unbounded();
        let (shard_tx, shard_rx) = unbounded();
        let (restore_tx, restore_rx) = unbounded();
        let (predict_tx, predict_rx) = unbounded();
        let (trace_tx, trace_rx) = unbounded();

        // Shared groups: one DP group per stage, one 2-way embedding pair
        // per dp rank, one fused group over all end-stage ranks — built by
        // the same order-fixing helper the multi-process workers use.
        let crate::worker::WorldGroups {
            stage_groups,
            emb_pair_groups,
            fused_group,
        } = crate::worker::build_groups(&world, pp, dp);

        let corpus = cfg.corpus();
        let mut handles = Vec::with_capacity(world_size);
        let mut cmd_txs = Vec::with_capacity(world_size);
        for d in 0..dp {
            // Every dp rank builds the identical pipeline (same seed).
            let stages = Stage::build_pipeline(&cfg.model, pp, cfg.seed);
            for (s, stage) in stages.into_iter().enumerate() {
                let (cmd_tx, cmd_rx) = unbounded();
                let ctx = WorkerCtx {
                    cfg: cfg.clone(),
                    stage_idx: s,
                    dp_idx: d,
                    stage,
                    corpus: corpus.clone(),
                    fwd_mesh: fwd_mesh.clone(),
                    bwd_mesh: bwd_mesh.clone(),
                    stage_group: stage_groups[s].clone(),
                    emb_pair_group: if s == 0 || s == pp - 1 {
                        emb_pair_groups[d].clone()
                    } else {
                        None
                    },
                    fused_group: if s == 0 || s == pp - 1 {
                        fused_group.clone()
                    } else {
                        None
                    },
                    cmds: cmd_rx,
                    acks: ack_tx.clone(),
                    snap_out: snap_tx.clone(),
                    shard_out: shard_tx.clone(),
                    restore_out: restore_tx.clone(),
                    predict_out: predict_tx.clone(),
                    collector: collector.clone(),
                    ledger: ledger.clone(),
                    trace,
                    trace_out: trace_tx.clone(),
                };
                let name = format!("worker-s{s}-d{d}");
                handles.push(
                    std::thread::Builder::new()
                        .name(name)
                        .spawn(move || run_worker(ctx))
                        .expect("spawn worker"),
                );
                cmd_txs.push(cmd_tx);
            }
        }
        // cmd_txs[d * pp + s] drives worker (stage s, dp rank d) — the
        // targeted Cmd::Restore sends rely on this indexing.
        Trainer {
            cfg,
            cmd_txs,
            ack_rx,
            snap_rx,
            shard_rx,
            restore_rx,
            predict_rx,
            trace_rx,
            handles,
            collector,
            ledger,
            transport,
            trace,
            next_id: 0,
            trained_iters: 0,
        }
    }

    /// The configuration of this run.
    pub fn config(&self) -> &TrainerConfig {
        &self.cfg
    }

    /// The multi-process launch mode: instead of worker *threads* over
    /// the in-process transport, spawns one real `opt-worker` OS process
    /// per `(stage, dp)` rank, meshed over loopback TCP, with checkpoint
    /// shards served through a TCP shard store. The returned
    /// [`crate::ProcTrainer`] drives the same command protocol this
    /// trainer drives over channels — and produces bit-identical losses
    /// and traffic, by the member-order determinism contract of the
    /// transport layer.
    ///
    /// Unlike this in-process trainer — where one dead worker thread
    /// tears the world down — the process world is *elastic*: every
    /// worker heartbeats to the coordinator, a `SIGKILL`ed rank is
    /// detected by [`crate::ProcTrainer::await_failure`], and
    /// [`crate::ProcTrainer::rejoin_rank`] splices a replacement into the
    /// surviving mesh and rolls the world back to the last committed
    /// sharded checkpoint without re-execing any survivor.
    pub fn launch_processes(
        cfg: TrainerConfig,
        opts: crate::ProcOptions,
    ) -> Result<crate::ProcTrainer, crate::ProcError> {
        crate::proc::ProcTrainer::launch(cfg, opts)
    }

    /// [`Trainer::launch_processes`] with an explicit trace mode: the
    /// coordinator propagates it to every worker process, whose span
    /// buffers [`crate::ProcTrainer::take_trace`] later ships back over
    /// the control plane.
    pub fn launch_processes_traced(
        cfg: TrainerConfig,
        opts: crate::ProcOptions,
        trace: TraceMode,
    ) -> Result<crate::ProcTrainer, crate::ProcError> {
        crate::proc::ProcTrainer::launch_traced(cfg, opts, trace)
    }

    fn broadcast(&self, cmd: Cmd) {
        for tx in &self.cmd_txs {
            tx.send(cmd.clone()).expect("worker channel closed");
        }
    }

    fn barrier(&mut self) -> Vec<WorkerAck> {
        self.next_id += 1;
        let id = self.next_id;
        self.broadcast(Cmd::Barrier { id });
        let mut acks = Vec::with_capacity(self.cmd_txs.len());
        while acks.len() < self.cmd_txs.len() {
            let ack = self.ack_rx.recv().expect("worker dropped ack channel");
            if ack.id == id {
                acks.push(ack);
            }
        }
        acks
    }

    /// Runs training up to the configured iteration count with periodic
    /// validation, returning the aggregated report. A freshly launched
    /// trainer starts at iteration 0; a [`Trainer::restore`]d one resumes
    /// where its snapshot left off.
    pub fn train(&mut self) -> TrainReport {
        let iters = self.cfg.iters;
        for iter in self.trained_iters..iters {
            self.broadcast(Cmd::TrainIter { iter });
            let validate_now =
                self.cfg.validate_every > 0 && (iter + 1) % self.cfg.validate_every == 0;
            if validate_now {
                self.broadcast(Cmd::Validate {
                    iter,
                    index: iter,
                    n_seq: self.cfg.val_sequences,
                });
            }
        }
        // Final validation at the last iteration tag.
        self.broadcast(Cmd::Validate {
            iter: iters.saturating_sub(1),
            index: iters,
            n_seq: self.cfg.val_sequences,
        });
        self.barrier();
        self.trained_iters = iters.max(self.trained_iters);
        self.collector
            .clone()
            .into_report(self.trained_iters, self.traffic_breakdown())
    }

    /// Runs extra training iterations beyond `cfg.iters` (used by
    /// long-horizon experiments that checkpoint metrics between phases).
    pub fn train_more(&mut self, extra: u64) {
        for iter in self.trained_iters..self.trained_iters + extra {
            self.broadcast(Cmd::TrainIter { iter });
        }
        self.trained_iters += extra;
        self.barrier();
    }

    /// Iterations completed so far (includes iterations inherited from a
    /// restored snapshot).
    pub fn trained_iters(&self) -> u64 {
        self.trained_iters
    }

    /// Quiesces the workers and returns the traffic counters so far:
    /// per-class totals plus the per-(src, dst, channel) breakdown read
    /// off the shared transport.
    pub fn traffic(&mut self) -> TrafficBreakdown {
        self.barrier();
        self.traffic_breakdown()
    }

    fn traffic_breakdown(&self) -> TrafficBreakdown {
        TrafficBreakdown::new(self.ledger.snapshot(), self.transport.channel_stats())
    }

    /// Quiesces the workers and aggregates the metrics recorded so far
    /// into a report (iterations executed before a restore belong to the
    /// killed trainer and appear as `NaN` entries here).
    pub fn report(&mut self) -> TrainReport {
        self.barrier();
        self.collector
            .clone()
            .into_report(self.trained_iters, self.traffic_breakdown())
    }

    /// Drains every worker's trace buffer into one merged [`Trace`]
    /// (buffers ordered by rank, spans by sequence number). Returns `None`
    /// when the trainer was launched with tracing off. Repeated calls
    /// return disjoint traces: each drain covers the spans recorded since
    /// the previous one.
    pub fn take_trace(&mut self) -> Option<Trace> {
        if !self.trace.enabled() {
            return None;
        }
        self.barrier();
        self.next_id += 1;
        let id = self.next_id;
        self.broadcast(Cmd::FetchTrace { id });
        let world = self.cmd_txs.len();
        let mut buffers = Vec::with_capacity(world);
        while buffers.len() < world {
            let (got, buf) = self.trace_rx.recv().expect("worker dropped trace channel");
            if got == id {
                buffers.push(buf);
            }
        }
        Some(Trace::merge(buffers))
    }

    /// Captures a complete training snapshot: every worker serializes its
    /// parameters, optimizer moments, and compression state behind barrier
    /// semantics (commands are ordered per worker, and the collection
    /// blocks until all `pp * dp` sections arrive).
    pub fn snapshot(&mut self) -> Snapshot {
        self.next_id += 1;
        let id = self.next_id;
        self.broadcast(Cmd::Snapshot { id });
        let world = self.cmd_txs.len();
        let pp = self.cfg.pp;
        let mut sections: Vec<Option<RankSection>> = vec![None; world];
        let mut got = 0;
        while got < world {
            let (sid, section) = self
                .snap_rx
                .recv()
                .expect("worker dropped snapshot channel");
            if sid != id {
                continue; // stale section from an abandoned snapshot
            }
            let idx = section.dp * pp + section.stage;
            assert!(sections[idx].is_none(), "duplicate snapshot section");
            sections[idx] = Some(section);
            got += 1;
        }
        Snapshot {
            meta: SnapshotMeta {
                pp,
                dp: self.cfg.dp,
                seed: self.cfg.seed,
                iter: self.trained_iters,
                config_fingerprint: self.cfg.fingerprint(),
            },
            ranks: sections.into_iter().map(|s| s.expect("filled")).collect(),
        }
    }

    /// Takes a snapshot and writes it to `path`.
    pub fn save_snapshot(&mut self, path: impl AsRef<Path>) -> Result<(), CkptError> {
        self.snapshot().save(path)
    }

    /// Relaunches a training job from a snapshot: fresh workers are
    /// spawned under `cfg`, then every worker's state is overwritten from
    /// its snapshot section. The resumed trainer continues at the
    /// snapshot's iteration and — by the bit-exact-resume guarantee —
    /// reproduces exactly the losses and wire traffic the uninterrupted
    /// run would have produced from that point.
    ///
    /// Fails without spawning anything if the snapshot's world shape or
    /// config fingerprint does not match `cfg`, or if any section fails to
    /// decode.
    pub fn restore(cfg: TrainerConfig, snapshot: &Snapshot) -> Result<Trainer, CkptError> {
        let meta = &snapshot.meta;
        if (meta.pp, meta.dp) != (cfg.pp, cfg.dp) {
            return Err(CkptError::WorldMismatch {
                snapshot: (meta.pp, meta.dp),
                config: (cfg.pp, cfg.dp),
            });
        }
        let fingerprint = cfg.fingerprint();
        if meta.config_fingerprint != fingerprint {
            return Err(CkptError::ConfigMismatch {
                snapshot: meta.config_fingerprint,
                config: fingerprint,
            });
        }
        snapshot.validate_complete()?;
        // Pre-validate every section — opaque blobs and parameter shapes —
        // so workers never see state they cannot apply (a worker panic
        // during Cmd::Restore would hang the ack loop and poison the job).
        let mut reference = Stage::build_pipeline(&cfg.model, cfg.pp, cfg.seed);
        let expected_shapes: Vec<Vec<(usize, usize)>> = reference
            .iter_mut()
            .map(|st| st.params().iter().map(|p| p.value.shape()).collect())
            .collect();
        for section in &snapshot.ranks {
            let expected = &expected_shapes[section.stage];
            let shapes_match = section.params.len() == expected.len()
                && section
                    .params
                    .iter()
                    .zip(expected)
                    .all(|(m, &s)| m.shape() == s);
            if !shapes_match {
                return Err(CkptError::Decode(opt_tensor::PersistError::Invalid {
                    what: "rank section parameter shapes do not match the config",
                }));
            }
            Adam::from_bytes(&section.optimizer)?;
            decode_cb_link(&section.cb_link)?;
            decode_dp_state(&section.dp_state)?;
        }

        let mut trainer = Trainer::launch(cfg);
        trainer.next_id += 1;
        let id = trainer.next_id;
        let pp = trainer.cfg.pp;
        for section in &snapshot.ranks {
            let idx = section.dp * pp + section.stage;
            trainer.cmd_txs[idx]
                .send(Cmd::Restore {
                    id,
                    section: Box::new(section.clone()),
                })
                .expect("worker channel closed");
        }
        let mut acked = 0;
        while acked < trainer.cmd_txs.len() {
            let ack = trainer.ack_rx.recv().expect("worker dropped ack channel");
            if ack.id == id {
                acked += 1;
            }
        }
        trainer.trained_iters = meta.iter;
        Ok(trainer)
    }

    /// [`Trainer::restore`] from a snapshot file.
    pub fn restore_from_file(
        cfg: TrainerConfig,
        path: impl AsRef<Path>,
    ) -> Result<Trainer, CkptError> {
        let snapshot = Snapshot::load(path)?;
        Self::restore(cfg, &snapshot)
    }

    /// Captures a sharded checkpoint directly into a [`ShardStore`]: every
    /// worker serializes its own state into a per-rank shard and publishes
    /// it under its well-known name (behind the same barrier semantics as
    /// [`Trainer::snapshot`]), then the trainer writes the manifest last —
    /// so a manifest in the store always names shards that are fully
    /// published.
    ///
    /// Shard names carry the checkpoint iteration, so repeated saves into
    /// the same store never overwrite the previous checkpoint's blobs: a
    /// crash or failed publish mid-save leaves the old manifest and every
    /// shard it names intact and restorable. Once the new manifest
    /// commits, shards it no longer references are garbage-collected
    /// (best effort — a leftover blob is harmless, the manifest is
    /// authoritative).
    ///
    /// The coordinator never holds the world's state: it only collects the
    /// per-rank digests (name, size, checksum) it needs to assemble the
    /// manifest.
    pub fn save_sharded(
        &mut self,
        store: &Arc<dyn ShardStore>,
    ) -> Result<ShardManifest, CkptError> {
        self.next_id += 1;
        let id = self.next_id;
        let iter = self.trained_iters;
        for tx in &self.cmd_txs {
            tx.send(Cmd::PublishShard {
                id,
                iter,
                store: Arc::clone(store),
            })
            .expect("worker channel closed");
        }
        let world = self.cmd_txs.len();
        let pp = self.cfg.pp;
        let mut entries: Vec<Option<ShardEntry>> = vec![None; world];
        let mut first_err = None;
        let mut got = 0;
        while got < world {
            let (sid, result) = self.shard_rx.recv().expect("worker dropped shard channel");
            if sid != id {
                continue; // stale result from an abandoned save
            }
            got += 1;
            match result {
                Ok(entry) => {
                    let idx = entry.dp * pp + entry.stage;
                    assert!(entries[idx].is_none(), "duplicate shard entry");
                    entries[idx] = Some(entry);
                }
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        commit_manifest(&self.cfg, iter, entries, store.as_ref())
    }

    /// Resolves and validates the store's manifest against `cfg` — the
    /// only checkpoint state the coordinator ever reads on the sharded
    /// restore path.
    fn resolve_manifest(
        cfg: &TrainerConfig,
        store: &Arc<dyn ShardStore>,
    ) -> Result<ShardManifest, CkptError> {
        let bytes = store.get(MANIFEST_FILE).map_err(|e| CkptError::Store {
            what: e.to_string(),
        })?;
        let manifest = ShardManifest::decode(&bytes)?;
        let meta = &manifest.meta;
        if (meta.pp, meta.dp) != (cfg.pp, cfg.dp) {
            return Err(CkptError::WorldMismatch {
                snapshot: (meta.pp, meta.dp),
                config: (cfg.pp, cfg.dp),
            });
        }
        let fingerprint = cfg.fingerprint();
        if meta.config_fingerprint != fingerprint {
            return Err(CkptError::ConfigMismatch {
                snapshot: meta.config_fingerprint,
                config: fingerprint,
            });
        }
        // World completeness was already enforced by ShardManifest::decode.
        Ok(manifest)
    }

    /// Relaunches a training job from a sharded checkpoint — the
    /// cross-host elastic-restore path. Fresh workers are spawned under
    /// `cfg`, then **every worker independently** rendezvouses on the
    /// store's manifest, fetches only its own shard, validates it
    /// (checksum, config fingerprint, rank identity, iteration), and
    /// applies it. The coordinator reads only the manifest; at no point
    /// does any single process hold the whole world's state.
    ///
    /// By the bit-exact-resume guarantee the resumed run reproduces
    /// exactly the losses and wire traffic the uninterrupted run would
    /// have produced — even if the restored incarnation runs with a
    /// different kernel thread count.
    pub fn restore_sharded(
        cfg: TrainerConfig,
        store: &Arc<dyn ShardStore>,
    ) -> Result<Trainer, CkptError> {
        let manifest = Self::resolve_manifest(&cfg, store)?;
        let mut trainer = Trainer::launch(cfg);
        trainer.next_id += 1;
        let id = trainer.next_id;
        for tx in &trainer.cmd_txs {
            tx.send(Cmd::SelfRestore {
                id,
                store: Arc::clone(store),
            })
            .expect("worker channel closed");
        }
        let world = trainer.cmd_txs.len();
        trainer.collect_self_restores(id, world, manifest.meta.iter)?;
        trainer.trained_iters = manifest.meta.iter;
        Ok(trainer)
    }

    /// Elastically restores a **single** rank's state from the shard
    /// store: the targeted worker rendezvouses on the manifest, fetches
    /// only its own shard, validates, and applies it — exactly what a
    /// replacement worker on a different host does when it rejoins a run.
    /// No coordinator-held state is involved; the trainer reads only the
    /// manifest (to validate it against the config and learn the
    /// checkpoint iteration, which is returned).
    ///
    /// The caller is responsible for world consistency: every other rank
    /// must already hold state from the same checkpoint iteration (e.g.
    /// restore each rank of a freshly launched world in turn).
    ///
    /// # Panics
    ///
    /// Panics if `(stage, dp)` lies outside the trainer's world.
    pub fn restore_rank(
        &mut self,
        stage: usize,
        dp: usize,
        store: &Arc<dyn ShardStore>,
    ) -> Result<u64, CkptError> {
        assert!(
            stage < self.cfg.pp && dp < self.cfg.dp,
            "rank (stage {stage}, dp {dp}) outside the {}x{} world",
            self.cfg.pp,
            self.cfg.dp
        );
        let manifest = Self::resolve_manifest(&self.cfg, store)?;
        self.next_id += 1;
        let id = self.next_id;
        self.cmd_txs[dp * self.cfg.pp + stage]
            .send(Cmd::SelfRestore {
                id,
                store: Arc::clone(store),
            })
            .expect("worker channel closed");
        self.collect_self_restores(id, 1, manifest.meta.iter)?;
        self.trained_iters = manifest.meta.iter;
        Ok(manifest.meta.iter)
    }

    /// Collects `expect` self-restore outcomes for request `id`, requiring
    /// every applied shard to come from iteration `want_iter`.
    fn collect_self_restores(
        &mut self,
        id: u64,
        expect: usize,
        want_iter: u64,
    ) -> Result<(), CkptError> {
        let mut first_err = None;
        let mut got = 0;
        while got < expect {
            let (sid, stage, dp, result) = self
                .restore_rx
                .recv()
                .expect("worker dropped restore channel");
            if sid != id {
                continue; // stale outcome from an abandoned restore
            }
            got += 1;
            match result {
                Ok(iter) if iter == want_iter => {}
                Ok(_) => {
                    // The store changed between the coordinator's manifest
                    // read and the worker's — a racing writer.
                    first_err = first_err.or(Some(CkptError::ShardMismatch {
                        stage,
                        dp,
                        what: "restored shard is from a different checkpoint than the manifest",
                    }));
                }
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        first_err.map_or(Ok(()), Err)
    }

    /// Tears the job down the way a worker failure does: no `Stop`
    /// handshake — command channels are dropped and every worker exits on
    /// the closed channel, exactly as when a real rank disappears and the
    /// collective world cannot make progress. Call at an iteration
    /// boundary (all `train*` methods leave the job quiesced).
    pub fn kill(mut self) {
        self.barrier(); // drain in-flight commands so joins cannot hang
        self.cmd_txs.clear();
        for h in self.handles.drain(..) {
            h.join().expect("worker panicked");
        }
    }

    /// Predicts the next token at the final position of each sequence in
    /// `tokens` (grouped in `seq_len` chunks), using dp rank 0's pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `tokens.len()` is not a multiple of the sequence length.
    pub fn predict(&mut self, tokens: &[usize]) -> Vec<usize> {
        assert!(
            tokens.len().is_multiple_of(self.cfg.model.seq_len),
            "token count must be a multiple of seq_len"
        );
        self.next_id += 1;
        let id = self.next_id;
        self.broadcast(Cmd::Predict {
            id,
            tokens: tokens.to_vec(),
        });
        loop {
            let (got, answers) = self.predict_rx.recv().expect("predict channel closed");
            if got == id {
                return answers;
            }
        }
    }

    /// Evaluates a zero-shot probe on the frozen model (Table 3 protocol):
    /// `n` generated examples, accuracy of last-position argmax.
    pub fn zero_shot(&mut self, task: ZeroShotTask, n: usize, seed: u64) -> TaskScore {
        let corpus = self.cfg.corpus();
        let examples = task.generate(&corpus, n, seed);
        let mut correct = 0;
        // Batch examples to amortize pipeline latency.
        let batch = 16usize;
        for chunk in examples.chunks(batch) {
            let mut tokens = Vec::with_capacity(chunk.len() * self.cfg.model.seq_len);
            for ex in chunk {
                tokens.extend_from_slice(&ex.context);
            }
            let preds = self.predict(&tokens);
            for (p, ex) in preds.iter().zip(chunk) {
                if *p == ex.answer {
                    correct += 1;
                }
            }
        }
        TaskScore { correct, total: n }
    }

    /// Evaluates all five zero-shot probes (Table 3 row order).
    pub fn zero_shot_suite(&mut self, n: usize, seed: u64) -> Vec<(ZeroShotTask, TaskScore)> {
        ZeroShotTask::ALL
            .into_iter()
            .map(|t| (t, self.zero_shot(t, n, seed)))
            .collect()
    }

    /// Memory accounting across workers (Fig. 12).
    pub fn memory_report(&mut self) -> MemoryReport {
        let acks = self.barrier();
        crate::memory::memory_report(&self.cfg, &acks)
    }

    /// Stops and joins every worker thread.
    pub fn shutdown(mut self) {
        self.broadcast(Cmd::Stop);
        for h in self.handles.drain(..) {
            h.join().expect("worker panicked");
        }
    }
}
