//! The per-(stage, dp-rank) worker thread.

use crate::config::{CbMethod, TrainerConfig};
use crate::dp_compress::DistPowerSgd;
use crate::stats::{Collector, ErrorStatPoint};
use crossbeam::channel::{Receiver, Sender};
use opt_ckpt::{
    shard_file_name, CkptError, RankSection, Shard, ShardEntry, ShardManifest, MANIFEST_FILE,
};
use opt_compress::{Compressed, LazyErrorPropagator, PowerSgd, TopK, FP16_BYTES};
use opt_data::SyntheticCorpus;
use opt_model::{cross_entropy, Adam, Optimizer, Stage};
use opt_net::{
    channel_id, CollectiveGroup, P2pMesh, ShardStore, TrafficClass, TrafficLedger, Transport,
};
use opt_schedule::{is_epilogue_send, one_f_one_b, Op};
use opt_tensor::{cosine_similarity, Matrix, Persist, PersistError, Reader, Writer};
use opt_trace::{SpanKind, TraceBuffer, TraceMode, NO_MICRO};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Channel namespace 1: the two pipeline meshes. Shared by the in-process
/// trainer (over `LocalTransport`) and the multi-process world (over
/// `TcpTransport`), so per-channel traffic stats line up across the two.
pub(crate) const CH_FWD: u64 = channel_id(1, 0);
pub(crate) const CH_BWD: u64 = channel_id(1, 1);

/// Commands broadcast from the trainer to every worker.
#[derive(Debug, Clone)]
pub(crate) enum Cmd {
    /// Run one full training iteration (all micro-batches + DP + sync).
    TrainIter { iter: u64 },
    /// Run a validation forward pass (dp rank 0's pipeline only).
    Validate { iter: u64, index: u64, n_seq: usize },
    /// Run an inference forward pass and report last-position argmaxes
    /// (dp rank 0's pipeline only; the last stage answers).
    Predict { id: u64, tokens: Vec<usize> },
    /// Acknowledge via the ack channel once all prior commands finished.
    Barrier { id: u64 },
    /// Serialize all training state (parameters, optimizer moments,
    /// compressor warm starts, lazy-error residuals) into a
    /// [`RankSection`] and send it on the snapshot channel. Commands are
    /// processed in order, so every prior iteration has fully retired —
    /// snapshot semantics are a barrier.
    Snapshot { id: u64 },
    /// Overwrite all training state from a snapshot section, then ack.
    /// Sent point-to-point (each worker gets its own section), unlike the
    /// broadcast commands above.
    Restore { id: u64, section: Box<RankSection> },
    /// Drain the worker's trace buffer (spans recorded since the last
    /// drain) and send it on the trace channel. Commands are processed in
    /// order, so every prior iteration's spans are closed — barrier
    /// semantics, like `Snapshot`.
    FetchTrace { id: u64 },
    /// Serialize all training state into a per-rank [`Shard`] and publish
    /// it to the shard store under this rank's well-known name, reporting
    /// the resulting manifest entry (or the failure) on the shard channel.
    /// Barrier semantics, like `Snapshot`.
    PublishShard {
        id: u64,
        /// Iterations completed when the shard is taken (stamped into the
        /// shard header so a fetching worker can cross-check the manifest).
        iter: u64,
        store: Arc<dyn ShardStore>,
    },
    /// Rendezvous on the store's manifest, fetch *only this rank's*
    /// shard, validate it (version, checksum, config fingerprint, rank
    /// identity), apply it, and report the outcome on the restore
    /// channel. This is the cross-host elastic-restore path: the
    /// coordinator holds no worker state.
    SelfRestore { id: u64, store: Arc<dyn ShardStore> },
    /// Exit the worker loop.
    Stop,
}

/// Barrier acknowledgement with memory accounting (Fig. 12).
#[derive(Debug, Clone)]
pub(crate) struct WorkerAck {
    pub id: u64,
    /// Stage index (kept for diagnostics in future per-stage reports).
    #[allow(dead_code)]
    pub stage: usize,
    /// DP rank (kept for diagnostics).
    #[allow(dead_code)]
    pub dp: usize,
    /// Scalar parameter elements on this worker.
    pub param_elems: usize,
    /// Lazy-error buffer elements (CB + LEP).
    pub lazy_error_elems: usize,
    /// PowerSGD warm-start + EF buffer elements (CB link + DP state).
    pub compressor_elems: usize,
}

/// Everything a worker needs, bundled at spawn time. Generic over the
/// [`Transport`] carrying its communication: a thread of a single-process
/// world runs over `LocalTransport`, an `opt-worker` OS process over
/// `TcpTransport` — the worker logic is identical, which is what makes
/// the two worlds bit-identical.
pub(crate) struct WorkerCtx<Tr: Transport> {
    pub cfg: TrainerConfig,
    pub stage_idx: usize,
    pub dp_idx: usize,
    pub stage: Stage,
    pub corpus: SyntheticCorpus,
    pub fwd_mesh: P2pMesh<Matrix, Tr>,
    pub bwd_mesh: P2pMesh<Compressed, Tr>,
    /// DP group over all dp ranks of this stage.
    pub stage_group: CollectiveGroup<Tr>,
    /// 2-way first<->last group of this dp rank (baseline EMB sync).
    pub emb_pair_group: Option<CollectiveGroup<Tr>>,
    /// Fused 2D-way group over all end-stage ranks.
    pub fused_group: Option<CollectiveGroup<Tr>>,
    pub cmds: Receiver<Cmd>,
    pub acks: Sender<WorkerAck>,
    pub snap_out: Sender<(u64, RankSection)>,
    /// Manifest entries (or failures) from `Cmd::PublishShard`.
    pub shard_out: Sender<(u64, Result<ShardEntry, CkptError>)>,
    /// `(id, stage, dp, outcome)` from `Cmd::SelfRestore`; `Ok` carries
    /// the iteration the applied shard was taken at.
    pub restore_out: Sender<(u64, usize, usize, Result<u64, CkptError>)>,
    pub predict_out: Sender<(u64, Vec<usize>)>,
    pub collector: Collector,
    pub ledger: TrafficLedger,
    /// Trace mode this worker installs on its own thread at startup.
    pub trace: TraceMode,
    /// Drained [`TraceBuffer`]s from `Cmd::FetchTrace`.
    pub trace_out: Sender<(u64, TraceBuffer)>,
}

/// The collective groups of a `pp x dp` world, carved out of one
/// [`opt_net::CollectiveWorld`].
pub(crate) struct WorldGroups<Tr: Transport> {
    /// One DP group per stage, over that stage's dp ranks.
    pub stage_groups: Vec<CollectiveGroup<Tr>>,
    /// Per dp rank, the 2-way first<->last embedding pair (pp > 1 only).
    pub emb_pair_groups: Vec<Option<CollectiveGroup<Tr>>>,
    /// The fused 2D-way group over all end-stage ranks (pp > 1 only).
    pub fused_group: Option<CollectiveGroup<Tr>>,
}

/// Carves the standard group set out of `world`, **in a fixed order** —
/// stage groups, then embedding pairs, then the fused group. Group
/// creation order determines collective channel ids, so every process of
/// a distributed world must build its groups through this one function
/// for their channels to line up (the single-process trainer shares the
/// same code path, which is what keeps the two worlds bit-identical).
pub(crate) fn build_groups<Tr: Transport>(
    world: &opt_net::CollectiveWorld<Tr>,
    pp: usize,
    dp: usize,
) -> WorldGroups<Tr> {
    let stage_groups: Vec<_> = (0..pp)
        .map(|s| world.group(&(0..dp).map(|d| d * pp + s).collect::<Vec<_>>()))
        .collect();
    let emb_pair_groups: Vec<_> = (0..dp)
        .map(|d| {
            if pp > 1 {
                Some(world.group(&[d * pp, d * pp + pp - 1]))
            } else {
                None
            }
        })
        .collect();
    let fused_group = if pp > 1 {
        let mut ranks: Vec<usize> = (0..dp).map(|d| d * pp).collect();
        ranks.extend((0..dp).map(|d| d * pp + pp - 1));
        ranks.sort_unstable();
        Some(world.group(&ranks))
    } else {
        None
    };
    WorldGroups {
        stage_groups,
        emb_pair_groups,
        fused_group,
    }
}

/// The inter-stage compressor variant for compressed backpropagation.
pub(crate) enum CbLink {
    LowRank(LazyErrorPropagator<PowerSgd>),
    TopK(LazyErrorPropagator<TopK>),
}

impl CbLink {
    fn process(
        &mut self,
        grad: &Matrix,
        compress: bool,
    ) -> (Compressed, opt_compress::LinkErrorStats) {
        match self {
            CbLink::LowRank(l) => l.process(grad, compress),
            CbLink::TopK(l) => l.process(grad, compress),
        }
    }

    fn error(&self) -> Option<&Matrix> {
        match self {
            CbLink::LowRank(l) => l.error(),
            CbLink::TopK(l) => l.error(),
        }
    }

    fn error_elems(&self) -> usize {
        match self {
            CbLink::LowRank(l) => l.error_elems(),
            CbLink::TopK(l) => l.error_elems(),
        }
    }

    fn warm_start_elems(&self) -> usize {
        match self {
            CbLink::LowRank(l) => l.inner().warm_start_elems(),
            CbLink::TopK(_) => 0,
        }
    }
}

/// Encodes the optional inter-stage link state for a snapshot section.
pub(crate) fn encode_cb_link(link: &Option<CbLink>) -> Vec<u8> {
    let mut w = Writer::new();
    match link {
        None => w.u8(0),
        Some(CbLink::LowRank(l)) => {
            w.u8(1);
            l.persist(&mut w);
        }
        Some(CbLink::TopK(l)) => {
            w.u8(2);
            l.persist(&mut w);
        }
    }
    w.into_bytes()
}

/// Decodes an [`encode_cb_link`] blob. Also used by the trainer to
/// pre-validate snapshot sections before handing them to workers.
pub(crate) fn decode_cb_link(bytes: &[u8]) -> Result<Option<CbLink>, PersistError> {
    let mut r = Reader::new(bytes);
    let link = match r.u8()? {
        0 => None,
        1 => Some(CbLink::LowRank(LazyErrorPropagator::restore(&mut r)?)),
        2 => Some(CbLink::TopK(LazyErrorPropagator::restore(&mut r)?)),
        tag => {
            return Err(PersistError::BadTag {
                what: "CbLink",
                tag,
            })
        }
    };
    r.finish()?;
    Ok(link)
}

/// Encodes the optional data-parallel compression state.
pub(crate) fn encode_dp_state(state: &Option<DistPowerSgd>) -> Vec<u8> {
    state.to_bytes()
}

/// Decodes an [`encode_dp_state`] blob.
pub(crate) fn decode_dp_state(bytes: &[u8]) -> Result<Option<DistPowerSgd>, PersistError> {
    Option::from_bytes(bytes)
}

/// Runs the worker loop until [`Cmd::Stop`].
pub(crate) fn run_worker<Tr: Transport + Send + Sync + 'static>(mut ctx: WorkerCtx<Tr>) {
    opt_trace::install(ctx.trace);
    let pp = ctx.cfg.pp;
    let s = ctx.stage_idx;
    let d = ctx.dp_idx;
    let my_rank = d * pp + s;
    let schedule = one_f_one_b(pp, ctx.cfg.n_micro);
    let mut optimizer = Adam::new(ctx.cfg.lr);

    // Inter-stage compression state for the upstream (s -> s-1) link.
    let mut cb_link: Option<CbLink> = if s > 0 {
        ctx.cfg.quality.cb.map(|cb| match cb.method {
            CbMethod::LowRank(rank) => CbLink::LowRank(LazyErrorPropagator::new(
                PowerSgd::new(rank, ctx.cfg.seed ^ 0xCB ^ my_rank as u64),
                cb.lazy_error,
            )),
            CbMethod::TopK(density) => {
                CbLink::TopK(LazyErrorPropagator::new(TopK::new(density), cb.lazy_error))
            }
        })
    } else {
        None
    };

    // DP compression state (selective stage / naive DP).
    let dp_compressed = s < ctx.cfg.sc_stage_count();
    let mut dp_state: Option<DistPowerSgd> = match (dp_compressed, ctx.cfg.dp_rank()) {
        (true, Some(rank)) => {
            let n_slots = ctx.stage.non_embedding_params().len();
            // Seed must agree across dp ranks of the same stage.
            Some(DistPowerSgd::new(
                rank,
                n_slots,
                ctx.cfg.seed ^ 0xD9 ^ s as u64,
            ))
        }
        _ => None,
    };

    let act_dense_bytes = |m: &Matrix| -> u64 { (m.len() * FP16_BYTES) as u64 };

    loop {
        // A dropped trainer (no explicit shutdown) reads as Stop.
        let Ok(cmd) = ctx.cmds.recv() else { return };
        match cmd {
            Cmd::TrainIter { iter } => {
                train_iter(
                    &mut ctx,
                    &schedule,
                    &mut optimizer,
                    &mut cb_link,
                    &mut dp_state,
                    iter,
                    my_rank,
                    act_dense_bytes,
                );
            }
            Cmd::Validate { iter, index, n_seq } => {
                if d == 0 {
                    validate(&mut ctx, iter, index, n_seq);
                }
            }
            Cmd::Predict { id, tokens } => {
                if d == 0 {
                    predict(&mut ctx, id, &tokens);
                }
            }
            Cmd::Barrier { id } => {
                let ack = WorkerAck {
                    id,
                    stage: s,
                    dp: d,
                    param_elems: ctx.stage.param_count(),
                    lazy_error_elems: cb_link.as_ref().map_or(0, CbLink::error_elems),
                    compressor_elems: cb_link.as_ref().map_or(0, CbLink::warm_start_elems)
                        + dp_state.as_ref().map_or(0, DistPowerSgd::buffer_elems),
                };
                ctx.acks.send(ack).expect("trainer dropped ack channel");
            }
            Cmd::Snapshot { id } => {
                let section = capture_section(&mut ctx, &optimizer, &cb_link, &dp_state);
                ctx.snap_out
                    .send((id, section))
                    .expect("trainer dropped snapshot channel");
            }
            Cmd::PublishShard { id, iter, store } => {
                let shard = Shard {
                    iter,
                    config_fingerprint: ctx.cfg.fingerprint(),
                    section: capture_section(&mut ctx, &optimizer, &cb_link, &dp_state),
                };
                let name = shard_file_name(s, d, iter);
                let blob = shard.encode();
                let result = store
                    .put(&name, &blob)
                    .map(|()| ShardEntry::for_blob(s, d, name.clone(), &blob))
                    .map_err(|e| CkptError::Store {
                        what: e.to_string(),
                    });
                ctx.shard_out
                    .send((id, result))
                    .expect("trainer dropped shard channel");
            }
            Cmd::SelfRestore { id, store } => {
                let result = self_restore(
                    &mut ctx,
                    store.as_ref(),
                    &mut optimizer,
                    &mut cb_link,
                    &mut dp_state,
                );
                if let Ok(&iter) = result.as_ref() {
                    // Rolled back: iterations >= `iter` will be replayed,
                    // so drop their samples to keep the report identical
                    // to an uninterrupted run.
                    ctx.collector.truncate_from(iter);
                }
                ctx.restore_out
                    .send((id, s, d, result))
                    .expect("trainer dropped restore channel");
            }
            Cmd::Restore { id, section } => {
                // Sections were pre-validated by Trainer::restore; a decode
                // failure here means the trainer handed out the wrong blob.
                ctx.stage.import_state(&section.params);
                optimizer = Adam::from_bytes(&section.optimizer).expect("validated section");
                cb_link = decode_cb_link(&section.cb_link).expect("validated section");
                dp_state = decode_dp_state(&section.dp_state).expect("validated section");
                let ack = WorkerAck {
                    id,
                    stage: s,
                    dp: d,
                    param_elems: ctx.stage.param_count(),
                    lazy_error_elems: cb_link.as_ref().map_or(0, CbLink::error_elems),
                    compressor_elems: cb_link.as_ref().map_or(0, CbLink::warm_start_elems)
                        + dp_state.as_ref().map_or(0, DistPowerSgd::buffer_elems),
                };
                ctx.acks.send(ack).expect("trainer dropped ack channel");
            }
            Cmd::FetchTrace { id } => {
                let buf = opt_trace::take_buffer(my_rank as u32, s as u32, d as u32);
                ctx.trace_out
                    .send((id, buf))
                    .expect("trainer dropped trace channel");
            }
            Cmd::Stop => return,
        }
    }
}

/// Serializes the worker's complete training state into a snapshot
/// section (shared by the monolithic `Snapshot` and sharded
/// `PublishShard` paths).
fn capture_section<Tr: Transport>(
    ctx: &mut WorkerCtx<Tr>,
    optimizer: &Adam,
    cb_link: &Option<CbLink>,
    dp_state: &Option<DistPowerSgd>,
) -> RankSection {
    RankSection {
        stage: ctx.stage_idx,
        dp: ctx.dp_idx,
        params: ctx.stage.export_state(),
        optimizer: optimizer.to_bytes(),
        cb_link: encode_cb_link(cb_link),
        dp_state: encode_dp_state(dp_state),
    }
}

/// The worker half of cross-host elastic restore: rendezvous on the
/// store's manifest, fetch only this rank's shard, validate everything
/// (store-level checksum + size, shard codec, config fingerprint, rank
/// identity, iteration), and only then overwrite the training state.
///
/// Nothing is mutated until every check has passed, so a rejected shard
/// leaves the worker exactly as it was. Returns the iteration the applied
/// shard was taken at.
fn self_restore<Tr: Transport>(
    ctx: &mut WorkerCtx<Tr>,
    store: &dyn ShardStore,
    optimizer: &mut Adam,
    cb_link: &mut Option<CbLink>,
    dp_state: &mut Option<DistPowerSgd>,
) -> Result<u64, CkptError> {
    let s = ctx.stage_idx;
    let d = ctx.dp_idx;
    let store_err = |e: opt_net::ShardStoreError| CkptError::Store {
        what: e.to_string(),
    };

    // Rendezvous: resolve the (small) manifest and find our entry.
    let manifest = ShardManifest::decode(&store.get(MANIFEST_FILE).map_err(store_err)?)?;
    let fingerprint = ctx.cfg.fingerprint();
    if manifest.meta.config_fingerprint != fingerprint {
        return Err(CkptError::ConfigMismatch {
            snapshot: manifest.meta.config_fingerprint,
            config: fingerprint,
        });
    }
    if (manifest.meta.pp, manifest.meta.dp) != (ctx.cfg.pp, ctx.cfg.dp) {
        return Err(CkptError::WorldMismatch {
            snapshot: (manifest.meta.pp, manifest.meta.dp),
            config: (ctx.cfg.pp, ctx.cfg.dp),
        });
    }
    let entry = manifest
        .entry(s, d)
        .ok_or(CkptError::MissingRank { stage: s, dp: d })?;

    // Fetch: only our own shard, validated against the manifest entry
    // before the structural decoder ever sees it.
    let blob = store.get(&entry.name).map_err(store_err)?;
    entry.verify(&blob)?;
    let shard = Shard::decode(&blob)?;
    if (shard.stage(), shard.dp()) != (s, d) {
        return Err(CkptError::ShardMismatch {
            stage: s,
            dp: d,
            what: "fetched shard belongs to a different rank",
        });
    }
    shard.validate_against(&manifest.meta)?;

    // Decode every opaque blob and check parameter shapes before touching
    // live state.
    let section = shard.section;
    let new_optimizer = Adam::from_bytes(&section.optimizer)?;
    let new_cb_link = decode_cb_link(&section.cb_link)?;
    let new_dp_state = decode_dp_state(&section.dp_state)?;
    let expected: Vec<(usize, usize)> =
        ctx.stage.params().iter().map(|p| p.value.shape()).collect();
    let shapes_match = section.params.len() == expected.len()
        && section
            .params
            .iter()
            .zip(&expected)
            .all(|(m, &shape)| m.shape() == shape);
    if !shapes_match {
        return Err(CkptError::Decode(PersistError::Invalid {
            what: "shard parameter shapes do not match the stage",
        }));
    }

    ctx.stage.import_state(&section.params);
    *optimizer = new_optimizer;
    *cb_link = new_cb_link;
    *dp_state = new_dp_state;
    Ok(shard.iter)
}

/// Deterministic batch key shared by the first and last stages.
fn batch_key(iter: u64, d: usize, micro: usize) -> u64 {
    iter * 1_000_003 + (d as u64) * 1009 + micro as u64
}

#[allow(clippy::too_many_arguments)]
fn train_iter<Tr: Transport + Send + Sync + 'static>(
    ctx: &mut WorkerCtx<Tr>,
    schedule: &opt_schedule::PipelineSchedule,
    optimizer: &mut Adam,
    cb_link: &mut Option<CbLink>,
    dp_state: &mut Option<DistPowerSgd>,
    iter: u64,
    my_rank: usize,
    act_dense_bytes: impl Fn(&Matrix) -> u64,
) {
    let pp = ctx.cfg.pp;
    let s = ctx.stage_idx;
    let d = ctx.dp_idx;
    let n_micro = ctx.cfg.n_micro;
    let is_first = s == 0;
    let is_last = s == pp - 1;

    // Per-micro-batch logits gradients waiting for their backward op.
    let mut grad_queue: VecDeque<Matrix> = VecDeque::new();
    // Fig. 11 instrumentation: received activations per micro and the
    // consecutive differences Y(i) - Y(i+1).
    let collect_stats = ctx.cfg.collect_error_stats && d == 0 && s > 0;
    let mut recv_acts: HashMap<usize, Matrix> = HashMap::new();
    let mut act_diffs: HashMap<usize, Matrix> = HashMap::new();
    // The final compression epilogue, when it runs concurrently with the
    // DP exchange below; carries the compressor home with its wire bytes.
    let mut overlap_task: Option<opt_schedule::OverlapTask<(CbLink, u64)>> = None;

    // Root span of the iteration; every slot below nests under it. The
    // guard is declared first so it closes last.
    let _iter_span = opt_trace::begin(SpanKind::Iteration, iter, NO_MICRO, 0, 0);

    for op in schedule.device_ops(s) {
        let _slot = opt_schedule::slot_guard(op, iter, s, pp, n_micro);
        match *op {
            Op::Forward { micro } => {
                let hidden = if is_first {
                    let batch = ctx
                        .corpus
                        .train_batch(ctx.cfg.micro_batch, batch_key(iter, d, micro));
                    ctx.stage.forward_tokens(&batch.tokens)
                } else {
                    let act = {
                        let span = opt_trace::begin(SpanKind::Recv, iter, micro as u32, 0, 0);
                        let act = ctx
                            .fwd_mesh
                            .recv(my_rank - 1, my_rank)
                            .expect("forward activation lost");
                        span.set_bytes(act_dense_bytes(&act));
                        act
                    };
                    if collect_stats {
                        if let Some(prev) = recv_acts.get(&(micro.wrapping_sub(1))) {
                            act_diffs.insert(micro.wrapping_sub(1), prev.sub(&act));
                        }
                        recv_acts.insert(micro, act.clone());
                    }
                    ctx.stage.forward_hidden(&act)
                };
                if is_last {
                    // Compute the loss now; backward pops it later.
                    let batch = ctx
                        .corpus
                        .train_batch(ctx.cfg.micro_batch, batch_key(iter, d, micro));
                    let out = cross_entropy(&hidden, &batch.targets);
                    ctx.collector.record_train(iter, out.loss);
                    grad_queue.push_back(out.grad_logits);
                } else {
                    let bytes = act_dense_bytes(&hidden);
                    ctx.ledger.record(TrafficClass::InterStage, bytes);
                    let _send = opt_trace::begin(SpanKind::Send, iter, micro as u32, bytes, 0);
                    ctx.fwd_mesh.send(my_rank, my_rank + 1, hidden);
                }
            }
            Op::Backward { micro } => {
                let grad_in = if is_last {
                    grad_queue.pop_front().expect("logits gradient queued")
                } else {
                    let span = opt_trace::begin(SpanKind::Recv, iter, micro as u32, 0, 0);
                    let payload = ctx
                        .bwd_mesh
                        .recv(my_rank + 1, my_rank)
                        .expect("backward gradient lost");
                    span.set_bytes(payload.wire_bytes() as u64);
                    drop(span);
                    payload.decompress()
                };
                let upstream = ctx.stage.backward(&grad_in);
                if let Some(up) = upstream {
                    // The last backward's epilogue is always an epilogue
                    // send and has no local consumer: hand the whole
                    // compress+send to a background thread and let the DP
                    // exchange below run under it. Joined before the
                    // embedding sync. Stats collection reads the link's
                    // residual right after `process`, so that mode keeps
                    // the sequential path.
                    if opt_schedule::overlap_micro(n_micro) == Some(micro)
                        && cb_link.is_some()
                        && !collect_stats
                    {
                        let mut link = cb_link.take().expect("cb link present");
                        let cb = ctx.cfg.quality.cb.expect("cb config present");
                        let compress_now =
                            !cb.epilogue_only || is_epilogue_send(s, micro, pp, n_micro);
                        let mesh = ctx.bwd_mesh.clone();
                        let ledger = ctx.ledger.clone();
                        let (src, dst) = (my_rank, my_rank - 1);
                        overlap_task = Some(opt_schedule::overlap_launch(iter, micro, move || {
                            let (payload, _stats) = link.process(&up, compress_now);
                            let bytes = payload.wire_bytes() as u64;
                            ledger.record(TrafficClass::InterStage, bytes);
                            mesh.send(src, dst, payload);
                            (link, bytes)
                        }));
                        continue;
                    }
                    let (payload, _stats) = match cb_link {
                        Some(link) => {
                            let cb = ctx.cfg.quality.cb.expect("cb config present");
                            let compress_now =
                                !cb.epilogue_only || is_epilogue_send(s, micro, pp, n_micro);
                            let (payload, stats) = link.process(&up, compress_now);
                            if collect_stats {
                                if let (Some(eps), Some(diff)) =
                                    (link.error(), act_diffs.get(&micro))
                                {
                                    ctx.collector.record_error_stat(ErrorStatPoint {
                                        iter,
                                        stage: s,
                                        error_mean: eps.mean_all(),
                                        act_diff_mean: diff.mean_all(),
                                        cosine: cosine_similarity(eps, diff),
                                    });
                                }
                            }
                            (payload, stats)
                        }
                        None => (
                            Compressed::Dense { matrix: up },
                            opt_compress::LinkErrorStats::default(),
                        ),
                    };
                    let bytes = payload.wire_bytes() as u64;
                    ctx.ledger.record(TrafficClass::InterStage, bytes);
                    let _send = opt_trace::begin(SpanKind::Send, iter, micro as u32, bytes, 0);
                    ctx.bwd_mesh.send(my_rank, my_rank - 1, payload);
                }
            }
        }
    }
    debug_assert_eq!(
        ctx.stage.pending_activations(),
        0,
        "schedule left dangling caches"
    );

    // ----- Data-parallel gradient exchange ------------------------------
    {
        let _dp_span = opt_trace::begin(SpanKind::DpExchange, iter, NO_MICRO, 0, 0);
        let mut params = ctx.stage.non_embedding_params();
        match dp_state {
            Some(state) => {
                for (slot, p) in params.iter_mut().enumerate() {
                    state.all_reduce(&ctx.stage_group, my_rank, slot, p.grad, &ctx.ledger);
                }
            }
            None => {
                for p in params.iter_mut() {
                    ctx.ledger.record(
                        TrafficClass::DataParallel,
                        ring_wire_bytes(p.grad.len(), ctx.stage_group.size()),
                    );
                    *p.grad = ctx
                        .stage_group
                        .all_reduce_mean(my_rank, p.grad.clone())
                        .expect("DP all-reduce decode");
                }
            }
        }
    }

    // Join the overlapped epilogue before the embedding sync: the
    // downstream stage must hold the gradient before this iteration's
    // barrier semantics can be claimed, and the compressor state must be
    // home before a checkpoint can capture it.
    if let Some(task) = overlap_task.take() {
        let (link, _bytes) = task.join(|&(_, bytes)| bytes);
        *cb_link = Some(link);
    }

    // ----- Embedding synchronization (§6) -------------------------------
    let emb_span = opt_trace::begin(SpanKind::EmbeddingSync, iter, NO_MICRO, 0, 0);
    if pp == 1 {
        // Single replica: the table gradient rides the plain DP path.
        if let Some(g) = ctx.stage.embedding_grad().cloned() {
            ctx.ledger.record(
                TrafficClass::Embedding,
                ring_wire_bytes(g.len(), ctx.stage_group.size()),
            );
            let synced = ctx
                .stage_group
                .all_reduce_mean(my_rank, g)
                .expect("embedding all-reduce decode");
            ctx.stage.set_embedding_grad(synced);
        }
    } else if let Some(g) = ctx.stage.embedding_grad().cloned() {
        let dp_ways = ctx.stage_group.size();
        if ctx.cfg.quality.fused_embedding {
            // One (2D)-way all-reduce: sum over both replicas' groups,
            // divided by D = mean over data ranks of (first + last).
            let fused = ctx.fused_group.as_ref().expect("end stage has fused group");
            ctx.ledger.record(
                TrafficClass::Embedding,
                ring_wire_bytes(g.len(), fused.size()),
            );
            let mut summed = fused
                .all_reduce_sum(my_rank, g)
                .expect("fused embedding all-reduce decode");
            summed.scale_assign(1.0 / dp_ways as f32);
            ctx.stage.set_embedding_grad(summed);
        } else {
            // Baseline: EMB DP (D-way mean) then 2-way sum (paper Fig. 7a).
            ctx.ledger
                .record(TrafficClass::Embedding, ring_wire_bytes(g.len(), dp_ways));
            let meaned = ctx
                .stage_group
                .all_reduce_mean(my_rank, g)
                .expect("embedding DP all-reduce decode");
            let pair = ctx
                .emb_pair_group
                .as_ref()
                .expect("end stage has pair group");
            ctx.ledger
                .record(TrafficClass::Embedding, ring_wire_bytes(meaned.len(), 2));
            let synced = pair
                .all_reduce_sum(my_rank, meaned)
                .expect("embedding pair all-reduce decode");
            ctx.stage.set_embedding_grad(synced);
        }
    }

    drop(emb_span);

    // ----- Optimizer step ------------------------------------------------
    let _opt_span = opt_trace::begin(SpanKind::Optimizer, iter, NO_MICRO, 0, 0);
    let mut params = ctx.stage.params();
    optimizer.step(&mut params);
    ctx.stage.zero_grad();
}

/// Validation forward pass over `n_seq` held-out sequences (dp rank 0).
fn validate<Tr: Transport>(ctx: &mut WorkerCtx<Tr>, iter: u64, index: u64, n_seq: usize) {
    let _span = opt_trace::begin(SpanKind::Validate, iter, NO_MICRO, 0, 0);
    let pp = ctx.cfg.pp;
    let s = ctx.stage_idx;
    let my_rank = s; // dp rank 0 => global rank == stage index
    let chunks = n_seq.div_ceil(ctx.cfg.micro_batch);
    for c in 0..chunks {
        let key = index * 10_007 + c as u64;
        if s == 0 {
            let batch = ctx.corpus.validation_batch(ctx.cfg.micro_batch, key);
            let h = ctx.stage.forward_tokens(&batch.tokens);
            if pp == 1 {
                let out = cross_entropy(&h, &batch.targets);
                ctx.collector.record_val(iter, out.loss);
            } else {
                ctx.fwd_mesh.send(my_rank, my_rank + 1, h);
            }
        } else {
            let act = ctx
                .fwd_mesh
                .recv(my_rank - 1, my_rank)
                .expect("validation activation lost");
            let h = ctx.stage.forward_hidden(&act);
            if s == pp - 1 {
                let batch = ctx.corpus.validation_batch(ctx.cfg.micro_batch, key);
                let out = cross_entropy(&h, &batch.targets);
                ctx.collector.record_val(iter, out.loss);
            } else {
                ctx.fwd_mesh.send(my_rank, my_rank + 1, h);
            }
        }
    }
    ctx.stage.clear_caches();
}

/// Inference pass: last-position argmax per sequence (dp rank 0).
fn predict<Tr: Transport>(ctx: &mut WorkerCtx<Tr>, id: u64, tokens: &[usize]) {
    let pp = ctx.cfg.pp;
    let s = ctx.stage_idx;
    let my_rank = s;
    let logits = if s == 0 {
        let h = ctx.stage.forward_tokens(tokens);
        if pp == 1 {
            h
        } else {
            ctx.fwd_mesh.send(my_rank, my_rank + 1, h);
            ctx.stage.clear_caches();
            return;
        }
    } else {
        let act = ctx
            .fwd_mesh
            .recv(my_rank - 1, my_rank)
            .expect("predict activation lost");
        let h = ctx.stage.forward_hidden(&act);
        if s < pp - 1 {
            ctx.fwd_mesh.send(my_rank, my_rank + 1, h);
            ctx.stage.clear_caches();
            return;
        }
        h
    };
    // Last stage: argmax at each sequence's final position.
    let seq_len = ctx.cfg.model.seq_len;
    let n_seq = logits.rows() / seq_len;
    let preds = logits.argmax_rows();
    let answers: Vec<usize> = (0..n_seq)
        .map(|q| preds[q * seq_len + seq_len - 1])
        .collect();
    ctx.stage.clear_caches();
    ctx.predict_out
        .send((id, answers))
        .expect("trainer dropped predict channel");
}

/// Per-rank ring all-reduce wire bytes for `elems` fp16 elements.
fn ring_wire_bytes(elems: usize, ranks: usize) -> u64 {
    if ranks <= 1 {
        return 0;
    }
    (2 * elems * FP16_BYTES) as u64 * (ranks as u64 - 1) / ranks as u64
}
