//! Edge-case parallelism configurations: the runtime must behave for
//! degenerate pipelines (single stage, single DP rank) and asymmetric
//! layer splits, since the paper's Fig. 14 sweeps exactly these shapes.

use opt_model::GptConfig;
use optimus_cc::{QualityConfig, Trainer, TrainerConfig};

fn cfg(pp: usize, dp: usize, q: QualityConfig, iters: u64) -> TrainerConfig {
    let mut c = TrainerConfig::tiny_test(q, iters);
    c.pp = pp;
    c.dp = dp;
    c
}

#[test]
fn single_stage_single_rank_trains() {
    // pp=1, dp=1: no pipeline traffic, no DP traffic, tied embedding on
    // one replica — the plain single-GPU path.
    let mut t = Trainer::launch(cfg(1, 1, QualityConfig::baseline(), 15));
    let r = t.train();
    t.shutdown();
    assert!(r.train_loss.iter().all(|l| l.is_finite()));
    assert_eq!(r.traffic.bytes(opt_net::TrafficClass::InterStage), 0);
    assert_eq!(r.traffic.bytes(opt_net::TrafficClass::DataParallel), 0);
}

#[test]
fn deep_pipeline_no_dp_trains() {
    // pp=4, dp=1: pure pipeline parallelism; CB still applies, the
    // embedding pair sync still runs between first and last stage.
    let mut t = Trainer::launch(cfg(4, 1, QualityConfig::cb(), 15));
    let r = t.train();
    t.shutdown();
    assert!(r.train_loss.iter().all(|l| l.is_finite()));
    assert!(r.traffic.bytes(opt_net::TrafficClass::InterStage) > 0);
}

#[test]
fn dp_only_with_naive_compression_trains() {
    // pp=1, dp=2 with naive DP compression: the Fig. 3 "naive DP" shape
    // in its purest form.
    let mut t = Trainer::launch(cfg(1, 2, QualityConfig::naive_dp(2), 20));
    let r = t.train();
    t.shutdown();
    assert!(r.final_val_ppl().is_finite());
    assert!(r.traffic.bytes(opt_net::TrafficClass::DataParallel) > 0);
}

#[test]
fn uneven_layer_split_trains() {
    // 4 layers over 3 stages: front stages take the extra layer.
    let mut c = TrainerConfig::tiny_test(QualityConfig::cb_fe(), 10);
    c.pp = 3;
    c.dp = 1;
    let mut t = Trainer::launch(c);
    let r = t.train();
    t.shutdown();
    assert!(r.train_loss.iter().all(|l| l.is_finite()));
}

#[test]
fn fused_embedding_identity_holds_at_dp4() {
    // The §6 exactness claim at a wider DP degree (D=4, pp=2).
    let run = |fused: bool| {
        let mut q = QualityConfig::baseline();
        q.fused_embedding = fused;
        let mut c = TrainerConfig::tiny_test(q, 6);
        c.pp = 2;
        c.dp = 4;
        let mut t = Trainer::launch(c);
        let r = t.train();
        t.shutdown();
        r.train_loss
    };
    let a = run(false);
    let b = run(true);
    for (x, y) in a.iter().zip(&b) {
        assert!((x - y).abs() < 1e-3 * (1.0 + x.abs()), "{a:?} vs {b:?}");
    }
}

#[test]
fn sixteen_micro_batches_deep_schedule() {
    // More micro-batches than 2x stages: long steady state, full drain.
    let mut c = TrainerConfig::tiny_test(QualityConfig::cb_fe_sc(), 3);
    c.n_micro = 16;
    let mut t = Trainer::launch(c);
    let r = t.train();
    t.shutdown();
    assert!(r.train_loss.iter().all(|l| l.is_finite()));
}

#[test]
fn tiny_config_with_bigger_model_shape() {
    // 6-layer model over 4 stages with heads=4 (hidden 16 -> head_dim 4).
    let mut c = TrainerConfig::tiny_test(QualityConfig::cb(), 5);
    c.model = GptConfig {
        n_layers: 6,
        ..GptConfig::tiny()
    };
    c.pp = 4;
    let mut t = Trainer::launch(c);
    let r = t.train();
    t.shutdown();
    assert!(r.train_loss.iter().all(|l| l.is_finite()));
}
