//! The `opt-trace` determinism contract, on the real trainer:
//!
//! * `OPT_TRACE=spans` records a span tree whose *structure* is a pure
//!   function of the training configuration — rerunning the same config
//!   yields the same structural digest, at any kernel-pool width;
//! * the recorded slot structure is the real 1F1B schedule: the bubble
//!   replay reduces exactly to `opt_schedule::bubble_fraction`;
//! * tracing never perturbs the numerics: losses are bit-identical
//!   between an untraced run and a spans-mode run.

use opt_tensor::{set_kernel_threads, set_parallel_flop_threshold};
use opt_trace::{SpanKind, Trace};
use optimus_cc::{QualityConfig, TraceMode, Trainer, TrainerConfig};
use proptest::prelude::*;

fn config(pp: usize, dp: usize, n_micro: usize, iters: u64) -> TrainerConfig {
    let mut cfg = TrainerConfig::tiny_test(QualityConfig::cb_fe_sc(), iters);
    cfg.pp = pp;
    cfg.dp = dp;
    cfg.n_micro = n_micro;
    cfg
}

/// Trains the config under spans-mode tracing and returns the merged
/// trace.
fn spans_run(cfg: &TrainerConfig) -> Trace {
    let mut t = Trainer::launch_with_trace(cfg.clone(), TraceMode::Spans);
    t.train();
    let trace = t.take_trace().expect("spans mode is enabled");
    t.shutdown();
    trace
}

fn forward_span_count(trace: &Trace) -> usize {
    trace
        .buffers
        .iter()
        .flat_map(|b| &b.spans)
        .filter(|s| s.kind == SpanKind::Forward)
        .count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]
    #[test]
    fn spans_structure_is_reproducible_and_matches_the_schedule(
        pp in 1usize..3,
        dp in 1usize..3,
        extra_micro in 0usize..3,
        iters in 1u64..3,
    ) {
        let n_micro = pp.max(2) + extra_micro;
        let cfg = config(pp, dp, n_micro, iters);
        let a = spans_run(&cfg);
        let b = spans_run(&cfg);

        // Same config ⇒ same structural digest (timestamps excluded).
        prop_assert_eq!(a.structural_digest(), b.structural_digest());
        prop_assert_eq!(a.buffers.len(), pp * dp);

        // Every rank records exactly one forward slot per microbatch per
        // iteration — the 1F1B schedule, nothing dropped, nothing extra.
        prop_assert_eq!(
            forward_span_count(&a),
            pp * dp * n_micro * iters as usize
        );

        // The structural bubble replay of the *recorded* trace lands on
        // the closed-form 1F1B bubble fraction for every rank.
        let expect = opt_schedule::bubble_fraction(pp, n_micro);
        for r in &opt_trace::analyze(&a, 0).ranks {
            prop_assert!(
                (r.bubble_fraction - expect).abs() < 1e-12,
                "rank {}: bubble {} vs closed form {}",
                r.rank,
                r.bubble_fraction,
                expect
            );
        }
    }
}

#[test]
fn tracing_does_not_perturb_the_numerics() {
    let cfg = config(2, 2, 4, 4);

    let mut off = Trainer::launch_with_trace(cfg.clone(), TraceMode::Off);
    let off_report = off.train();
    assert!(off.take_trace().is_none(), "off mode must yield no trace");
    off.shutdown();

    let mut spans = Trainer::launch_with_trace(cfg, TraceMode::Spans);
    let spans_report = spans.train();
    let trace = spans.take_trace().expect("spans mode is enabled");
    spans.shutdown();

    assert!(trace.compute_span_count() > 0);
    assert_eq!(off_report.train_loss.len(), spans_report.train_loss.len());
    for (i, (a, b)) in off_report
        .train_loss
        .iter()
        .zip(&spans_report.train_loss)
        .enumerate()
    {
        assert_eq!(a.to_bits(), b.to_bits(), "iteration {i}: {a} vs {b}");
    }
    assert_eq!(off_report.traffic, spans_report.traffic);
}

#[test]
fn spans_structure_is_invariant_across_kernel_thread_counts() {
    let cfg = config(2, 1, 4, 2);
    set_parallel_flop_threshold(0);
    set_kernel_threads(1);
    let t1 = spans_run(&cfg);
    set_kernel_threads(4);
    let t4 = spans_run(&cfg);
    // Kernel-pool threads have no tracer: the worker-thread span tree is
    // identical whatever width the pool fans out to.
    assert_eq!(t1.structural_digest(), t4.structural_digest());
    set_kernel_threads(1);
    set_parallel_flop_threshold(usize::MAX - 1);
}
