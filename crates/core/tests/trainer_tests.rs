//! End-to-end tests of the 3D-parallel trainer with compression.

use opt_data::ZeroShotTask;
use optimus_cc::{QualityConfig, Trainer, TrainerConfig};

fn mean(xs: &[f32]) -> f32 {
    xs.iter().sum::<f32>() / xs.len() as f32
}

#[test]
fn baseline_pipeline_training_learns() {
    let cfg = TrainerConfig::tiny_test(QualityConfig::baseline(), 100);
    let mut t = Trainer::launch(cfg);
    let report = t.train();
    t.shutdown();
    let first = mean(&report.train_loss[..5]);
    let last = mean(&report.train_loss[90..]);
    assert!(
        last < first * 0.8,
        "pipeline training failed to learn: {first} -> {last}"
    );
    assert!(report.final_val_ppl().is_finite());
    assert!(report.traffic.total_bytes() > 0);
}

#[test]
fn fused_embedding_is_mathematically_identical() {
    // Paper §6: fusing the two all-reduces "does not induce any
    // mathematical changes". Same seeds, same data; loss trajectories
    // must agree to float-reduction tolerance.
    let run = |fused: bool| {
        let mut q = QualityConfig::baseline();
        q.fused_embedding = fused;
        let cfg = TrainerConfig::tiny_test(q, 12);
        let mut t = Trainer::launch(cfg);
        let report = t.train();
        t.shutdown();
        report.train_loss
    };
    let base = run(false);
    let fused = run(true);
    for (i, (a, b)) in base.iter().zip(&fused).enumerate() {
        assert!(
            (a - b).abs() < 5e-4 * (1.0 + a.abs()),
            "iteration {i}: baseline {a} vs fused {b} (traces: {base:?} vs {fused:?})"
        );
    }
}

#[test]
fn cb_with_lep_tracks_baseline_quality() {
    let run = |q: QualityConfig| {
        let cfg = TrainerConfig::tiny_test(q, 60);
        let mut t = Trainer::launch(cfg);
        let report = t.train();
        t.shutdown();
        report
    };
    let base = run(QualityConfig::baseline());
    let cb = run(QualityConfig::cb());
    let base_loss = base.final_val_loss();
    let cb_loss = cb.final_val_loss();
    // CB+LEP must stay close to baseline (paper Table 2: identical PPL).
    assert!(
        cb_loss < base_loss + 0.35,
        "CB degraded too much: baseline {base_loss}, CB {cb_loss}"
    );
    // And it must actually have compressed something.
    assert!(
        cb.traffic.bytes(opt_net::TrafficClass::InterStage)
            < base.traffic.bytes(opt_net::TrafficClass::InterStage),
        "CB did not reduce inter-stage traffic"
    );
}

#[test]
fn naive_cb_is_worse_than_lep_cb() {
    // Fig. 3 / Table 4: compressing every backward send without lazy
    // error propagation hurts quality more than epilogue-only + LEP.
    let run = |q: QualityConfig| {
        let cfg = TrainerConfig::tiny_test(q, 60);
        let mut t = Trainer::launch(cfg);
        let r = t.train();
        t.shutdown();
        r.final_val_loss()
    };
    let lep = run(QualityConfig::cb());
    let naive = run(QualityConfig::naive_cb(QualityConfig::SMALL_CB_RANK));
    assert!(
        naive > lep - 0.05,
        "naive CB ({naive}) should not beat LEP CB ({lep})"
    );
}

#[test]
fn sc_compresses_dp_traffic() {
    let run = |q: QualityConfig| {
        let cfg = TrainerConfig::tiny_test(q, 8);
        let mut t = Trainer::launch(cfg);
        let r = t.train();
        t.shutdown();
        r.traffic.bytes(opt_net::TrafficClass::DataParallel)
    };
    let dense = run(QualityConfig::baseline());
    let mut sc = QualityConfig::cb_fe_sc();
    sc.sc = Some(optimus_cc::ScQuality {
        fraction: 1.0,
        rank: 2,
    });
    let compressed = run(sc);
    assert!(
        compressed < dense / 2,
        "SC failed to reduce DP bytes: {compressed} vs {dense}"
    );
}

#[test]
fn predict_and_zero_shot_run() {
    let cfg = TrainerConfig::tiny_test(QualityConfig::baseline(), 10);
    let seq = cfg.model.seq_len;
    let vocab = cfg.model.vocab;
    let mut t = Trainer::launch(cfg);
    t.train();
    let tokens: Vec<usize> = (0..2 * seq).map(|i| i % vocab).collect();
    let preds = t.predict(&tokens);
    assert_eq!(preds.len(), 2);
    assert!(preds.iter().all(|&p| p < vocab));
    let score = t.zero_shot(ZeroShotTask::Copy, 20, 1);
    assert_eq!(score.total, 20);
    t.shutdown();
}

#[test]
fn memory_report_shows_lep_buffers() {
    let cfg = TrainerConfig::tiny_test(QualityConfig::cb(), 3);
    let mut t = Trainer::launch(cfg);
    t.train();
    let mem = t.memory_report();
    t.shutdown();
    assert!(mem.param_elems > 0);
    assert!(mem.lazy_error_elems > 0, "LEP buffers missing from report");
    assert!(mem.lep_overhead() > 0.0);
    assert!(mem.total() > mem.baseline_total());
}

#[test]
fn dp_ranks_stay_in_sync() {
    // After training, both dp ranks must hold identical weights; we can't
    // read weights directly, but identical weights + deterministic
    // validation means the training losses per iteration are finite and
    // the run doesn't diverge between ranks (a desync shows up as a
    // deadlock or wildly inconsistent loss).
    let cfg = TrainerConfig::tiny_test(QualityConfig::cb_fe_sc(), 20);
    let mut t = Trainer::launch(cfg);
    let report = t.train();
    t.shutdown();
    assert!(report.train_loss.iter().all(|l| l.is_finite()));
}
