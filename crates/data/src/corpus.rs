//! Synthetic pretraining corpus: Markov language + repetition structure.

use opt_tensor::SeedStream;

/// A batch of language-modelling data: flat token stream (sequences
/// concatenated) and next-token targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    /// Input tokens, `n_seq * seq_len` of them, grouped by sequence.
    pub tokens: Vec<usize>,
    /// Next-token targets, aligned with `tokens`.
    pub targets: Vec<usize>,
}

impl Batch {
    /// Number of sequences in the batch given `seq_len`.
    pub fn n_sequences(&self, seq_len: usize) -> usize {
        self.tokens.len() / seq_len
    }
}

/// An order-1 Markov chain over `vocab` tokens where each token has
/// `branching` plausible successors with geometrically decaying
/// probability.
///
/// The decaying profile gives the chain a known entropy floor
/// ([`MarkovChain::entropy_floor_nats`]): a perfectly trained model's loss
/// converges there, so compression-induced quality loss is measurable as
/// the gap above the floor — our stand-in for the paper's validation
/// perplexity comparisons.
#[derive(Debug, Clone)]
pub struct MarkovChain {
    vocab: usize,
    /// successors[t] = list of (token, probability).
    successors: Vec<Vec<(usize, f32)>>,
}

impl MarkovChain {
    /// Creates a chain with `branching` successors per token.
    ///
    /// # Panics
    ///
    /// Panics if `vocab == 0`, `branching == 0`, or `branching > vocab`.
    pub fn new(vocab: usize, branching: usize, seed: u64) -> Self {
        assert!(vocab > 0, "vocab must be positive");
        assert!(branching > 0 && branching <= vocab, "invalid branching");
        let mut rng = SeedStream::new(seed);
        let mut successors = Vec::with_capacity(vocab);
        for _ in 0..vocab {
            // Geometric-ish decay: p_i proportional to 2^-i.
            let mut weights = Vec::with_capacity(branching);
            let mut total = 0.0f32;
            for i in 0..branching {
                let w = 0.5f32.powi(i as i32);
                weights.push(w);
                total += w;
            }
            let mut succ = Vec::with_capacity(branching);
            let mut used = std::collections::HashSet::new();
            for w in weights {
                let mut t = rng.below(vocab);
                while used.contains(&t) {
                    t = rng.below(vocab);
                }
                used.insert(t);
                succ.push((t, w / total));
            }
            successors.push(succ);
        }
        Self { vocab, successors }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Samples the successor of `token`.
    ///
    /// # Panics
    ///
    /// Panics if `token >= vocab`.
    pub fn step(&self, token: usize, rng: &mut SeedStream) -> usize {
        let succ = &self.successors[token];
        let mut u = rng.unit();
        for &(t, p) in succ {
            if u < p {
                return t;
            }
            u -= p;
        }
        succ.last().expect("non-empty successors").0
    }

    /// The most likely successor of `token` (used by the MarkovNext
    /// zero-shot probe).
    ///
    /// # Panics
    ///
    /// Panics if `token >= vocab`.
    pub fn most_likely_successor(&self, token: usize) -> usize {
        self.successors[token]
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .expect("non-empty successors")
            .0
    }

    /// Per-step conditional entropy in nats (uniform over source states):
    /// the minimum achievable language-modelling loss on pure chain data.
    pub fn entropy_floor_nats(&self) -> f32 {
        let mut h = 0.0;
        for succ in &self.successors {
            for &(_, p) in succ {
                h -= p * p.ln();
            }
        }
        h / self.vocab as f32
    }
}

/// The pretraining corpus: a seeded mixture of Markov-chain sequences and
/// repeated-window sequences, with a deterministic train/validation split
/// (validation uses an RNG stream derived from a distinct salt, mirroring
/// the paper's 5 % holdout).
#[derive(Debug, Clone)]
pub struct SyntheticCorpus {
    chain: MarkovChain,
    seq_len: usize,
    repeat_fraction: f64,
    seed: u64,
}

impl SyntheticCorpus {
    /// Creates a corpus over `vocab` tokens with sequences of `seq_len`.
    /// `repeat_fraction` of sequences are repetition-structured (default
    /// experiments use 0.5).
    ///
    /// # Panics
    ///
    /// Panics if `seq_len < 4` or `repeat_fraction` is outside `[0, 1]`.
    pub fn new(vocab: usize, seq_len: usize, repeat_fraction: f64, seed: u64) -> Self {
        assert!(seq_len >= 4, "seq_len must be at least 4");
        assert!(
            (0.0..=1.0).contains(&repeat_fraction),
            "repeat_fraction in [0,1]"
        );
        Self {
            chain: MarkovChain::new(vocab, 4, seed ^ 0xC0FFEE),
            seq_len,
            repeat_fraction,
            seed,
        }
    }

    /// The underlying Markov chain (the zero-shot probes need it).
    pub fn chain(&self) -> &MarkovChain {
        &self.chain
    }

    /// Sequence length.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.chain.vocab()
    }

    fn gen_sequence(&self, rng: &mut SeedStream) -> (Vec<usize>, Vec<usize>) {
        // Generate seq_len + 1 tokens; inputs are [0..L], targets [1..=L].
        let l = self.seq_len;
        let mut stream = Vec::with_capacity(l + 1);
        if rng.unit() as f64 >= self.repeat_fraction {
            // Markov sequence.
            let mut t = rng.below(self.vocab());
            stream.push(t);
            for _ in 0..l {
                t = self.chain.step(t, rng);
                stream.push(t);
            }
        } else {
            // Repetition sequence: random window repeated to fill.
            let window = (l / 2).max(2);
            let mut prefix = Vec::with_capacity(window);
            let mut t = rng.below(self.vocab());
            prefix.push(t);
            for _ in 1..window {
                t = self.chain.step(t, rng);
                prefix.push(t);
            }
            while stream.len() < l + 1 {
                let i = stream.len() % window;
                stream.push(prefix[i]);
            }
        }
        let tokens = stream[..l].to_vec();
        let targets = stream[1..=l].to_vec();
        (tokens, targets)
    }

    /// Samples a training batch of `n_seq` sequences for global step
    /// `step`. Batches are a pure function of `(seed, step)`, so every
    /// data-parallel replica can derive its own shard deterministically.
    pub fn train_batch(&self, n_seq: usize, step: u64) -> Batch {
        self.batch_from_stream(
            n_seq,
            SeedStream::new(self.seed ^ (step.wrapping_mul(0x9E3779B97F4A7C15))),
        )
    }

    /// Samples a validation batch (disjoint RNG stream from training).
    pub fn validation_batch(&self, n_seq: usize, index: u64) -> Batch {
        self.batch_from_stream(
            n_seq,
            SeedStream::new(self.seed ^ 0x5A17_u64 ^ (index.wrapping_mul(0xD1B54A32D192ED03))),
        )
    }

    fn batch_from_stream(&self, n_seq: usize, mut rng: SeedStream) -> Batch {
        let mut tokens = Vec::with_capacity(n_seq * self.seq_len);
        let mut targets = Vec::with_capacity(n_seq * self.seq_len);
        for _ in 0..n_seq {
            let (t, y) = self.gen_sequence(&mut rng);
            tokens.extend(t);
            targets.extend(y);
        }
        Batch { tokens, targets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_steps_stay_in_vocab() {
        let chain = MarkovChain::new(16, 3, 1);
        let mut rng = SeedStream::new(2);
        let mut t = 0;
        for _ in 0..1000 {
            t = chain.step(t, &mut rng);
            assert!(t < 16);
        }
    }

    #[test]
    fn chain_respects_transition_support() {
        let chain = MarkovChain::new(16, 3, 1);
        let mut rng = SeedStream::new(3);
        for start in 0..16 {
            let allowed: Vec<usize> = chain.successors[start].iter().map(|&(t, _)| t).collect();
            for _ in 0..50 {
                let next = chain.step(start, &mut rng);
                assert!(allowed.contains(&next), "{start} -> {next} not allowed");
            }
        }
    }

    #[test]
    fn entropy_floor_matches_branching() {
        // branching 1 => deterministic => zero entropy.
        let det = MarkovChain::new(8, 1, 0);
        assert!(det.entropy_floor_nats() < 1e-6);
        // branching 4 with weights (8/15, 4/15, 2/15, 1/15): H ~ 1.19 nats.
        let chain = MarkovChain::new(8, 4, 0);
        let h = chain.entropy_floor_nats();
        assert!(h > 0.9 && h < 1.4, "entropy {h}");
    }

    #[test]
    fn most_likely_successor_has_max_probability() {
        let chain = MarkovChain::new(12, 4, 5);
        for t in 0..12 {
            let best = chain.most_likely_successor(t);
            let best_p = chain.successors[t]
                .iter()
                .find(|&&(s, _)| s == best)
                .unwrap()
                .1;
            for &(_, p) in &chain.successors[t] {
                assert!(best_p >= p);
            }
        }
    }

    #[test]
    fn batches_are_deterministic_per_step() {
        let corpus = SyntheticCorpus::new(32, 16, 0.5, 9);
        assert_eq!(corpus.train_batch(4, 7), corpus.train_batch(4, 7));
        assert_ne!(corpus.train_batch(4, 7), corpus.train_batch(4, 8));
    }

    #[test]
    fn validation_stream_differs_from_training() {
        let corpus = SyntheticCorpus::new(32, 16, 0.5, 9);
        assert_ne!(corpus.train_batch(4, 0), corpus.validation_batch(4, 0));
    }

    #[test]
    fn targets_are_shifted_tokens() {
        let corpus = SyntheticCorpus::new(32, 16, 0.0, 1);
        let b = corpus.train_batch(2, 0);
        // Within each sequence, target[i] == token[i+1].
        for s in 0..2 {
            for i in 0..15 {
                assert_eq!(b.targets[s * 16 + i], b.tokens[s * 16 + i + 1]);
            }
        }
    }

    #[test]
    fn repetition_sequences_actually_repeat() {
        let corpus = SyntheticCorpus::new(32, 16, 1.0, 2);
        let b = corpus.train_batch(3, 0);
        for s in 0..3 {
            let seq = &b.tokens[s * 16..(s + 1) * 16];
            let window = 8;
            for i in window..16 {
                assert_eq!(seq[i], seq[i - window], "sequence {s} not periodic");
            }
        }
    }

    #[test]
    fn batch_shapes_are_consistent() {
        let corpus = SyntheticCorpus::new(32, 8, 0.5, 3);
        let b = corpus.train_batch(5, 1);
        assert_eq!(b.tokens.len(), 40);
        assert_eq!(b.targets.len(), 40);
        assert_eq!(b.n_sequences(8), 5);
        assert!(b.tokens.iter().all(|&t| t < 32));
    }
}
