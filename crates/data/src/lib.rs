//! `opt-data` — synthetic corpora and evaluation tasks.
//!
//! The paper pretrains on RealNews + Wikipedia + CC-Stories + OpenWebtext
//! and evaluates zero-shot on LAMBADA / PIQA / MathQA / WinoGrande / RACE.
//! Neither the corpus nor the benchmark suites are available (or
//! meaningful) at our model scale, so this crate provides the synthetic
//! substitutes documented in `DESIGN.md` §4:
//!
//! * [`SyntheticCorpus`] — a mixture of an order-1 Markov language (local
//!   statistics, a well-defined entropy floor) and repeated-window
//!   sequences (long-range structure that trains induction/copy heads).
//!   A deterministic holdout split provides train/validation batches, as
//!   the paper holds out 5 % for validation.
//! * [`ZeroShotTask`] — five probes evaluated *without fine-tuning*, each
//!   substituting for one paper benchmark by exercising a comparable
//!   capability (long-range recall, local recall, corpus statistics,
//!   copying, recall under distraction).

mod corpus;
mod tasks;

pub use corpus::{Batch, MarkovChain, SyntheticCorpus};
pub use tasks::{TaskExample, TaskScore, ZeroShotTask};
