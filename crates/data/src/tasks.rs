//! Zero-shot evaluation probes (Table 3/4 substitutes).

use crate::{MarkovChain, SyntheticCorpus};
use opt_tensor::SeedStream;

/// One zero-shot example: a context of `seq_len` tokens and the expected
/// next token at the final position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskExample {
    /// The full input context (exactly `seq_len` tokens).
    pub context: Vec<usize>,
    /// The expected prediction for the final position.
    pub answer: usize,
}

/// Accuracy result of a task evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskScore {
    /// Number of correct predictions.
    pub correct: usize,
    /// Number of examples evaluated.
    pub total: usize,
}

impl TaskScore {
    /// Accuracy in `[0, 1]`.
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }
}

/// The five zero-shot probes substituting for the paper's Table 3 suite.
///
/// Each probe is evaluated on a frozen pretrained model (no fine-tuning)
/// and measures a capability the mixture corpus exercises, graded by
/// difficulty so accuracies spread out like the paper's benchmarks do:
///
/// | Probe | Substitutes for | Capability |
/// |---|---|---|
/// | `LongRecall` | LAMBADA | recall a pattern planted at the start of the context |
/// | `ShortRecall` | PIQA | recall a pattern planted a few tokens back |
/// | `MarkovNext` | MathQA | reproduce corpus statistics on rare states |
/// | `Copy` | WinoGrande | continue a periodic sequence |
/// | `DistractedRecall` | RACE | recall across interleaved distractors |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ZeroShotTask {
    /// Pattern pair planted at context start, queried at the end.
    LongRecall,
    /// Pattern pair planted close to the query.
    ShortRecall,
    /// Predict the most likely Markov successor of the final token.
    MarkovNext,
    /// Continue a periodic (window-repeat) sequence.
    Copy,
    /// Recall with distractor tokens interleaved around the planted pair.
    DistractedRecall,
}

impl ZeroShotTask {
    /// All tasks in Table-3 row order.
    pub const ALL: [ZeroShotTask; 5] = [
        ZeroShotTask::LongRecall,
        ZeroShotTask::ShortRecall,
        ZeroShotTask::MarkovNext,
        ZeroShotTask::Copy,
        ZeroShotTask::DistractedRecall,
    ];

    /// The paper benchmark this probe substitutes for.
    pub fn paper_benchmark(&self) -> &'static str {
        match self {
            ZeroShotTask::LongRecall => "LAMBADA",
            ZeroShotTask::ShortRecall => "PIQA",
            ZeroShotTask::MarkovNext => "MathQA",
            ZeroShotTask::Copy => "WinoGrande",
            ZeroShotTask::DistractedRecall => "RACE",
        }
    }

    /// Generates `n` deterministic examples against `corpus`.
    pub fn generate(&self, corpus: &SyntheticCorpus, n: usize, seed: u64) -> Vec<TaskExample> {
        let mut rng = SeedStream::new(seed ^ 0x7A5C ^ (*self as u64) << 8);
        (0..n).map(|_| self.example(corpus, &mut rng)).collect()
    }

    fn example(&self, corpus: &SyntheticCorpus, rng: &mut SeedStream) -> TaskExample {
        let l = corpus.seq_len();
        let v = corpus.vocab();
        let chain = corpus.chain();
        match self {
            ZeroShotTask::LongRecall => {
                // [a, b, fill..., a] -> b, with the pair at the very start.
                let (a, b) = distinct_pair(v, rng);
                let mut ctx = vec![a, b];
                fill_markov(&mut ctx, chain, l - 1, rng, &[a]);
                ctx.push(a);
                TaskExample {
                    context: ctx,
                    answer: b,
                }
            }
            ZeroShotTask::ShortRecall => {
                // fill... [a, b, x, a] -> b, pair planted 3 back.
                let (a, b) = distinct_pair(v, rng);
                let mut ctx = Vec::new();
                fill_markov(&mut ctx, chain, l - 4, rng, &[a]);
                let x = loop {
                    let x = rng.below(v);
                    if x != a {
                        break x;
                    }
                };
                ctx.extend_from_slice(&[a, b, x, a]);
                TaskExample {
                    context: ctx,
                    answer: b,
                }
            }
            ZeroShotTask::MarkovNext => {
                // Pure chain context; answer = most likely successor of
                // the final token.
                let mut ctx = Vec::with_capacity(l);
                let mut t = rng.below(v);
                ctx.push(t);
                for _ in 1..l {
                    t = chain.step(t, rng);
                    ctx.push(t);
                }
                TaskExample {
                    context: ctx.clone(),
                    answer: chain.most_likely_successor(t),
                }
            }
            ZeroShotTask::Copy => {
                // Periodic window; answer continues the period.
                let window = (l / 2).max(2);
                let mut prefix = Vec::with_capacity(window);
                let mut t = rng.below(v);
                prefix.push(t);
                for _ in 1..window {
                    t = chain.step(t, rng);
                    prefix.push(t);
                }
                let ctx: Vec<usize> = (0..l).map(|i| prefix[i % window]).collect();
                TaskExample {
                    context: ctx,
                    answer: prefix[l % window],
                }
            }
            ZeroShotTask::DistractedRecall => {
                // [a, b] planted mid-context, distractors after, query a.
                let (a, b) = distinct_pair(v, rng);
                let mut ctx = Vec::new();
                fill_markov(&mut ctx, chain, l / 2 - 1, rng, &[a]);
                ctx.push(a);
                ctx.push(b);
                fill_markov(&mut ctx, chain, l - 1, rng, &[a]);
                ctx.push(a);
                TaskExample {
                    context: ctx,
                    answer: b,
                }
            }
        }
    }

    /// Evaluates `predict` (a frozen model's final-position argmax) on `n`
    /// examples.
    pub fn evaluate(
        &self,
        corpus: &SyntheticCorpus,
        n: usize,
        seed: u64,
        mut predict: impl FnMut(&[usize]) -> usize,
    ) -> TaskScore {
        let examples = self.generate(corpus, n, seed);
        let correct = examples
            .iter()
            .filter(|ex| predict(&ex.context) == ex.answer)
            .count();
        TaskScore { correct, total: n }
    }
}

/// Two distinct random tokens.
fn distinct_pair(vocab: usize, rng: &mut SeedStream) -> (usize, usize) {
    let a = rng.below(vocab);
    let mut b = rng.below(vocab);
    while b == a {
        b = rng.below(vocab);
    }
    (a, b)
}

/// Extends `ctx` with chain-sampled tokens until it reaches `target_len`,
/// avoiding tokens in `forbidden` (so the planted cue stays unique).
fn fill_markov(
    ctx: &mut Vec<usize>,
    chain: &MarkovChain,
    target_len: usize,
    rng: &mut SeedStream,
    forbidden: &[usize],
) {
    let mut t = if ctx.is_empty() {
        rng.below(chain.vocab())
    } else {
        *ctx.last().unwrap()
    };
    while ctx.len() < target_len {
        t = chain.step(t, rng);
        let mut guard = 0;
        while forbidden.contains(&t) && guard < 8 {
            t = rng.below(chain.vocab());
            guard += 1;
        }
        if forbidden.contains(&t) {
            // Fall back to any non-forbidden token deterministically.
            t = (0..chain.vocab())
                .find(|x| !forbidden.contains(x))
                .expect("vocab larger than forbidden set");
        }
        ctx.push(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> SyntheticCorpus {
        SyntheticCorpus::new(64, 16, 0.5, 7)
    }

    #[test]
    fn examples_have_exact_context_length() {
        let c = corpus();
        for task in ZeroShotTask::ALL {
            for ex in task.generate(&c, 20, 1) {
                assert_eq!(ex.context.len(), 16, "{task:?}");
                assert!(ex.answer < 64);
                assert!(ex.context.iter().all(|&t| t < 64));
            }
        }
    }

    #[test]
    fn long_recall_plants_pair_at_start_and_cue_at_end() {
        let c = corpus();
        for ex in ZeroShotTask::LongRecall.generate(&c, 20, 2) {
            let a = ex.context[0];
            assert_eq!(ex.context[1], ex.answer);
            assert_eq!(*ex.context.last().unwrap(), a);
            // Cue token unique in the middle (no ambiguity).
            let occurrences = ex.context[..15].iter().filter(|&&t| t == a).count();
            assert_eq!(occurrences, 1, "cue token leaked into distractors");
        }
    }

    #[test]
    fn copy_examples_are_periodic() {
        let c = corpus();
        for ex in ZeroShotTask::Copy.generate(&c, 10, 3) {
            for i in 8..16 {
                assert_eq!(ex.context[i], ex.context[i - 8]);
            }
            assert_eq!(ex.answer, ex.context[16 % 8]);
        }
    }

    #[test]
    fn markov_next_answer_is_argmax_successor() {
        let c = corpus();
        for ex in ZeroShotTask::MarkovNext.generate(&c, 10, 4) {
            let last = *ex.context.last().unwrap();
            assert_eq!(ex.answer, c.chain().most_likely_successor(last));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let c = corpus();
        let a = ZeroShotTask::DistractedRecall.generate(&c, 5, 9);
        let b = ZeroShotTask::DistractedRecall.generate(&c, 5, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn oracle_predictor_scores_100_percent() {
        let c = corpus();
        let examples = ZeroShotTask::LongRecall.generate(&c, 50, 11);
        let mut i = 0;
        let score = ZeroShotTask::LongRecall.evaluate(&c, 50, 11, |_ctx| {
            let ans = examples[i].answer;
            i += 1;
            ans
        });
        assert_eq!(score.correct, 50);
        assert!((score.accuracy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_predictor_scores_near_chance() {
        let c = corpus();
        let mut rng = SeedStream::new(5);
        let score = ZeroShotTask::MarkovNext.evaluate(&c, 400, 13, |_ctx| rng.below(64));
        assert!(
            score.accuracy() < 0.1,
            "random accuracy {}",
            score.accuracy()
        );
    }

    #[test]
    fn paper_benchmark_names() {
        assert_eq!(ZeroShotTask::LongRecall.paper_benchmark(), "LAMBADA");
        assert_eq!(ZeroShotTask::ALL.len(), 5);
    }
}
