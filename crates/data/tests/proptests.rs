//! Property-based tests for corpus and task generation.

use opt_data::{SyntheticCorpus, ZeroShotTask};
use proptest::prelude::*;

fn corpus(vocab: usize, seq: usize, rep: f64, seed: u64) -> SyntheticCorpus {
    SyntheticCorpus::new(vocab, seq, rep, seed)
}

proptest! {
    #[test]
    fn batches_stay_in_vocab(vocab in 8usize..128, seq in 4usize..32, seed in 0u64..200) {
        let c = corpus(vocab, seq, 0.5, seed);
        let b = c.train_batch(3, 0);
        prop_assert!(b.tokens.iter().all(|&t| t < vocab));
        prop_assert!(b.targets.iter().all(|&t| t < vocab));
        prop_assert_eq!(b.tokens.len(), 3 * seq);
    }

    #[test]
    fn targets_shift_within_sequences(seed in 0u64..200, rep in 0.0f64..1.0) {
        let c = corpus(32, 8, rep, seed);
        let b = c.train_batch(4, 1);
        for s in 0..4 {
            for i in 0..7 {
                prop_assert_eq!(b.targets[s * 8 + i], b.tokens[s * 8 + i + 1]);
            }
        }
    }

    #[test]
    fn different_steps_give_different_batches(seed in 0u64..100) {
        let c = corpus(32, 16, 0.5, seed);
        prop_assert_ne!(c.train_batch(4, 0), c.train_batch(4, 1));
    }

    #[test]
    fn task_examples_are_well_formed(seed in 0u64..100, n in 1usize..20) {
        let c = corpus(64, 16, 0.5, 3);
        for task in ZeroShotTask::ALL {
            for ex in task.generate(&c, n, seed) {
                prop_assert_eq!(ex.context.len(), 16);
                prop_assert!(ex.answer < 64);
            }
        }
    }

    #[test]
    fn long_recall_cue_is_unambiguous(seed in 0u64..200) {
        let c = corpus(64, 16, 0.5, 5);
        for ex in ZeroShotTask::LongRecall.generate(&c, 10, seed) {
            let cue = *ex.context.last().unwrap();
            // The cue appears exactly twice: at position 0 and at the end.
            let count = ex.context.iter().filter(|&&t| t == cue).count();
            prop_assert_eq!(count, 2, "cue ambiguity in {:?}", ex.context);
        }
    }

    #[test]
    fn chain_entropy_floor_is_nonnegative_and_bounded(vocab in 4usize..64, branch in 1usize..4, seed in 0u64..100) {
        let chain = opt_data::MarkovChain::new(vocab, branch, seed);
        let h = chain.entropy_floor_nats();
        prop_assert!(h >= 0.0);
        prop_assert!(h <= (branch as f32).ln() + 1e-5, "entropy above log(branching)");
    }
}
