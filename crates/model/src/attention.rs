//! Causal multi-head self-attention with hand-written backward pass.

use crate::{Layer, ParamRef};
use opt_tensor::{xavier_uniform, Matrix, SeedStream};
use std::collections::VecDeque;

/// Reused scratch buffers for the per-head GEMMs; every matrix is fully
/// overwritten before use, so nothing here is model state (checkpoints
/// ignore it). Eliminates the per-step allocations the seed code made for
/// head slices, score matrices, and gradient temporaries.
#[derive(Default)]
struct AttnScratch {
    qh: Matrix,
    kh: Matrix,
    vh: Matrix,
    scores: Matrix,
    ctx_h: Matrix,
    d_context: Matrix,
    d_ctx_h: Matrix,
    d_a: Matrix,
    d_s: Matrix,
    d_qh: Matrix,
    d_kh: Matrix,
    d_vh: Matrix,
    /// `hidden x hidden` accumulation scratch for weight-gradient and
    /// input-gradient GEMMs.
    acc: Matrix,
}

/// Per-forward cached tensors needed by the backward pass.
struct AttnCache {
    x: Matrix,
    q: Matrix,
    k: Matrix,
    v: Matrix,
    /// Softmax outputs per (sequence, head): attn[s * heads + h] is L x L.
    attn: Vec<Matrix>,
    /// Concatenated per-head context (pre output-projection).
    context: Matrix,
}

/// Causal multi-head self-attention: `y = softmax(QK^T / sqrt(dk)) V W_o`.
///
/// Input is `(batch * seq_len) x hidden`, rows grouped by sequence: rows
/// `[s*L, (s+1)*L)` form sequence `s` — the same folding Megatron-LM uses
/// before its attention GEMMs. A causal mask forbids attending to future
/// positions.
pub struct MultiHeadAttention {
    hidden: usize,
    heads: usize,
    seq_len: usize,
    wq: Matrix,
    wk: Matrix,
    wv: Matrix,
    wo: Matrix,
    grad_wq: Matrix,
    grad_wk: Matrix,
    grad_wv: Matrix,
    grad_wo: Matrix,
    cache: VecDeque<AttnCache>,
    scratch: AttnScratch,
}

impl std::fmt::Debug for MultiHeadAttention {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MultiHeadAttention(hidden={}, heads={}, seq_len={})",
            self.hidden, self.heads, self.seq_len
        )
    }
}

impl MultiHeadAttention {
    /// Creates an attention layer.
    ///
    /// # Panics
    ///
    /// Panics if `hidden` is not divisible by `heads`.
    pub fn new(hidden: usize, heads: usize, seq_len: usize, rng: &mut SeedStream) -> Self {
        assert!(
            hidden.is_multiple_of(heads),
            "hidden must be divisible by heads"
        );
        Self {
            hidden,
            heads,
            seq_len,
            wq: xavier_uniform(rng, hidden, hidden),
            wk: xavier_uniform(rng, hidden, hidden),
            wv: xavier_uniform(rng, hidden, hidden),
            wo: xavier_uniform(rng, hidden, hidden),
            grad_wq: Matrix::zeros(hidden, hidden),
            grad_wk: Matrix::zeros(hidden, hidden),
            grad_wv: Matrix::zeros(hidden, hidden),
            grad_wo: Matrix::zeros(hidden, hidden),
            cache: VecDeque::new(),
            scratch: AttnScratch::default(),
        }
    }

    /// Head dimensionality `hidden / heads`.
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }

    fn n_sequences(&self, rows: usize) -> usize {
        assert!(
            rows.is_multiple_of(self.seq_len),
            "input rows {rows} not a multiple of seq_len {}",
            self.seq_len
        );
        rows / self.seq_len
    }

    /// Row-wise softmax with causal masking applied to an `L x L` score
    /// matrix: position `i` attends to positions `0..=i`.
    fn causal_softmax(scores: &Matrix) -> Matrix {
        let l = scores.rows();
        let mut out = Matrix::zeros(l, l);
        for i in 0..l {
            let row = scores.row(i);
            let visible = &row[..=i];
            let max = visible.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
            let mut denom = 0.0;
            for (j, &s) in visible.iter().enumerate() {
                let e = (s - max).exp();
                out[(i, j)] = e;
                denom += e;
            }
            for j in 0..=i {
                out[(i, j)] /= denom;
            }
        }
        out
    }
}

impl Layer for MultiHeadAttention {
    fn forward(&mut self, x: &Matrix) -> Matrix {
        let n_seq = self.n_sequences(x.rows());
        let l = self.seq_len;
        let dk = self.head_dim();
        let scale = 1.0 / (dk as f32).sqrt();

        let q = x.matmul(&self.wq);
        let k = x.matmul(&self.wk);
        let v = x.matmul(&self.wv);

        let mut context = Matrix::zeros(x.rows(), self.hidden);
        let mut attn = Vec::with_capacity(n_seq * self.heads);
        let sc = &mut self.scratch;
        for s in 0..n_seq {
            for h in 0..self.heads {
                let (r0, r1) = (s * l, (s + 1) * l);
                let (c0, c1) = (h * dk, (h + 1) * dk);
                q.slice_block_into(r0, r1, c0, c1, &mut sc.qh);
                k.slice_block_into(r0, r1, c0, c1, &mut sc.kh);
                v.slice_block_into(r0, r1, c0, c1, &mut sc.vh);
                sc.qh.matmul_t_into(&sc.kh, &mut sc.scores);
                sc.scores.scale_assign(scale);
                // The softmax output is cached for backward, so it is the
                // one per-head tensor that still allocates.
                let a = Self::causal_softmax(&sc.scores);
                // ctx_h is L x dk; paste it into the context block for
                // this sequence.
                a.matmul_into(&sc.vh, &mut sc.ctx_h);
                for (i, row) in (r0..r1).enumerate() {
                    let dst = context.row_mut(row);
                    dst[c0..c1].copy_from_slice(sc.ctx_h.row(i));
                }
                attn.push(a);
            }
        }
        let y = context.matmul(&self.wo);
        self.cache.push_back(AttnCache {
            x: x.clone(),
            q,
            k,
            v,
            attn,
            context,
        });
        y
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let c = self
            .cache
            .pop_front()
            .expect("Attention::backward without forward");
        let n_seq = self.n_sequences(grad_out.rows());
        let l = self.seq_len;
        let dk = self.head_dim();
        let scale = 1.0 / (dk as f32).sqrt();

        // y = context * Wo
        let sc = &mut self.scratch;
        c.context.t_matmul_into(grad_out, &mut sc.acc);
        self.grad_wo.add_assign(&sc.acc);
        grad_out.matmul_t_into(&self.wo, &mut sc.d_context);

        let mut dq = Matrix::zeros(grad_out.rows(), self.hidden);
        let mut dk_mat = Matrix::zeros(grad_out.rows(), self.hidden);
        let mut dv = Matrix::zeros(grad_out.rows(), self.hidden);

        for s in 0..n_seq {
            for h in 0..self.heads {
                let a = &c.attn[s * self.heads + h]; // L x L
                let (r0, r1) = (s * l, (s + 1) * l);
                let (c0, c1) = (h * dk, (h + 1) * dk);
                c.q.slice_block_into(r0, r1, c0, c1, &mut sc.qh);
                c.k.slice_block_into(r0, r1, c0, c1, &mut sc.kh);
                c.v.slice_block_into(r0, r1, c0, c1, &mut sc.vh);
                sc.d_context
                    .slice_block_into(r0, r1, c0, c1, &mut sc.d_ctx_h);

                // ctx_h = A vh
                sc.d_ctx_h.matmul_t_into(&sc.vh, &mut sc.d_a); // L x L
                a.t_matmul_into(&sc.d_ctx_h, &mut sc.d_vh); // L x dk

                // Softmax backward per row: dS = A ⊙ (dA - rowsum(dA ⊙ A)).
                if sc.d_s.shape() == (l, l) {
                    sc.d_s.fill_zero();
                } else {
                    sc.d_s = Matrix::zeros(l, l);
                }
                for i in 0..l {
                    let mut dot = 0.0;
                    for j in 0..=i {
                        dot += sc.d_a[(i, j)] * a[(i, j)];
                    }
                    for j in 0..=i {
                        sc.d_s[(i, j)] = a[(i, j)] * (sc.d_a[(i, j)] - dot);
                    }
                }
                // scores = qh kh^T * scale
                sc.d_s.matmul_into(&sc.kh, &mut sc.d_qh);
                sc.d_qh.scale_assign(scale);
                sc.d_s.t_matmul_into(&sc.qh, &mut sc.d_kh);
                sc.d_kh.scale_assign(scale);

                // Scatter head gradients back into full-width matrices.
                for (i, row) in (r0..r1).enumerate() {
                    dq.row_mut(row)[c0..c1].copy_from_slice(sc.d_qh.row(i));
                    dk_mat.row_mut(row)[c0..c1].copy_from_slice(sc.d_kh.row(i));
                    dv.row_mut(row)[c0..c1].copy_from_slice(sc.d_vh.row(i));
                }
            }
        }

        // q = x Wq etc.
        c.x.t_matmul_into(&dq, &mut sc.acc);
        self.grad_wq.add_assign(&sc.acc);
        c.x.t_matmul_into(&dk_mat, &mut sc.acc);
        self.grad_wk.add_assign(&sc.acc);
        c.x.t_matmul_into(&dv, &mut sc.acc);
        self.grad_wv.add_assign(&sc.acc);
        let mut dx = dq.matmul_t(&self.wq);
        dk_mat.matmul_t_into(&self.wk, &mut sc.acc);
        dx.add_assign(&sc.acc);
        dv.matmul_t_into(&self.wv, &mut sc.acc);
        dx.add_assign(&sc.acc);
        dx
    }

    fn params(&mut self) -> Vec<ParamRef<'_>> {
        vec![
            ParamRef {
                name: "attn.wq",
                value: &mut self.wq,
                grad: &mut self.grad_wq,
            },
            ParamRef {
                name: "attn.wk",
                value: &mut self.wk,
                grad: &mut self.grad_wk,
            },
            ParamRef {
                name: "attn.wv",
                value: &mut self.wv,
                grad: &mut self.grad_wv,
            },
            ParamRef {
                name: "attn.wo",
                value: &mut self.wo,
                grad: &mut self.grad_wo,
            },
        ]
    }

    fn pending_activations(&self) -> usize {
        self.cache.len()
    }

    fn clear_caches(&mut self) {
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::testutil::check_input_gradient;

    #[test]
    #[should_panic(expected = "divisible by heads")]
    fn indivisible_heads_panics() {
        let _ = MultiHeadAttention::new(6, 4, 4, &mut SeedStream::new(0));
    }

    #[test]
    fn causal_softmax_rows_sum_to_one_and_mask_future() {
        let scores = Matrix::from_fn(4, 4, |r, c| (r + c) as f32 * 0.1);
        let a = MultiHeadAttention::causal_softmax(&scores);
        for i in 0..4 {
            let row_sum: f32 = a.row(i).iter().sum();
            assert!((row_sum - 1.0).abs() < 1e-5);
            for j in (i + 1)..4 {
                assert_eq!(a[(i, j)], 0.0, "future position ({i},{j}) not masked");
            }
        }
    }

    #[test]
    fn forward_shape_preserved() {
        let mut rng = SeedStream::new(1);
        let mut attn = MultiHeadAttention::new(8, 2, 4, &mut rng);
        let x = rng.uniform_matrix(8, 8, 0.5); // 2 sequences of length 4
        let y = attn.forward(&x);
        assert_eq!(y.shape(), (8, 8));
    }

    #[test]
    fn first_position_attends_only_to_itself() {
        // With causal masking, output at position 0 is v[0] * Wo regardless
        // of other positions.
        let mut rng = SeedStream::new(2);
        let mut attn = MultiHeadAttention::new(4, 1, 3, &mut rng);
        let x1 = rng.uniform_matrix(3, 4, 0.5);
        let mut x2 = x1.clone();
        // Perturb positions 1, 2: output row 0 must not change.
        for c in 0..4 {
            x2[(1, c)] += 1.0;
            x2[(2, c)] -= 1.0;
        }
        let y1 = attn.forward(&x1);
        let y2 = attn.forward(&x2);
        for c in 0..4 {
            assert!((y1[(0, c)] - y2[(0, c)]).abs() < 1e-6);
        }
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        check_input_gradient(
            || MultiHeadAttention::new(4, 2, 3, &mut SeedStream::new(33)),
            3,
            4,
            3e-2,
        );
    }

    #[test]
    fn weight_gradients_match_finite_difference() {
        let mut rng = SeedStream::new(8);
        let x = rng.uniform_matrix(4, 4, 0.5); // one sequence of length 4
        let probe = rng.uniform_matrix(4, 4, 1.0);
        let make = || MultiHeadAttention::new(4, 2, 4, &mut SeedStream::new(55));
        let mut layer = make();
        layer.forward(&x);
        layer.backward(&probe);
        // Check a few entries of each weight gradient.
        for (pi, name) in ["attn.wq", "attn.wk", "attn.wv", "attn.wo"]
            .iter()
            .enumerate()
        {
            let analytic = layer.params()[pi].grad.clone();
            for idx in [0usize, 7, 15] {
                let perturb = |delta: f32| {
                    let mut l = make();
                    l.params()[pi].value.as_mut_slice()[idx] += delta;
                    l.forward(&x).dot(&probe)
                };
                let eps = 1e-3;
                let numeric = (perturb(eps) - perturb(-eps)) / (2.0 * eps);
                let got = analytic.as_slice()[idx];
                assert!(
                    (numeric - got).abs() < 3e-2 * (1.0 + numeric.abs()),
                    "{name}[{idx}]: numeric {numeric} vs analytic {got}"
                );
            }
        }
    }

    #[test]
    fn fifo_cache_supports_pipelined_microbatches() {
        let mut rng = SeedStream::new(3);
        let mut attn = MultiHeadAttention::new(4, 1, 2, &mut rng);
        let x1 = rng.uniform_matrix(2, 4, 0.5);
        let x2 = rng.uniform_matrix(2, 4, 0.5);
        let y1 = attn.forward(&x1);
        let _y2 = attn.forward(&x2);
        assert_eq!(attn.pending_activations(), 2);
        // Backward for x1 first: compare against a fresh layer doing only x1.
        let mut fresh = MultiHeadAttention::new(4, 1, 2, &mut SeedStream::new(3));
        // Copy weights so both layers are identical.
        for (dst, src) in fresh.params().into_iter().zip(attn.params()) {
            *dst.value = src.value.clone();
        }
        let y1_fresh = fresh.forward(&x1);
        assert!(y1.sub(&y1_fresh).max_abs() < 1e-6);
        let g = Matrix::full(2, 4, 1.0);
        let dx = attn.backward(&g);
        let dx_fresh = fresh.backward(&g);
        assert!(dx.sub(&dx_fresh).max_abs() < 1e-6);
    }
}
