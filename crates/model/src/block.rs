//! The Megatron-LM transformer block (paper Fig. 2).

use crate::{Dropout, Gelu, Layer, LayerNorm, Linear, MultiHeadAttention, ParamRef};
use opt_tensor::{Matrix, SeedStream};
use std::collections::VecDeque;

/// One transformer layer with pre-norm residual structure, matching the
/// paper's Fig. 2:
///
/// ```text
/// x ── LN ── Attention ── Dropout ──(+)── LN ── MLP(H→4H→H, GeLU) ── Dropout ──(+)── y
/// └──────────────────────────────────┘ └──────────────────────────────────────────┘
/// ```
pub struct TransformerBlock {
    ln1: LayerNorm,
    attn: MultiHeadAttention,
    drop1: Dropout,
    ln2: LayerNorm,
    fc1: Linear,
    gelu: Gelu,
    fc2: Linear,
    drop2: Dropout,
    /// Number of in-flight micro-batches (for the pipelining contract).
    in_flight: VecDeque<()>,
}

impl std::fmt::Debug for TransformerBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TransformerBlock(hidden={})", self.fc1.in_dim())
    }
}

impl TransformerBlock {
    /// Creates a block with `hidden` features, `heads` attention heads and
    /// sequences of length `seq_len`. `dropout_p` is 0 in reproduction
    /// experiments (determinism); the layers exist to match the structure.
    pub fn new(
        hidden: usize,
        heads: usize,
        seq_len: usize,
        dropout_p: f32,
        rng: &mut SeedStream,
    ) -> Self {
        Self {
            ln1: LayerNorm::new(hidden),
            attn: MultiHeadAttention::new(hidden, heads, seq_len, rng),
            drop1: Dropout::new(dropout_p, rng.fork(1).uniform(1.0).to_bits() as u64),
            ln2: LayerNorm::new(hidden),
            fc1: Linear::new(hidden, 4 * hidden, rng),
            gelu: Gelu::new(),
            fc2: Linear::new(4 * hidden, hidden, rng),
            drop2: Dropout::new(dropout_p, rng.fork(2).uniform(1.0).to_bits() as u64),
            in_flight: VecDeque::new(),
        }
    }

    /// Switches dropout between train and eval behaviour.
    pub fn set_train(&mut self, train: bool) {
        self.drop1.set_train(train);
        self.drop2.set_train(train);
    }
}

impl Layer for TransformerBlock {
    fn forward(&mut self, x: &Matrix) -> Matrix {
        // Attention sub-block with residual.
        let h = self.ln1.forward(x);
        let h = self.attn.forward(&h);
        let h = self.drop1.forward(&h);
        let x2 = x.add(&h);
        // MLP sub-block with residual.
        let m = self.ln2.forward(&x2);
        let m = self.fc1.forward(&m);
        let m = self.gelu.forward(&m);
        let m = self.fc2.forward(&m);
        let m = self.drop2.forward(&m);
        let y = x2.add(&m);
        self.in_flight.push_back(());
        y
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        self.in_flight
            .pop_front()
            .expect("TransformerBlock::backward without forward");
        // y = x2 + drop2(fc2(gelu(fc1(ln2(x2)))))
        let dm = self.drop2.backward(grad_out);
        let dm = self.fc2.backward(&dm);
        let dm = self.gelu.backward(&dm);
        let dm = self.fc1.backward(&dm);
        let dm = self.ln2.backward(&dm);
        let dx2 = grad_out.add(&dm);
        // x2 = x + drop1(attn(ln1(x)))
        let dh = self.drop1.backward(&dx2);
        let dh = self.attn.backward(&dh);
        let dh = self.ln1.backward(&dh);
        dx2.add(&dh)
    }

    fn params(&mut self) -> Vec<ParamRef<'_>> {
        let mut out = Vec::new();
        out.extend(self.ln1.params());
        out.extend(self.attn.params());
        out.extend(self.ln2.params());
        out.extend(self.fc1.params());
        out.extend(self.fc2.params());
        out
    }

    fn pending_activations(&self) -> usize {
        self.in_flight.len()
    }

    fn clear_caches(&mut self) {
        self.in_flight.clear();
        self.ln1.clear_caches();
        self.attn.clear_caches();
        self.drop1.clear_caches();
        self.ln2.clear_caches();
        self.fc1.clear_caches();
        self.gelu.clear_caches();
        self.fc2.clear_caches();
        self.drop2.clear_caches();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::testutil::check_input_gradient;

    fn block(seed: u64) -> TransformerBlock {
        TransformerBlock::new(4, 2, 3, 0.0, &mut SeedStream::new(seed))
    }

    #[test]
    fn forward_preserves_shape() {
        let mut b = block(1);
        let mut rng = SeedStream::new(2);
        let x = rng.uniform_matrix(6, 4, 0.5); // two sequences of length 3
        assert_eq!(b.forward(&x).shape(), (6, 4));
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        check_input_gradient(|| block(77), 3, 4, 5e-2);
    }

    #[test]
    fn param_count_matches_formula() {
        let mut b = block(1);
        // 2 LN (2*2*h) + attention (4 h^2) + fc1 (h*4h + 4h) + fc2 (4h*h + h)
        let h = 4;
        let expect = 2 * 2 * h + 4 * h * h + (h * 4 * h + 4 * h) + (4 * h * h + h);
        assert_eq!(b.param_count(), expect);
    }

    #[test]
    fn residual_path_dominates_at_init() {
        // With Xavier init and LayerNorm, output stays in the same
        // magnitude range as input (no explosion), a sanity check for
        // trainability.
        let mut b = block(3);
        let mut rng = SeedStream::new(4);
        let x = rng.uniform_matrix(6, 4, 1.0);
        let y = b.forward(&x);
        assert!(y.norm() < 10.0 * x.norm());
        assert!(y.norm() > 0.1 * x.norm());
    }

    #[test]
    fn two_microbatches_backprop_in_fifo_order() {
        let mut b1 = block(9);
        let mut b2 = block(9);
        let mut rng = SeedStream::new(5);
        let xa = rng.uniform_matrix(3, 4, 0.5);
        let xb = rng.uniform_matrix(3, 4, 0.5);
        let g = Matrix::full(3, 4, 1.0);
        // b1: interleaved (forward a, forward b, backward a, backward b)
        b1.forward(&xa);
        b1.forward(&xb);
        let da1 = b1.backward(&g);
        let db1 = b1.backward(&g);
        // b2: sequential
        b2.forward(&xa);
        let da2 = b2.backward(&g);
        b2.forward(&xb);
        let db2 = b2.backward(&g);
        assert!(da1.sub(&da2).max_abs() < 1e-5);
        assert!(db1.sub(&db2).max_abs() < 1e-5);
    }

    #[test]
    fn zero_grad_resets_all_params() {
        let mut b = block(11);
        let mut rng = SeedStream::new(6);
        let x = rng.uniform_matrix(3, 4, 0.5);
        b.forward(&x);
        b.backward(&Matrix::full(3, 4, 1.0));
        assert!(b.params().iter().any(|p| p.grad.norm() > 0.0));
        b.zero_grad();
        assert!(b.params().iter().all(|p| p.grad.norm() == 0.0));
    }
}
