//! GPT model configurations, including the paper's evaluation zoo.

use serde::{Deserialize, Serialize};

/// Configuration of a GPT-style model.
///
/// Two roles:
///
/// * **Numerical role** — small configs ([`GptConfig::tiny`],
///   [`GptConfig::small`]) instantiate real trainable models via
///   [`crate::Stage::build_pipeline`].
/// * **Analytic role** — paper-scale configs ([`GptConfig::gpt_2_5b`] etc.)
///   are used by the performance simulator to size communication volumes
///   via [`GptConfig::param_count`] and
///   [`GptConfig::activation_elems_per_microbatch`]; they are never
///   instantiated as real tensors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GptConfig {
    /// Human-readable name (e.g. `"GPT-8.3B"`).
    pub name: String,
    /// Number of transformer layers.
    pub n_layers: usize,
    /// Hidden dimensionality.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Sequence length.
    pub seq_len: usize,
}

impl GptConfig {
    /// A tiny trainable config for unit tests (vocab 32, hidden 16,
    /// 4 layers — one per pipeline stage at PP=4).
    pub fn tiny() -> Self {
        Self {
            name: "GPT-tiny".into(),
            n_layers: 4,
            hidden: 16,
            heads: 2,
            vocab: 32,
            seq_len: 8,
        }
    }

    /// A small trainable config for quality experiments (the "GPT" of the
    /// numerical substrate: big enough to show compression error effects,
    /// small enough to pretrain in seconds on CPU).
    pub fn small() -> Self {
        Self {
            name: "GPT-small".into(),
            n_layers: 4,
            hidden: 32,
            heads: 4,
            vocab: 64,
            seq_len: 16,
        }
    }

    /// The paper's GPT-2.5B (Table 1): 52 layers, hidden 1920.
    pub fn gpt_2_5b() -> Self {
        Self {
            name: "GPT-2.5B".into(),
            n_layers: 52,
            hidden: 1920,
            heads: 24,
            vocab: 51_200,
            seq_len: 1024,
        }
    }

    /// The paper's GPT-8.3B (Table 1): 72 layers, hidden 3072.
    pub fn gpt_8_3b() -> Self {
        Self {
            name: "GPT-8.3B".into(),
            n_layers: 72,
            hidden: 3072,
            heads: 24,
            vocab: 51_200,
            seq_len: 1024,
        }
    }

    /// The paper's GPT-9.2B (Fig. 14): 80 layers, hidden 3072, chosen so
    /// layers divide evenly into up to 16 pipeline stages.
    pub fn gpt_9_2b() -> Self {
        Self {
            name: "GPT-9.2B".into(),
            n_layers: 80,
            hidden: 3072,
            heads: 24,
            vocab: 51_200,
            seq_len: 1024,
        }
    }

    /// A ~39B intermediate model for the Fig. 16 scalability sweep
    /// (48 layers, hidden 8192 — Megatron-style scaling).
    pub fn gpt_39b() -> Self {
        Self {
            name: "GPT-39B".into(),
            n_layers: 48,
            hidden: 8192,
            heads: 64,
            vocab: 51_200,
            seq_len: 1024,
        }
    }

    /// GPT-3 175B (Fig. 16 endpoint): 96 layers, hidden 12288.
    pub fn gpt_175b() -> Self {
        Self {
            name: "GPT-175B".into(),
            n_layers: 96,
            hidden: 12_288,
            heads: 96,
            vocab: 51_200,
            seq_len: 2048,
        }
    }

    /// The paper's evaluation zoo for the Fig. 16 scalability experiment.
    pub fn scalability_zoo() -> Vec<GptConfig> {
        vec![
            Self::gpt_2_5b(),
            Self::gpt_8_3b(),
            Self::gpt_39b(),
            Self::gpt_175b(),
        ]
    }

    /// Analytic parameter count using the standard Megatron accounting:
    /// `12 l h^2 + 13 l h + (V + L) h`.
    pub fn param_count(&self) -> u64 {
        let h = self.hidden as u64;
        let l = self.n_layers as u64;
        let v = self.vocab as u64;
        let s = self.seq_len as u64;
        12 * l * h * h + 13 * l * h + (v + s) * h
    }

    /// Parameters of the transformer layers resident on one pipeline stage
    /// when the model is split into `pp` equal stages (embedding excluded).
    pub fn layer_params_per_stage(&self, pp: usize) -> u64 {
        let h = self.hidden as u64;
        let layers_per_stage = (self.n_layers as u64).div_ceil(pp as u64);
        layers_per_stage * (12 * h * h + 13 * h)
    }

    /// Parameters of the shared embedding table (the EMB-sync volume).
    pub fn embedding_params(&self) -> u64 {
        (self.vocab * self.hidden) as u64
    }

    /// Activation elements crossing an inter-stage boundary for one
    /// micro-batch: `micro_batch x seq_len x hidden`.
    pub fn activation_elems_per_microbatch(&self, micro_batch: usize) -> u64 {
        (micro_batch * self.seq_len * self.hidden) as u64
    }

    /// Number of layers assigned to stage `stage` of `pp` total (front
    /// stages take the remainder, matching Megatron's default split).
    pub fn layers_on_stage(&self, stage: usize, pp: usize) -> usize {
        assert!(stage < pp, "stage index out of range");
        let base = self.n_layers / pp;
        let extra = self.n_layers % pp;
        base + usize::from(stage < extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_param_counts_are_in_band() {
        // The paper names its models by rounded parameter counts; our
        // analytic counts must land within 10 % of the nameplate.
        let cases = [
            (GptConfig::gpt_2_5b(), 2.5e9),
            (GptConfig::gpt_8_3b(), 8.3e9),
            (GptConfig::gpt_9_2b(), 9.2e9),
            (GptConfig::gpt_175b(), 175e9),
        ];
        for (cfg, nameplate) in cases {
            let count = cfg.param_count() as f64;
            let rel = (count - nameplate).abs() / nameplate;
            assert!(
                rel < 0.10,
                "{}: {count:.3e} vs {nameplate:.3e} ({rel:.2})",
                cfg.name
            );
        }
    }

    #[test]
    fn layers_on_stage_partitions_all_layers() {
        let cfg = GptConfig::gpt_2_5b(); // 52 layers
        for pp in [1usize, 2, 4, 8] {
            let total: usize = (0..pp).map(|s| cfg.layers_on_stage(s, pp)).sum();
            assert_eq!(total, 52, "pp={pp}");
        }
    }

    #[test]
    fn uneven_split_puts_extra_layers_up_front() {
        let cfg = GptConfig {
            n_layers: 10,
            ..GptConfig::tiny()
        };
        let per: Vec<_> = (0..4).map(|s| cfg.layers_on_stage(s, 4)).collect();
        assert_eq!(per, vec![3, 3, 2, 2]);
    }

    #[test]
    fn activation_volume_formula() {
        let cfg = GptConfig::gpt_2_5b();
        // micro-batch 8 (paper Table 1): 8 * 1024 * 1920 elements
        assert_eq!(cfg.activation_elems_per_microbatch(8), 8 * 1024 * 1920);
    }

    #[test]
    fn bigger_models_have_more_params() {
        let zoo = GptConfig::scalability_zoo();
        for w in zoo.windows(2) {
            assert!(w[0].param_count() < w[1].param_count());
        }
    }

    #[test]
    fn embedding_params_match_vocab_times_hidden() {
        let cfg = GptConfig::gpt_8_3b();
        assert_eq!(cfg.embedding_params(), 51_200 * 3072);
    }
}
