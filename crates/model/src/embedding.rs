//! Token + positional embedding with tied output projection.
//!
//! In GPT pretraining the same embedding table converts tokens to vectors
//! at the input *and* converts the final hidden states back to vocabulary
//! logits at the output. Under pipeline parallelism the first and last
//! stages each hold a replica of the table, and their gradients must be
//! synchronized every iteration — the "EMB Sync" all-reduce whose fusion
//! is the paper's §6 contribution.

use opt_tensor::{Matrix, SeedStream};
use std::collections::VecDeque;

/// A replica of the shared embedding: token table (`vocab x hidden`) plus a
/// learned positional table (`seq_len x hidden`).
///
/// The first pipeline stage calls [`Embedding::lookup`]/[`Embedding::backward_lookup`];
/// the last stage calls [`Embedding::project`]/[`Embedding::backward_project`]
/// on its own replica. Both accumulate into [`Embedding::grad`], which the
/// runtime all-reduces (separately or fused, §6).
#[derive(Debug)]
pub struct Embedding {
    table: Matrix,
    pos: Matrix,
    grad_table: Matrix,
    grad_pos: Matrix,
    seq_len: usize,
    lookup_cache: VecDeque<Vec<usize>>,
    project_cache: VecDeque<Matrix>,
}

impl Embedding {
    /// Creates an embedding for `vocab` tokens, `hidden` features and
    /// sequences of length `seq_len`, initialized N(0, 0.02) as in GPT-2.
    pub fn new(vocab: usize, hidden: usize, seq_len: usize, rng: &mut SeedStream) -> Self {
        Self {
            table: rng.normal_matrix(vocab, hidden, 0.02),
            pos: rng.normal_matrix(seq_len, hidden, 0.02),
            grad_table: Matrix::zeros(vocab, hidden),
            grad_pos: Matrix::zeros(seq_len, hidden),
            seq_len,
            lookup_cache: VecDeque::new(),
            project_cache: VecDeque::new(),
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.table.rows()
    }

    /// Hidden dimensionality.
    pub fn hidden(&self) -> usize {
        self.table.cols()
    }

    /// The token-table parameter (read access for replication/tests).
    pub fn table(&self) -> &Matrix {
        &self.table
    }

    /// Mutable token-table access (used to replicate the table across the
    /// first/last stage at initialization, as Megatron does).
    pub fn table_mut(&mut self) -> &mut Matrix {
        &mut self.table
    }

    /// Accumulated token-table gradient (the tensor EMB sync all-reduces).
    pub fn grad(&self) -> &Matrix {
        &self.grad_table
    }

    /// Replaces the token-table gradient (after synchronization).
    ///
    /// # Panics
    ///
    /// Panics if the shape differs from the table.
    pub fn set_grad(&mut self, grad: Matrix) {
        assert_eq!(
            grad.shape(),
            self.table.shape(),
            "embedding grad shape mismatch"
        );
        self.grad_table = grad;
    }

    /// Positional-table parameter and gradient, `(seq_len x hidden)`.
    pub fn pos_param(&mut self) -> (&mut Matrix, &mut Matrix) {
        (&mut self.pos, &mut self.grad_pos)
    }

    /// Mutable (table, grad) pair for the optimizer step.
    pub fn table_param(&mut self) -> (&mut Matrix, &mut Matrix) {
        (&mut self.table, &mut self.grad_table)
    }

    /// Both parameter pairs at once: `[(table, grad_table), (pos, grad_pos)]`.
    /// Needed when a caller must hold mutable references to both
    /// simultaneously (disjoint-field split).
    #[allow(clippy::type_complexity)]
    pub fn both_params(&mut self) -> [(&mut Matrix, &mut Matrix); 2] {
        [
            (&mut self.table, &mut self.grad_table),
            (&mut self.pos, &mut self.grad_pos),
        ]
    }

    /// Total scalar parameters (token + positional tables).
    pub fn param_count(&self) -> usize {
        self.table.len() + self.pos.len()
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.grad_table.fill_zero();
        self.grad_pos.fill_zero();
    }

    /// Input-side forward: maps tokens (grouped in sequences of `seq_len`)
    /// to `(tokens.len() x hidden)` vectors, adding positional embeddings.
    ///
    /// # Panics
    ///
    /// Panics if `tokens.len()` is not a multiple of `seq_len` or a token
    /// id is out of range.
    pub fn lookup(&mut self, tokens: &[usize]) -> Matrix {
        assert!(
            tokens.len().is_multiple_of(self.seq_len),
            "token count {} not a multiple of seq_len {}",
            tokens.len(),
            self.seq_len
        );
        let mut out = Matrix::zeros(tokens.len(), self.hidden());
        for (i, &t) in tokens.iter().enumerate() {
            assert!(t < self.vocab(), "token id {t} out of range");
            let p = i % self.seq_len;
            for c in 0..self.hidden() {
                out[(i, c)] = self.table[(t, c)] + self.pos[(p, c)];
            }
        }
        self.lookup_cache.push_back(tokens.to_vec());
        out
    }

    /// Input-side backward: scatter-adds `grad` into the token and
    /// positional gradients.
    ///
    /// # Panics
    ///
    /// Panics if no lookup is cached.
    pub fn backward_lookup(&mut self, grad: &Matrix) {
        let tokens = self
            .lookup_cache
            .pop_front()
            .expect("backward_lookup without lookup");
        assert_eq!(grad.rows(), tokens.len(), "lookup grad row mismatch");
        for (i, &t) in tokens.iter().enumerate() {
            let p = i % self.seq_len;
            for c in 0..grad.cols() {
                self.grad_table[(t, c)] += grad[(i, c)];
                self.grad_pos[(p, c)] += grad[(i, c)];
            }
        }
    }

    /// Output-side forward (tied weights): logits = `hidden_states * table^T`.
    pub fn project(&mut self, hidden_states: &Matrix) -> Matrix {
        let logits = hidden_states.matmul_t(&self.table);
        self.project_cache.push_back(hidden_states.clone());
        logits
    }

    /// Output-side backward: accumulates the table gradient from the
    /// logits gradient and returns the gradient w.r.t. the hidden states.
    ///
    /// # Panics
    ///
    /// Panics if no projection is cached.
    pub fn backward_project(&mut self, grad_logits: &Matrix) -> Matrix {
        let h = self
            .project_cache
            .pop_front()
            .expect("backward_project without project");
        // logits = h * T^T  =>  dT = dLogits^T * h, dh = dLogits * T.
        self.grad_table.add_assign(&grad_logits.t_matmul(&h));
        grad_logits.matmul(&self.table)
    }

    /// Outstanding cached activations (both sides).
    pub fn pending_activations(&self) -> usize {
        self.lookup_cache.len() + self.project_cache.len()
    }

    /// Drops all cached activations (after evaluation-only forwards).
    pub fn clear_caches(&mut self) {
        self.lookup_cache.clear();
        self.project_cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emb() -> Embedding {
        Embedding::new(10, 4, 2, &mut SeedStream::new(1))
    }

    #[test]
    fn lookup_returns_table_plus_pos_rows() {
        let mut e = emb();
        let out = e.lookup(&[3, 7]);
        for c in 0..4 {
            assert_eq!(out[(0, c)], e.table[(3, c)] + e.pos[(0, c)]);
            assert_eq!(out[(1, c)], e.table[(7, c)] + e.pos[(1, c)]);
        }
    }

    #[test]
    fn backward_lookup_scatter_adds() {
        let mut e = emb();
        e.lookup(&[2, 2]); // same token twice
        let g = Matrix::full(2, 4, 1.0);
        e.backward_lookup(&g);
        for c in 0..4 {
            assert_eq!(e.grad()[(2, c)], 2.0); // both rows accumulate
            assert_eq!(e.grad()[(0, c)], 0.0);
        }
    }

    #[test]
    fn project_is_table_transpose_matmul() {
        let mut e = emb();
        let h = Matrix::full(2, 4, 1.0);
        let logits = e.project(&h);
        assert_eq!(logits.shape(), (2, 10));
        let expect: f32 = (0..4).map(|c| e.table[(5, c)]).sum();
        assert!((logits[(0, 5)] - expect).abs() < 1e-6);
    }

    #[test]
    fn backward_project_gradients_match_finite_difference() {
        let mut rng = SeedStream::new(4);
        let h = rng.uniform_matrix(2, 4, 0.5);
        let probe = rng.uniform_matrix(2, 10, 1.0);
        let mut e = emb();
        e.project(&h);
        let dh = e.backward_project(&probe);
        let eps = 1e-3;
        // d loss / d h[0,1]
        let fd = |delta: f32| {
            let mut e2 = emb();
            let mut hp = h.clone();
            hp[(0, 1)] += delta;
            e2.project(&hp).dot(&probe)
        };
        let numeric = (fd(eps) - fd(-eps)) / (2.0 * eps);
        assert!((numeric - dh[(0, 1)]).abs() < 1e-2);
        // d loss / d table[3,2]
        let fd_t = |delta: f32| {
            let mut e2 = emb();
            e2.table_mut()[(3, 2)] += delta;
            e2.project(&h).dot(&probe)
        };
        let numeric_t = (fd_t(eps) - fd_t(-eps)) / (2.0 * eps);
        assert!((numeric_t - e.grad()[(3, 2)]).abs() < 1e-2);
    }

    #[test]
    fn tied_gradients_accumulate_from_both_sides() {
        // A single replica used for both lookup and projection (1-stage
        // pipeline) accumulates gradient from both paths.
        let mut e = emb();
        let x = e.lookup(&[1, 2]);
        let logits = e.project(&x);
        let g = Matrix::full(logits.rows(), logits.cols(), 0.1);
        let _dh = e.backward_project(&g);
        let before = e.grad().clone();
        e.backward_lookup(&Matrix::full(2, 4, 0.1));
        // Lookup backward must add on top of projection backward.
        assert!(e.grad().sub(&before).norm() > 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_token_panics() {
        emb().lookup(&[10, 0]);
    }

    #[test]
    fn zero_grad_clears_both_tables() {
        let mut e = emb();
        e.lookup(&[0, 1]);
        e.backward_lookup(&Matrix::full(2, 4, 1.0));
        e.zero_grad();
        assert_eq!(e.grad().norm(), 0.0);
    }
}
