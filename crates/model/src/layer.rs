//! The [`Layer`] trait and parameter references.

use opt_tensor::Matrix;

/// A named reference to one parameter tensor and its gradient accumulator.
///
/// The optimizer steps through these; the data-parallel runtime all-reduces
/// the `grad` side; compression operates on `grad` matrices one layer at a
/// time (as PowerSGD does).
#[derive(Debug)]
pub struct ParamRef<'a> {
    /// Stable name for debugging and tests (e.g. `"linear.w"`).
    pub name: &'static str,
    /// The parameter tensor.
    pub value: &'a mut Matrix,
    /// The gradient accumulated over the current mini-batch.
    pub grad: &'a mut Matrix,
}

/// A differentiable layer with FIFO activation caching.
///
/// # Pipelining contract
///
/// Under 1F1B scheduling a device may run several forward passes before
/// the first backward arrives. Implementations must therefore cache
/// per-call activations in a FIFO queue: `backward` consumes the cache of
/// the *oldest* outstanding `forward`. The 1F1B schedule guarantees
/// backward order equals forward order, so a queue (not a stack) is
/// correct.
///
/// # Gradient accumulation
///
/// `backward` *accumulates* into parameter gradients (`+=`) rather than
/// overwriting, because a mini-batch consists of several micro-batches
/// whose gradients sum (paper Eq. 7). Callers reset with
/// [`Layer::zero_grad`] after the optimizer step.
pub trait Layer: Send {
    /// Computes the layer output, caching whatever `backward` will need.
    fn forward(&mut self, x: &Matrix) -> Matrix;

    /// Consumes the oldest cached activation, accumulates parameter
    /// gradients, and returns the gradient with respect to the input.
    ///
    /// # Panics
    ///
    /// Panics if no forward activation is cached.
    fn backward(&mut self, grad_out: &Matrix) -> Matrix;

    /// Mutable references to every (parameter, gradient) pair.
    /// Stateless layers return an empty vector.
    fn params(&mut self) -> Vec<ParamRef<'_>>;

    /// Number of scalar parameters.
    fn param_count(&mut self) -> usize {
        self.params().iter().map(|p| p.value.len()).sum()
    }

    /// Zeroes all parameter gradients.
    fn zero_grad(&mut self) {
        for p in self.params() {
            p.grad.fill_zero();
        }
    }

    /// Number of forward activations cached but not yet consumed by
    /// backward. Zero at iteration boundaries in a correct schedule.
    fn pending_activations(&self) -> usize;

    /// Drops all cached activations without backpropagating. Used after
    /// evaluation-only forward passes (validation, zero-shot probes).
    fn clear_caches(&mut self);
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Finite-difference gradient checking shared by layer tests.

    use super::*;
    use opt_tensor::SeedStream;

    /// Checks `d loss / d input` of `layer` against central finite
    /// differences of the scalar loss `sum(forward(x) * probe)`.
    pub fn check_input_gradient<L: Layer>(
        layer_factory: impl Fn() -> L,
        rows: usize,
        cols: usize,
        tol: f32,
    ) {
        let mut rng = SeedStream::new(1234);
        let x = rng.uniform_matrix(rows, cols, 0.5);
        let mut probe_layer = layer_factory();
        let out = probe_layer.forward(&x);
        let probe = SeedStream::new(99).uniform_matrix(out.rows(), out.cols(), 1.0);
        let analytic = probe_layer.backward(&probe);

        let eps = 1e-3;
        for idx in [0usize, (rows * cols) / 2, rows * cols - 1] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let mut lp = layer_factory();
            let mut lm = layer_factory();
            let fp = lp.forward(&xp).dot(&probe);
            let fm = lm.forward(&xm).dot(&probe);
            let numeric = (fp - fm) / (2.0 * eps);
            let got = analytic.as_slice()[idx];
            assert!(
                (numeric - got).abs() <= tol * (1.0 + numeric.abs()),
                "grad mismatch at {idx}: numeric {numeric} vs analytic {got}"
            );
        }
    }
}
