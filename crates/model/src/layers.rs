//! Primitive layers: Linear, LayerNorm, GeLU, Dropout.

use crate::{Layer, ParamRef};
use opt_tensor::{xavier_uniform, Matrix, SeedStream};
use std::collections::VecDeque;

/// Fully-connected layer `y = x W + b`.
///
/// `W` is `in_dim x out_dim`; inputs are `(batch*seq) x in_dim`.
#[derive(Debug)]
pub struct Linear {
    w: Matrix,
    b: Matrix,
    grad_w: Matrix,
    grad_b: Matrix,
    cache: VecDeque<Matrix>,
    /// Weight-gradient GEMM scratch (fully overwritten each backward).
    scratch_gw: Matrix,
}

impl Linear {
    /// Creates a Xavier-initialized linear layer.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut SeedStream) -> Self {
        Self {
            w: xavier_uniform(rng, in_dim, out_dim),
            b: Matrix::zeros(1, out_dim),
            grad_w: Matrix::zeros(in_dim, out_dim),
            grad_b: Matrix::zeros(1, out_dim),
            cache: VecDeque::new(),
            scratch_gw: Matrix::default(),
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    /// Immutable access to the weight matrix (tests, probes).
    pub fn weight(&self) -> &Matrix {
        &self.w
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.w);
        y.add_row_broadcast_assign(&self.b);
        self.cache.push_back(x.clone());
        y
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let x = self
            .cache
            .pop_front()
            .expect("Linear::backward without forward");
        x.t_matmul_into(grad_out, &mut self.scratch_gw);
        self.grad_w.add_assign(&self.scratch_gw);
        self.grad_b.add_assign(&grad_out.col_sums());
        grad_out.matmul_t(&self.w)
    }

    fn params(&mut self) -> Vec<ParamRef<'_>> {
        vec![
            ParamRef {
                name: "linear.w",
                value: &mut self.w,
                grad: &mut self.grad_w,
            },
            ParamRef {
                name: "linear.b",
                value: &mut self.b,
                grad: &mut self.grad_b,
            },
        ]
    }

    fn pending_activations(&self) -> usize {
        self.cache.len()
    }

    fn clear_caches(&mut self) {
        self.cache.clear();
    }
}

/// Layer normalization over the feature (column) dimension with learned
/// gain/bias, as used before attention and MLP in Megatron's block (Fig. 2).
#[derive(Debug)]
pub struct LayerNorm {
    gamma: Matrix,
    beta: Matrix,
    grad_gamma: Matrix,
    grad_beta: Matrix,
    eps: f32,
    /// Cached (normalized input, 1/std per row).
    cache: VecDeque<(Matrix, Vec<f32>)>,
}

impl LayerNorm {
    /// Creates a layer norm over `dim` features (gamma=1, beta=0).
    pub fn new(dim: usize) -> Self {
        Self {
            gamma: Matrix::full(1, dim, 1.0),
            beta: Matrix::zeros(1, dim),
            grad_gamma: Matrix::zeros(1, dim),
            grad_beta: Matrix::zeros(1, dim),
            eps: 1e-5,
            cache: VecDeque::new(),
        }
    }
}

impl Layer for LayerNorm {
    fn forward(&mut self, x: &Matrix) -> Matrix {
        let (rows, cols) = x.shape();
        let mut xhat = Matrix::zeros(rows, cols);
        let mut inv_stds = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = x.row(r);
            let mean = row.iter().sum::<f32>() / cols as f32;
            let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
            let inv_std = 1.0 / (var + self.eps).sqrt();
            for (c, &v) in row.iter().enumerate() {
                xhat[(r, c)] = (v - mean) * inv_std;
            }
            inv_stds.push(inv_std);
        }
        let mut y = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                y[(r, c)] = xhat[(r, c)] * self.gamma[(0, c)] + self.beta[(0, c)];
            }
        }
        self.cache.push_back((xhat, inv_stds));
        y
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let (xhat, inv_stds) = self
            .cache
            .pop_front()
            .expect("LayerNorm::backward without forward");
        let (rows, cols) = grad_out.shape();
        let n = cols as f32;
        let mut dx = Matrix::zeros(rows, cols);
        for r in 0..rows {
            // dxhat = grad_out * gamma
            let mut dxhat = vec![0.0f32; cols];
            for c in 0..cols {
                let g = grad_out[(r, c)];
                dxhat[c] = g * self.gamma[(0, c)];
                self.grad_gamma[(0, c)] += g * xhat[(r, c)];
                self.grad_beta[(0, c)] += g;
            }
            let sum_dxhat: f32 = dxhat.iter().sum();
            let sum_dxhat_xhat: f32 = dxhat.iter().zip(xhat.row(r)).map(|(&d, &h)| d * h).sum();
            let inv_std = inv_stds[r];
            for c in 0..cols {
                dx[(r, c)] =
                    inv_std / n * (n * dxhat[c] - sum_dxhat - xhat[(r, c)] * sum_dxhat_xhat);
            }
        }
        dx
    }

    fn params(&mut self) -> Vec<ParamRef<'_>> {
        vec![
            ParamRef {
                name: "ln.gamma",
                value: &mut self.gamma,
                grad: &mut self.grad_gamma,
            },
            ParamRef {
                name: "ln.beta",
                value: &mut self.beta,
                grad: &mut self.grad_beta,
            },
        ]
    }

    fn pending_activations(&self) -> usize {
        self.cache.len()
    }

    fn clear_caches(&mut self) {
        self.cache.clear();
    }
}

/// GeLU activation (tanh approximation, as in GPT-2/Megatron).
#[derive(Debug, Default)]
pub struct Gelu {
    cache: VecDeque<Matrix>,
}

impl Gelu {
    /// Creates a GeLU activation layer.
    pub fn new() -> Self {
        Self::default()
    }

    fn gelu(x: f32) -> f32 {
        const C: f32 = 0.797_884_6; // sqrt(2/pi)
        0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
    }

    fn dgelu(x: f32) -> f32 {
        const C: f32 = 0.797_884_6;
        let x3 = 0.044715 * x * x * x;
        let t = (C * (x + x3)).tanh();
        let sech2 = 1.0 - t * t;
        0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044715 * x * x)
    }
}

impl Layer for Gelu {
    fn forward(&mut self, x: &Matrix) -> Matrix {
        self.cache.push_back(x.clone());
        x.map(Self::gelu)
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let x = self
            .cache
            .pop_front()
            .expect("Gelu::backward without forward");
        let dact = x.map(Self::dgelu);
        grad_out.hadamard(&dact)
    }

    fn params(&mut self) -> Vec<ParamRef<'_>> {
        Vec::new()
    }

    fn pending_activations(&self) -> usize {
        self.cache.len()
    }

    fn clear_caches(&mut self) {
        self.cache.clear();
    }
}

/// Inverted dropout with a deterministic seeded mask.
///
/// With `p = 0.0` (the default for reproduction experiments) it is exactly
/// the identity; the layer exists so the block structure matches the
/// paper's Fig. 2.
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    rng: SeedStream,
    train: bool,
    cache: VecDeque<Matrix>, // masks
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p < 1.0`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0, 1)");
        Self {
            p,
            rng: SeedStream::new(seed),
            train: true,
            cache: VecDeque::new(),
        }
    }

    /// Switches between training (masking) and evaluation (identity).
    pub fn set_train(&mut self, train: bool) {
        self.train = train;
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Matrix) -> Matrix {
        if !self.train || self.p == 0.0 {
            self.cache.push_back(Matrix::full(x.rows(), x.cols(), 1.0));
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let mask = Matrix::from_fn(x.rows(), x.cols(), |_, _| {
            if self.rng.unit() < keep {
                1.0 / keep
            } else {
                0.0
            }
        });
        let y = x.hadamard(&mask);
        self.cache.push_back(mask);
        y
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let mask = self
            .cache
            .pop_front()
            .expect("Dropout::backward without forward");
        grad_out.hadamard(&mask)
    }

    fn params(&mut self) -> Vec<ParamRef<'_>> {
        Vec::new()
    }

    fn pending_activations(&self) -> usize {
        self.cache.len()
    }

    fn clear_caches(&mut self) {
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::testutil::check_input_gradient;

    #[test]
    fn linear_forward_known_values() {
        let mut rng = SeedStream::new(0);
        let mut l = Linear::new(2, 2, &mut rng);
        // Overwrite with known weights.
        *l.params()[0].value = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]);
        *l.params()[1].value = Matrix::from_rows(&[&[0.5, -0.5]]);
        let y = l.forward(&Matrix::from_rows(&[&[3.0, 4.0]]));
        assert_eq!(y.as_slice(), &[3.5, 7.5]);
    }

    #[test]
    fn linear_input_gradient_matches_finite_difference() {
        check_input_gradient(|| Linear::new(4, 3, &mut SeedStream::new(5)), 2, 4, 1e-2);
    }

    #[test]
    fn linear_weight_gradient_matches_finite_difference() {
        let mut rng = SeedStream::new(7);
        let x = rng.uniform_matrix(3, 4, 0.5);
        let probe = rng.uniform_matrix(3, 2, 1.0);
        let make = || Linear::new(4, 2, &mut SeedStream::new(21));
        let mut layer = make();
        layer.forward(&x);
        layer.backward(&probe);
        let analytic = layer.params()[0].grad.clone();

        let eps = 1e-3;
        for idx in [0usize, 3, 7] {
            let perturb = |delta: f32| {
                let mut l = make();
                l.params()[0].value.as_mut_slice()[idx] += delta;
                l.forward(&x).dot(&probe)
            };
            let numeric = (perturb(eps) - perturb(-eps)) / (2.0 * eps);
            let got = analytic.as_slice()[idx];
            assert!(
                (numeric - got).abs() < 1e-2,
                "w grad {idx}: {numeric} vs {got}"
            );
        }
    }

    #[test]
    fn linear_fifo_cache_handles_two_in_flight() {
        let mut rng = SeedStream::new(1);
        let mut l = Linear::new(3, 3, &mut rng);
        let x1 = rng.uniform_matrix(2, 3, 1.0);
        let x2 = rng.uniform_matrix(2, 3, 1.0);
        l.forward(&x1);
        l.forward(&x2);
        assert_eq!(l.pending_activations(), 2);
        let g = Matrix::full(2, 3, 1.0);
        // First backward must use x1's cache: grad_w contribution x1^T g.
        let before = l.params()[0].grad.clone();
        l.backward(&g);
        let after = l.params()[0].grad.clone();
        let expect = x1.t_matmul(&g);
        assert!(after.sub(&before).sub(&expect).max_abs() < 1e-6);
        assert_eq!(l.pending_activations(), 1);
    }

    #[test]
    fn layernorm_output_is_normalized() {
        let mut ln = LayerNorm::new(8);
        let mut rng = SeedStream::new(2);
        let x = rng.uniform_matrix(4, 8, 5.0);
        let y = ln.forward(&x);
        for r in 0..4 {
            let row = y.row(r);
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-5, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {r} var {var}");
        }
    }

    #[test]
    fn layernorm_input_gradient_matches_finite_difference() {
        check_input_gradient(|| LayerNorm::new(6), 3, 6, 2e-2);
    }

    #[test]
    fn gelu_matches_reference_points() {
        // gelu(0) = 0, gelu(large) ~ large, gelu(-large) ~ 0.
        assert_eq!(Gelu::gelu(0.0), 0.0);
        assert!((Gelu::gelu(5.0) - 5.0).abs() < 1e-3);
        assert!(Gelu::gelu(-5.0).abs() < 1e-3);
        // Known value: gelu(1.0) ~ 0.8412
        assert!((Gelu::gelu(1.0) - 0.8412).abs() < 1e-3);
    }

    #[test]
    fn gelu_input_gradient_matches_finite_difference() {
        check_input_gradient(Gelu::new, 2, 5, 1e-2);
    }

    #[test]
    fn dropout_eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 0);
        d.set_train(false);
        let mut rng = SeedStream::new(3);
        let x = rng.uniform_matrix(3, 3, 1.0);
        assert_eq!(d.forward(&x), x);
    }

    #[test]
    fn dropout_train_mode_preserves_expectation() {
        let mut d = Dropout::new(0.3, 7);
        let x = Matrix::full(200, 50, 1.0);
        let y = d.forward(&x);
        // E[y] == 1 with inverted dropout.
        assert!((y.mean_all() - 1.0).abs() < 0.02, "mean {}", y.mean_all());
    }

    #[test]
    fn dropout_backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 11);
        let x = Matrix::full(4, 4, 1.0);
        let y = d.forward(&x);
        let g = d.backward(&Matrix::full(4, 4, 1.0));
        // Where forward dropped, backward must drop too.
        for (yv, gv) in y.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(*yv == 0.0, *gv == 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "backward without forward")]
    fn backward_without_forward_panics() {
        let mut g = Gelu::new();
        g.backward(&Matrix::zeros(1, 1));
    }
}
