//! `opt-model` — a GPT-style transformer with hand-written backprop.
//!
//! This crate replaces Megatron-LM's model zoo + PyTorch autograd in the
//! Optimus-CC reproduction. Writing the backward passes by hand gives the
//! trainer full control over *where* compression hooks into the gradient
//! stream — exactly what the paper did by patching Megatron-LM's
//! `p2p_communication.py` and `schedules.py`.
//!
//! Key pieces:
//!
//! * [`Linear`], [`LayerNorm`], [`Gelu`], [`Dropout`] — primitive layers
//!   implementing the [`Layer`] trait with FIFO activation caches so that
//!   multiple in-flight micro-batches (1F1B pipelining!) backpropagate
//!   correctly.
//! * [`MultiHeadAttention`] and [`TransformerBlock`] — the Megatron-LM
//!   layer structure of the paper's Fig. 2 (LN → attention → residual →
//!   LN → MLP(4h) → residual).
//! * [`Embedding`] — the *shared* input/output embedding whose gradient
//!   synchronization the paper's §6 fuses. The first pipeline stage uses
//!   [`Embedding::lookup`]; the last stage holds its own replica used via
//!   [`Embedding::project`] (tied softmax weights), creating the
//!   first↔last stage gradient dependency.
//! * [`Stage`] — a pipeline stage (a consecutive slice of the model)
//!   exposing forward/backward on hidden-state matrices, the unit the
//!   pipeline runtime schedules.
//! * [`GptConfig`] — configuration zoo with Megatron-consistent parameter
//!   counting (GPT-2.5B / 8.3B / 9.2B / 39B / 175B presets) used by the
//!   performance simulator to size communication volumes.
//! * [`Sgd`] / [`Adam`] — optimizers operating on [`ParamRef`]s.
//!
//! # Example
//!
//! ```
//! use opt_model::{GptConfig, Stage};
//!
//! let cfg = GptConfig::tiny();
//! let stages = Stage::build_pipeline(&cfg, 2, 0);
//! assert_eq!(stages.len(), 2);
//! assert!(stages[0].has_embedding());
//! assert!(stages[1].has_head());
//! ```

mod attention;
mod block;
mod config;
mod embedding;
mod layer;
mod layers;
mod loss;
mod optimizer;
mod stage;

pub use attention::MultiHeadAttention;
pub use block::TransformerBlock;
pub use config::GptConfig;
pub use embedding::Embedding;
pub use layer::{Layer, ParamRef};
pub use layers::{Dropout, Gelu, LayerNorm, Linear};
pub use loss::{cross_entropy, softmax_rows, LossOutput};
pub use optimizer::{Adam, Optimizer, Sgd};
pub use stage::Stage;
