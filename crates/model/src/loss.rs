//! Softmax cross-entropy loss for language modelling.

use opt_tensor::Matrix;

/// Row-wise softmax with max-subtraction for numerical stability.
///
/// # Example
///
/// ```
/// use opt_model::softmax_rows;
/// use opt_tensor::Matrix;
/// let p = softmax_rows(&Matrix::from_rows(&[&[0.0, 0.0]]));
/// assert!((p[(0, 0)] - 0.5).abs() < 1e-6);
/// ```
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let (rows, cols) = logits.shape();
    let mut out = Matrix::zeros(rows, cols);
    for r in 0..rows {
        let row = logits.row(r);
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let mut denom = 0.0;
        for (c, &v) in row.iter().enumerate() {
            let e = (v - max).exp();
            out[(r, c)] = e;
            denom += e;
        }
        for c in 0..cols {
            out[(r, c)] /= denom;
        }
    }
    out
}

/// Result of a cross-entropy evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct LossOutput {
    /// Mean negative log-likelihood over all rows.
    pub loss: f32,
    /// Gradient of the mean loss with respect to the logits.
    pub grad_logits: Matrix,
    /// Number of rows whose argmax equals the target (top-1 hits).
    pub correct: usize,
}

impl LossOutput {
    /// Perplexity `exp(loss)` — the paper's validation metric.
    pub fn perplexity(&self) -> f32 {
        self.loss.exp()
    }
}

/// Softmax cross-entropy between `logits` (`n x vocab`) and integer
/// `targets` (`n`), averaged over rows.
///
/// # Panics
///
/// Panics if `targets.len() != logits.rows()` or a target is out of range.
///
/// # Example
///
/// ```
/// use opt_model::cross_entropy;
/// use opt_tensor::Matrix;
/// let logits = Matrix::from_rows(&[&[10.0, -10.0]]);
/// let out = cross_entropy(&logits, &[0]);
/// assert!(out.loss < 1e-3);
/// assert_eq!(out.correct, 1);
/// ```
pub fn cross_entropy(logits: &Matrix, targets: &[usize]) -> LossOutput {
    assert_eq!(targets.len(), logits.rows(), "targets/logits row mismatch");
    let probs = softmax_rows(logits);
    let n = targets.len();
    let mut loss = 0.0;
    let mut correct = 0;
    let mut grad = probs.clone();
    let preds = probs.argmax_rows();
    for (r, &t) in targets.iter().enumerate() {
        assert!(t < logits.cols(), "target {t} out of vocab range");
        loss -= probs[(r, t)].max(1e-12).ln();
        grad[(r, t)] -= 1.0;
        if preds[r] == t {
            correct += 1;
        }
    }
    grad.scale_assign(1.0 / n as f32);
    LossOutput {
        loss: loss / n as f32,
        grad_logits: grad,
        correct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opt_tensor::SeedStream;

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = SeedStream::new(1);
        let logits = rng.uniform_matrix(5, 7, 3.0);
        let p = softmax_rows(&logits);
        for r in 0..5 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let b = a.map(|x| x + 100.0);
        assert!(softmax_rows(&a).sub(&softmax_rows(&b)).max_abs() < 1e-6);
    }

    #[test]
    fn uniform_logits_give_log_vocab_loss() {
        let logits = Matrix::zeros(4, 8);
        let out = cross_entropy(&logits, &[0, 1, 2, 3]);
        assert!((out.loss - (8.0f32).ln()).abs() < 1e-5);
        assert!((out.perplexity() - 8.0).abs() < 1e-3);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut rng = SeedStream::new(2);
        let logits = rng.uniform_matrix(3, 5, 1.0);
        let targets = [2usize, 0, 4];
        let out = cross_entropy(&logits, &targets);
        let eps = 1e-3;
        for idx in [0usize, 7, 14] {
            let mut lp = logits.clone();
            lp.as_mut_slice()[idx] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[idx] -= eps;
            let numeric = (cross_entropy(&lp, &targets).loss - cross_entropy(&lm, &targets).loss)
                / (2.0 * eps);
            let got = out.grad_logits.as_slice()[idx];
            assert!((numeric - got).abs() < 1e-3, "{idx}: {numeric} vs {got}");
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let mut rng = SeedStream::new(3);
        let logits = rng.uniform_matrix(4, 6, 2.0);
        let out = cross_entropy(&logits, &[1, 2, 3, 4]);
        for r in 0..4 {
            let s: f32 = out.grad_logits.row(r).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn correct_counts_argmax_hits() {
        let logits = Matrix::from_rows(&[&[5.0, 0.0], &[0.0, 5.0], &[5.0, 0.0]]);
        let out = cross_entropy(&logits, &[0, 1, 1]);
        assert_eq!(out.correct, 2);
    }

    #[test]
    #[should_panic(expected = "out of vocab range")]
    fn bad_target_panics() {
        cross_entropy(&Matrix::zeros(1, 3), &[3]);
    }
}
