//! Optimizers operating on [`ParamRef`] collections.

use crate::ParamRef;
use opt_tensor::{Matrix, Persist, PersistError, Reader, Writer};
use std::collections::HashMap;

/// An optimizer that consumes accumulated gradients and updates parameters.
///
/// State (momentum/Adam moments) is keyed by the order parameters are
/// presented, so callers must present the same parameter list every step —
/// which [`crate::Stage::params`]-ordered iteration guarantees.
pub trait Optimizer: Send {
    /// Applies one update step to every `(value, grad)` pair. Gradients
    /// are *not* zeroed; callers zero them afterwards.
    fn step(&mut self, params: &mut [ParamRef<'_>]);

    /// The learning rate currently in effect.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (for warmup/decay schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// SGD with optional momentum: `v = mu v + g; w -= lr v`.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: HashMap<usize, Matrix>,
}

impl Sgd {
    /// Creates plain SGD (`momentum = 0`).
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f32) -> Self {
        Self::with_momentum(lr, 0.0)
    }

    /// Creates SGD with momentum.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or `momentum` is outside `[0, 1)`.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Self {
            lr,
            momentum,
            velocity: HashMap::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [ParamRef<'_>]) {
        for (slot, p) in params.iter_mut().enumerate() {
            if self.momentum > 0.0 {
                let v = self
                    .velocity
                    .entry(slot)
                    .or_insert_with(|| Matrix::zeros(p.grad.rows(), p.grad.cols()));
                // Fused `v = mu*v + g` (one pass instead of scale + add;
                // same per-element operations, so bit-identical). The zip
                // would silently truncate on a shape drift, hence the
                // assert.
                debug_assert_eq!(v.shape(), p.grad.shape(), "stale velocity shape");
                for (vi, &g) in v.as_mut_slice().iter_mut().zip(p.grad.as_slice()) {
                    *vi = *vi * self.momentum + g;
                }
                p.value.axpy(-self.lr, v);
            } else {
                p.value.axpy(-self.lr, p.grad);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction — the optimizer used for GPT
/// pretraining in the paper's Megatron-LM setup.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
    m: HashMap<usize, Matrix>,
    v: HashMap<usize, Matrix>,
}

impl Adam {
    /// Creates Adam with the standard betas (0.9, 0.999).
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: HashMap::new(),
            v: HashMap::new(),
        }
    }
}

/// Serializes a slot-keyed moment map in sorted slot order (HashMap
/// iteration order is unstable; the checkpoint codec must not be).
fn persist_moments(map: &HashMap<usize, Matrix>, w: &mut Writer) {
    let mut slots: Vec<_> = map.keys().copied().collect();
    slots.sort_unstable();
    w.usize(slots.len());
    for slot in slots {
        w.usize(slot);
        map[&slot].persist(w);
    }
}

fn restore_moments(r: &mut Reader<'_>) -> Result<HashMap<usize, Matrix>, PersistError> {
    let n = r.checked_len(8)?;
    let mut map = HashMap::with_capacity(n);
    for _ in 0..n {
        let slot = r.usize()?;
        if map.insert(slot, Matrix::restore(r)?).is_some() {
            return Err(PersistError::Invalid {
                what: "duplicate optimizer moment slot",
            });
        }
    }
    Ok(map)
}

impl Persist for Adam {
    fn persist(&self, w: &mut Writer) {
        w.f32(self.lr);
        w.f32(self.beta1);
        w.f32(self.beta2);
        w.f32(self.eps);
        w.i32(self.t);
        persist_moments(&self.m, w);
        persist_moments(&self.v, w);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let lr = r.f32()?;
        if !lr.is_finite() || lr <= 0.0 {
            return Err(PersistError::Invalid {
                what: "Adam learning rate must be positive",
            });
        }
        Ok(Self {
            lr,
            beta1: r.f32()?,
            beta2: r.f32()?,
            eps: r.f32()?,
            t: r.i32()?,
            m: restore_moments(r)?,
            v: restore_moments(r)?,
        })
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [ParamRef<'_>]) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        for (slot, p) in params.iter_mut().enumerate() {
            let m = self
                .m
                .entry(slot)
                .or_insert_with(|| Matrix::zeros(p.grad.rows(), p.grad.cols()));
            let v = self
                .v
                .entry(slot)
                .or_insert_with(|| Matrix::zeros(p.grad.rows(), p.grad.cols()));
            // One fused zipped pass (no per-element bounds checks); the
            // per-element arithmetic is unchanged, so updates stay
            // bit-identical to the seed implementation. The zips would
            // silently truncate on a shape drift, hence the asserts.
            debug_assert_eq!(m.shape(), p.grad.shape(), "stale Adam m shape");
            debug_assert_eq!(v.shape(), p.grad.shape(), "stale Adam v shape");
            let moments = m.as_mut_slice().iter_mut().zip(v.as_mut_slice());
            let grads = p.value.as_mut_slice().iter_mut().zip(p.grad.as_slice());
            for ((w, &g), (mi, vi)) in grads.zip(moments) {
                let m_new = self.beta1 * *mi + (1.0 - self.beta1) * g;
                let v_new = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
                *mi = m_new;
                *vi = v_new;
                let mhat = m_new / bc1;
                let vhat = v_new / bc2;
                *w -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_step<O: Optimizer>(opt: &mut O, steps: usize) -> f32 {
        // Minimize f(w) = 0.5 * ||w||^2 starting from w = 3: grad = w.
        let mut w = Matrix::full(1, 1, 3.0);
        let mut g = Matrix::zeros(1, 1);
        for _ in 0..steps {
            g[(0, 0)] = w[(0, 0)];
            let mut params = vec![ParamRef {
                name: "w",
                value: &mut w,
                grad: &mut g,
            }];
            opt.step(&mut params);
        }
        w[(0, 0)]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let final_w = quadratic_step(&mut Sgd::new(0.1), 100);
        assert!(final_w.abs() < 1e-3, "w = {final_w}");
    }

    #[test]
    fn sgd_momentum_converges_on_quadratic() {
        let final_w = quadratic_step(&mut Sgd::with_momentum(0.05, 0.9), 200);
        assert!(final_w.abs() < 1e-2, "w = {final_w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let final_w = quadratic_step(&mut Adam::new(0.1), 300);
        assert!(final_w.abs() < 1e-2, "w = {final_w}");
    }

    #[test]
    fn sgd_single_step_is_lr_times_grad() {
        let mut opt = Sgd::new(0.5);
        let mut w = Matrix::full(1, 2, 1.0);
        let mut g = Matrix::from_rows(&[&[2.0, -4.0]]);
        let mut params = vec![ParamRef {
            name: "w",
            value: &mut w,
            grad: &mut g,
        }];
        opt.step(&mut params);
        assert_eq!(w.as_slice(), &[0.0, 3.0]);
    }

    #[test]
    fn adam_first_step_size_is_lr() {
        // With bias correction, the first Adam step is ~lr * sign(g).
        let mut opt = Adam::new(0.1);
        let mut w = Matrix::full(1, 1, 0.0);
        let mut g = Matrix::full(1, 1, 123.0);
        let mut params = vec![ParamRef {
            name: "w",
            value: &mut w,
            grad: &mut g,
        }];
        opt.step(&mut params);
        assert!((w[(0, 0)] + 0.1).abs() < 1e-4, "w = {}", w[(0, 0)]);
    }

    #[test]
    fn adam_state_roundtrip_is_bit_exact() {
        // Step an optimizer, persist it, and check the restored copy takes
        // identical future steps (moments + bias-correction counter).
        let mut opt = Adam::new(0.05);
        let mut w = Matrix::full(2, 2, 1.0);
        let mut g = Matrix::full(2, 2, 0.3);
        for _ in 0..3 {
            let mut params = vec![ParamRef {
                name: "w",
                value: &mut w,
                grad: &mut g,
            }];
            opt.step(&mut params);
        }
        let mut restored = Adam::from_bytes(&opt.to_bytes()).expect("roundtrip");
        let mut w2 = w.clone();
        let mut g2 = g.clone();
        for _ in 0..3 {
            let mut pa = vec![ParamRef {
                name: "w",
                value: &mut w,
                grad: &mut g,
            }];
            opt.step(&mut pa);
            let mut pb = vec![ParamRef {
                name: "w",
                value: &mut w2,
                grad: &mut g2,
            }];
            restored.step(&mut pb);
        }
        assert_eq!(w, w2, "restored Adam diverged from original");
    }

    #[test]
    fn adam_restore_rejects_bad_lr() {
        let mut bytes = Adam::new(0.1).to_bytes();
        bytes[..4].copy_from_slice(&0.0f32.to_bits().to_le_bytes());
        assert!(Adam::from_bytes(&bytes).is_err());
    }

    #[test]
    fn learning_rate_is_adjustable() {
        let mut opt = Sgd::new(0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn non_positive_lr_panics() {
        let _ = Sgd::new(0.0);
    }
}
