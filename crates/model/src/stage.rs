//! Pipeline stages: consecutive slices of a GPT model.

use crate::{Embedding, GptConfig, Layer, LayerNorm, ParamRef, TransformerBlock};
use opt_tensor::{Matrix, SeedStream};

/// One pipeline stage of a GPT model.
///
/// * The **first** stage owns the input [`Embedding`] (token + position).
/// * The **last** stage owns the final [`LayerNorm`] and a *replica* of the
///   embedding table used for the tied output projection. The two replicas
///   start identical and their gradients must be synchronized every
///   iteration — the traffic the paper's fused embedding synchronization
///   (§6) optimizes.
/// * A single-stage pipeline uses one table for both roles (no sync
///   needed), exactly like single-GPU training.
///
/// # Example
///
/// ```
/// use opt_model::{GptConfig, Stage};
/// let mut stages = Stage::build_pipeline(&GptConfig::tiny(), 2, 0);
/// let tokens = vec![1usize, 2, 3, 4, 5, 6, 7, 8];
/// let h0 = stages[0].forward_tokens(&tokens);
/// let logits = stages[1].forward_hidden(&h0);
/// assert_eq!(logits.cols(), 32); // vocab
/// ```
pub struct Stage {
    index: usize,
    n_stages: usize,
    embedding: Option<Embedding>,
    blocks: Vec<TransformerBlock>,
    final_ln: Option<LayerNorm>,
    head: Option<Embedding>,
}

impl std::fmt::Debug for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Stage({}/{}, blocks={}, embedding={}, head={})",
            self.index,
            self.n_stages,
            self.blocks.len(),
            self.embedding.is_some(),
            self.has_head()
        )
    }
}

impl Stage {
    /// Builds all `pp` stages of a pipeline for `cfg`, deterministically
    /// seeded. The first and last stages' embedding tables start identical
    /// (replicated initialization, as Megatron broadcasts them).
    ///
    /// # Panics
    ///
    /// Panics if `pp == 0` or `pp > cfg.n_layers`.
    pub fn build_pipeline(cfg: &GptConfig, pp: usize, seed: u64) -> Vec<Stage> {
        assert!(pp > 0, "pipeline must have at least one stage");
        assert!(pp <= cfg.n_layers, "more stages than layers");
        let mut rng = SeedStream::new(seed);
        let mut emb_rng = rng.fork(0xE0B);
        let input_embedding = Embedding::new(cfg.vocab, cfg.hidden, cfg.seq_len, &mut emb_rng);

        let mut stages = Vec::with_capacity(pp);
        let mut global_layer = 0usize;
        for s in 0..pp {
            let n_blocks = cfg.layers_on_stage(s, pp);
            let mut blocks = Vec::with_capacity(n_blocks);
            for _ in 0..n_blocks {
                // Seed by *global* layer index so any pipeline split of the
                // same seed yields bit-identical weights.
                let mut brng = rng.fork(global_layer as u64);
                global_layer += 1;
                blocks.push(TransformerBlock::new(
                    cfg.hidden,
                    cfg.heads,
                    cfg.seq_len,
                    0.0,
                    &mut brng,
                ));
            }
            let is_first = s == 0;
            let is_last = s == pp - 1;
            let embedding = if is_first {
                // The real replica is moved into the first stage below.
                None
            } else {
                None
            };
            let head = if is_last && pp > 1 {
                // Replica with identical table (synchronized init).
                let mut replica =
                    Embedding::new(cfg.vocab, cfg.hidden, cfg.seq_len, &mut emb_rng.fork(1));
                *replica.table_mut() = input_embedding.table().clone();
                Some(replica)
            } else {
                None
            };
            stages.push(Stage {
                index: s,
                n_stages: pp,
                embedding,
                blocks,
                final_ln: is_last.then(|| LayerNorm::new(cfg.hidden)),
                head,
            });
        }
        stages[0].embedding = Some(input_embedding);
        stages
    }

    /// Stage index within the pipeline.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Total number of stages in the pipeline this stage belongs to.
    pub fn n_stages(&self) -> usize {
        self.n_stages
    }

    /// Whether this stage holds the input embedding (first stage).
    pub fn has_embedding(&self) -> bool {
        self.embedding.is_some()
    }

    /// Whether this stage computes logits (last stage).
    pub fn has_head(&self) -> bool {
        self.final_ln.is_some()
    }

    /// Number of transformer blocks on this stage.
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Forward pass for the **first** stage: embeds tokens and runs the
    /// stage's blocks. For a single-stage pipeline this also applies the
    /// final norm and tied projection, returning logits.
    ///
    /// # Panics
    ///
    /// Panics if this is not the first stage.
    pub fn forward_tokens(&mut self, tokens: &[usize]) -> Matrix {
        assert!(self.index == 0, "forward_tokens on non-first stage");
        let mut h = self
            .embedding
            .as_mut()
            .expect("first stage has embedding")
            .lookup(tokens);
        for b in &mut self.blocks {
            h = b.forward(&h);
        }
        if self.has_head() {
            h = self.final_ln.as_mut().unwrap().forward(&h);
            h = self.embedding.as_mut().unwrap().project(&h);
        }
        h
    }

    /// Forward pass for middle/last stages on a received hidden matrix.
    /// The last stage returns vocabulary logits.
    ///
    /// # Panics
    ///
    /// Panics if called on the first stage (use
    /// [`Stage::forward_tokens`]).
    pub fn forward_hidden(&mut self, x: &Matrix) -> Matrix {
        assert!(self.index > 0, "use forward_tokens on the first stage");
        // The first block consumes `x` by reference, so the received
        // activation is never copied.
        let mut blocks = self.blocks.iter_mut();
        let mut h = match blocks.next() {
            Some(b) => b.forward(x),
            None => x.clone(),
        };
        for b in blocks {
            h = b.forward(&h);
        }
        if self.has_head() {
            h = self.final_ln.as_mut().unwrap().forward(&h);
            h = self
                .head
                .as_mut()
                .expect("last stage has head replica")
                .project(&h);
        }
        h
    }

    /// Backward pass. For the last stage `grad` is the logits gradient;
    /// for others it is the incoming activation gradient from the next
    /// stage. Returns the gradient to send to the previous stage, or
    /// `None` on the first stage.
    pub fn backward(&mut self, grad: &Matrix) -> Option<Matrix> {
        // Feed `grad` by reference to the first consumer instead of
        // cloning it up front.
        let mut g;
        if self.has_head() {
            g = if self.n_stages == 1 {
                self.embedding.as_mut().unwrap().backward_project(grad)
            } else {
                self.head.as_mut().unwrap().backward_project(grad)
            };
            g = self.final_ln.as_mut().unwrap().backward(&g);
            for b in self.blocks.iter_mut().rev() {
                g = b.backward(&g);
            }
        } else {
            let mut blocks = self.blocks.iter_mut().rev();
            g = match blocks.next() {
                Some(b) => b.backward(grad),
                None => grad.clone(),
            };
            for b in blocks {
                g = b.backward(&g);
            }
        }
        if let Some(emb) = &mut self.embedding {
            emb.backward_lookup(&g);
            None
        } else {
            Some(g)
        }
    }

    /// All trainable parameters of this stage (for the optimizer),
    /// including the embedding replica if present.
    pub fn params(&mut self) -> Vec<ParamRef<'_>> {
        let mut out = Vec::new();
        if let Some(emb) = &mut self.embedding {
            let [(t, g), (p, gp)] = emb.both_params();
            out.push(ParamRef {
                name: "embedding.table",
                value: t,
                grad: g,
            });
            out.push(ParamRef {
                name: "embedding.pos",
                value: p,
                grad: gp,
            });
        }
        for b in &mut self.blocks {
            out.extend(b.params());
        }
        if let Some(ln) = &mut self.final_ln {
            out.extend(ln.params());
        }
        if let Some(h) = &mut self.head {
            let (t, g) = h.table_param();
            out.push(ParamRef {
                name: "head.table",
                value: t,
                grad: g,
            });
        }
        out
    }

    /// Parameters excluding the embedding/head tables — the tensors whose
    /// gradients go through the *per-stage* data-parallel all-reduce (the
    /// tables follow the embedding-synchronization path instead).
    pub fn non_embedding_params(&mut self) -> Vec<ParamRef<'_>> {
        self.params()
            .into_iter()
            .filter(|p| p.name != "embedding.table" && p.name != "head.table")
            .collect()
    }

    /// The embedding-table gradient replica on this stage, if any: the
    /// input table on the first stage, the tied head table on the last.
    pub fn embedding_grad(&self) -> Option<&Matrix> {
        if let Some(e) = &self.embedding {
            Some(e.grad())
        } else {
            self.head.as_ref().map(|h| h.grad())
        }
    }

    /// Replaces the embedding-table gradient after synchronization.
    ///
    /// # Panics
    ///
    /// Panics if this stage holds no embedding replica or shapes mismatch.
    pub fn set_embedding_grad(&mut self, grad: Matrix) {
        if let Some(e) = &mut self.embedding {
            e.set_grad(grad);
        } else if let Some(h) = &mut self.head {
            h.set_grad(grad);
        } else {
            panic!("stage {} holds no embedding replica", self.index);
        }
    }

    /// Zeroes every gradient accumulator on the stage.
    pub fn zero_grad(&mut self) {
        if let Some(e) = &mut self.embedding {
            e.zero_grad();
        }
        for b in &mut self.blocks {
            b.zero_grad();
        }
        if let Some(ln) = &mut self.final_ln {
            ln.zero_grad();
        }
        if let Some(h) = &mut self.head {
            h.zero_grad();
        }
    }

    /// Total scalar parameter count of this stage.
    pub fn param_count(&mut self) -> usize {
        self.params().iter().map(|p| p.value.len()).sum()
    }

    /// Clones every parameter tensor in [`Stage::params`] order — the
    /// stage's contribution to a training checkpoint. Gradients are not
    /// exported: snapshots are taken at iteration boundaries, where every
    /// gradient accumulator is zero.
    pub fn export_state(&mut self) -> Vec<Matrix> {
        self.params().iter().map(|p| p.value.clone()).collect()
    }

    /// Overwrites every parameter tensor from a [`Stage::export_state`]
    /// vector and zeroes the gradient accumulators, restoring the stage to
    /// an iteration boundary.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not match this stage's parameter list in
    /// length or shapes (checkpoint/config mismatch — callers validate
    /// snapshot integrity and config fingerprints before getting here).
    pub fn import_state(&mut self, values: &[Matrix]) {
        let mut params = self.params();
        assert_eq!(
            params.len(),
            values.len(),
            "checkpoint has {} parameter tensors, stage expects {}",
            values.len(),
            params.len()
        );
        for (p, v) in params.iter_mut().zip(values) {
            assert_eq!(
                p.value.shape(),
                v.shape(),
                "checkpoint shape mismatch on {}",
                p.name
            );
            *p.value = v.clone();
        }
        drop(params);
        self.zero_grad();
    }

    /// Drops every cached activation on this stage. Call after an
    /// evaluation-only forward pass (validation / zero-shot probes) so the
    /// FIFO caches stay aligned for training.
    pub fn clear_caches(&mut self) {
        if let Some(e) = &mut self.embedding {
            e.clear_caches();
        }
        for b in &mut self.blocks {
            b.clear_caches();
        }
        if let Some(ln) = &mut self.final_ln {
            ln.clear_caches();
        }
        if let Some(h) = &mut self.head {
            h.clear_caches();
        }
    }

    /// Outstanding cached activations across all layers (0 at iteration
    /// boundaries in a correct schedule).
    pub fn pending_activations(&self) -> usize {
        let mut n = 0;
        if let Some(e) = &self.embedding {
            n += e.pending_activations();
        }
        n += self
            .blocks
            .iter()
            .map(|b| b.pending_activations())
            .sum::<usize>();
        if let Some(h) = &self.head {
            n += h.pending_activations();
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cross_entropy;

    fn tokens_for(cfg: &GptConfig, n_seq: usize) -> Vec<usize> {
        (0..n_seq * cfg.seq_len).map(|i| i % cfg.vocab).collect()
    }

    #[test]
    fn pipeline_structure_first_and_last() {
        let stages = Stage::build_pipeline(&GptConfig::tiny(), 4, 0);
        assert_eq!(stages.len(), 4);
        assert!(stages[0].has_embedding() && !stages[0].has_head());
        assert!(!stages[1].has_embedding() && !stages[1].has_head());
        assert!(stages[3].has_head() && !stages[3].has_embedding());
        let total_blocks: usize = stages.iter().map(Stage::n_blocks).sum();
        assert_eq!(total_blocks, 4);
    }

    #[test]
    fn single_stage_pipeline_ties_embedding() {
        let cfg = GptConfig::tiny();
        let mut stages = Stage::build_pipeline(&cfg, 1, 0);
        let tokens = tokens_for(&cfg, 1);
        let logits = stages[0].forward_tokens(&tokens);
        assert_eq!(logits.shape(), (cfg.seq_len, cfg.vocab));
        // Backward consumes all caches.
        let targets: Vec<usize> = tokens.iter().map(|&t| (t + 1) % cfg.vocab).collect();
        let out = cross_entropy(&logits, &targets);
        assert!(stages[0].backward(&out.grad_logits).is_none());
        assert_eq!(stages[0].pending_activations(), 0);
    }

    #[test]
    fn replicated_tables_start_identical() {
        let cfg = GptConfig::tiny();
        let stages = Stage::build_pipeline(&cfg, 4, 7);
        let first = stages[0].embedding.as_ref().unwrap().table().clone();
        let last = stages[3].head.as_ref().unwrap().table().clone();
        assert_eq!(first, last);
    }

    #[test]
    fn multi_stage_forward_backward_roundtrip() {
        let cfg = GptConfig::tiny();
        let mut stages = Stage::build_pipeline(&cfg, 2, 1);
        let tokens = tokens_for(&cfg, 2);
        let h0 = stages[0].forward_tokens(&tokens);
        let logits = {
            let (_, rest) = stages.split_at_mut(1);
            rest[0].forward_hidden(&h0)
        };
        let targets: Vec<usize> = tokens.iter().map(|&t| (t + 1) % cfg.vocab).collect();
        let out = cross_entropy(&logits, &targets);
        let g1 = stages[1]
            .backward(&out.grad_logits)
            .expect("grad to stage 0");
        assert_eq!(g1.shape(), h0.shape());
        assert!(stages[0].backward(&g1).is_none());
        for s in &stages {
            assert_eq!(s.pending_activations(), 0);
        }
    }

    #[test]
    fn pipeline_split_matches_monolithic_model() {
        // A 2-stage pipeline must compute exactly the same function as the
        // 1-stage model with identical seeds.
        let cfg = GptConfig::tiny();
        let mut mono = Stage::build_pipeline(&cfg, 1, 42);
        let mut split = Stage::build_pipeline(&cfg, 2, 42);
        let tokens = tokens_for(&cfg, 1);
        let logits_mono = mono[0].forward_tokens(&tokens);
        let h = split[0].forward_tokens(&tokens);
        let logits_split = split[1].forward_hidden(&h);
        assert!(
            logits_mono.sub(&logits_split).max_abs() < 1e-5,
            "split pipeline diverges from monolithic model"
        );
    }

    #[test]
    fn embedding_grads_appear_on_both_end_stages() {
        let cfg = GptConfig::tiny();
        let mut stages = Stage::build_pipeline(&cfg, 2, 3);
        let tokens = tokens_for(&cfg, 1);
        let h0 = stages[0].forward_tokens(&tokens);
        let logits = stages[1].forward_hidden(&h0);
        let targets: Vec<usize> = tokens.iter().map(|&t| (t + 1) % cfg.vocab).collect();
        let out = cross_entropy(&logits, &targets);
        let g = stages[1].backward(&out.grad_logits).unwrap();
        stages[0].backward(&g);
        let g_first = stages[0].embedding_grad().unwrap();
        let g_last = stages[1].embedding_grad().unwrap();
        assert!(g_first.norm() > 0.0, "input-side embedding grad empty");
        assert!(g_last.norm() > 0.0, "head-side embedding grad empty");
        // The two replicas see *different* gradients — that is why the
        // paper needs embedding synchronization at all.
        assert!(g_first.sub(g_last).norm() > 1e-6);
    }

    #[test]
    fn non_embedding_params_exclude_tables() {
        let cfg = GptConfig::tiny();
        let mut stages = Stage::build_pipeline(&cfg, 2, 0);
        for s in &mut stages {
            for p in s.non_embedding_params() {
                assert!(p.name != "embedding.table" && p.name != "head.table");
            }
        }
    }

    #[test]
    fn param_counts_are_consistent_across_splits() {
        let cfg = GptConfig::tiny();
        let count = |pp: usize| -> usize {
            Stage::build_pipeline(&cfg, pp, 0)
                .iter_mut()
                .map(Stage::param_count)
                .sum()
        };
        // pp=2..4 hold one extra vocab*hidden table (the head replica)
        // compared to pp=1 where the table is shared.
        let single = count(1);
        let replica = cfg.vocab * cfg.hidden;
        for pp in [2usize, 4] {
            assert_eq!(count(pp), single + replica, "pp={pp}");
        }
    }

    #[test]
    fn set_embedding_grad_roundtrip() {
        let cfg = GptConfig::tiny();
        let mut stages = Stage::build_pipeline(&cfg, 2, 0);
        let g = Matrix::full(cfg.vocab, cfg.hidden, 0.5);
        stages[0].set_embedding_grad(g.clone());
        assert_eq!(stages[0].embedding_grad().unwrap(), &g);
    }

    #[test]
    fn export_import_state_roundtrip() {
        let cfg = GptConfig::tiny();
        let mut a = Stage::build_pipeline(&cfg, 2, 0);
        let mut b = Stage::build_pipeline(&cfg, 2, 99); // different weights
        let tokens = tokens_for(&cfg, 1);
        let la = {
            let h = a[0].forward_tokens(&tokens);
            let l = a[1].forward_hidden(&h);
            a.iter_mut().for_each(Stage::clear_caches);
            l
        };
        for (src, dst) in a.iter_mut().zip(b.iter_mut()) {
            dst.import_state(&src.export_state());
        }
        let lb = {
            let h = b[0].forward_tokens(&tokens);
            let l = b[1].forward_hidden(&h);
            b.iter_mut().for_each(Stage::clear_caches);
            l
        };
        assert_eq!(la, lb, "imported stage computes a different function");
    }

    #[test]
    #[should_panic(expected = "checkpoint shape mismatch")]
    fn import_state_rejects_wrong_shapes() {
        let cfg = GptConfig::tiny();
        let mut stages = Stage::build_pipeline(&cfg, 1, 0);
        let mut state = stages[0].export_state();
        state[0] = Matrix::zeros(1, 1);
        stages[0].import_state(&state);
    }

    #[test]
    #[should_panic(expected = "more stages than layers")]
    fn too_many_stages_panics() {
        let _ = Stage::build_pipeline(&GptConfig::tiny(), 5, 0);
    }
}
