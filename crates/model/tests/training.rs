//! End-to-end single-process training sanity tests: the tiny GPT must be
//! able to learn simple sequence distributions, otherwise no compression
//! quality experiment downstream is meaningful.

use opt_model::{cross_entropy, Adam, GptConfig, Optimizer, Sgd, Stage};
use opt_tensor::SeedStream;

/// Deterministic cyclic corpus: token (i+1) always follows token i.
fn cyclic_batch(cfg: &GptConfig, n_seq: usize, rng: &mut SeedStream) -> (Vec<usize>, Vec<usize>) {
    let mut tokens = Vec::with_capacity(n_seq * cfg.seq_len);
    for _ in 0..n_seq {
        let start = rng.below(cfg.vocab);
        for p in 0..cfg.seq_len {
            tokens.push((start + p) % cfg.vocab);
        }
    }
    let targets = tokens.iter().map(|&t| (t + 1) % cfg.vocab).collect();
    (tokens, targets)
}

fn train_single_stage(opt: &mut dyn Optimizer, iters: usize) -> (f32, f32) {
    let cfg = GptConfig::tiny();
    let mut stages = Stage::build_pipeline(&cfg, 1, 12);
    let mut rng = SeedStream::new(7);
    let mut first_loss = None;
    let mut last_loss = 0.0;
    for _ in 0..iters {
        let (tokens, targets) = cyclic_batch(&cfg, 4, &mut rng);
        let logits = stages[0].forward_tokens(&tokens);
        let out = cross_entropy(&logits, &targets);
        stages[0].backward(&out.grad_logits);
        let mut params = stages[0].params();
        opt.step(&mut params);
        stages[0].zero_grad();
        first_loss.get_or_insert(out.loss);
        last_loss = out.loss;
    }
    (first_loss.unwrap(), last_loss)
}

#[test]
fn tiny_gpt_learns_cyclic_language_with_adam() {
    let (first, last) = train_single_stage(&mut Adam::new(3e-3), 120);
    assert!(
        last < first * 0.5,
        "loss did not halve: first {first}, last {last}"
    );
    // Cyclic successor task is learnable to low loss.
    assert!(last < 1.5, "final loss too high: {last}");
}

#[test]
fn tiny_gpt_learns_with_sgd_momentum() {
    let (first, last) = train_single_stage(&mut Sgd::with_momentum(0.05, 0.9), 150);
    assert!(
        last < first * 0.8,
        "SGD failed to reduce loss: {first} -> {last}"
    );
}

#[test]
fn pipelined_training_matches_single_stage_exactly() {
    // One optimizer step on a 2-stage pipeline must produce the same loss
    // trajectory as the monolithic model (same seeds, plain SGD).
    let cfg = GptConfig::tiny();
    let mut mono = Stage::build_pipeline(&cfg, 1, 5);
    let mut pipe = Stage::build_pipeline(&cfg, 2, 5);
    let mut rng_a = SeedStream::new(3);
    let mut rng_b = SeedStream::new(3);
    let mut opt_a = Sgd::new(0.1);
    let mut opt_b0 = Sgd::new(0.1);
    let mut opt_b1 = Sgd::new(0.1);
    let mut losses = (Vec::new(), Vec::new());
    for _ in 0..5 {
        let (tokens, targets) = cyclic_batch(&cfg, 2, &mut rng_a);
        let logits = mono[0].forward_tokens(&tokens);
        let out = cross_entropy(&logits, &targets);
        mono[0].backward(&out.grad_logits);
        opt_a.step(&mut mono[0].params());
        mono[0].zero_grad();
        losses.0.push(out.loss);

        let (tokens, targets) = cyclic_batch(&cfg, 2, &mut rng_b);
        let h = pipe[0].forward_tokens(&tokens);
        let logits = pipe[1].forward_hidden(&h);
        let out = cross_entropy(&logits, &targets);
        let g = pipe[1].backward(&out.grad_logits).unwrap();
        pipe[0].backward(&g);
        // Single data-parallel rank: embedding sync = average the two
        // replica grads (mathematically what EMB sync does).
        let g0 = pipe[0].embedding_grad().unwrap().clone();
        let g1 = pipe[1].embedding_grad().unwrap().clone();
        let sum = g0.add(&g1);
        pipe[0].set_embedding_grad(sum.clone());
        pipe[1].set_embedding_grad(sum);
        opt_b0.step(&mut pipe[0].params());
        opt_b1.step(&mut pipe[1].params());
        pipe[0].zero_grad();
        pipe[1].zero_grad();
        losses.1.push(out.loss);
    }
    for (a, b) in losses.0.iter().zip(&losses.1) {
        assert!(
            (a - b).abs() < 1e-4,
            "pipeline diverged from monolithic: {:?} vs {:?}",
            losses.0,
            losses.1
        );
    }
}

#[test]
fn perplexity_starts_near_vocab_size() {
    // An untrained model on uniform data has PPL ~ vocab.
    let cfg = GptConfig::tiny();
    let mut stages = Stage::build_pipeline(&cfg, 1, 9);
    let mut rng = SeedStream::new(11);
    let (tokens, targets) = cyclic_batch(&cfg, 8, &mut rng);
    let logits = stages[0].forward_tokens(&tokens);
    let out = cross_entropy(&logits, &targets);
    let ppl = out.perplexity();
    assert!(
        ppl > cfg.vocab as f32 * 0.4 && ppl < cfg.vocab as f32 * 2.5,
        "untrained PPL {ppl} implausible for vocab {}",
        cfg.vocab
    );
}
