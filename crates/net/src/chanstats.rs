//! Per-(src, dst, channel) transport accounting.
//!
//! The [`crate::TrafficLedger`] records the *modeled* fp16 wire volume the
//! experiments reason about (the paper's Fig. 3 classes). This module
//! records what the transport actually moved: every [`crate::Transport`]
//! backend counts each send and each delivered receive per lane, and
//! [`TrafficBreakdown`] pairs those lane counters with the modeled totals
//! in one report-friendly value. Lane payload bytes are counted without
//! frame overhead, so `LocalTransport` and `TcpTransport` report identical
//! numbers for identical runs — the breakdown is covered by the same
//! Local ≡ TCP determinism contract as the training numerics.

use crate::traffic::{TrafficClass, TrafficSnapshot};
use crate::transport::channel_id;
use opt_tensor::{Persist, PersistError, Reader, Writer};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// What a transport channel carries, derived from the channel-id
/// namespace ([`channel_id`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ChannelClass {
    /// Forward pipeline activations (namespace 1, index 0).
    PipeForward,
    /// Backward pipeline gradients (namespace 1, index 1).
    PipeBackward,
    /// Collective group lanes (namespace 2).
    Collective,
    /// Control plane: commands, acks, checkpoint shards, metrics, traces
    /// (namespace 3).
    Control,
    /// Anything else (tests, ad-hoc lanes).
    Other,
}

impl ChannelClass {
    /// Classifies a transport channel id.
    pub fn of(channel: u64) -> Self {
        match channel >> 56 {
            1 if channel == channel_id(1, 0) => ChannelClass::PipeForward,
            1 if channel == channel_id(1, 1) => ChannelClass::PipeBackward,
            2 => ChannelClass::Collective,
            3 => ChannelClass::Control,
            _ => ChannelClass::Other,
        }
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            ChannelClass::PipeForward => "pipe_fwd",
            ChannelClass::PipeBackward => "pipe_bwd",
            ChannelClass::Collective => "collective",
            ChannelClass::Control => "control",
            ChannelClass::Other => "other",
        }
    }
}

/// Counters of one transport lane, as observed by one transport endpoint.
///
/// In an in-process world one shared `LocalTransport` sees both ends of
/// every lane; in a multi-process world the sender's transport records the
/// `sends`/`send_bytes` half and the receiver's the `recvs`/`recv_bytes`
/// half, and [`TrafficBreakdown::absorb`] reassembles the whole lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChannelStat {
    /// Sending rank of the lane.
    pub src: u32,
    /// Receiving rank of the lane.
    pub dst: u32,
    /// Transport channel id of the lane.
    pub channel: u64,
    /// Messages sent on the lane.
    pub sends: u64,
    /// Payload bytes sent (frame overhead excluded).
    pub send_bytes: u64,
    /// Messages delivered to a receiver.
    pub recvs: u64,
    /// Payload bytes delivered.
    pub recv_bytes: u64,
}

impl ChannelStat {
    /// The lane's channel class.
    pub fn class(&self) -> ChannelClass {
        ChannelClass::of(self.channel)
    }
}

impl Persist for ChannelStat {
    fn persist(&self, w: &mut Writer) {
        w.u32(self.src);
        w.u32(self.dst);
        w.u64(self.channel);
        w.u64(self.sends);
        w.u64(self.send_bytes);
        w.u64(self.recvs);
        w.u64(self.recv_bytes);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(ChannelStat {
            src: r.u32()?,
            dst: r.u32()?,
            channel: r.u64()?,
            sends: r.u64()?,
            send_bytes: r.u64()?,
            recvs: r.u64()?,
            recv_bytes: r.u64()?,
        })
    }
}

/// [sends, send_bytes, recvs, recv_bytes] per lane.
type LaneCounters = BTreeMap<(u64, u32, u32), [u64; 4]>;

/// Thread-safe per-lane counter shared by all handles of one transport.
#[derive(Debug, Clone, Default)]
pub struct ChannelLedger {
    inner: Arc<Mutex<LaneCounters>>,
}

impl ChannelLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sent message of `bytes` payload bytes.
    pub fn record_send(&self, src: usize, dst: usize, channel: u64, bytes: usize) {
        let mut map = self.inner.lock();
        let c = map.entry((channel, src as u32, dst as u32)).or_default();
        c[0] += 1;
        c[1] += bytes as u64;
    }

    /// Records one delivered message of `bytes` payload bytes.
    pub fn record_recv(&self, src: usize, dst: usize, channel: u64, bytes: usize) {
        let mut map = self.inner.lock();
        let c = map.entry((channel, src as u32, dst as u32)).or_default();
        c[2] += 1;
        c[3] += bytes as u64;
    }

    /// Snapshots every lane, sorted by (channel, src, dst).
    pub fn snapshot(&self) -> Vec<ChannelStat> {
        self.inner
            .lock()
            .iter()
            .map(
                |(&(channel, src, dst), &[sends, send_bytes, recvs, recv_bytes])| ChannelStat {
                    src,
                    dst,
                    channel,
                    sends,
                    send_bytes,
                    recvs,
                    recv_bytes,
                },
            )
            .collect()
    }
}

/// Per-class wire traffic of a run: the modeled fp16 totals the
/// experiments have always reported (`totals`, identical bytes to the old
/// flat [`TrafficSnapshot`]) plus the per-lane breakdown the transports
/// measured (`channels`, control-plane lanes excluded).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TrafficBreakdown {
    /// The modeled per-class totals (the pre-breakdown report fields).
    pub totals: TrafficSnapshot,
    /// Measured per-lane counters, sorted by (channel, src, dst).
    pub channels: Vec<ChannelStat>,
}

impl TrafficBreakdown {
    /// Builds a breakdown from modeled totals and raw transport lanes,
    /// dropping control-plane lanes (their volume depends on how the run
    /// was driven, not on the training schedule).
    pub fn new(totals: TrafficSnapshot, mut channels: Vec<ChannelStat>) -> Self {
        channels.retain(|c| c.class() != ChannelClass::Control);
        channels.sort_by_key(|c| (c.channel, c.src, c.dst));
        TrafficBreakdown { totals, channels }
    }

    /// Modeled bytes recorded for `class` (delegates to `totals`, so the
    /// pre-breakdown aggregate numbers are unchanged).
    pub fn bytes(&self, class: TrafficClass) -> u64 {
        self.totals.bytes(class)
    }

    /// Modeled message count recorded for `class`.
    pub fn messages(&self, class: TrafficClass) -> u64 {
        self.totals.messages(class)
    }

    /// Total modeled bytes across all classes.
    pub fn total_bytes(&self) -> u64 {
        self.totals.total_bytes()
    }

    /// Measured payload bytes sent on lanes of `class`.
    pub fn sent_bytes(&self, class: ChannelClass) -> u64 {
        self.channels
            .iter()
            .filter(|c| c.class() == class)
            .map(|c| c.send_bytes)
            .sum()
    }

    /// Folds another breakdown into this one: totals add exactly, lanes
    /// merge by (channel, src, dst) — so per-process halves of a lane
    /// reassemble into the numbers one shared in-process transport would
    /// have recorded.
    pub fn absorb(&mut self, other: &TrafficBreakdown) {
        self.totals.absorb(&other.totals);
        let mut merged: BTreeMap<(u64, u32, u32), ChannelStat> = self
            .channels
            .drain(..)
            .map(|c| ((c.channel, c.src, c.dst), c))
            .collect();
        for c in &other.channels {
            let e = merged
                .entry((c.channel, c.src, c.dst))
                .or_insert(ChannelStat {
                    src: c.src,
                    dst: c.dst,
                    channel: c.channel,
                    ..ChannelStat::default()
                });
            e.sends += c.sends;
            e.send_bytes += c.send_bytes;
            e.recvs += c.recvs;
            e.recv_bytes += c.recv_bytes;
        }
        self.channels = merged.into_values().collect();
    }

    /// The exact integer difference `self - earlier`: the traffic of the
    /// segment between two breakdowns gathered from one monotonically
    /// counting world. Lanes that cancel to zero are dropped, so two
    /// worlds that moved identical segment traffic produce equal deltas
    /// even when their pre-segment histories differ (the basis of the
    /// rejoin bit-exactness assertion). Counters that went backwards (a
    /// rank was replaced between the snapshots) saturate at zero.
    pub fn delta_since(&self, earlier: &TrafficBreakdown) -> TrafficBreakdown {
        let before: BTreeMap<(u64, u32, u32), &ChannelStat> = earlier
            .channels
            .iter()
            .map(|c| ((c.channel, c.src, c.dst), c))
            .collect();
        let channels = self
            .channels
            .iter()
            .map(|c| {
                let mut d = *c;
                if let Some(b) = before.get(&(c.channel, c.src, c.dst)) {
                    d.sends = c.sends.saturating_sub(b.sends);
                    d.send_bytes = c.send_bytes.saturating_sub(b.send_bytes);
                    d.recvs = c.recvs.saturating_sub(b.recvs);
                    d.recv_bytes = c.recv_bytes.saturating_sub(b.recv_bytes);
                }
                d
            })
            .filter(|d| d.sends != 0 || d.send_bytes != 0 || d.recvs != 0 || d.recv_bytes != 0)
            .collect();
        TrafficBreakdown {
            totals: self.totals.delta_since(&earlier.totals),
            channels,
        }
    }
}

impl Persist for TrafficBreakdown {
    fn persist(&self, w: &mut Writer) {
        self.totals.persist(w);
        w.usize(self.channels.len());
        for c in &self.channels {
            c.persist(w);
        }
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let totals = TrafficSnapshot::restore(r)?;
        // 4 + 4 + 8 + 8*4 bytes per lane record.
        let n = r.checked_len(48)?;
        let mut channels = Vec::with_capacity(n);
        for _ in 0..n {
            channels.push(ChannelStat::restore(r)?);
        }
        Ok(TrafficBreakdown { totals, channels })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::TrafficLedger;

    #[test]
    fn channel_classes_follow_namespaces() {
        assert_eq!(
            ChannelClass::of(channel_id(1, 0)),
            ChannelClass::PipeForward
        );
        assert_eq!(
            ChannelClass::of(channel_id(1, 1)),
            ChannelClass::PipeBackward
        );
        assert_eq!(ChannelClass::of(channel_id(2, 5)), ChannelClass::Collective);
        assert_eq!(ChannelClass::of(channel_id(3, 0)), ChannelClass::Control);
        assert_eq!(ChannelClass::of(0), ChannelClass::Other);
        assert_eq!(ChannelClass::of(channel_id(1, 9)), ChannelClass::Other);
    }

    #[test]
    fn ledger_counts_both_halves() {
        let l = ChannelLedger::new();
        l.record_send(0, 1, channel_id(1, 0), 100);
        l.record_send(0, 1, channel_id(1, 0), 50);
        l.record_recv(0, 1, channel_id(1, 0), 100);
        let snap = l.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].sends, 2);
        assert_eq!(snap[0].send_bytes, 150);
        assert_eq!(snap[0].recvs, 1);
        assert_eq!(snap[0].recv_bytes, 100);
        assert_eq!(snap[0].class(), ChannelClass::PipeForward);
    }

    #[test]
    fn breakdown_filters_control_and_sorts() {
        let l = ChannelLedger::new();
        l.record_send(1, 0, channel_id(2, 0), 8);
        l.record_send(0, 1, channel_id(1, 0), 4);
        l.record_send(0, 1, channel_id(3, 0), 999);
        let bd = TrafficBreakdown::new(TrafficSnapshot::default(), l.snapshot());
        assert_eq!(bd.channels.len(), 2);
        assert_eq!(bd.channels[0].class(), ChannelClass::PipeForward);
        assert_eq!(bd.channels[1].class(), ChannelClass::Collective);
        assert_eq!(bd.sent_bytes(ChannelClass::PipeForward), 4);
    }

    #[test]
    fn absorb_reassembles_lane_halves_and_totals() {
        let modeled = TrafficLedger::new();
        modeled.record(TrafficClass::InterStage, 64);
        let sender = ChannelLedger::new();
        sender.record_send(0, 1, channel_id(1, 0), 64);
        let receiver = ChannelLedger::new();
        receiver.record_recv(0, 1, channel_id(1, 0), 64);

        let mut merged = TrafficBreakdown::new(modeled.snapshot(), sender.snapshot());
        merged.absorb(&TrafficBreakdown::new(
            TrafficSnapshot::default(),
            receiver.snapshot(),
        ));

        let shared = ChannelLedger::new();
        shared.record_send(0, 1, channel_id(1, 0), 64);
        shared.record_recv(0, 1, channel_id(1, 0), 64);
        let reference = TrafficBreakdown::new(modeled.snapshot(), shared.snapshot());
        assert_eq!(merged, reference);
        assert_eq!(merged.bytes(TrafficClass::InterStage), 64);
        assert_eq!(merged.total_bytes(), 64);
    }

    #[test]
    fn delta_since_cancels_shared_history() {
        // Two worlds with different pre-segment histories move the same
        // segment traffic: their deltas must be equal.
        let seg = |l: &ChannelLedger| {
            l.record_send(0, 1, channel_id(1, 0), 64);
            l.record_recv(0, 1, channel_id(1, 0), 64);
            l.record_send(1, 0, channel_id(2, 0), 16);
        };
        let a = ChannelLedger::new();
        a.record_send(0, 1, channel_id(1, 0), 999); // extra history
        let a0 = TrafficBreakdown::new(TrafficSnapshot::default(), a.snapshot());
        seg(&a);
        let a1 = TrafficBreakdown::new(TrafficSnapshot::default(), a.snapshot());

        let b = ChannelLedger::new();
        let b0 = TrafficBreakdown::new(TrafficSnapshot::default(), b.snapshot());
        seg(&b);
        let b1 = TrafficBreakdown::new(TrafficSnapshot::default(), b.snapshot());

        let da = a1.delta_since(&a0);
        let db = b1.delta_since(&b0);
        assert_eq!(da, db);
        assert_eq!(da.sent_bytes(ChannelClass::PipeForward), 64);
        // An idle segment cancels to an empty breakdown.
        assert_eq!(a1.delta_since(&a1).channels, Vec::new());
    }

    #[test]
    fn breakdown_persist_roundtrips() {
        let modeled = TrafficLedger::new();
        modeled.record(TrafficClass::DataParallel, 10);
        let l = ChannelLedger::new();
        l.record_send(0, 1, channel_id(1, 0), 4);
        l.record_recv(0, 1, channel_id(1, 0), 4);
        l.record_send(1, 0, channel_id(2, 3), 16);
        let bd = TrafficBreakdown::new(modeled.snapshot(), l.snapshot());
        let bytes = opt_tensor::Persist::to_bytes(&bd);
        assert_eq!(TrafficBreakdown::from_bytes(&bytes).unwrap(), bd);
    }
}
