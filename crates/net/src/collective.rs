//! Deterministic all-reduce groups over any [`Transport`].
//!
//! The reduction runs gather-to-root + broadcast: the group's **first
//! member** collects every contribution, reduces **in member order**, and
//! sends the result back. Because the accumulation order is fixed by the
//! member list — never by thread or packet arrival order — the result is
//! bit-deterministic on every backend, and identical between the
//! in-process [`LocalTransport`] world and a multi-process
//! [`crate::TcpTransport`] world (the wire codec round-trips `f32` bits
//! exactly).

use crate::p2p::RecvError;
use crate::transport::{
    channel_id, net_timeout, LocalTransport, SharedPayload, Transport, TransportError,
};
use opt_tensor::Matrix;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Channel-id namespace reserved for collective groups.
const COLLECTIVE_NAMESPACE: u8 = 2;

/// An all-reduce group over a fixed set of global ranks, communicating
/// through a shared [`Transport`].
///
/// Semantics match NCCL's `allReduce(sum)`: every member contributes a
/// same-shaped matrix and receives the element-wise sum. The reduction is
/// performed in member order, so results are bit-deterministic regardless
/// of thread or message arrival order — important for the reproduction's
/// "fused embedding synchronization is mathematically identical" test.
///
/// The group is reusable across rounds (one round per training iteration):
/// per-lane FIFO ordering keeps successive rounds from mixing.
///
/// # Example
///
/// ```
/// use opt_net::CollectiveWorld;
/// use opt_tensor::Matrix;
/// use std::thread;
///
/// let world = CollectiveWorld::new(2);
/// let g0 = world.group(&[0, 1]);
/// let g1 = g0.clone();
/// let h = thread::spawn(move || g1.all_reduce_sum(1, Matrix::full(1, 2, 2.0)).unwrap());
/// let sum = g0.all_reduce_sum(0, Matrix::full(1, 2, 1.0)).unwrap();
/// assert_eq!(sum.as_slice(), &[3.0, 3.0]);
/// h.join().unwrap();
/// ```
pub struct CollectiveGroup<Tr: Transport = LocalTransport> {
    members: Arc<Vec<usize>>,
    transport: Arc<Tr>,
    channel: u64,
    /// Cached receive timeout (reading the env per round would serialize
    /// worker threads on the process-global environment lock).
    timeout: std::time::Duration,
    /// Which member positions are currently inside a round — shared by
    /// every in-process clone, so the misuse the pre-transport
    /// implementation caught (two threads contributing as the same rank
    /// concurrently) still panics deterministically instead of
    /// desynchronizing the lane FIFOs.
    in_flight: Arc<parking_lot::Mutex<Vec<bool>>>,
}

impl<Tr: Transport> Clone for CollectiveGroup<Tr> {
    fn clone(&self) -> Self {
        Self {
            members: Arc::clone(&self.members),
            transport: Arc::clone(&self.transport),
            channel: self.channel,
            timeout: self.timeout,
            in_flight: Arc::clone(&self.in_flight),
        }
    }
}

impl<Tr: Transport> fmt::Debug for CollectiveGroup<Tr> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CollectiveGroup({:?})", self.members)
    }
}

impl<Tr: Transport> CollectiveGroup<Tr> {
    fn new(members: Vec<usize>, transport: Arc<Tr>, channel: u64) -> Self {
        let n = members.len();
        Self {
            members: Arc::new(members),
            transport,
            channel,
            timeout: net_timeout(),
            in_flight: Arc::new(parking_lot::Mutex::new(vec![false; n])),
        }
    }

    /// The global ranks participating in this group, in reduction order.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Number of participating ranks.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    fn expect_ok<T>(&self, what: &str, peer: usize, r: Result<T, TransportError>) -> T {
        r.unwrap_or_else(|e| {
            panic!(
                "all-reduce {what} with rank {peer} failed in group {:?} on channel {:#x}: {e}",
                self.members, self.channel
            )
        })
    }

    /// Maps a typed-receive failure: decode failures become a
    /// [`RecvError::Decode`] the caller can propagate; everything else
    /// (peer death, corruption, timeout) panics with group context, as
    /// every transport failure here always has.
    fn recv_matrix(&self, what: &str, src: usize, dst: usize) -> Result<Matrix, RecvError> {
        match self
            .transport
            .recv_value::<Matrix>(src, dst, self.channel, self.timeout)
        {
            Ok(m) => Ok(m),
            Err(TransportError::Decode { detail }) => Err(RecvError::Decode {
                src,
                dst,
                channel: self.channel,
                detail,
            }),
            Err(e) => Ok(self.expect_ok(what, src, Err::<Matrix, _>(e))),
        }
    }

    /// Contributes `m` on behalf of global rank `rank` and returns the
    /// element-wise sum over all members. Blocks until every member has
    /// contributed.
    ///
    /// The gather and the broadcast both travel typed: over an in-process
    /// transport the matrices cross as `Arc`s with zero serialization, and
    /// the broadcast shares one value (and one encode cache) across all
    /// peers, so a byte-boundary transport encodes the result exactly
    /// once.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError::Decode`] if a delivered payload could not
    /// become a [`Matrix`] — the transport's integrity checks passed, so
    /// this means the channel is being used inconsistently (a code bug,
    /// not a wire fault), and the caller decides whether that is fatal.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is not a member, if shapes mismatch across members,
    /// or if the transport fails (peer death, frame corruption, timeout —
    /// in a correct schedule a timeout means a deadlock bug).
    pub fn all_reduce_sum(&self, rank: usize, m: Matrix) -> Result<Matrix, RecvError> {
        let pos = self
            .members
            .iter()
            .position(|&r| r == rank)
            .unwrap_or_else(|| panic!("rank {rank} is not a member of {:?}", self.members));
        if self.members.len() == 1 {
            return Ok(m);
        }
        {
            let mut in_flight = self.in_flight.lock();
            assert!(!in_flight[pos], "rank {rank} deposited twice in one round");
            in_flight[pos] = true;
        }
        let result = self.all_reduce_sum_inner(pos, rank, m);
        self.in_flight.lock()[pos] = false;
        result
    }

    fn all_reduce_sum_inner(
        &self,
        pos: usize,
        rank: usize,
        m: Matrix,
    ) -> Result<Matrix, RecvError> {
        let root = self.members[0];
        if pos == 0 {
            // Root: gather in member order — the accumulation order (and
            // therefore every f32 rounding step) is fixed by the member
            // list, not by arrival order.
            let mut acc = m;
            for &peer in &self.members[1..] {
                let part = self.recv_matrix("gather", peer, root)?;
                assert_eq!(acc.shape(), part.shape(), "all-reduce shape mismatch");
                acc.add_assign(&part);
            }
            // One shared payload for the whole broadcast: every peer's
            // send clones the Arc, and a byte-boundary transport encodes
            // the matrix once into the shared cache.
            let payload = SharedPayload::new(acc.clone());
            for &peer in &self.members[1..] {
                self.expect_ok(
                    "broadcast",
                    peer,
                    self.transport
                        .send_shared(root, peer, self.channel, &payload),
                );
            }
            Ok(acc)
        } else {
            self.expect_ok(
                "contribute",
                root,
                self.transport.send_value(rank, root, self.channel, m),
            );
            self.recv_matrix("result", root, rank)
        }
    }

    /// All-reduce returning the mean instead of the sum.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CollectiveGroup::all_reduce_sum`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`CollectiveGroup::all_reduce_sum`].
    pub fn all_reduce_mean(&self, rank: usize, m: Matrix) -> Result<Matrix, RecvError> {
        let mut sum = self.all_reduce_sum(rank, m)?;
        sum.scale_assign(1.0 / self.size() as f32);
        Ok(sum)
    }
}

/// Factory for [`CollectiveGroup`]s over a world of ranks.
///
/// Mirrors the process-group bootstrap of `torch.distributed`: the trainer
/// creates one world, then carves out data-parallel groups (one per
/// pipeline stage), the embedding-synchronization pair, or the paper's
/// fused embedding group spanning both.
///
/// Each [`CollectiveWorld::group`] call claims the next collective channel
/// id, so on a distributed backend **every process must create its groups
/// in the same order** — the same rule `torch.distributed.new_group`
/// imposes. (In a single-process world the trainer creates each group
/// once and clones it to the member threads, which is trivially
/// consistent.)
pub struct CollectiveWorld<Tr: Transport = LocalTransport> {
    transport: Arc<Tr>,
    next_group: AtomicU64,
}

impl<Tr: Transport> fmt::Debug for CollectiveWorld<Tr> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CollectiveWorld(world={})", self.transport.world())
    }
}

impl CollectiveWorld<LocalTransport> {
    /// Creates an in-process world of `world` ranks.
    ///
    /// # Panics
    ///
    /// Panics if `world == 0`.
    pub fn new(world: usize) -> Self {
        Self::over(Arc::new(LocalTransport::new(world)))
    }
}

impl<Tr: Transport> CollectiveWorld<Tr> {
    /// Creates a world over an existing transport (shared with meshes and
    /// control lanes — collective traffic lives in its own channel
    /// namespace).
    pub fn over(transport: Arc<Tr>) -> Self {
        assert!(transport.world() > 0, "world size must be positive");
        Self {
            transport,
            next_group: AtomicU64::new(0),
        }
    }

    /// Number of ranks in the world.
    pub fn world(&self) -> usize {
        self.transport.world()
    }

    /// Creates a reusable all-reduce group over `ranks`.
    ///
    /// # Panics
    ///
    /// Panics if `ranks` is empty, contains duplicates, or references a
    /// rank outside the world.
    pub fn group(&self, ranks: &[usize]) -> CollectiveGroup<Tr> {
        assert!(!ranks.is_empty(), "group must have at least one member");
        let mut sorted = ranks.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ranks.len(), "group has duplicate ranks");
        assert!(
            ranks.iter().all(|&r| r < self.world()),
            "group rank out of range (world {})",
            self.world()
        );
        let index = self.next_group.fetch_add(1, Ordering::SeqCst);
        CollectiveGroup::new(
            ranks.to_vec(),
            Arc::clone(&self.transport),
            channel_id(COLLECTIVE_NAMESPACE, index),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn run_group(members: Vec<usize>, inputs: Vec<Matrix>) -> Vec<Matrix> {
        let world = CollectiveWorld::new(members.iter().max().unwrap() + 1);
        let group = world.group(&members);
        let mut handles = Vec::new();
        for (rank, m) in members.iter().copied().zip(inputs) {
            let g = group.clone();
            handles.push(thread::spawn(move || g.all_reduce_sum(rank, m).unwrap()));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn two_rank_sum() {
        let outs = run_group(
            vec![0, 1],
            vec![Matrix::full(2, 2, 1.0), Matrix::full(2, 2, 2.0)],
        );
        for o in outs {
            assert_eq!(o, Matrix::full(2, 2, 3.0));
        }
    }

    #[test]
    fn four_rank_sum_all_equal_results() {
        let inputs: Vec<_> = (0..4).map(|i| Matrix::full(3, 3, i as f32)).collect();
        let outs = run_group(vec![0, 1, 2, 3], inputs);
        for o in &outs {
            assert_eq!(*o, Matrix::full(3, 3, 6.0));
        }
    }

    #[test]
    fn mean_divides_by_group_size() {
        let world = CollectiveWorld::new(2);
        let group = world.group(&[0, 1]);
        let g1 = group.clone();
        let h = thread::spawn(move || g1.all_reduce_mean(1, Matrix::full(1, 1, 4.0)).unwrap());
        let m0 = group.all_reduce_mean(0, Matrix::full(1, 1, 2.0)).unwrap();
        assert_eq!(m0[(0, 0)], 3.0);
        assert_eq!(h.join().unwrap()[(0, 0)], 3.0);
    }

    #[test]
    fn group_is_reusable_across_rounds() {
        let world = CollectiveWorld::new(2);
        let group = world.group(&[0, 1]);
        for round in 0..5 {
            let g1 = group.clone();
            let h = thread::spawn(move || g1.all_reduce_sum(1, Matrix::full(1, 1, round as f32)));
            let got = group.all_reduce_sum(0, Matrix::full(1, 1, 1.0)).unwrap();
            assert_eq!(got[(0, 0)], 1.0 + round as f32);
            h.join().unwrap().unwrap();
        }
    }

    #[test]
    fn reduction_is_deterministic_in_member_order() {
        // Floating-point order sensitivity: x + y + z evaluated in member
        // order must be identical across repetitions, regardless of thread
        // scheduling.
        let inputs = vec![
            Matrix::full(1, 1, 0.1),
            Matrix::full(1, 1, 1e8),
            Matrix::full(1, 1, -1e8),
        ];
        let first = run_group(vec![0, 1, 2], inputs.clone())[0].clone();
        for _ in 0..10 {
            let again = run_group(vec![0, 1, 2], inputs.clone())[0].clone();
            assert_eq!(first, again);
        }
    }

    #[test]
    fn subgroups_of_noncontiguous_ranks() {
        let outs = run_group(
            vec![1, 3],
            vec![Matrix::full(1, 2, 5.0), Matrix::full(1, 2, -2.0)],
        );
        for o in outs {
            assert_eq!(o.as_slice(), &[3.0, 3.0]);
        }
    }

    #[test]
    #[should_panic(expected = "not a member")]
    fn non_member_rank_panics() {
        let world = CollectiveWorld::new(4);
        let group = world.group(&[0, 1]);
        let _ = group.all_reduce_sum(3, Matrix::zeros(1, 1));
    }

    #[test]
    #[should_panic(expected = "deposited twice")]
    fn double_deposit_by_same_rank_panics() {
        let world = CollectiveWorld::new(2);
        let group = world.group(&[0, 1]);
        let g2 = group.clone();
        // Rank 0 enters a round and blocks waiting on rank 1; a second
        // thread contributing as rank 0 again must panic (the guard the
        // pre-transport implementation enforced), not desynchronize the
        // lanes.
        let _blocked = thread::spawn(move || g2.all_reduce_sum(0, Matrix::zeros(1, 1)));
        thread::sleep(std::time::Duration::from_millis(200));
        let _ = group.all_reduce_sum(0, Matrix::zeros(1, 1));
    }

    #[test]
    #[should_panic(expected = "duplicate ranks")]
    fn duplicate_ranks_panic() {
        let world = CollectiveWorld::new(4);
        let _ = world.group(&[0, 0]);
    }

    #[test]
    fn single_rank_group_is_identity() {
        let world = CollectiveWorld::new(1);
        let group = world.group(&[0]);
        let m = Matrix::full(2, 2, 7.0);
        assert_eq!(group.all_reduce_sum(0, m.clone()).unwrap(), m);
    }

    #[test]
    fn concurrent_groups_do_not_cross_talk() {
        // Two groups over the same world run rounds concurrently; channel
        // separation must keep their traffic apart.
        let world = CollectiveWorld::new(4);
        let ga = world.group(&[0, 1]);
        let gb = world.group(&[2, 3]);
        thread::scope(|s| {
            let mut handles = Vec::new();
            for round in 0..10u32 {
                let ga0 = ga.clone();
                let ga1 = ga.clone();
                let gb0 = gb.clone();
                let gb1 = gb.clone();
                handles.push(s.spawn(move || {
                    assert_eq!(
                        ga0.all_reduce_sum(0, Matrix::full(1, 1, round as f32))
                            .unwrap()[(0, 0)],
                        round as f32 + 100.0
                    );
                }));
                handles.push(s.spawn(move || {
                    ga1.all_reduce_sum(1, Matrix::full(1, 1, 100.0)).unwrap();
                }));
                handles.push(s.spawn(move || {
                    assert_eq!(
                        gb0.all_reduce_sum(2, Matrix::full(1, 1, round as f32))
                            .unwrap()[(0, 0)],
                        round as f32 + 1000.0
                    );
                }));
                handles.push(s.spawn(move || {
                    gb1.all_reduce_sum(3, Matrix::full(1, 1, 1000.0)).unwrap();
                }));
                for h in handles.drain(..) {
                    h.join().unwrap();
                }
            }
        });
    }
}
