//! Deterministic in-process all-reduce groups.

use opt_tensor::Matrix;
use parking_lot::{Condvar, Mutex};
use std::fmt;
use std::sync::Arc;

struct GroupState {
    /// Deposit slot per member (indexed by member position, not global rank).
    slots: Vec<Option<Matrix>>,
    /// Result of the current round, filled by the last depositor.
    result: Option<Matrix>,
    /// Number of members that have picked up the current result.
    picked_up: usize,
    /// Round counter for reuse across iterations.
    round: u64,
}

/// An all-reduce group over a fixed set of global ranks.
///
/// Semantics match NCCL's `allReduce(sum)`: every member contributes a
/// same-shaped matrix and receives the element-wise sum. The reduction is
/// performed in member order, so results are bit-deterministic regardless
/// of thread arrival order — important for the reproduction's
/// "fused embedding synchronization is mathematically identical" test.
///
/// The group is reusable across rounds (one round per training iteration).
///
/// # Example
///
/// ```
/// use opt_net::CollectiveWorld;
/// use opt_tensor::Matrix;
/// use std::thread;
///
/// let world = CollectiveWorld::new(2);
/// let g0 = world.group(&[0, 1]);
/// let g1 = g0.clone();
/// let h = thread::spawn(move || g1.all_reduce_sum(1, Matrix::full(1, 2, 2.0)));
/// let sum = g0.all_reduce_sum(0, Matrix::full(1, 2, 1.0));
/// assert_eq!(sum.as_slice(), &[3.0, 3.0]);
/// h.join().unwrap();
/// ```
#[derive(Clone)]
pub struct CollectiveGroup {
    members: Arc<Vec<usize>>,
    state: Arc<(Mutex<GroupState>, Condvar)>,
}

impl fmt::Debug for CollectiveGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CollectiveGroup({:?})", self.members)
    }
}

impl CollectiveGroup {
    fn new(members: Vec<usize>) -> Self {
        let n = members.len();
        let state = GroupState {
            slots: (0..n).map(|_| None).collect(),
            result: None,
            picked_up: 0,
            round: 0,
        };
        Self {
            members: Arc::new(members),
            state: Arc::new((Mutex::new(state), Condvar::new())),
        }
    }

    /// The global ranks participating in this group, in reduction order.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Number of participating ranks.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Contributes `m` on behalf of global rank `rank` and returns the
    /// element-wise sum over all members. Blocks until every member has
    /// contributed.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is not a member, if shapes mismatch across members,
    /// or if the same rank contributes twice in one round.
    pub fn all_reduce_sum(&self, rank: usize, m: Matrix) -> Matrix {
        let pos = self
            .members
            .iter()
            .position(|&r| r == rank)
            .unwrap_or_else(|| panic!("rank {rank} is not a member of {:?}", self.members));
        let (lock, cvar) = &*self.state;
        let mut st = lock.lock();
        // Wait for the previous round to fully drain before starting a new
        // deposit (protects pipelined reuse).
        while st.result.is_some() && st.slots[pos].is_some() {
            cvar.wait(&mut st);
        }
        assert!(
            st.slots[pos].is_none(),
            "rank {rank} deposited twice in one round"
        );
        st.slots[pos] = Some(m);
        if st.slots.iter().all(Option::is_some) {
            // Last depositor reduces in member order (deterministic).
            let mut iter = st.slots.iter_mut();
            let mut acc = iter.next().unwrap().take().unwrap();
            for slot in iter {
                let m = slot.take().unwrap();
                assert_eq!(acc.shape(), m.shape(), "all-reduce shape mismatch");
                acc.add_assign(&m);
            }
            st.result = Some(acc);
            st.round += 1;
            cvar.notify_all();
        } else {
            let my_round = st.round;
            while st.result.is_none() || st.round == my_round {
                cvar.wait(&mut st);
            }
        }
        let out = st.result.clone().expect("result present");
        st.picked_up += 1;
        if st.picked_up == self.members.len() {
            st.picked_up = 0;
            st.result = None;
            cvar.notify_all();
        }
        out
    }

    /// All-reduce returning the mean instead of the sum.
    ///
    /// # Panics
    ///
    /// Same conditions as [`CollectiveGroup::all_reduce_sum`].
    pub fn all_reduce_mean(&self, rank: usize, m: Matrix) -> Matrix {
        let mut sum = self.all_reduce_sum(rank, m);
        sum.scale_assign(1.0 / self.size() as f32);
        sum
    }
}

/// Factory for [`CollectiveGroup`]s over a world of ranks.
///
/// Mirrors the process-group bootstrap of `torch.distributed`: the trainer
/// creates one world, then carves out data-parallel groups (one per
/// pipeline stage), the embedding-synchronization pair, or the paper's
/// fused embedding group spanning both.
#[derive(Debug)]
pub struct CollectiveWorld {
    world: usize,
}

impl CollectiveWorld {
    /// Creates a world of `world` ranks.
    ///
    /// # Panics
    ///
    /// Panics if `world == 0`.
    pub fn new(world: usize) -> Self {
        assert!(world > 0, "world size must be positive");
        Self { world }
    }

    /// Number of ranks in the world.
    pub fn world(&self) -> usize {
        self.world
    }

    /// Creates a reusable all-reduce group over `ranks`.
    ///
    /// # Panics
    ///
    /// Panics if `ranks` is empty, contains duplicates, or references a
    /// rank outside the world.
    pub fn group(&self, ranks: &[usize]) -> CollectiveGroup {
        assert!(!ranks.is_empty(), "group must have at least one member");
        let mut sorted = ranks.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ranks.len(), "group has duplicate ranks");
        assert!(
            ranks.iter().all(|&r| r < self.world),
            "group rank out of range (world {})",
            self.world
        );
        CollectiveGroup::new(ranks.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn run_group(members: Vec<usize>, inputs: Vec<Matrix>) -> Vec<Matrix> {
        let world = CollectiveWorld::new(members.iter().max().unwrap() + 1);
        let group = world.group(&members);
        let mut handles = Vec::new();
        for (rank, m) in members.iter().copied().zip(inputs) {
            let g = group.clone();
            handles.push(thread::spawn(move || g.all_reduce_sum(rank, m)));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn two_rank_sum() {
        let outs = run_group(
            vec![0, 1],
            vec![Matrix::full(2, 2, 1.0), Matrix::full(2, 2, 2.0)],
        );
        for o in outs {
            assert_eq!(o, Matrix::full(2, 2, 3.0));
        }
    }

    #[test]
    fn four_rank_sum_all_equal_results() {
        let inputs: Vec<_> = (0..4).map(|i| Matrix::full(3, 3, i as f32)).collect();
        let outs = run_group(vec![0, 1, 2, 3], inputs);
        for o in &outs {
            assert_eq!(*o, Matrix::full(3, 3, 6.0));
        }
    }

    #[test]
    fn mean_divides_by_group_size() {
        let world = CollectiveWorld::new(2);
        let group = world.group(&[0, 1]);
        let g1 = group.clone();
        let h = thread::spawn(move || g1.all_reduce_mean(1, Matrix::full(1, 1, 4.0)));
        let m0 = group.all_reduce_mean(0, Matrix::full(1, 1, 2.0));
        assert_eq!(m0[(0, 0)], 3.0);
        assert_eq!(h.join().unwrap()[(0, 0)], 3.0);
    }

    #[test]
    fn group_is_reusable_across_rounds() {
        let world = CollectiveWorld::new(2);
        let group = world.group(&[0, 1]);
        for round in 0..5 {
            let g1 = group.clone();
            let h = thread::spawn(move || g1.all_reduce_sum(1, Matrix::full(1, 1, round as f32)));
            let got = group.all_reduce_sum(0, Matrix::full(1, 1, 1.0));
            assert_eq!(got[(0, 0)], 1.0 + round as f32);
            h.join().unwrap();
        }
    }

    #[test]
    fn reduction_is_deterministic_in_member_order() {
        // Floating-point order sensitivity: x + y + z evaluated in member
        // order must be identical across repetitions, regardless of thread
        // scheduling.
        let inputs = vec![
            Matrix::full(1, 1, 0.1),
            Matrix::full(1, 1, 1e8),
            Matrix::full(1, 1, -1e8),
        ];
        let first = run_group(vec![0, 1, 2], inputs.clone())[0].clone();
        for _ in 0..10 {
            let again = run_group(vec![0, 1, 2], inputs.clone())[0].clone();
            assert_eq!(first, again);
        }
    }

    #[test]
    fn subgroups_of_noncontiguous_ranks() {
        let outs = run_group(
            vec![1, 3],
            vec![Matrix::full(1, 2, 5.0), Matrix::full(1, 2, -2.0)],
        );
        for o in outs {
            assert_eq!(o.as_slice(), &[3.0, 3.0]);
        }
    }

    #[test]
    #[should_panic(expected = "not a member")]
    fn non_member_rank_panics() {
        let world = CollectiveWorld::new(4);
        let group = world.group(&[0, 1]);
        group.all_reduce_sum(3, Matrix::zeros(1, 1));
    }

    #[test]
    #[should_panic(expected = "duplicate ranks")]
    fn duplicate_ranks_panic() {
        let world = CollectiveWorld::new(4);
        let _ = world.group(&[0, 0]);
    }

    #[test]
    fn single_rank_group_is_identity() {
        let world = CollectiveWorld::new(1);
        let group = world.group(&[0]);
        let m = Matrix::full(2, 2, 7.0);
        assert_eq!(group.all_reduce_sum(0, m.clone()), m);
    }
}
