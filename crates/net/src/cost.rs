//! Analytic communication cost models (alpha-beta) used by the simulator.
//!
//! The paper's Eq. 15 uses the classic ring all-reduce volume result from
//! Thakur et al.: for `R` ranks reducing `V` bytes, the bytes crossing any
//! rank's link total `2 V (R-1) / R`. These helpers expose that model plus
//! simple latency-bandwidth point-to-point timing.

use crate::{LinkKind, Topology};

/// Bytes crossing each rank's link for a ring all-reduce of `volume` bytes
/// over `ranks` participants: `2 V (R-1) / R`.
///
/// For `ranks <= 1` no communication is needed and the result is 0.
///
/// # Example
///
/// ```
/// use opt_net::ring_all_reduce_wire_bytes;
/// // Two ranks: each sends/receives exactly V bytes (reduce + broadcast halves).
/// assert_eq!(ring_all_reduce_wire_bytes(1000.0, 2), 1000.0);
/// // Large R approaches 2V.
/// assert!(ring_all_reduce_wire_bytes(1000.0, 128) > 1980.0);
/// ```
pub fn ring_all_reduce_wire_bytes(volume: f64, ranks: usize) -> f64 {
    if ranks <= 1 {
        return 0.0;
    }
    2.0 * volume * (ranks as f64 - 1.0) / ranks as f64
}

/// Time in seconds for a ring all-reduce of `volume` bytes over `ranks`
/// participants on a link with `bandwidth` bytes/s and per-step `latency`
/// seconds. The ring performs `2 (R-1)` latency-bound steps.
pub fn all_reduce_time_s(volume: f64, ranks: usize, bandwidth: f64, latency: f64) -> f64 {
    if ranks <= 1 {
        return 0.0;
    }
    let steps = 2.0 * (ranks as f64 - 1.0);
    steps * latency + ring_all_reduce_wire_bytes(volume, ranks) / bandwidth
}

/// Time in seconds for a point-to-point transfer of `volume` bytes.
pub fn p2p_time_s(volume: f64, bandwidth: f64, latency: f64) -> f64 {
    latency + volume / bandwidth
}

/// A cost model bound to a [`Topology`], dispatching on [`LinkKind`].
///
/// # Example
///
/// ```
/// use opt_net::{CostModel, LinkKind, Topology};
/// let cm = CostModel::new(Topology::paper_cluster());
/// let t_inter = cm.p2p(1_000_000.0, LinkKind::InterNode);
/// let t_intra = cm.p2p(1_000_000.0, LinkKind::IntraNode);
/// assert!(t_inter > t_intra);
/// ```
#[derive(Debug, Clone)]
pub struct CostModel {
    topology: Topology,
}

impl CostModel {
    /// Binds the cost model to a topology.
    pub fn new(topology: Topology) -> Self {
        Self { topology }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Point-to-point transfer time in seconds.
    pub fn p2p(&self, volume_bytes: f64, kind: LinkKind) -> f64 {
        p2p_time_s(
            volume_bytes,
            self.topology.bandwidth_bytes_per_s(kind),
            self.topology.latency_s(kind),
        )
    }

    /// Ring all-reduce time in seconds over `ranks` participants.
    pub fn all_reduce(&self, volume_bytes: f64, ranks: usize, kind: LinkKind) -> f64 {
        all_reduce_time_s(
            volume_bytes,
            ranks,
            self.topology.bandwidth_bytes_per_s(kind),
            self.topology.latency_s(kind),
        )
    }

    /// The paper's Eq. 15: baseline embedding-layer communication cost
    /// (one D-way all-reduce from data parallelism plus one 2-way
    /// all-reduce for embedding synchronization), expressed in *bytes on
    /// the wire per rank*: `V (3D - 2) / D`.
    pub fn embedding_sync_baseline_bytes(&self, volume: f64, dp_ways: usize) -> f64 {
        ring_all_reduce_wire_bytes(volume, dp_ways) + ring_all_reduce_wire_bytes(volume, 2)
    }

    /// The paper's Eq. 16: fused embedding synchronization cost — a single
    /// `2D`-way all-reduce: `V (2 * 2D - 2) / 2D = V (2D - 1) / D` bytes.
    pub fn embedding_sync_fused_bytes(&self, volume: f64, dp_ways: usize) -> f64 {
        ring_all_reduce_wire_bytes(volume, 2 * dp_ways)
    }

    /// Relative wire-byte reduction of fused embedding synchronization:
    /// `1 - C_fused / C_emb = (D-1)/(3D-2)` (30 % at D = 4, asymptote 1/3).
    pub fn embedding_fusion_reduction(&self, dp_ways: usize) -> f64 {
        let base = self.embedding_sync_baseline_bytes(1.0, dp_ways);
        let fused = self.embedding_sync_fused_bytes(1.0, dp_ways);
        if base == 0.0 {
            0.0
        } else {
            1.0 - fused / base
        }
    }

    /// The paper's §6 "improvement" metric: speedup of the embedding
    /// synchronization phase, `C_emb / C_fused - 1 = (D-1)/(2D-1)` —
    /// 42.9 % at D = 4, approaching 50 % as D grows.
    pub fn embedding_fusion_speedup(&self, dp_ways: usize) -> f64 {
        let base = self.embedding_sync_baseline_bytes(1.0, dp_ways);
        let fused = self.embedding_sync_fused_bytes(1.0, dp_ways);
        if fused == 0.0 {
            0.0
        } else {
            base / fused - 1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_volume_matches_closed_form() {
        // 2 V (R-1)/R for a few Rs.
        assert_eq!(ring_all_reduce_wire_bytes(100.0, 4), 150.0);
        assert_eq!(ring_all_reduce_wire_bytes(100.0, 1), 0.0);
    }

    #[test]
    fn eq15_matches_paper_formula() {
        // C_emb = V (3D-2)/D
        let cm = CostModel::new(Topology::paper_cluster());
        for d in [2usize, 4, 8, 16] {
            let got = cm.embedding_sync_baseline_bytes(1.0, d);
            let expect = (3.0 * d as f64 - 2.0) / d as f64;
            assert!((got - expect).abs() < 1e-12, "D={d}: {got} vs {expect}");
        }
    }

    #[test]
    fn eq16_matches_paper_formula() {
        // C_fused = V (2D-1)/D
        let cm = CostModel::new(Topology::paper_cluster());
        for d in [2usize, 4, 8, 16] {
            let got = cm.embedding_sync_fused_bytes(1.0, d);
            let expect = (2.0 * d as f64 - 1.0) / d as f64;
            assert!((got - expect).abs() < 1e-12, "D={d}: {got} vs {expect}");
        }
    }

    #[test]
    fn fusion_speedup_is_42_9_percent_at_d4() {
        // Paper §6: "For D = 4 used in our settings, the theoretical
        // benefit already reaches 42.9%" — the speedup (D-1)/(2D-1) = 3/7.
        let cm = CostModel::new(Topology::paper_cluster());
        let speedup = cm.embedding_fusion_speedup(4);
        assert!((speedup - 3.0 / 7.0).abs() < 1e-9, "speedup {speedup}");
    }

    #[test]
    fn fusion_speedup_approaches_50_percent() {
        let cm = CostModel::new(Topology::paper_cluster());
        let s4 = cm.embedding_fusion_speedup(4);
        let s16 = cm.embedding_fusion_speedup(16);
        let s1024 = cm.embedding_fusion_speedup(1024);
        assert!(s4 < s16 && s16 < s1024);
        assert!(s1024 < 0.5 && s1024 > 0.499);
    }

    #[test]
    fn fusion_reduction_is_30_percent_at_d4() {
        let cm = CostModel::new(Topology::paper_cluster());
        let reduction = cm.embedding_fusion_reduction(4);
        assert!((reduction - 0.3).abs() < 1e-9, "reduction {reduction}");
    }

    #[test]
    fn all_reduce_time_zero_for_single_rank() {
        assert_eq!(all_reduce_time_s(1e9, 1, 25e9, 5e-6), 0.0);
    }

    #[test]
    fn all_reduce_time_increases_with_volume() {
        let t1 = all_reduce_time_s(1e6, 4, 25e9, 5e-6);
        let t2 = all_reduce_time_s(1e8, 4, 25e9, 5e-6);
        assert!(t2 > t1);
    }

    #[test]
    fn p2p_time_latency_floor() {
        assert!((p2p_time_s(0.0, 25e9, 5e-6) - 5e-6).abs() < 1e-12);
    }
}
