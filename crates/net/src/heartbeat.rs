//! Coordinator-driven heartbeat failure detection.
//!
//! Every worker rank sends a small beat frame to the coordinator on a
//! dedicated control lane ([`CH_HEARTBEAT`]) every
//! `OPT_NET_HEARTBEAT_MS` milliseconds. The coordinator feeds arrival
//! times into a [`FailureDetector`]; a rank whose beats have been silent
//! for `interval * misses` is declared dead. This is how a SIGKILLed
//! rank is *detected* — instead of a survivor discovering the death via
//! a 30-second recv-timeout panic deep inside a collective.
//!
//! The detector itself is pure bookkeeping over caller-supplied
//! [`Instant`]s, so its semantics (including the slow-but-alive
//! false-positive boundary) are unit-testable without sockets or clocks.
//!
//! Heartbeat traffic lives in channel namespace 3 (control plane), which
//! [`crate::TrafficBreakdown::new`] filters out of the per-lane traffic
//! report — so the beat cadence can never perturb the bit-exact traffic
//! contract between backends.

use crate::transport::channel_id;
use std::time::{Duration, Instant};

/// Control lane carrying worker → coordinator heartbeats (namespace 3,
/// after the command/ack/shard/restore/metrics/trace lanes).
pub const CH_HEARTBEAT: u64 = channel_id(3, 6);

/// Default beat interval when `OPT_NET_HEARTBEAT_MS` is unset.
const DEFAULT_INTERVAL_MS: u64 = 100;

/// Default missed-beat threshold when `OPT_NET_HEARTBEAT_MISSES` is
/// unset. Detection latency defaults to `interval * misses` = 1 s.
const DEFAULT_MISSES: u32 = 10;

/// Heartbeat cadence and the missed-beat threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatConfig {
    /// How often each worker sends a beat.
    pub interval: Duration,
    /// How many consecutive intervals of silence declare a rank dead.
    pub misses: u32,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig {
            interval: Duration::from_millis(DEFAULT_INTERVAL_MS),
            misses: DEFAULT_MISSES,
        }
    }
}

impl HeartbeatConfig {
    /// Reads `OPT_NET_HEARTBEAT_MS` / `OPT_NET_HEARTBEAT_MISSES`, falling
    /// back to the defaults (100 ms × 10 misses = 1 s detection latency)
    /// for unset or unparsable values.
    pub fn from_env() -> Self {
        let ms = std::env::var("OPT_NET_HEARTBEAT_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(DEFAULT_INTERVAL_MS)
            .max(1);
        let misses = std::env::var("OPT_NET_HEARTBEAT_MISSES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .unwrap_or(DEFAULT_MISSES)
            .max(1);
        HeartbeatConfig {
            interval: Duration::from_millis(ms),
            misses,
        }
    }

    /// Silence longer than this declares a rank dead.
    pub fn silence_limit(&self) -> Duration {
        self.interval.saturating_mul(self.misses.max(1))
    }
}

/// Pure failure-detection bookkeeping: last-beat timestamps per rank,
/// judged against [`HeartbeatConfig::silence_limit`].
///
/// A rank is *suspected dead* once `now - last_beat(rank)` exceeds the
/// silence limit. A slow-but-alive rank whose beats keep arriving within
/// the limit — however late within it — is never flagged, which is the
/// false-positive boundary the failure-matrix tests pin down.
#[derive(Debug, Clone)]
pub struct FailureDetector {
    config: HeartbeatConfig,
    /// Last observed beat per rank. Seeded with the construction instant:
    /// a freshly meshed world gets one full silence window before anyone
    /// can be suspected.
    last_beat: Vec<Instant>,
}

impl FailureDetector {
    /// Creates a detector over `world` ranks, treating `now` as the most
    /// recent beat of every rank.
    pub fn new(config: HeartbeatConfig, world: usize, now: Instant) -> Self {
        FailureDetector {
            config,
            last_beat: vec![now; world],
        }
    }

    /// The detector's configuration.
    pub fn config(&self) -> HeartbeatConfig {
        self.config
    }

    /// Records a beat from `rank` observed at `now`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is outside the world.
    pub fn record_beat(&mut self, rank: usize, now: Instant) {
        let slot = &mut self.last_beat[rank];
        // Beats can be drained out of order relative to the clock reads
        // around them; never move a rank's liveness backwards.
        if now > *slot {
            *slot = now;
        }
    }

    /// Re-arms `rank` after a replacement process took over its identity,
    /// granting it a fresh silence window starting at `now`.
    pub fn reset(&mut self, rank: usize, now: Instant) {
        self.last_beat[rank] = now;
    }

    /// How long `rank` has been silent as of `now`.
    pub fn silence(&self, rank: usize, now: Instant) -> Duration {
        now.saturating_duration_since(self.last_beat[rank])
    }

    /// Whether `rank` is suspected dead as of `now`.
    pub fn is_suspect(&self, rank: usize, now: Instant) -> bool {
        self.silence(rank, now) > self.config.silence_limit()
    }

    /// Every rank suspected dead as of `now`, in rank order.
    pub fn dead_ranks(&self, now: Instant) -> Vec<usize> {
        (0..self.last_beat.len())
            .filter(|&r| self.is_suspect(r, now))
            .collect()
    }

    /// The lowest-numbered suspected-dead rank, if any.
    pub fn first_dead(&self, now: Instant) -> Option<usize> {
        (0..self.last_beat.len()).find(|&r| self.is_suspect(r, now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chanstats::ChannelClass;

    fn cfg(interval_ms: u64, misses: u32) -> HeartbeatConfig {
        HeartbeatConfig {
            interval: Duration::from_millis(interval_ms),
            misses,
        }
    }

    #[test]
    fn heartbeat_lane_is_control_class() {
        // The traffic report filters control-plane lanes, so the beat
        // cadence can never perturb the bit-exact traffic contract.
        assert_eq!(ChannelClass::of(CH_HEARTBEAT), ChannelClass::Control);
    }

    #[test]
    fn fresh_world_gets_a_full_silence_window() {
        let t0 = Instant::now();
        let d = FailureDetector::new(cfg(100, 10), 4, t0);
        assert_eq!(d.dead_ranks(t0), Vec::<usize>::new());
        assert_eq!(d.first_dead(t0 + Duration::from_millis(999)), None);
        assert_eq!(d.first_dead(t0 + Duration::from_millis(1001)), Some(0));
    }

    #[test]
    fn silent_rank_is_detected_others_are_not() {
        let t0 = Instant::now();
        let mut d = FailureDetector::new(cfg(10, 3), 3, t0);
        // Ranks 0 and 2 keep beating; rank 1 goes silent after t0.
        for step in 1..=20u64 {
            let now = t0 + Duration::from_millis(step * 10);
            d.record_beat(0, now);
            d.record_beat(2, now);
        }
        let now = t0 + Duration::from_millis(200);
        assert_eq!(d.dead_ranks(now), vec![1]);
        assert!(d.is_suspect(1, now));
        assert!(!d.is_suspect(0, now));
        assert!(d.silence(1, now) >= Duration::from_millis(200));
    }

    #[test]
    fn slow_but_alive_rank_is_never_flagged() {
        // A rank that beats only once per (silence_limit - epsilon) skirts
        // the threshold forever without a false positive.
        let t0 = Instant::now();
        let mut d = FailureDetector::new(cfg(10, 5), 1, t0);
        let limit = d.config().silence_limit();
        assert_eq!(limit, Duration::from_millis(50));
        let mut last = t0;
        for _ in 0..50 {
            let next = last + limit - Duration::from_millis(1);
            assert!(!d.is_suspect(0, next), "false positive on a live rank");
            d.record_beat(0, next);
            last = next;
        }
        // Exactly at the limit is still alive; only *exceeding* it kills.
        assert!(!d.is_suspect(0, last + limit));
        assert!(d.is_suspect(0, last + limit + Duration::from_millis(1)));
    }

    #[test]
    fn reset_rearms_a_replaced_rank() {
        let t0 = Instant::now();
        let mut d = FailureDetector::new(cfg(10, 2), 2, t0);
        let later = t0 + Duration::from_secs(10);
        assert!(d.is_suspect(0, later));
        d.reset(0, later);
        assert!(!d.is_suspect(0, later));
        assert_eq!(d.dead_ranks(later), vec![1]);
    }

    #[test]
    fn beats_never_move_liveness_backwards() {
        let t0 = Instant::now();
        let mut d = FailureDetector::new(cfg(10, 2), 1, t0);
        let t1 = t0 + Duration::from_millis(100);
        d.record_beat(0, t1);
        // A beat stamped before the latest one must not regress the rank.
        d.record_beat(0, t0);
        assert_eq!(d.silence(0, t1), Duration::ZERO);
    }

    #[test]
    fn env_defaults_apply() {
        // The OPT_NET_HEARTBEAT_* knobs are unset in the test environment.
        let c = HeartbeatConfig::from_env();
        assert_eq!(c, HeartbeatConfig::default());
        assert_eq!(c.silence_limit(), Duration::from_millis(1000));
    }
}
