//! `opt-net` — the communication substrate of the Optimus-CC reproduction.
//!
//! The paper runs on NCCL over NVLink (intra-node) and 200 Gb/s Infiniband
//! HDR (inter-node). This crate replaces that fabric with two layers:
//!
//! 1. **Real collectives and point-to-point lanes** for the numerical
//!    trainer, written against a pluggable [`Transport`]: [`P2pMesh`]
//!    gives every (src, dst) pair a FIFO message lane (pipeline
//!    inter-stage traffic), and [`CollectiveGroup`] implements a
//!    deterministic all-reduce over any subset of ranks (data-parallel
//!    gradient exchange, embedding synchronization, and the paper's *fused*
//!    embedding synchronization which simply uses a larger group). Two
//!    backends exist: [`LocalTransport`] (in-process crossbeam lanes, the
//!    extracted original fabric) and [`TcpTransport`] (one OS process per
//!    rank, length-framed checksummed TCP). Collectives reduce strictly in
//!    member order, so both backends produce **the same bits**.
//! 2. **Analytic cost models** ([`CostModel`]) for the discrete-event simulator:
//!    the standard alpha–beta model with the ring all-reduce volume factor
//!    `2 V (R-1) / R` that the paper's Eq. 15 builds on, and the
//!    [`Topology`] describing the paper's cluster (Table 1).
//!
//! Traffic is accounted per class ([`TrafficClass`]) by [`TrafficLedger`],
//! which experiments read to verify volume reductions.
//!
//! The crate also provides the **rendezvous + fetch** substrate for
//! cross-host elastic restore: a [`ShardStore`] of named blobs (an
//! in-process [`MemShardStore`], a filesystem-backed [`FsShardStore`],
//! and a genuinely remote [`TcpShardStore`] client talking to a
//! [`ShardStoreServer`]) through which restarted workers resolve the
//! checkpoint manifest and fetch only their own shard.

mod chanstats;
mod collective;
mod cost;
mod heartbeat;
mod p2p;
mod retry;
mod shardstore;
mod topology;
mod traffic;
mod transport;

pub use chanstats::{ChannelClass, ChannelLedger, ChannelStat, TrafficBreakdown};
pub use collective::{CollectiveGroup, CollectiveWorld};
pub use cost::{all_reduce_time_s, p2p_time_s, ring_all_reduce_wire_bytes, CostModel};
pub use heartbeat::{FailureDetector, HeartbeatConfig, CH_HEARTBEAT};
pub use p2p::{P2pMesh, RecvError};
pub use retry::RetryPolicy;
pub use shardstore::{
    FsShardStore, MemShardStore, ShardStore, ShardStoreError, ShardStoreServer, TcpShardStore,
    STORE_MAGIC, STORE_PROTOCOL_VERSION,
};
pub use topology::{LinkKind, Topology};
pub use traffic::{TrafficClass, TrafficLedger, TrafficSnapshot};
pub use transport::{
    channel_id, net_timeout, tcp_rejoin, tcp_rendezvous, wire_frame, wire_hello, LocalTransport,
    Payload, SharedPayload, TcpBound, TcpTransport, Transport, TransportError, WireValue,
    WIRE_FORMAT_VERSION, WIRE_MAGIC, WIRE_OVERHEAD_BYTES,
};
