//! `opt-net` — the communication substrate of the Optimus-CC reproduction.
//!
//! The paper runs on NCCL over NVLink (intra-node) and 200 Gb/s Infiniband
//! HDR (inter-node). This crate replaces that fabric with two layers:
//!
//! 1. **Real in-process collectives** for the numerical trainer:
//!    [`P2pMesh`] gives every (src, dst) pair a FIFO message channel
//!    (pipeline inter-stage traffic), and [`CollectiveGroup`] implements a
//!    deterministic all-reduce over any subset of ranks (data-parallel
//!    gradient exchange, embedding synchronization, and the paper's *fused*
//!    embedding synchronization which simply uses a larger group).
//! 2. **Analytic cost models** ([`CostModel`]) for the discrete-event simulator:
//!    the standard alpha–beta model with the ring all-reduce volume factor
//!    `2 V (R-1) / R` that the paper's Eq. 15 builds on, and the
//!    [`Topology`] describing the paper's cluster (Table 1).
//!
//! Traffic is accounted per class ([`TrafficClass`]) by [`TrafficLedger`],
//! which experiments read to verify volume reductions.
//!
//! The crate also provides the **rendezvous + fetch** substrate for
//! cross-host elastic restore: a [`ShardStore`] of named blobs (an
//! in-process [`MemShardStore`] and a filesystem-backed [`FsShardStore`])
//! through which restarted workers resolve the checkpoint manifest and
//! fetch only their own shard.

mod collective;
mod cost;
mod p2p;
mod shardstore;
mod topology;
mod traffic;

pub use collective::{CollectiveGroup, CollectiveWorld};
pub use cost::{all_reduce_time_s, p2p_time_s, ring_all_reduce_wire_bytes, CostModel};
pub use p2p::{P2pMesh, RecvError};
pub use shardstore::{FsShardStore, MemShardStore, ShardStore, ShardStoreError};
pub use topology::{LinkKind, Topology};
pub use traffic::{TrafficClass, TrafficLedger, TrafficSnapshot};
