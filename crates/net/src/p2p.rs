//! Point-to-point message mesh for pipeline inter-stage communication.

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::fmt;
use std::time::Duration;

/// Error returned by [`P2pMesh::recv`] when the peer disconnected or the
/// receive timed out (indicating a deadlocked schedule — a bug).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvError {
    /// The sending side was dropped before a message arrived.
    Disconnected,
    /// No message arrived within the timeout.
    Timeout,
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvError::Disconnected => write!(f, "peer disconnected"),
            RecvError::Timeout => write!(f, "receive timed out (schedule deadlock?)"),
        }
    }
}

impl std::error::Error for RecvError {}

/// A full mesh of FIFO channels between `world` ranks, carrying messages of
/// type `T`.
///
/// This models the point-to-point sends of pipeline parallelism: each
/// (src, dst) ordered pair has an independent FIFO, exactly like a
/// connection-oriented transport. Message order between a fixed pair is
/// preserved; messages between different pairs are unordered, matching the
/// guarantees the 1F1B schedule relies on.
///
/// Cloning the mesh is cheap (channels are internally reference-counted),
/// so one clone is handed to each rank's thread.
///
/// # Example
///
/// ```
/// use opt_net::P2pMesh;
/// let mesh: P2pMesh<String> = P2pMesh::new(2);
/// mesh.send(0, 1, "hello".to_string());
/// assert_eq!(mesh.recv(0, 1).unwrap(), "hello");
/// ```
#[derive(Clone)]
pub struct P2pMesh<T> {
    world: usize,
    senders: Vec<Sender<T>>,
    receivers: Vec<Receiver<T>>,
    timeout: Duration,
}

impl<T> fmt::Debug for P2pMesh<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P2pMesh(world={})", self.world)
    }
}

impl<T: Send> P2pMesh<T> {
    /// Creates a mesh over `world` ranks with a 30 s receive timeout.
    ///
    /// # Panics
    ///
    /// Panics if `world == 0`.
    pub fn new(world: usize) -> Self {
        Self::with_timeout(world, Duration::from_secs(30))
    }

    /// Creates a mesh with an explicit receive timeout. Receives that
    /// exceed the timeout return [`RecvError::Timeout`]; in a correct
    /// schedule this only fires on deadlock bugs.
    ///
    /// # Panics
    ///
    /// Panics if `world == 0`.
    pub fn with_timeout(world: usize, timeout: Duration) -> Self {
        assert!(world > 0, "world size must be positive");
        let mut senders = Vec::with_capacity(world * world);
        let mut receivers = Vec::with_capacity(world * world);
        for _ in 0..world * world {
            let (s, r) = unbounded();
            senders.push(s);
            receivers.push(r);
        }
        Self {
            world,
            senders,
            receivers,
            timeout,
        }
    }

    /// Number of ranks in the mesh.
    pub fn world(&self) -> usize {
        self.world
    }

    /// Sends `msg` on the (src, dst) FIFO. Non-blocking.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range.
    pub fn send(&self, src: usize, dst: usize, msg: T) {
        assert!(src < self.world && dst < self.world, "rank out of range");
        // Receiver ends are held by the mesh itself, so send cannot fail.
        self.senders[src * self.world + dst]
            .send(msg)
            .expect("mesh receiver endpoint dropped");
    }

    /// Receives the next message on the (src, dst) FIFO, blocking up to the
    /// configured timeout.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError::Timeout`] if nothing arrives in time, or
    /// [`RecvError::Disconnected`] if all senders were dropped.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range.
    pub fn recv(&self, src: usize, dst: usize) -> Result<T, RecvError> {
        assert!(src < self.world && dst < self.world, "rank out of range");
        match self.receivers[src * self.world + dst].recv_timeout(self.timeout) {
            Ok(msg) => Ok(msg),
            Err(RecvTimeoutError::Timeout) => Err(RecvError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(RecvError::Disconnected),
        }
    }

    /// Attempts to receive without blocking; returns `None` if the FIFO is
    /// currently empty.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range.
    pub fn try_recv(&self, src: usize, dst: usize) -> Option<T> {
        assert!(src < self.world && dst < self.world, "rank out of range");
        self.receivers[src * self.world + dst].try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_preserved_per_pair() {
        let mesh: P2pMesh<u32> = P2pMesh::new(3);
        for i in 0..10 {
            mesh.send(1, 2, i);
        }
        for i in 0..10 {
            assert_eq!(mesh.recv(1, 2).unwrap(), i);
        }
    }

    #[test]
    fn pairs_are_independent() {
        let mesh: P2pMesh<&'static str> = P2pMesh::new(2);
        mesh.send(0, 1, "a");
        mesh.send(1, 0, "b");
        assert_eq!(mesh.recv(1, 0).unwrap(), "b");
        assert_eq!(mesh.recv(0, 1).unwrap(), "a");
    }

    #[test]
    fn cross_thread_transfer() {
        let mesh: P2pMesh<Vec<f32>> = P2pMesh::new(2);
        let m2 = mesh.clone();
        let h = thread::spawn(move || {
            m2.send(0, 1, vec![1.0, 2.0, 3.0]);
        });
        let got = mesh.recv(0, 1).unwrap();
        assert_eq!(got, vec![1.0, 2.0, 3.0]);
        h.join().unwrap();
    }

    #[test]
    fn timeout_fires_on_empty_channel() {
        let mesh: P2pMesh<u8> = P2pMesh::with_timeout(2, Duration::from_millis(10));
        assert_eq!(mesh.recv(0, 1), Err(RecvError::Timeout));
    }

    #[test]
    fn try_recv_nonblocking() {
        let mesh: P2pMesh<u8> = P2pMesh::new(2);
        assert_eq!(mesh.try_recv(0, 1), None);
        mesh.send(0, 1, 9);
        assert_eq!(mesh.try_recv(0, 1), Some(9));
    }

    #[test]
    #[should_panic(expected = "rank out of range")]
    fn out_of_range_rank_panics() {
        let mesh: P2pMesh<u8> = P2pMesh::new(2);
        mesh.send(0, 2, 1);
    }
}
