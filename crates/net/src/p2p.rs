//! Point-to-point message mesh for pipeline inter-stage communication,
//! generic over the [`Transport`] carrying its bytes.

use crate::transport::{net_timeout, LocalTransport, Transport, TransportError};
use opt_tensor::Persist;
use std::fmt;
use std::marker::PhantomData;
use std::sync::Arc;
use std::time::Duration;

/// Error returned by [`P2pMesh::recv`] when the peer disconnected or the
/// receive timed out (indicating a deadlocked schedule — a bug).
///
/// Carries the lane identity so a timeout in a many-rank run says *which*
/// edge of the pipeline stalled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvError {
    /// The sending side disappeared before a message arrived.
    Disconnected {
        /// Sending rank of the lane.
        src: usize,
        /// Receiving rank of the lane.
        dst: usize,
        /// World size of the mesh.
        world: usize,
    },
    /// No message arrived within the timeout.
    Timeout {
        /// Sending rank of the lane.
        src: usize,
        /// Receiving rank of the lane.
        dst: usize,
        /// World size of the mesh.
        world: usize,
        /// The timeout that elapsed.
        timeout: Duration,
    },
    /// A frame on the lane failed the transport's integrity validation
    /// (bad magic, length/checksum mismatch) — the connection is dead.
    Corrupt {
        /// Sending rank of the lane.
        src: usize,
        /// Receiving rank of the lane.
        dst: usize,
        /// Transport channel id of the lane.
        channel: u64,
        /// What the validator rejected.
        detail: String,
    },
    /// The transport failed below the mesh (I/O, rendezvous) in a way
    /// that is not a plain timeout or disconnect.
    Transport {
        /// Sending rank of the lane.
        src: usize,
        /// Receiving rank of the lane.
        dst: usize,
        /// Transport channel id of the lane.
        channel: u64,
        /// The underlying transport error.
        detail: String,
    },
    /// A delivered payload could not become the type this receiver asked
    /// for — the byte decode failed after integrity checks, or a typed
    /// zero-copy handoff carried a different type. The lane is being used
    /// inconsistently: a code bug, not a wire fault.
    Decode {
        /// Sending rank of the lane.
        src: usize,
        /// Receiving rank of the lane.
        dst: usize,
        /// Transport channel id of the lane.
        channel: u64,
        /// What the decoder rejected.
        detail: String,
    },
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvError::Disconnected { src, dst, world } => {
                write!(
                    f,
                    "peer disconnected on lane src {src} -> dst {dst} (world {world})"
                )
            }
            RecvError::Timeout {
                src,
                dst,
                world,
                timeout,
            } => write!(
                f,
                "receive on lane src {src} -> dst {dst} (world {world}) timed out after \
                 {} ms (schedule deadlock? timeout is tunable via OPT_NET_TIMEOUT_MS)",
                timeout.as_millis()
            ),
            RecvError::Corrupt {
                src,
                dst,
                channel,
                detail,
            } => write!(
                f,
                "frame on lane src {src} -> dst {dst} (channel {channel:#x}) failed \
                 integrity validation: {detail}"
            ),
            RecvError::Transport {
                src,
                dst,
                channel,
                detail,
            } => write!(
                f,
                "transport failed on lane src {src} -> dst {dst} (channel {channel:#x}): {detail}"
            ),
            RecvError::Decode {
                src,
                dst,
                channel,
                detail,
            } => write!(
                f,
                "payload on lane src {src} -> dst {dst} (channel {channel:#x}) failed to \
                 decode: {detail}"
            ),
        }
    }
}

impl std::error::Error for RecvError {}

/// A full mesh of FIFO lanes between `world` ranks, carrying messages of
/// type `T` (anything that round-trips the [`Persist`] byte codec —
/// bit-exactly, so a mesh hop never perturbs training state).
///
/// This models the point-to-point sends of pipeline parallelism: each
/// (src, dst) ordered pair has an independent FIFO, exactly like a
/// connection-oriented transport. Message order between a fixed pair is
/// preserved; messages between different pairs are unordered, matching the
/// guarantees the 1F1B schedule relies on.
///
/// Cloning the mesh is cheap (the transport is reference-counted), so one
/// clone is handed to each rank's thread; on a distributed backend each
/// process builds the mesh over its own rank's transport.
///
/// # Example
///
/// ```
/// use opt_net::P2pMesh;
/// let mesh: P2pMesh<String> = P2pMesh::new(2);
/// mesh.send(0, 1, "hello".to_string());
/// assert_eq!(mesh.recv(0, 1).unwrap(), "hello");
/// ```
pub struct P2pMesh<T, Tr: Transport = LocalTransport> {
    transport: Arc<Tr>,
    channel: u64,
    timeout: Duration,
    _payload: PhantomData<fn(T) -> T>,
}

impl<T, Tr: Transport> Clone for P2pMesh<T, Tr> {
    fn clone(&self) -> Self {
        Self {
            transport: Arc::clone(&self.transport),
            channel: self.channel,
            timeout: self.timeout,
            _payload: PhantomData,
        }
    }
}

impl<T, Tr: Transport> fmt::Debug for P2pMesh<T, Tr> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P2pMesh(world={})", self.transport.world())
    }
}

impl<T: Persist + Clone + Send + Sync + 'static> P2pMesh<T, LocalTransport> {
    /// Creates an in-process mesh over `world` ranks. The receive timeout
    /// is 30 s, tunable via `OPT_NET_TIMEOUT_MS`.
    ///
    /// # Panics
    ///
    /// Panics if `world == 0`.
    pub fn new(world: usize) -> Self {
        Self::with_timeout(world, net_timeout())
    }

    /// Creates an in-process mesh with an explicit receive timeout.
    /// Receives that exceed the timeout return [`RecvError::Timeout`]; in
    /// a correct schedule this only fires on deadlock bugs.
    ///
    /// # Panics
    ///
    /// Panics if `world == 0`.
    pub fn with_timeout(world: usize, timeout: Duration) -> Self {
        let mut mesh = Self::over(Arc::new(LocalTransport::new(world)), 0);
        mesh.timeout = timeout;
        mesh
    }
}

impl<T: Persist + Clone + Send + Sync + 'static, Tr: Transport> P2pMesh<T, Tr> {
    /// Builds a mesh over an existing (possibly shared) transport, using
    /// `channel` as its lane id — two meshes over one transport must use
    /// distinct channels. The receive timeout comes from
    /// `OPT_NET_TIMEOUT_MS` (default 30 s).
    pub fn over(transport: Arc<Tr>, channel: u64) -> Self {
        Self {
            transport,
            channel,
            timeout: net_timeout(),
            _payload: PhantomData,
        }
    }

    /// Number of ranks in the mesh.
    pub fn world(&self) -> usize {
        self.transport.world()
    }

    /// Sends `msg` on the (src, dst) FIFO. Non-blocking.
    ///
    /// The message travels typed: an in-process transport hands it across
    /// as an `Arc` with zero serialization, a byte-boundary transport
    /// encodes it at the socket.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range, or if the transport
    /// rejects the send (the peer process died).
    pub fn send(&self, src: usize, dst: usize, msg: T) {
        let world = self.world();
        assert!(src < world && dst < world, "rank out of range");
        self.transport
            .send_value(src, dst, self.channel, msg)
            .unwrap_or_else(|e| panic!("mesh send {src} -> {dst} failed: {e}"));
    }

    /// Receives the next message on the (src, dst) FIFO, blocking up to
    /// the configured timeout.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError::Timeout`] if nothing arrives in time,
    /// [`RecvError::Disconnected`] if the sender disappeared,
    /// [`RecvError::Corrupt`] if a frame on the lane failed integrity
    /// validation, [`RecvError::Decode`] if a delivered payload could not
    /// become a `T`, or [`RecvError::Transport`] for any other transport
    /// failure — every variant carries the (src, dst, channel) lane
    /// context so a many-rank run says *which* edge failed.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range.
    pub fn recv(&self, src: usize, dst: usize) -> Result<T, RecvError> {
        let world = self.world();
        assert!(src < world && dst < world, "rank out of range");
        self.transport
            .recv_value(src, dst, self.channel, self.timeout)
            .map_err(|e| self.map_err(src, dst, e))
    }

    /// Attempts to receive without blocking; returns `None` if the FIFO is
    /// currently empty.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range, or if a delivered payload
    /// fails to decode (this accessor has no error channel).
    pub fn try_recv(&self, src: usize, dst: usize) -> Option<T> {
        let world = self.world();
        assert!(src < world && dst < world, "rank out of range");
        self.transport
            .try_recv_value(src, dst, self.channel)
            .unwrap_or_else(|e| {
                if matches!(e, TransportError::Decode { .. }) {
                    panic!("mesh try_recv {src} -> {dst} failed: {e}")
                }
                None
            })
    }

    /// Maps a transport failure onto the mesh's lane-contextual error.
    fn map_err(&self, src: usize, dst: usize, e: TransportError) -> RecvError {
        match e {
            TransportError::Timeout { .. } => RecvError::Timeout {
                src,
                dst,
                world: self.world(),
                timeout: self.timeout,
            },
            TransportError::Disconnected { .. } => RecvError::Disconnected {
                src,
                dst,
                world: self.world(),
            },
            TransportError::Corrupt { detail } => RecvError::Corrupt {
                src,
                dst,
                channel: self.channel,
                detail,
            },
            TransportError::Decode { detail } => RecvError::Decode {
                src,
                dst,
                channel: self.channel,
                detail,
            },
            other => RecvError::Transport {
                src,
                dst,
                channel: self.channel,
                detail: other.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_preserved_per_pair() {
        let mesh: P2pMesh<u32> = P2pMesh::new(3);
        for i in 0..10 {
            mesh.send(1, 2, i);
        }
        for i in 0..10 {
            assert_eq!(mesh.recv(1, 2).unwrap(), i);
        }
    }

    #[test]
    fn pairs_are_independent() {
        let mesh: P2pMesh<String> = P2pMesh::new(2);
        mesh.send(0, 1, "a".to_string());
        mesh.send(1, 0, "b".to_string());
        assert_eq!(mesh.recv(1, 0).unwrap(), "b");
        assert_eq!(mesh.recv(0, 1).unwrap(), "a");
    }

    #[test]
    fn cross_thread_transfer() {
        let mesh: P2pMesh<Vec<f32>> = P2pMesh::new(2);
        let m2 = mesh.clone();
        let h = thread::spawn(move || {
            m2.send(0, 1, vec![1.0, 2.0, 3.0]);
        });
        let got = mesh.recv(0, 1).unwrap();
        assert_eq!(got, vec![1.0, 2.0, 3.0]);
        h.join().unwrap();
    }

    #[test]
    fn timeout_fires_on_empty_channel_with_lane_context() {
        let mesh: P2pMesh<u8> = P2pMesh::with_timeout(2, Duration::from_millis(10));
        let err = mesh.recv(0, 1).unwrap_err();
        assert!(matches!(
            err,
            RecvError::Timeout {
                src: 0,
                dst: 1,
                world: 2,
                ..
            }
        ));
        let msg = err.to_string();
        assert!(msg.contains("src 0 -> dst 1"), "uninformative: {msg}");
        assert!(msg.contains("world 2"), "uninformative: {msg}");
        assert!(msg.contains("OPT_NET_TIMEOUT_MS"), "no tuning hint: {msg}");
    }

    #[test]
    fn try_recv_nonblocking() {
        let mesh: P2pMesh<u8> = P2pMesh::new(2);
        assert_eq!(mesh.try_recv(0, 1), None);
        mesh.send(0, 1, 9);
        assert_eq!(mesh.try_recv(0, 1), Some(9));
    }

    #[test]
    #[should_panic(expected = "rank out of range")]
    fn out_of_range_rank_panics() {
        let mesh: P2pMesh<u8> = P2pMesh::new(2);
        mesh.send(0, 2, 1);
    }

    /// A transport whose `recv` always fails with a fixed error, for
    /// pinning down the error mapping.
    #[derive(Debug)]
    struct FailingTransport(TransportError);

    impl Transport for FailingTransport {
        fn world(&self) -> usize {
            2
        }

        fn send_payload(
            &self,
            _: usize,
            _: usize,
            _: u64,
            _: crate::Payload,
        ) -> Result<(), TransportError> {
            Ok(())
        }

        fn recv_payload(
            &self,
            _: usize,
            _: usize,
            _: u64,
            _: Duration,
        ) -> Result<crate::Payload, TransportError> {
            Err(self.0.clone())
        }

        fn try_recv_payload(
            &self,
            _: usize,
            _: usize,
            _: u64,
        ) -> Result<Option<crate::Payload>, TransportError> {
            Ok(None)
        }
    }

    #[test]
    fn corrupt_frames_surface_as_typed_errors_with_lane_context() {
        let t = Arc::new(FailingTransport(TransportError::Corrupt {
            detail: "checksum mismatch".into(),
        }));
        let mesh: P2pMesh<u8, _> = P2pMesh::over(t, 0x42);
        let err = mesh.recv(0, 1).unwrap_err();
        match &err {
            RecvError::Corrupt {
                src,
                dst,
                channel,
                detail,
            } => {
                assert_eq!((*src, *dst, *channel), (0, 1, 0x42));
                assert!(detail.contains("checksum mismatch"));
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        assert!(err.to_string().contains("src 0 -> dst 1"));
        assert!(err.to_string().contains("0x42"));
    }

    #[test]
    fn other_transport_failures_surface_as_typed_errors() {
        let t = Arc::new(FailingTransport(TransportError::Io {
            detail: "connection reset".into(),
        }));
        let mesh: P2pMesh<u8, _> = P2pMesh::over(t, 7);
        let err = mesh.recv(1, 0).unwrap_err();
        assert!(matches!(
            &err,
            RecvError::Transport { src: 1, dst: 0, channel: 7, detail } if detail.contains("connection reset")
        ));
    }

    #[test]
    fn meshes_share_a_transport_without_cross_talk() {
        let transport = Arc::new(LocalTransport::new(2));
        let a: P2pMesh<u32, _> = P2pMesh::over(Arc::clone(&transport), 1);
        let b: P2pMesh<u32, _> = P2pMesh::over(transport, 2);
        a.send(0, 1, 11);
        b.send(0, 1, 22);
        assert_eq!(b.recv(0, 1).unwrap(), 22);
        assert_eq!(a.recv(0, 1).unwrap(), 11);
    }
}
