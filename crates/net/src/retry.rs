//! Deterministic capped-exponential retry/backoff.
//!
//! Every place the runtime used to spin on a single-shot connect or a
//! fixed-sleep poll loop (TCP mesh dialing, rendezvous-endpoint polling,
//! [`crate::TcpShardStore`] connects) now goes through one
//! [`RetryPolicy`]. The backoff schedule is *deterministic* — no jitter —
//! so two runs of the same scenario retry on the same cadence, keeping
//! wall-clock behavior reproducible enough to reason about in tests.
//!
//! Knobs (all optional, read by [`RetryPolicy::from_env`]):
//!
//! * `OPT_NET_RETRY_BASE_MS` — first backoff sleep (default 25 ms).
//! * `OPT_NET_RETRY_CAP_MS` — backoff ceiling (default 1000 ms).
//! * `OPT_NET_RETRY_ATTEMPTS` — attempt budget for deadline-less retries
//!   (default 10).

use std::time::{Duration, Instant};

/// Default first backoff sleep.
const DEFAULT_BASE_MS: u64 = 25;

/// Default backoff ceiling.
const DEFAULT_CAP_MS: u64 = 1000;

/// Default attempt budget when no deadline bounds the retry.
const DEFAULT_ATTEMPTS: u32 = 10;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(default)
}

/// A deterministic capped-exponential backoff schedule.
///
/// Attempt `i` (zero-based) is followed by a sleep of
/// `min(base * 2^i, cap)`; there is no jitter, so the schedule is a pure
/// function of the knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Sleep after the first failed attempt.
    pub base: Duration,
    /// Ceiling every backoff sleep saturates at.
    pub cap: Duration,
    /// Attempt budget for [`RetryPolicy::run`] (deadline-less retries).
    pub attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base: Duration::from_millis(DEFAULT_BASE_MS),
            cap: Duration::from_millis(DEFAULT_CAP_MS),
            attempts: DEFAULT_ATTEMPTS,
        }
    }
}

impl RetryPolicy {
    /// Reads the `OPT_NET_RETRY_*` knobs, falling back to the defaults
    /// for unset or unparsable values.
    pub fn from_env() -> Self {
        RetryPolicy {
            base: Duration::from_millis(env_u64("OPT_NET_RETRY_BASE_MS", DEFAULT_BASE_MS)),
            cap: Duration::from_millis(env_u64("OPT_NET_RETRY_CAP_MS", DEFAULT_CAP_MS)),
            attempts: env_u64("OPT_NET_RETRY_ATTEMPTS", u64::from(DEFAULT_ATTEMPTS)) as u32,
        }
    }

    /// The backoff sleep after failed attempt `attempt` (zero-based):
    /// `min(base * 2^attempt, cap)`.
    pub fn delay(&self, attempt: u32) -> Duration {
        let mult = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        self.base.saturating_mul(mult).min(self.cap)
    }

    /// Runs `op` until it succeeds or the attempt budget is exhausted,
    /// sleeping the backoff schedule between attempts. Returns the last
    /// error when every attempt fails.
    pub fn run<T, E>(&self, mut op: impl FnMut() -> Result<T, E>) -> Result<T, E> {
        let attempts = self.attempts.max(1);
        let mut attempt = 0;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if attempt + 1 >= attempts => return Err(e),
                Err(_) => {
                    std::thread::sleep(self.delay(attempt));
                    attempt += 1;
                }
            }
        }
    }

    /// Runs `op` until it succeeds or `deadline` passes, sleeping the
    /// backoff schedule (clipped to the remaining time) between attempts.
    /// The attempt budget does not apply — the deadline is the bound.
    /// Returns the last error once the deadline has passed.
    pub fn run_until<T, E>(
        &self,
        deadline: Instant,
        mut op: impl FnMut() -> Result<T, E>,
    ) -> Result<T, E> {
        let mut attempt = 0;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => {
                    let sleep = self
                        .delay(attempt)
                        .min(deadline.saturating_duration_since(Instant::now()));
                    std::thread::sleep(sleep);
                    attempt += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_exponential() {
        let p = RetryPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(70),
            attempts: 5,
        };
        assert_eq!(p.delay(0), Duration::from_millis(10));
        assert_eq!(p.delay(1), Duration::from_millis(20));
        assert_eq!(p.delay(2), Duration::from_millis(40));
        assert_eq!(p.delay(3), Duration::from_millis(70));
        assert_eq!(p.delay(4), Duration::from_millis(70));
        // Huge attempt counts must not overflow the shift.
        assert_eq!(p.delay(63), Duration::from_millis(70));
    }

    #[test]
    fn run_stops_after_attempt_budget() {
        let p = RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(1),
            attempts: 3,
        };
        let mut calls = 0;
        let r: Result<(), &str> = p.run(|| {
            calls += 1;
            Err("nope")
        });
        assert_eq!(r, Err("nope"));
        assert_eq!(calls, 3);
    }

    #[test]
    fn run_returns_first_success() {
        let p = RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(1),
            attempts: 10,
        };
        let mut calls = 0;
        let r: Result<u32, &str> = p.run(|| {
            calls += 1;
            if calls < 4 {
                Err("not yet")
            } else {
                Ok(42)
            }
        });
        assert_eq!(r, Ok(42));
        assert_eq!(calls, 4);
    }

    #[test]
    fn run_until_respects_deadline() {
        let p = RetryPolicy {
            base: Duration::from_millis(5),
            cap: Duration::from_millis(5),
            attempts: 1, // ignored by run_until
        };
        let start = Instant::now();
        let deadline = start + Duration::from_millis(40);
        let r: Result<(), &str> = p.run_until(deadline, || Err("still down"));
        assert_eq!(r, Err("still down"));
        assert!(start.elapsed() >= Duration::from_millis(40));
        // And a success path that needs several attempts but fits.
        let mut calls = 0;
        let r: Result<u32, &str> = p.run_until(Instant::now() + Duration::from_secs(5), || {
            calls += 1;
            if calls < 3 {
                Err("not yet")
            } else {
                Ok(7)
            }
        });
        assert_eq!(r, Ok(7));
    }

    #[test]
    fn zero_attempts_still_runs_once() {
        let p = RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(1),
            attempts: 0,
        };
        let mut calls = 0;
        let r: Result<(), &str> = p.run(|| {
            calls += 1;
            Err("x")
        });
        assert_eq!(r, Err("x"));
        assert_eq!(calls, 1);
    }

    #[test]
    fn env_defaults_apply() {
        // The OPT_NET_RETRY_* knobs are unset in the test environment.
        let p = RetryPolicy::from_env();
        assert_eq!(p, RetryPolicy::default());
    }
}
