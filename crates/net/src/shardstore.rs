//! Rendezvous + fetch: the blob-store abstraction behind cross-host
//! elastic restore.
//!
//! A sharded checkpoint is a set of named blobs — a small manifest plus
//! one shard per rank. A restarting worker *rendezvouses* on the manifest
//! (a single well-known name) and *fetches* only its own shard. This
//! module abstracts where those blobs live:
//!
//! * [`MemShardStore`] — in-process: blobs in shared memory, reachable
//!   from every worker thread of the mesh, the same way the in-process
//!   [`crate::P2pMesh`] channels stand in for NCCL transports. Used by
//!   tests and the fault-injection harness to simulate a replacement
//!   worker that holds none of the coordinator's state.
//! * [`FsShardStore`] — a directory of files, standing in for remote blob
//!   storage (a parallel filesystem, S3, a burst buffer). Puts are atomic
//!   (temp file + rename), so a reader never observes a half-written
//!   shard.
//!
//! * [`TcpShardStore`] — an **actually remote** backend: a thin client
//!   speaking a framed request/response protocol to a
//!   [`ShardStoreServer`] on another process (or host), which serves any
//!   inner [`ShardStore`]. Every request and response wears the shared
//!   `opt-ckpt` frame (magic, version, length, FNV-1a checksum), so a
//!   damaged exchange is rejected at the protocol layer.
//!
//! The store is deliberately dumb: `put`/`get`/`list` over opaque bytes.
//! All integrity checking (checksums, versions, config fingerprints)
//! happens in `opt-ckpt`'s shard codec, so every backend gets the same
//! validation for free.

use opt_ckpt::framing;
use opt_tensor::{Persist, Reader, Writer};
use std::collections::HashMap;
use std::fmt;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Why a shard-store operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardStoreError {
    /// No blob exists under the requested name.
    NotFound {
        /// The name that was requested.
        name: String,
    },
    /// The backend failed (I/O error, invalid name, ...).
    Backend {
        /// The name involved, if any.
        name: String,
        /// Backend-specific description.
        detail: String,
    },
}

impl fmt::Display for ShardStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardStoreError::NotFound { name } => write!(f, "no blob named {name:?} in the store"),
            ShardStoreError::Backend { name, detail } => {
                write!(f, "shard store backend failed on {name:?}: {detail}")
            }
        }
    }
}

impl std::error::Error for ShardStoreError {}

/// A named-blob store that checkpoint shards rendezvous through.
///
/// Implementations must be safe to call from many worker threads at once;
/// a `put` is atomic (a concurrent `get` sees the old blob or the new
/// blob, never a mixture).
pub trait ShardStore: Send + Sync + fmt::Debug {
    /// Stores `bytes` under `name`, replacing any previous blob.
    fn put(&self, name: &str, bytes: &[u8]) -> Result<(), ShardStoreError>;

    /// Retrieves the blob stored under `name`.
    fn get(&self, name: &str) -> Result<Vec<u8>, ShardStoreError>;

    /// Lists all blob names, sorted.
    fn list(&self) -> Result<Vec<String>, ShardStoreError>;

    /// Removes the blob stored under `name`. Idempotent: deleting a name
    /// that does not exist succeeds (checkpoint garbage collection must
    /// tolerate racing cleaners and earlier partial deletes).
    fn delete(&self, name: &str) -> Result<(), ShardStoreError>;
}

/// Rejects names that could escape a directory-backed store (path
/// separators, `..`, empty). Applied by every backend so behavior does
/// not depend on where the blobs happen to live.
fn validate_name(name: &str) -> Result<(), ShardStoreError> {
    let bad = name.is_empty()
        || name == "."
        || name == ".."
        || name.contains('/')
        || name.contains('\\')
        || name.contains('\0');
    if bad {
        return Err(ShardStoreError::Backend {
            name: name.to_string(),
            detail: "invalid blob name (empty or contains path separators)".to_string(),
        });
    }
    Ok(())
}

/// In-process shard store: blobs in shared memory.
///
/// Clones share the same underlying map (like the mesh's channels), so
/// one clone per worker thread gives the whole world a common rendezvous
/// point without any thread holding another's state.
#[derive(Debug, Clone, Default)]
pub struct MemShardStore {
    blobs: Arc<Mutex<HashMap<String, Vec<u8>>>>,
}

impl MemShardStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of blobs currently stored.
    pub fn len(&self) -> usize {
        self.blobs.lock().expect("store poisoned").len()
    }

    /// Whether the store holds no blobs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl ShardStore for MemShardStore {
    fn put(&self, name: &str, bytes: &[u8]) -> Result<(), ShardStoreError> {
        validate_name(name)?;
        self.blobs
            .lock()
            .expect("store poisoned")
            .insert(name.to_string(), bytes.to_vec());
        Ok(())
    }

    fn get(&self, name: &str) -> Result<Vec<u8>, ShardStoreError> {
        validate_name(name)?;
        self.blobs
            .lock()
            .expect("store poisoned")
            .get(name)
            .cloned()
            .ok_or_else(|| ShardStoreError::NotFound {
                name: name.to_string(),
            })
    }

    fn list(&self) -> Result<Vec<String>, ShardStoreError> {
        let mut names: Vec<String> = self
            .blobs
            .lock()
            .expect("store poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        Ok(names)
    }

    fn delete(&self, name: &str) -> Result<(), ShardStoreError> {
        validate_name(name)?;
        self.blobs.lock().expect("store poisoned").remove(name);
        Ok(())
    }
}

/// Filesystem shard store: one file per blob under a directory, standing
/// in for remote blob storage. Puts go through a sibling temp file and an
/// atomic rename.
#[derive(Debug, Clone)]
pub struct FsShardStore {
    dir: PathBuf,
}

impl FsShardStore {
    /// Creates a store rooted at `dir` (created lazily on first put).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The directory blobs are stored under.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn backend_err(&self, name: &str, e: std::io::Error) -> ShardStoreError {
        ShardStoreError::Backend {
            name: name.to_string(),
            detail: e.to_string(),
        }
    }
}

impl ShardStore for FsShardStore {
    fn put(&self, name: &str, bytes: &[u8]) -> Result<(), ShardStoreError> {
        validate_name(name)?;
        std::fs::create_dir_all(&self.dir).map_err(|e| self.backend_err(name, e))?;
        // The shared temp-file + atomic-rename discipline from opt-ckpt:
        // a reader never observes a half-written blob.
        framing::atomic_write(&self.dir.join(name), bytes).map_err(|e| ShardStoreError::Backend {
            name: name.to_string(),
            detail: e.to_string(),
        })
    }

    fn get(&self, name: &str) -> Result<Vec<u8>, ShardStoreError> {
        validate_name(name)?;
        match std::fs::read(self.dir.join(name)) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Err(ShardStoreError::NotFound {
                name: name.to_string(),
            }),
            Err(e) => Err(self.backend_err(name, e)),
        }
    }

    fn list(&self) -> Result<Vec<String>, ShardStoreError> {
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(entries) => entries,
            // A store nobody has put to yet is empty, not broken.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(self.backend_err("", e)),
        };
        let mut names = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| self.backend_err("", e))?;
            if !entry
                .file_type()
                .map_err(|e| self.backend_err("", e))?
                .is_file()
            {
                continue;
            }
            if let Ok(name) = entry.file_name().into_string() {
                // In-flight temp files are not yet published blobs.
                if !name.ends_with(".partial") {
                    names.push(name);
                }
            }
        }
        names.sort();
        Ok(names)
    }

    fn delete(&self, name: &str) -> Result<(), ShardStoreError> {
        validate_name(name)?;
        match std::fs::remove_file(self.dir.join(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(self.backend_err(name, e)),
        }
    }
}

/// Magic bytes opening every shard-store protocol frame.
pub const STORE_MAGIC: &[u8; 8] = b"OPTSTOR\0";

/// Current shard-store wire protocol version.
pub const STORE_PROTOCOL_VERSION: u32 = 1;

/// How long a [`TcpShardStore`] client waits on one request round-trip.
const STORE_IO_TIMEOUT: Duration = Duration::from_secs(60);

const OP_PUT: u8 = 0;
const OP_GET: u8 = 1;
const OP_LIST: u8 = 2;
const OP_DELETE: u8 = 3;

const STATUS_OK: u8 = 0;
const STATUS_NOT_FOUND: u8 = 1;
const STATUS_BACKEND: u8 = 2;

fn store_proto_err(name: &str, detail: impl Into<String>) -> ShardStoreError {
    ShardStoreError::Backend {
        name: name.to_string(),
        detail: detail.into(),
    }
}

/// Serves an inner [`ShardStore`] to remote [`TcpShardStore`] clients:
/// one framed request per connection, executed against the inner store,
/// one framed response back.
///
/// The server holds the blobs (or the directory) on *its* host — worker
/// processes elsewhere rendezvous and fetch through the wire, which is
/// exactly the topology of a real checkpoint object store. Dropping the
/// handle stops the accept loop.
pub struct ShardStoreServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl fmt::Debug for ShardStoreServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ShardStoreServer({})", self.addr)
    }
}

impl ShardStoreServer {
    /// Binds `bind_addr` (typically `127.0.0.1:0`) and starts serving
    /// `inner` in a background thread.
    pub fn spawn(
        inner: Arc<dyn ShardStore>,
        bind_addr: &str,
    ) -> Result<ShardStoreServer, ShardStoreError> {
        let listener = TcpListener::bind(bind_addr)
            .map_err(|e| store_proto_err("", format!("bind {bind_addr}: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| store_proto_err("", e.to_string()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| store_proto_err("", e.to_string()))?;
        let stop = Arc::new(AtomicBool::new(false));
        let t_stop = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("shard-store-server".to_string())
            .spawn(move || {
                while !t_stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let inner = Arc::clone(&inner);
                            // One handler thread per request keeps slow
                            // clients from serializing the world's fetches.
                            let _ = std::thread::Builder::new()
                                .name("shard-store-conn".to_string())
                                .spawn(move || serve_one(inner.as_ref(), stream));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(20));
                        }
                        Err(_) => break,
                    }
                }
            })
            .map_err(|e| store_proto_err("", e.to_string()))?;
        Ok(ShardStoreServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ShardStoreServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

/// Handles one client connection: read the framed request, execute it,
/// write the framed response. A request that fails integrity validation
/// gets a backend-error response (the framing caught the damage).
fn serve_one(inner: &dyn ShardStore, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(STORE_IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(STORE_IO_TIMEOUT));
    let mut raw = Vec::new();
    if stream.read_to_end(&mut raw).is_err() {
        return;
    }
    let response = match framing::unframe(&raw, STORE_MAGIC, STORE_PROTOCOL_VERSION) {
        Ok(body) => execute_request(inner, body),
        Err(e) => encode_response(&Err(ShardStoreError::Backend {
            name: String::new(),
            detail: format!("request frame rejected: {e}"),
        })),
    };
    let _ = stream.write_all(&framing::frame(
        STORE_MAGIC,
        STORE_PROTOCOL_VERSION,
        &response,
    ));
    let _ = stream.shutdown(Shutdown::Write);
}

/// Decodes and runs one request body, returning the response body.
fn execute_request(inner: &dyn ShardStore, body: &[u8]) -> Vec<u8> {
    let mut r = Reader::new(body);
    let parsed: Result<(u8, String, Vec<u8>), _> = (|| {
        let op = r.u8()?;
        let name = String::restore(&mut r)?;
        let payload = r.bytes()?;
        r.finish()?;
        Ok::<_, opt_tensor::PersistError>((op, name, payload))
    })();
    let (op, name, payload) = match parsed {
        Ok(t) => t,
        Err(e) => {
            return encode_response(&Err(ShardStoreError::Backend {
                name: String::new(),
                detail: format!("malformed request: {e}"),
            }))
        }
    };
    let result = match op {
        OP_PUT => inner.put(&name, &payload).map(|()| Vec::new()),
        OP_GET => inner.get(&name),
        OP_LIST => inner.list().map(|names| names.to_bytes()),
        OP_DELETE => inner.delete(&name).map(|()| Vec::new()),
        other => Err(ShardStoreError::Backend {
            name,
            detail: format!("unknown op {other}"),
        }),
    };
    encode_response(&result)
}

/// Encodes an operation outcome as a response body.
fn encode_response(result: &Result<Vec<u8>, ShardStoreError>) -> Vec<u8> {
    let mut w = Writer::new();
    match result {
        Ok(payload) => {
            w.u8(STATUS_OK);
            w.bytes(payload);
        }
        Err(ShardStoreError::NotFound { name }) => {
            w.u8(STATUS_NOT_FOUND);
            name.persist(&mut w);
        }
        Err(ShardStoreError::Backend { name, detail }) => {
            w.u8(STATUS_BACKEND);
            name.persist(&mut w);
            detail.persist(&mut w);
        }
    }
    w.into_bytes()
}

/// A [`ShardStore`] living on the far side of a TCP connection — the
/// "actually remote" backend: worker processes rendezvous on the manifest
/// and fetch their shard across a real wire, through a
/// [`ShardStoreServer`] hosted by the coordinator (or any blob host).
///
/// Each operation is one connection: framed request out, framed response
/// back, both checksummed with the shared `opt-ckpt` framing. The client
/// is stateless, so it can be cheaply cloned into every worker.
#[derive(Debug, Clone)]
pub struct TcpShardStore {
    addr: SocketAddr,
}

impl TcpShardStore {
    /// A client for the server at `addr`.
    pub fn connect(addr: SocketAddr) -> Self {
        Self { addr }
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// One request/response round-trip.
    fn call(&self, op: u8, name: &str, payload: &[u8]) -> Result<Vec<u8>, ShardStoreError> {
        let mut body = Writer::new();
        body.u8(op);
        name.to_string().persist(&mut body);
        body.bytes(payload);
        let request = framing::frame(STORE_MAGIC, STORE_PROTOCOL_VERSION, &body.into_bytes());

        let io_err = |what: &str, e: std::io::Error| {
            store_proto_err(name, format!("{what} {}: {e}", self.addr))
        };
        // A single refused connect must not fail a restore mid-rejoin:
        // retry the connect (not the round-trip — requests are only sent
        // once) on the shared capped-exponential backoff schedule.
        let mut stream = crate::retry::RetryPolicy::from_env()
            .run(|| TcpStream::connect_timeout(&self.addr, STORE_IO_TIMEOUT))
            .map_err(|e| io_err("connecting to", e))?;
        stream
            .set_read_timeout(Some(STORE_IO_TIMEOUT))
            .map_err(|e| io_err("configuring", e))?;
        stream
            .set_write_timeout(Some(STORE_IO_TIMEOUT))
            .map_err(|e| io_err("configuring", e))?;
        stream
            .write_all(&request)
            .map_err(|e| io_err("writing to", e))?;
        stream
            .shutdown(Shutdown::Write)
            .map_err(|e| io_err("finishing write to", e))?;
        let mut raw = Vec::new();
        stream
            .read_to_end(&mut raw)
            .map_err(|e| io_err("reading from", e))?;

        let body = framing::unframe(&raw, STORE_MAGIC, STORE_PROTOCOL_VERSION)
            .map_err(|e| store_proto_err(name, format!("response frame rejected: {e}")))?;
        let mut r = Reader::new(body);
        let status = r
            .u8()
            .map_err(|e| store_proto_err(name, format!("malformed response: {e}")))?;
        match status {
            STATUS_OK => r
                .bytes()
                .map_err(|e| store_proto_err(name, format!("malformed response: {e}"))),
            STATUS_NOT_FOUND => {
                let name = String::restore(&mut r)
                    .map_err(|e| store_proto_err(name, format!("malformed response: {e}")))?;
                Err(ShardStoreError::NotFound { name })
            }
            STATUS_BACKEND => {
                let name = String::restore(&mut r)
                    .map_err(|e| store_proto_err(name, format!("malformed response: {e}")))?;
                let detail = String::restore(&mut r)
                    .map_err(|e| store_proto_err(&name, format!("malformed response: {e}")))?;
                Err(ShardStoreError::Backend { name, detail })
            }
            other => Err(store_proto_err(
                name,
                format!("unknown response status {other}"),
            )),
        }
    }
}

impl ShardStore for TcpShardStore {
    fn put(&self, name: &str, bytes: &[u8]) -> Result<(), ShardStoreError> {
        validate_name(name)?;
        self.call(OP_PUT, name, bytes).map(|_| ())
    }

    fn get(&self, name: &str) -> Result<Vec<u8>, ShardStoreError> {
        validate_name(name)?;
        self.call(OP_GET, name, &[])
    }

    fn list(&self) -> Result<Vec<String>, ShardStoreError> {
        let payload = self.call(OP_LIST, "", &[])?;
        Vec::<String>::from_bytes(&payload)
            .map_err(|e| store_proto_err("", format!("malformed list payload: {e}")))
    }

    fn delete(&self, name: &str) -> Result<(), ShardStoreError> {
        validate_name(name)?;
        self.call(OP_DELETE, name, &[]).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn roundtrip(store: &dyn ShardStore) {
        assert!(matches!(
            store.get("absent"),
            Err(ShardStoreError::NotFound { .. })
        ));
        store.put("manifest.ckpt", b"meta").expect("put manifest");
        store.put("rank-0-0.shard", b"state-a").expect("put shard");
        store.put("rank-1-0.shard", b"state-b").expect("put shard");
        assert_eq!(store.get("rank-0-0.shard").unwrap(), b"state-a");
        // Overwrite replaces.
        store.put("rank-0-0.shard", b"state-a2").expect("overwrite");
        assert_eq!(store.get("rank-0-0.shard").unwrap(), b"state-a2");
        assert_eq!(
            store.list().unwrap(),
            vec!["manifest.ckpt", "rank-0-0.shard", "rank-1-0.shard"]
        );
        // Delete removes, and is idempotent.
        store.delete("rank-1-0.shard").expect("delete");
        store.delete("rank-1-0.shard").expect("idempotent delete");
        assert!(matches!(
            store.get("rank-1-0.shard"),
            Err(ShardStoreError::NotFound { .. })
        ));
        assert_eq!(
            store.list().unwrap(),
            vec!["manifest.ckpt", "rank-0-0.shard"]
        );
    }

    #[test]
    fn mem_store_roundtrip() {
        roundtrip(&MemShardStore::new());
    }

    #[test]
    fn fs_store_roundtrip_and_atomicity() {
        let dir = std::env::temp_dir().join(format!("opt-shardstore-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = FsShardStore::new(&dir);
        assert_eq!(store.list().unwrap(), Vec::<String>::new());
        roundtrip(&store);
        // No temp files left behind, and .partial never shows up in list.
        for name in std::fs::read_dir(&dir).unwrap() {
            let name = name.unwrap().file_name().into_string().unwrap();
            assert!(!name.ends_with(".partial"), "temp file {name} left behind");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn names_with_path_separators_are_rejected() {
        let store = MemShardStore::new();
        for bad in ["", ".", "..", "a/b", "a\\b", "x\0y"] {
            assert!(
                matches!(store.put(bad, b"x"), Err(ShardStoreError::Backend { .. })),
                "name {bad:?} accepted"
            );
            assert!(store.get(bad).is_err());
        }
        let fs = FsShardStore::new(std::env::temp_dir().join("opt-shardstore-never"));
        assert!(fs.put("../escape", b"x").is_err());
    }

    #[test]
    fn mem_store_is_shared_across_clones_and_threads() {
        let store = MemShardStore::new();
        let clone = store.clone();
        let h = thread::spawn(move || {
            clone.put("rank-0-0.shard", b"from-worker").unwrap();
        });
        h.join().unwrap();
        assert_eq!(store.get("rank-0-0.shard").unwrap(), b"from-worker");
        assert_eq!(store.len(), 1);
        assert!(!store.is_empty());
    }

    #[test]
    fn trait_object_usable_behind_arc() {
        let store: Arc<dyn ShardStore> = Arc::new(MemShardStore::new());
        store.put("manifest.ckpt", &[1, 2, 3]).unwrap();
        let clone = Arc::clone(&store);
        let h = thread::spawn(move || clone.get("manifest.ckpt").unwrap());
        assert_eq!(h.join().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn tcp_store_roundtrips_through_a_real_server() {
        let inner: Arc<dyn ShardStore> = Arc::new(MemShardStore::new());
        let server = ShardStoreServer::spawn(Arc::clone(&inner), "127.0.0.1:0").expect("server");
        let client = TcpShardStore::connect(server.addr());
        // The full contract suite, across the wire.
        roundtrip(&client);
        // Writes made through the wire land in the server's inner store.
        assert_eq!(inner.get("manifest.ckpt").unwrap(), b"meta");
        // And a second client sees them (statelessness).
        let other = TcpShardStore::connect(server.addr());
        assert_eq!(other.get("rank-0-0.shard").unwrap(), b"state-a2");
    }

    #[test]
    fn tcp_store_concurrent_clients_do_not_corrupt() {
        let inner: Arc<dyn ShardStore> = Arc::new(MemShardStore::new());
        let server = ShardStoreServer::spawn(inner, "127.0.0.1:0").expect("server");
        let addr = server.addr();
        let mut handles = Vec::new();
        for i in 0..6u8 {
            handles.push(thread::spawn(move || {
                let client = TcpShardStore::connect(addr);
                let name = format!("rank-{i}-0.shard");
                let blob = vec![i; 10_000];
                client.put(&name, &blob).expect("put");
                assert_eq!(client.get(&name).expect("get"), blob);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let client = TcpShardStore::connect(addr);
        assert_eq!(client.list().expect("list").len(), 6);
    }

    #[test]
    fn tcp_store_propagates_not_found_and_rejects_tampered_requests() {
        let inner: Arc<dyn ShardStore> = Arc::new(MemShardStore::new());
        let server = ShardStoreServer::spawn(inner, "127.0.0.1:0").expect("server");
        let client = TcpShardStore::connect(server.addr());
        assert!(matches!(
            client.get("absent"),
            Err(ShardStoreError::NotFound { .. })
        ));
        // A raw client sending a bit-flipped frame gets a backend error,
        // never a silent execution of the damaged request.
        let mut body = Writer::new();
        body.u8(OP_PUT);
        "victim.shard".to_string().persist(&mut body);
        body.bytes(b"payload");
        let mut frame = framing::frame(STORE_MAGIC, STORE_PROTOCOL_VERSION, &body.into_bytes());
        let n = frame.len();
        frame[n - 10] ^= 0x04;
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream.write_all(&frame).expect("write");
        stream.shutdown(Shutdown::Write).expect("shutdown");
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).expect("read");
        let resp = framing::unframe(&raw, STORE_MAGIC, STORE_PROTOCOL_VERSION).expect("frame");
        assert_eq!(resp[0], STATUS_BACKEND, "tampered request not refused");
        // The damaged put must not have landed.
        assert!(matches!(
            client.get("victim.shard"),
            Err(ShardStoreError::NotFound { .. })
        ));
    }

    #[test]
    fn errors_display_usefully() {
        let e = ShardStoreError::NotFound {
            name: "rank-9-9.shard".into(),
        };
        assert!(e.to_string().contains("rank-9-9.shard"));
        let e = ShardStoreError::Backend {
            name: "m".into(),
            detail: "disk on fire".into(),
        };
        assert!(e.to_string().contains("disk on fire"));
    }
}
