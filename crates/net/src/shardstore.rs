//! Rendezvous + fetch: the blob-store abstraction behind cross-host
//! elastic restore.
//!
//! A sharded checkpoint is a set of named blobs — a small manifest plus
//! one shard per rank. A restarting worker *rendezvouses* on the manifest
//! (a single well-known name) and *fetches* only its own shard. This
//! module abstracts where those blobs live:
//!
//! * [`MemShardStore`] — in-process: blobs in shared memory, reachable
//!   from every worker thread of the mesh, the same way the in-process
//!   [`crate::P2pMesh`] channels stand in for NCCL transports. Used by
//!   tests and the fault-injection harness to simulate a replacement
//!   worker that holds none of the coordinator's state.
//! * [`FsShardStore`] — a directory of files, standing in for remote blob
//!   storage (a parallel filesystem, S3, a burst buffer). Puts are atomic
//!   (temp file + rename), so a reader never observes a half-written
//!   shard.
//!
//! The store is deliberately dumb: `put`/`get`/`list` over opaque bytes.
//! All integrity checking (checksums, versions, config fingerprints)
//! happens in `opt-ckpt`'s shard codec, so every backend gets the same
//! validation for free.

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Why a shard-store operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardStoreError {
    /// No blob exists under the requested name.
    NotFound {
        /// The name that was requested.
        name: String,
    },
    /// The backend failed (I/O error, invalid name, ...).
    Backend {
        /// The name involved, if any.
        name: String,
        /// Backend-specific description.
        detail: String,
    },
}

impl fmt::Display for ShardStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardStoreError::NotFound { name } => write!(f, "no blob named {name:?} in the store"),
            ShardStoreError::Backend { name, detail } => {
                write!(f, "shard store backend failed on {name:?}: {detail}")
            }
        }
    }
}

impl std::error::Error for ShardStoreError {}

/// A named-blob store that checkpoint shards rendezvous through.
///
/// Implementations must be safe to call from many worker threads at once;
/// a `put` is atomic (a concurrent `get` sees the old blob or the new
/// blob, never a mixture).
pub trait ShardStore: Send + Sync + fmt::Debug {
    /// Stores `bytes` under `name`, replacing any previous blob.
    fn put(&self, name: &str, bytes: &[u8]) -> Result<(), ShardStoreError>;

    /// Retrieves the blob stored under `name`.
    fn get(&self, name: &str) -> Result<Vec<u8>, ShardStoreError>;

    /// Lists all blob names, sorted.
    fn list(&self) -> Result<Vec<String>, ShardStoreError>;

    /// Removes the blob stored under `name`. Idempotent: deleting a name
    /// that does not exist succeeds (checkpoint garbage collection must
    /// tolerate racing cleaners and earlier partial deletes).
    fn delete(&self, name: &str) -> Result<(), ShardStoreError>;
}

/// Rejects names that could escape a directory-backed store (path
/// separators, `..`, empty). Applied by every backend so behavior does
/// not depend on where the blobs happen to live.
fn validate_name(name: &str) -> Result<(), ShardStoreError> {
    let bad = name.is_empty()
        || name == "."
        || name == ".."
        || name.contains('/')
        || name.contains('\\')
        || name.contains('\0');
    if bad {
        return Err(ShardStoreError::Backend {
            name: name.to_string(),
            detail: "invalid blob name (empty or contains path separators)".to_string(),
        });
    }
    Ok(())
}

/// In-process shard store: blobs in shared memory.
///
/// Clones share the same underlying map (like the mesh's channels), so
/// one clone per worker thread gives the whole world a common rendezvous
/// point without any thread holding another's state.
#[derive(Debug, Clone, Default)]
pub struct MemShardStore {
    blobs: Arc<Mutex<HashMap<String, Vec<u8>>>>,
}

impl MemShardStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of blobs currently stored.
    pub fn len(&self) -> usize {
        self.blobs.lock().expect("store poisoned").len()
    }

    /// Whether the store holds no blobs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl ShardStore for MemShardStore {
    fn put(&self, name: &str, bytes: &[u8]) -> Result<(), ShardStoreError> {
        validate_name(name)?;
        self.blobs
            .lock()
            .expect("store poisoned")
            .insert(name.to_string(), bytes.to_vec());
        Ok(())
    }

    fn get(&self, name: &str) -> Result<Vec<u8>, ShardStoreError> {
        validate_name(name)?;
        self.blobs
            .lock()
            .expect("store poisoned")
            .get(name)
            .cloned()
            .ok_or_else(|| ShardStoreError::NotFound {
                name: name.to_string(),
            })
    }

    fn list(&self) -> Result<Vec<String>, ShardStoreError> {
        let mut names: Vec<String> = self
            .blobs
            .lock()
            .expect("store poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        Ok(names)
    }

    fn delete(&self, name: &str) -> Result<(), ShardStoreError> {
        validate_name(name)?;
        self.blobs.lock().expect("store poisoned").remove(name);
        Ok(())
    }
}

/// Filesystem shard store: one file per blob under a directory, standing
/// in for remote blob storage. Puts go through a sibling temp file and an
/// atomic rename.
#[derive(Debug, Clone)]
pub struct FsShardStore {
    dir: PathBuf,
}

impl FsShardStore {
    /// Creates a store rooted at `dir` (created lazily on first put).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The directory blobs are stored under.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn backend_err(&self, name: &str, e: std::io::Error) -> ShardStoreError {
        ShardStoreError::Backend {
            name: name.to_string(),
            detail: e.to_string(),
        }
    }
}

impl ShardStore for FsShardStore {
    fn put(&self, name: &str, bytes: &[u8]) -> Result<(), ShardStoreError> {
        validate_name(name)?;
        std::fs::create_dir_all(&self.dir).map_err(|e| self.backend_err(name, e))?;
        let path = self.dir.join(name);
        let tmp = self.dir.join(format!("{name}.partial"));
        std::fs::write(&tmp, bytes).map_err(|e| self.backend_err(name, e))?;
        if let Err(e) = std::fs::rename(&tmp, &path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(self.backend_err(name, e));
        }
        Ok(())
    }

    fn get(&self, name: &str) -> Result<Vec<u8>, ShardStoreError> {
        validate_name(name)?;
        match std::fs::read(self.dir.join(name)) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Err(ShardStoreError::NotFound {
                name: name.to_string(),
            }),
            Err(e) => Err(self.backend_err(name, e)),
        }
    }

    fn list(&self) -> Result<Vec<String>, ShardStoreError> {
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(entries) => entries,
            // A store nobody has put to yet is empty, not broken.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(self.backend_err("", e)),
        };
        let mut names = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| self.backend_err("", e))?;
            if !entry
                .file_type()
                .map_err(|e| self.backend_err("", e))?
                .is_file()
            {
                continue;
            }
            if let Ok(name) = entry.file_name().into_string() {
                // In-flight temp files are not yet published blobs.
                if !name.ends_with(".partial") {
                    names.push(name);
                }
            }
        }
        names.sort();
        Ok(names)
    }

    fn delete(&self, name: &str) -> Result<(), ShardStoreError> {
        validate_name(name)?;
        match std::fs::remove_file(self.dir.join(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(self.backend_err(name, e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn roundtrip(store: &dyn ShardStore) {
        assert!(matches!(
            store.get("absent"),
            Err(ShardStoreError::NotFound { .. })
        ));
        store.put("manifest.ckpt", b"meta").expect("put manifest");
        store.put("rank-0-0.shard", b"state-a").expect("put shard");
        store.put("rank-1-0.shard", b"state-b").expect("put shard");
        assert_eq!(store.get("rank-0-0.shard").unwrap(), b"state-a");
        // Overwrite replaces.
        store.put("rank-0-0.shard", b"state-a2").expect("overwrite");
        assert_eq!(store.get("rank-0-0.shard").unwrap(), b"state-a2");
        assert_eq!(
            store.list().unwrap(),
            vec!["manifest.ckpt", "rank-0-0.shard", "rank-1-0.shard"]
        );
        // Delete removes, and is idempotent.
        store.delete("rank-1-0.shard").expect("delete");
        store.delete("rank-1-0.shard").expect("idempotent delete");
        assert!(matches!(
            store.get("rank-1-0.shard"),
            Err(ShardStoreError::NotFound { .. })
        ));
        assert_eq!(
            store.list().unwrap(),
            vec!["manifest.ckpt", "rank-0-0.shard"]
        );
    }

    #[test]
    fn mem_store_roundtrip() {
        roundtrip(&MemShardStore::new());
    }

    #[test]
    fn fs_store_roundtrip_and_atomicity() {
        let dir = std::env::temp_dir().join(format!("opt-shardstore-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = FsShardStore::new(&dir);
        assert_eq!(store.list().unwrap(), Vec::<String>::new());
        roundtrip(&store);
        // No temp files left behind, and .partial never shows up in list.
        for name in std::fs::read_dir(&dir).unwrap() {
            let name = name.unwrap().file_name().into_string().unwrap();
            assert!(!name.ends_with(".partial"), "temp file {name} left behind");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn names_with_path_separators_are_rejected() {
        let store = MemShardStore::new();
        for bad in ["", ".", "..", "a/b", "a\\b", "x\0y"] {
            assert!(
                matches!(store.put(bad, b"x"), Err(ShardStoreError::Backend { .. })),
                "name {bad:?} accepted"
            );
            assert!(store.get(bad).is_err());
        }
        let fs = FsShardStore::new(std::env::temp_dir().join("opt-shardstore-never"));
        assert!(fs.put("../escape", b"x").is_err());
    }

    #[test]
    fn mem_store_is_shared_across_clones_and_threads() {
        let store = MemShardStore::new();
        let clone = store.clone();
        let h = thread::spawn(move || {
            clone.put("rank-0-0.shard", b"from-worker").unwrap();
        });
        h.join().unwrap();
        assert_eq!(store.get("rank-0-0.shard").unwrap(), b"from-worker");
        assert_eq!(store.len(), 1);
        assert!(!store.is_empty());
    }

    #[test]
    fn trait_object_usable_behind_arc() {
        let store: Arc<dyn ShardStore> = Arc::new(MemShardStore::new());
        store.put("manifest.ckpt", &[1, 2, 3]).unwrap();
        let clone = Arc::clone(&store);
        let h = thread::spawn(move || clone.get("manifest.ckpt").unwrap());
        assert_eq!(h.join().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn errors_display_usefully() {
        let e = ShardStoreError::NotFound {
            name: "rank-9-9.shard".into(),
        };
        assert!(e.to_string().contains("rank-9-9.shard"));
        let e = ShardStoreError::Backend {
            name: "m".into(),
            detail: "disk on fire".into(),
        };
        assert!(e.to_string().contains("disk on fire"));
    }
}
