//! Cluster topology description (paper Table 1).

use serde::{Deserialize, Serialize};

/// Which physical link a communication traverses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkKind {
    /// Intra-node GPU interconnect (NVLink in the paper: 600 GB/s per GPU).
    IntraNode,
    /// Inter-node fabric (Infiniband HDR in the paper: 200 Gb/s).
    InterNode,
}

/// A cluster of identical multi-GPU nodes.
///
/// Default values reproduce the paper's Table 1 environment: 16 nodes x
/// 8 A100 GPUs, NVLink intra-node and 200 Gb/s Infiniband HDR inter-node.
///
/// # Example
///
/// ```
/// use opt_net::{LinkKind, Topology};
/// let t = Topology::paper_cluster();
/// assert_eq!(t.total_gpus(), 128);
/// assert!(t.bandwidth_bytes_per_s(LinkKind::IntraNode)
///     > t.bandwidth_bytes_per_s(LinkKind::InterNode));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// Number of server nodes.
    pub nodes: usize,
    /// GPUs per node.
    pub gpus_per_node: usize,
    /// Intra-node bandwidth per GPU, bytes/s (NVLink: 600 GB/s).
    pub intra_node_bw: f64,
    /// Inter-node bandwidth per node, bytes/s (IB HDR: 200 Gb/s = 25 GB/s).
    pub inter_node_bw: f64,
    /// Per-message latency on the intra-node link, seconds.
    pub intra_node_latency: f64,
    /// Per-message latency on the inter-node link, seconds.
    pub inter_node_latency: f64,
}

impl Topology {
    /// The paper's 128-GPU cluster (Table 1).
    pub fn paper_cluster() -> Self {
        Self {
            nodes: 16,
            gpus_per_node: 8,
            intra_node_bw: 600e9,
            inter_node_bw: 25e9, // 200 Gb/s
            intra_node_latency: 2e-6,
            inter_node_latency: 5e-6,
        }
    }

    /// A cluster with the paper's per-node hardware but a different node
    /// count (used by the Fig. 16 scalability sweep).
    pub fn with_nodes(nodes: usize) -> Self {
        Self {
            nodes,
            ..Self::paper_cluster()
        }
    }

    /// A TPU-pod-like cluster (paper §10.1): higher intra-node bandwidth,
    /// 400 Gb/s inter-node links.
    pub fn tpu_pod() -> Self {
        Self {
            nodes: 16,
            gpus_per_node: 8,
            intra_node_bw: 900e9,
            inter_node_bw: 50e9, // 400 Gb/s
            intra_node_latency: 1e-6,
            inter_node_latency: 4e-6,
        }
    }

    /// An IPU-POD128-like cluster (paper §10.1): ~1.6x the compute per
    /// node of the paper's A100 nodes but only 100 Gb/s inter-node — the
    /// regime where the paper argues Optimus-CC "will provide more
    /// advantages".
    pub fn ipu_pod128() -> Self {
        Self {
            nodes: 16,
            gpus_per_node: 8,
            intra_node_bw: 320e9,
            inter_node_bw: 12.5e9, // 100 Gb/s
            intra_node_latency: 2e-6,
            inter_node_latency: 6e-6,
        }
    }

    /// Total GPU count.
    pub fn total_gpus(&self) -> usize {
        self.nodes * self.gpus_per_node
    }

    /// Bandwidth in bytes/s of the given link kind.
    pub fn bandwidth_bytes_per_s(&self, kind: LinkKind) -> f64 {
        match kind {
            LinkKind::IntraNode => self.intra_node_bw,
            LinkKind::InterNode => self.inter_node_bw,
        }
    }

    /// Latency in seconds of the given link kind.
    pub fn latency_s(&self, kind: LinkKind) -> f64 {
        match kind {
            LinkKind::IntraNode => self.intra_node_latency,
            LinkKind::InterNode => self.inter_node_latency,
        }
    }
}

impl Default for Topology {
    fn default() -> Self {
        Self::paper_cluster()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_matches_table1() {
        let t = Topology::paper_cluster();
        assert_eq!(t.nodes, 16);
        assert_eq!(t.gpus_per_node, 8);
        assert_eq!(t.total_gpus(), 128);
        // 200 Gb/s == 25 GB/s
        assert!((t.inter_node_bw - 25e9).abs() < 1.0);
    }

    #[test]
    fn with_nodes_scales_gpu_count() {
        assert_eq!(Topology::with_nodes(32).total_gpus(), 256);
    }

    #[test]
    fn link_kind_selects_bandwidth() {
        let t = Topology::paper_cluster();
        assert_eq!(t.bandwidth_bytes_per_s(LinkKind::IntraNode), 600e9);
        assert_eq!(t.bandwidth_bytes_per_s(LinkKind::InterNode), 25e9);
        assert!(t.latency_s(LinkKind::InterNode) > t.latency_s(LinkKind::IntraNode));
    }
}
