//! Per-class traffic accounting shared across rank threads.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Communication class, matching the paper's Fig. 3 / Fig. 10 breakdown
/// categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficClass {
    /// Data-parallel gradient all-reduce ("DP Comm.").
    DataParallel,
    /// Pipeline inter-stage activation/gradient p2p ("Inter-stage Comm.").
    InterStage,
    /// Embedding synchronization ("EMB Comm.").
    Embedding,
    /// Tensor-parallel all-reduce (intra-node; negligible in the paper).
    TensorParallel,
}

impl TrafficClass {
    /// All classes, in breakdown display order.
    pub const ALL: [TrafficClass; 4] = [
        TrafficClass::DataParallel,
        TrafficClass::InterStage,
        TrafficClass::Embedding,
        TrafficClass::TensorParallel,
    ];

    fn index(self) -> usize {
        match self {
            TrafficClass::DataParallel => 0,
            TrafficClass::InterStage => 1,
            TrafficClass::Embedding => 2,
            TrafficClass::TensorParallel => 3,
        }
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TrafficClass::DataParallel => "DP Comm.",
            TrafficClass::InterStage => "Inter-stage Comm.",
            TrafficClass::Embedding => "EMB Comm.",
            TrafficClass::TensorParallel => "TP Comm.",
        };
        f.write_str(s)
    }
}

#[derive(Default)]
struct Counters {
    bytes: [u64; 4],
    messages: [u64; 4],
}

/// Immutable snapshot of a [`TrafficLedger`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TrafficSnapshot {
    bytes: [u64; 4],
    messages: [u64; 4],
}

impl TrafficSnapshot {
    /// Bytes recorded for `class`.
    pub fn bytes(&self, class: TrafficClass) -> u64 {
        self.bytes[class.index()]
    }

    /// Message count recorded for `class`.
    pub fn messages(&self, class: TrafficClass) -> u64 {
        self.messages[class.index()]
    }

    /// Total bytes across all classes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Folds another snapshot into this one (exact integer sums, so
    /// merging per-process ledgers in any order reproduces the single
    /// shared ledger a one-process world would have recorded).
    pub fn absorb(&mut self, other: &TrafficSnapshot) {
        for i in 0..4 {
            self.bytes[i] += other.bytes[i];
            self.messages[i] += other.messages[i];
        }
    }

    /// The exact integer per-class difference `self - earlier` — the
    /// traffic of the segment between two snapshots of one monotonic
    /// ledger. Counters that went backwards (a rank was replaced between
    /// the snapshots) saturate at zero rather than wrapping.
    pub fn delta_since(&self, earlier: &TrafficSnapshot) -> TrafficSnapshot {
        let mut d = TrafficSnapshot::default();
        for i in 0..4 {
            d.bytes[i] = self.bytes[i].saturating_sub(earlier.bytes[i]);
            d.messages[i] = self.messages[i].saturating_sub(earlier.messages[i]);
        }
        d
    }
}

impl opt_tensor::Persist for TrafficSnapshot {
    fn persist(&self, w: &mut opt_tensor::Writer) {
        for &b in &self.bytes {
            w.u64(b);
        }
        for &m in &self.messages {
            w.u64(m);
        }
    }

    fn restore(r: &mut opt_tensor::Reader<'_>) -> Result<Self, opt_tensor::PersistError> {
        let mut snap = TrafficSnapshot::default();
        for b in &mut snap.bytes {
            *b = r.u64()?;
        }
        for m in &mut snap.messages {
            *m = r.u64()?;
        }
        Ok(snap)
    }
}

/// Thread-safe byte/message counter, cloned into every rank thread.
///
/// # Example
///
/// ```
/// use opt_net::{TrafficClass, TrafficLedger};
/// let ledger = TrafficLedger::new();
/// ledger.record(TrafficClass::InterStage, 1024);
/// let snap = ledger.snapshot();
/// assert_eq!(snap.bytes(TrafficClass::InterStage), 1024);
/// assert_eq!(snap.messages(TrafficClass::InterStage), 1);
/// ```
#[derive(Clone, Default)]
pub struct TrafficLedger {
    inner: Arc<Mutex<Counters>>,
}

impl fmt::Debug for TrafficLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let snap = self.snapshot();
        write!(f, "TrafficLedger(total_bytes={})", snap.total_bytes())
    }
}

impl TrafficLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one message of `bytes` bytes in `class`.
    pub fn record(&self, class: TrafficClass, bytes: u64) {
        let mut c = self.inner.lock();
        c.bytes[class.index()] += bytes;
        c.messages[class.index()] += 1;
    }

    /// Takes a consistent snapshot of all counters.
    pub fn snapshot(&self) -> TrafficSnapshot {
        let c = self.inner.lock();
        TrafficSnapshot {
            bytes: c.bytes,
            messages: c.messages,
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        let mut c = self.inner.lock();
        *c = Counters::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn records_per_class() {
        let ledger = TrafficLedger::new();
        ledger.record(TrafficClass::DataParallel, 100);
        ledger.record(TrafficClass::DataParallel, 50);
        ledger.record(TrafficClass::Embedding, 10);
        let s = ledger.snapshot();
        assert_eq!(s.bytes(TrafficClass::DataParallel), 150);
        assert_eq!(s.messages(TrafficClass::DataParallel), 2);
        assert_eq!(s.bytes(TrafficClass::Embedding), 10);
        assert_eq!(s.bytes(TrafficClass::InterStage), 0);
        assert_eq!(s.total_bytes(), 160);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let ledger = TrafficLedger::new();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let l = ledger.clone();
            handles.push(thread::spawn(move || {
                for _ in 0..1000 {
                    l.record(TrafficClass::InterStage, 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ledger.snapshot().bytes(TrafficClass::InterStage), 8000);
    }

    #[test]
    fn delta_since_isolates_a_segment() {
        let ledger = TrafficLedger::new();
        ledger.record(TrafficClass::DataParallel, 100);
        let a = ledger.snapshot();
        ledger.record(TrafficClass::DataParallel, 30);
        ledger.record(TrafficClass::InterStage, 7);
        let b = ledger.snapshot();
        let d = b.delta_since(&a);
        assert_eq!(d.bytes(TrafficClass::DataParallel), 30);
        assert_eq!(d.messages(TrafficClass::DataParallel), 1);
        assert_eq!(d.bytes(TrafficClass::InterStage), 7);
        assert_eq!(d.messages(TrafficClass::InterStage), 1);
        // A counter that went backwards floors at zero.
        assert_eq!(a.delta_since(&b).total_bytes(), 0);
    }

    #[test]
    fn reset_clears() {
        let ledger = TrafficLedger::new();
        ledger.record(TrafficClass::TensorParallel, 7);
        ledger.reset();
        assert_eq!(ledger.snapshot().total_bytes(), 0);
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(TrafficClass::DataParallel.to_string(), "DP Comm.");
        assert_eq!(TrafficClass::InterStage.to_string(), "Inter-stage Comm.");
        assert_eq!(TrafficClass::Embedding.to_string(), "EMB Comm.");
    }
}
