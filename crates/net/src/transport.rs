//! The pluggable message transport behind every communication primitive.
//!
//! The collectives ([`crate::CollectiveGroup`]), the point-to-point mesh
//! ([`crate::P2pMesh`]), and the remote shard store
//! ([`crate::TcpShardStore`]) are all written against one small
//! abstraction: a [`Transport`] moves framed messages between ranks of a
//! fixed-size world, FIFO per `(src, dst, channel)` lane. Messages are
//! [`Payload`]s — either raw encoded bytes or an `Arc`-shared typed
//! value ([`Payload::Shared`]), and the typed
//! [`Transport::send_value`]/[`Transport::recv_value`] fast path lets an
//! in-process backend hand values across with **zero serialization**
//! while a byte-boundary backend transparently encodes at the socket.
//! Two backends implement it:
//!
//! * [`LocalTransport`] — the extracted in-process fabric: one crossbeam
//!   channel per lane, shared by every worker *thread* of a
//!   single-process world. This is bit- and behavior-identical to the
//!   channels the runtime used before the transport split.
//! * [`TcpTransport`] — a real wire: one process per rank, a full mesh of
//!   loopback/LAN TCP connections, every message wrapped in the shared
//!   `opt-ckpt` frame (magic, version, length, FNV-1a checksum) so a
//!   truncated or bit-flipped frame is detected at the transport layer,
//!   before any payload decoder sees it.
//!
//! Because both backends preserve per-lane FIFO order and the collectives
//! reduce strictly in member order, a training step produces **the same
//! bits** whether its world is threads over [`LocalTransport`] or OS
//! processes over [`TcpTransport`].
//!
//! The receive timeout of every lane defaults to 30 s and is tunable via
//! the `OPT_NET_TIMEOUT_MS` environment variable (handy when stepping
//! through real-transport runs in a debugger).

use crate::chanstats::{ChannelLedger, ChannelStat};
use crate::retry::RetryPolicy;
use opt_ckpt::framing::{self, FRAME_OVERHEAD, HEADER_LEN};
use opt_tensor::Persist;
use opt_trace::{SpanKind, NO_MICRO};
use parking_lot::{Mutex, RwLock};
use std::any::Any;
use std::collections::HashMap;
use std::fmt;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

/// Magic bytes opening every transport wire frame.
pub const WIRE_MAGIC: &[u8; 8] = b"OPTWIRE\0";

/// Current transport wire format version.
pub const WIRE_FORMAT_VERSION: u32 = 1;

/// Bytes the wire adds around a payload: the shared frame (magic,
/// version, length, checksum) plus the 16-byte lane header (channel +
/// destination rank).
pub const WIRE_OVERHEAD_BYTES: usize = FRAME_OVERHEAD + 16;

/// Upper bound on a single wire frame body. A corrupt length field must
/// not make a reader allocate terabytes before the checksum has a chance
/// to reject the frame.
const MAX_WIRE_BODY: u64 = 1 << 30;

/// Polling slice for receive loops that must notice peer death while
/// waiting on an empty lane.
const POLL_SLICE: Duration = Duration::from_millis(25);

/// How long the background acceptor waits for a late connection's hello
/// frame before dropping it.
const HELLO_TIMEOUT: Duration = Duration::from_secs(5);

/// Default receive timeout when `OPT_NET_TIMEOUT_MS` is unset.
const DEFAULT_TIMEOUT_MS: u64 = 30_000;

/// The receive timeout in effect: `OPT_NET_TIMEOUT_MS` milliseconds, or
/// 30 s if unset or unparsable.
pub fn net_timeout() -> Duration {
    std::env::var("OPT_NET_TIMEOUT_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map_or(
            Duration::from_millis(DEFAULT_TIMEOUT_MS),
            Duration::from_millis,
        )
}

/// Builds a transport channel id from a namespace and an index, so
/// independent subsystems (meshes, collectives, control plane) can carve
/// non-colliding lanes out of one transport.
pub const fn channel_id(namespace: u8, index: u64) -> u64 {
    ((namespace as u64) << 56) | (index & ((1 << 56) - 1))
}

/// Why a transport operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// No message arrived on the lane within the timeout.
    Timeout {
        /// Sending rank of the lane.
        src: usize,
        /// Receiving rank of the lane.
        dst: usize,
        /// Channel id of the lane.
        channel: u64,
        /// How long the receive waited.
        waited_ms: u128,
    },
    /// The peer's process or connection is gone and its lane is drained.
    Disconnected {
        /// The peer rank that disappeared.
        peer: usize,
    },
    /// A frame failed integrity validation (bad magic, stale version,
    /// length/checksum mismatch). The connection it arrived on is dead —
    /// a transport that cannot trust its framing cannot resynchronize.
    Corrupt {
        /// What the validator rejected.
        detail: String,
    },
    /// The OS networking layer failed (bind, connect, write, ...).
    Io {
        /// Stringified I/O error.
        detail: String,
    },
    /// Rendezvous failed (peers never published, unparsable endpoint).
    Rendezvous {
        /// What went wrong.
        detail: String,
    },
    /// A typed receive could not turn the delivered payload into the
    /// requested type: the byte decode failed after the transport's
    /// integrity checks passed, or a zero-copy handoff carried a
    /// different type than the receiver asked for. Either way the lane
    /// is being used inconsistently — a code bug, not a wire fault.
    Decode {
        /// What the decoder rejected.
        detail: String,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Timeout {
                src,
                dst,
                channel,
                waited_ms,
            } => write!(
                f,
                "transport receive on lane (src {src} -> dst {dst}, channel {channel:#x}) \
                 timed out after {waited_ms} ms"
            ),
            TransportError::Disconnected { peer } => {
                write!(f, "transport peer rank {peer} disconnected")
            }
            TransportError::Corrupt { detail } => {
                write!(f, "transport frame failed integrity validation: {detail}")
            }
            TransportError::Io { detail } => write!(f, "transport I/O error: {detail}"),
            TransportError::Rendezvous { detail } => {
                write!(f, "transport rendezvous failed: {detail}")
            }
            TransportError::Decode { detail } => {
                write!(f, "transport payload failed to decode: {detail}")
            }
        }
    }
}

impl std::error::Error for TransportError {}

impl TransportError {
    fn io(e: std::io::Error) -> Self {
        TransportError::Io {
            detail: e.to_string(),
        }
    }
}

/// A value that can travel through a [`Payload::Shared`] handoff: it
/// knows its exact wire encoding (for the moment a real wire needs it)
/// and its encoded length (so byte accounting never serializes), and it
/// can be downcast back to its concrete type on the receiving side.
///
/// Blanket-implemented for every `Persist + Send + Sync + 'static` type —
/// implement [`Persist`] and the typed transport API is available for
/// free.
pub trait WireValue: Any + Send + Sync {
    /// Produces the exact bytes [`Persist::to_bytes`] would — what a
    /// byte-boundary backend puts on the wire.
    fn encode_wire(&self) -> Vec<u8>;

    /// Exact length of [`WireValue::encode_wire`]'s output, computed
    /// without encoding where the type allows it.
    fn wire_len(&self) -> usize;

    /// Upcasts to [`Any`] for the receiver-side downcast.
    fn as_any(self: Arc<Self>) -> Arc<dyn Any + Send + Sync>;
}

impl<T: Persist + Send + Sync + 'static> WireValue for T {
    fn encode_wire(&self) -> Vec<u8> {
        self.to_bytes()
    }

    fn wire_len(&self) -> usize {
        self.persist_len()
    }

    fn as_any(self: Arc<Self>) -> Arc<dyn Any + Send + Sync> {
        self
    }
}

/// An `Arc`-shared typed message plus a lazily-populated encode cache.
///
/// On [`LocalTransport`] the value crosses lanes as the `Arc` itself —
/// zero serialization. On [`TcpTransport`] the first send forces the
/// encode and caches it, so broadcasting one payload to N peers encodes
/// once, not N times. Clones share both the value and the cache.
#[derive(Clone)]
pub struct SharedPayload {
    value: Arc<dyn WireValue>,
    encoded: Arc<OnceLock<Vec<u8>>>,
}

impl fmt::Debug for SharedPayload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SharedPayload({} wire bytes{})",
            self.value.wire_len(),
            if self.encoded.get().is_some() {
                ", encoded"
            } else {
                ""
            }
        )
    }
}

impl SharedPayload {
    /// Wraps `value` for zero-copy transport.
    pub fn new<T: Persist + Send + Sync + 'static>(value: T) -> Self {
        Self {
            value: Arc::new(value),
            encoded: Arc::new(OnceLock::new()),
        }
    }

    /// Exact number of bytes this payload occupies on a byte-boundary
    /// backend, computed without encoding.
    pub fn wire_len(&self) -> usize {
        self.value.wire_len()
    }

    /// The wire encoding, produced on first use and cached — clones made
    /// before or after share the same cache, so a broadcast encodes once.
    pub fn encoded(&self) -> &[u8] {
        self.encoded.get_or_init(|| self.value.encode_wire())
    }

    /// Recovers the concrete value, or returns `self` unchanged if the
    /// payload holds a different type.
    pub fn downcast<T: Any + Send + Sync>(self) -> Result<Arc<T>, SharedPayload> {
        let encoded = Arc::clone(&self.encoded);
        match Arc::clone(&self.value).as_any().downcast::<T>() {
            Ok(v) => Ok(v),
            Err(_) => Err(SharedPayload {
                value: self.value,
                encoded,
            }),
        }
    }
}

/// A message travelling through a [`Transport`]: either raw encoded
/// bytes (the classic path, and the only form a byte-boundary backend
/// ever delivers) or an `Arc`-shared typed value that an in-process
/// backend hands off with zero serialization.
#[derive(Clone, Debug)]
pub enum Payload {
    /// An already-encoded message body.
    Bytes(Vec<u8>),
    /// A typed in-memory value; a byte-boundary backend encodes it at
    /// the socket (once, cached), an in-process backend never does.
    Shared(SharedPayload),
}

impl Payload {
    /// Wraps `value` as a [`Payload::Shared`].
    pub fn shared<T: Persist + Send + Sync + 'static>(value: T) -> Self {
        Payload::Shared(SharedPayload::new(value))
    }

    /// Exact number of bytes this payload occupies on a byte-boundary
    /// backend — the length every backend's channel stats record, so the
    /// per-lane counters of a zero-copy run match a byte run exactly.
    pub fn wire_len(&self) -> usize {
        match self {
            Payload::Bytes(b) => b.len(),
            Payload::Shared(s) => s.wire_len(),
        }
    }

    /// The encoded message body, forcing (and caching) the encode for a
    /// shared value.
    pub fn into_bytes(self) -> Vec<u8> {
        match self {
            Payload::Bytes(b) => b,
            Payload::Shared(s) => s.encoded().to_vec(),
        }
    }
}

/// Turns a delivered [`Payload`] into the typed value the receiver asked
/// for: bytes decode through [`Persist`], a shared handoff downcasts
/// (and unwraps the `Arc`, cloning only if other references remain).
fn payload_value<T>(payload: Payload) -> Result<T, TransportError>
where
    T: Persist + Clone + Send + Sync + 'static,
{
    match payload {
        Payload::Bytes(bytes) => T::from_bytes(&bytes).map_err(|e| TransportError::Decode {
            detail: e.to_string(),
        }),
        Payload::Shared(shared) => match shared.downcast::<T>() {
            Ok(arc) => Ok(Arc::try_unwrap(arc).unwrap_or_else(|a| (*a).clone())),
            Err(_) => Err(TransportError::Decode {
                detail: format!(
                    "shared payload does not hold a {}",
                    std::any::type_name::<T>()
                ),
            }),
        },
    }
}

/// Moves framed messages between the ranks of a fixed-size world.
///
/// Guarantees every backend must provide:
///
/// * **FIFO per lane** — messages on one `(src, dst, channel)` lane
///   arrive in send order; distinct lanes are unordered relative to each
///   other.
/// * **Integrity** — a delivered message is byte-identical to the sent
///   one (for a [`Payload::Shared`] handoff: the *value* is identical,
///   and its encoding would be byte-identical); a backend that cannot
///   guarantee this (a real wire) must detect and reject the damage
///   instead of delivering it.
/// * **No tapping** — `recv(src, dst, ..)` only ever yields messages sent
///   by `src` to `dst`.
/// * **Stats parity** — a backend with channel stats records
///   [`Payload::wire_len`] per message, so byte and zero-copy runs of
///   the same traffic produce identical per-lane counters.
///
/// Implementers provide the three `*_payload` methods (plus `world` and
/// optionally `channel_stats`); the byte-level `send`/`recv`/`try_recv`
/// and the typed `send_value`/`recv_value` family are derived. A backend
/// without a shared address space simply never yields
/// [`Payload::Shared`] from its receive methods.
pub trait Transport: Send + Sync + fmt::Debug + 'static {
    /// Number of ranks in the world.
    fn world(&self) -> usize;

    /// Sends `payload` on the `(src, dst, channel)` lane. Non-blocking.
    fn send_payload(
        &self,
        src: usize,
        dst: usize,
        channel: u64,
        payload: Payload,
    ) -> Result<(), TransportError>;

    /// Receives the next message on the `(src, dst, channel)` lane,
    /// blocking up to `timeout`.
    fn recv_payload(
        &self,
        src: usize,
        dst: usize,
        channel: u64,
        timeout: Duration,
    ) -> Result<Payload, TransportError>;

    /// Non-blocking receive: `Ok(None)` if the lane is currently empty.
    fn try_recv_payload(
        &self,
        src: usize,
        dst: usize,
        channel: u64,
    ) -> Result<Option<Payload>, TransportError>;

    /// Per-lane send/recv counters this transport endpoint has observed
    /// ([`Payload::wire_len`] per message, frame overhead excluded).
    /// Backends without accounting return an empty list.
    fn channel_stats(&self) -> Vec<ChannelStat> {
        Vec::new()
    }

    /// Sends raw `bytes` on the `(src, dst, channel)` lane. Non-blocking.
    fn send(
        &self,
        src: usize,
        dst: usize,
        channel: u64,
        bytes: Vec<u8>,
    ) -> Result<(), TransportError> {
        self.send_payload(src, dst, channel, Payload::Bytes(bytes))
    }

    /// Receives the next message on the `(src, dst, channel)` lane as raw
    /// bytes, blocking up to `timeout`. A zero-copy payload is encoded on
    /// the way out, so mixed typed/byte usage of one lane stays coherent.
    fn recv(
        &self,
        src: usize,
        dst: usize,
        channel: u64,
        timeout: Duration,
    ) -> Result<Vec<u8>, TransportError> {
        Ok(self.recv_payload(src, dst, channel, timeout)?.into_bytes())
    }

    /// Non-blocking byte receive: `Ok(None)` if the lane is currently
    /// empty.
    fn try_recv(
        &self,
        src: usize,
        dst: usize,
        channel: u64,
    ) -> Result<Option<Vec<u8>>, TransportError> {
        Ok(self
            .try_recv_payload(src, dst, channel)?
            .map(Payload::into_bytes))
    }

    /// Sends a typed value on the `(src, dst, channel)` lane — the fast
    /// path. An in-process backend hands the value across as an `Arc`
    /// with zero serialization; a byte-boundary backend encodes at the
    /// socket.
    fn send_value<T>(
        &self,
        src: usize,
        dst: usize,
        channel: u64,
        value: T,
    ) -> Result<(), TransportError>
    where
        T: Persist + Send + Sync + 'static,
        Self: Sized,
    {
        self.send_payload(src, dst, channel, Payload::shared(value))
    }

    /// Sends an already-wrapped [`SharedPayload`] — the broadcast form of
    /// [`Transport::send_value`]: every destination shares one value and
    /// one encode cache, so a byte-boundary backend encodes once total.
    fn send_shared(
        &self,
        src: usize,
        dst: usize,
        channel: u64,
        payload: &SharedPayload,
    ) -> Result<(), TransportError>
    where
        Self: Sized,
    {
        self.send_payload(src, dst, channel, Payload::Shared(payload.clone()))
    }

    /// Receives the next message on the lane as a typed value, blocking
    /// up to `timeout`. A zero-copy handoff downcasts (no decode); raw
    /// bytes decode through [`Persist`].
    ///
    /// # Errors
    ///
    /// [`TransportError::Decode`] if the payload cannot become a `T`; any
    /// transport error `recv` can return.
    fn recv_value<T>(
        &self,
        src: usize,
        dst: usize,
        channel: u64,
        timeout: Duration,
    ) -> Result<T, TransportError>
    where
        T: Persist + Clone + Send + Sync + 'static,
        Self: Sized,
    {
        payload_value(self.recv_payload(src, dst, channel, timeout)?)
    }

    /// Non-blocking typed receive: `Ok(None)` if the lane is currently
    /// empty.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Transport::recv_value`].
    fn try_recv_value<T>(
        &self,
        src: usize,
        dst: usize,
        channel: u64,
    ) -> Result<Option<T>, TransportError>
    where
        T: Persist + Clone + Send + Sync + 'static,
        Self: Sized,
    {
        match self.try_recv_payload(src, dst, channel)? {
            Some(payload) => payload_value(payload).map(Some),
            None => Ok(None),
        }
    }
}

type Lane = (Sender<Payload>, Receiver<Payload>);

/// Shared map of lanes, keyed by lane identity.
type LaneMap<K> = Arc<Mutex<HashMap<K, Lane>>>;

/// The in-process backend: every lane is a crossbeam channel in shared
/// memory, so one clone per worker *thread* wires up a whole
/// single-process world. Extracted verbatim from the pre-transport
/// runtime — message order, blocking behavior, and (trivially) payload
/// bits are identical.
#[derive(Clone, Default)]
pub struct LocalTransport {
    world: usize,
    lanes: LaneMap<(usize, usize, u64)>,
    stats: ChannelLedger,
}

impl fmt::Debug for LocalTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LocalTransport(world={})", self.world)
    }
}

impl LocalTransport {
    /// Creates an in-process transport over `world` ranks.
    ///
    /// # Panics
    ///
    /// Panics if `world == 0`.
    pub fn new(world: usize) -> Self {
        assert!(world > 0, "world size must be positive");
        Self {
            world,
            lanes: Arc::new(Mutex::new(HashMap::new())),
            stats: ChannelLedger::new(),
        }
    }

    fn lane(&self, key: (usize, usize, u64)) -> Lane {
        let mut lanes = self.lanes.lock();
        let (s, r) = lanes.entry(key).or_insert_with(unbounded);
        (s.clone(), r.clone())
    }

    fn check_ranks(&self, src: usize, dst: usize) {
        assert!(
            src < self.world && dst < self.world,
            "rank out of range (src {src}, dst {dst}, world {})",
            self.world
        );
    }
}

impl Transport for LocalTransport {
    fn world(&self) -> usize {
        self.world
    }

    fn send_payload(
        &self,
        src: usize,
        dst: usize,
        channel: u64,
        payload: Payload,
    ) -> Result<(), TransportError> {
        self.check_ranks(src, dst);
        let wire_len = payload.wire_len();
        let _span = opt_trace::begin_full(SpanKind::Send, 0, NO_MICRO, wire_len as u64, 0);
        self.stats.record_send(src, dst, channel, wire_len);
        // The transport holds both lane ends, so the send cannot fail. A
        // shared payload crosses as-is: the zero-copy fast path.
        let (tx, _rx) = self.lane((src, dst, channel));
        tx.send(payload).expect("local lane receiver dropped");
        Ok(())
    }

    fn recv_payload(
        &self,
        src: usize,
        dst: usize,
        channel: u64,
        timeout: Duration,
    ) -> Result<Payload, TransportError> {
        self.check_ranks(src, dst);
        let span = opt_trace::begin_full(SpanKind::Recv, 0, NO_MICRO, 0, 0);
        let (_tx, rx) = self.lane((src, dst, channel));
        match rx.recv_timeout(timeout) {
            Ok(payload) => {
                let wire_len = payload.wire_len();
                span.set_bytes(wire_len as u64);
                self.stats.record_recv(src, dst, channel, wire_len);
                Ok(payload)
            }
            Err(RecvTimeoutError::Timeout) => Err(TransportError::Timeout {
                src,
                dst,
                channel,
                waited_ms: timeout.as_millis(),
            }),
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Disconnected { peer: src }),
        }
    }

    fn try_recv_payload(
        &self,
        src: usize,
        dst: usize,
        channel: u64,
    ) -> Result<Option<Payload>, TransportError> {
        self.check_ranks(src, dst);
        let (_tx, rx) = self.lane((src, dst, channel));
        let got = rx.try_recv().ok();
        if let Some(payload) = &got {
            self.stats
                .record_recv(src, dst, channel, payload.wire_len());
        }
        Ok(got)
    }

    fn channel_stats(&self) -> Vec<ChannelStat> {
        self.stats.snapshot()
    }
}

/// Encodes one wire frame carrying `bytes` on `channel` for rank `dst`,
/// using the shared `opt-ckpt` framing (magic, version, length, FNV-1a).
///
/// Public so tests can hand-craft (and tamper with) frames.
pub fn wire_frame(channel: u64, dst: usize, bytes: &[u8]) -> Vec<u8> {
    let mut body = Vec::with_capacity(16 + bytes.len());
    body.extend_from_slice(&channel.to_le_bytes());
    body.extend_from_slice(&(dst as u64).to_le_bytes());
    body.extend_from_slice(bytes);
    framing::frame(WIRE_MAGIC, WIRE_FORMAT_VERSION, &body)
}

/// The hello frame a connecting rank sends first on a new connection,
/// identifying itself. Public so tests can impersonate a peer.
pub fn wire_hello(rank: usize) -> Vec<u8> {
    framing::frame(
        WIRE_MAGIC,
        WIRE_FORMAT_VERSION,
        &(rank as u64).to_le_bytes(),
    )
}

/// State shared between a peer's writer handle and its reader thread.
struct Peer {
    writer: Mutex<TcpStream>,
    /// Cleared by the reader thread on EOF or I/O error.
    alive: Arc<AtomicBool>,
    /// Set by the reader thread when a frame fails validation.
    corrupt: Arc<AtomicBool>,
}

/// Peer connection slots plus a per-slot replacement counter, shared
/// between the transport handle and its background accept thread so a
/// relaunched rank can be spliced over a dead one without touching the
/// surviving process's other connections.
struct PeerTable {
    slots: Vec<RwLock<Option<Peer>>>,
    /// Bumped each time a slot's connection is (re)installed: 1 after the
    /// initial mesh, +1 per rejoin splice.
    generations: Vec<AtomicU64>,
}

impl PeerTable {
    fn new(peers: Vec<Option<Peer>>) -> Self {
        let generations = peers
            .iter()
            .map(|p| AtomicU64::new(u64::from(p.is_some())))
            .collect();
        PeerTable {
            slots: peers.into_iter().map(RwLock::new).collect(),
            generations,
        }
    }

    /// Installs `stream` as the live connection for `rank`: shuts down
    /// any previous connection, drains the rank's inbox lanes, then
    /// spawns the fresh reader.
    ///
    /// The drain is the per-lane sequence resync of the rejoin protocol:
    /// anything still queued was sent by the dead incarnation and must
    /// not leak into the replacement's conversation. Lanes are drained in
    /// place (not removed), so receiver clones held by in-flight `recv`
    /// calls stay wired to the lane.
    fn splice(
        &self,
        rank: usize,
        stream: TcpStream,
        inbox: &LaneMap<(usize, u64)>,
    ) -> Result<(), TransportError> {
        let mut slot = self.slots[rank].write();
        if let Some(old) = slot.take() {
            old.alive.store(false, Ordering::SeqCst);
            let _ = old.writer.lock().shutdown(std::net::Shutdown::Both);
        }
        {
            let map = inbox.lock();
            for ((src, _), (_, rx)) in map.iter() {
                if *src == rank {
                    while rx.try_recv().is_ok() {}
                }
            }
        }
        *slot = Some(spawn_peer(rank, stream, inbox)?);
        self.generations[rank].fetch_add(1, Ordering::SeqCst);
        Ok(())
    }
}

/// The real-wire backend: one OS process per rank, a full mesh of TCP
/// connections, every message in a checksummed frame.
///
/// Construction is two-phase so the caller controls rendezvous:
/// [`TcpTransport::bind`] grabs a listener (so the endpoint can be
/// published), then [`TcpBound::establish`] connects the full mesh once
/// every peer endpoint is known. [`tcp_rendezvous`] wraps both phases
/// behind a shared-directory rendezvous for same-host worlds.
///
/// A `TcpTransport` *is* one rank: `send` requires `src` to be this rank
/// and `recv` requires `dst` to be this rank — a process can neither
/// forge another rank's traffic nor read it.
///
/// The listener outlives the initial mesh: a background accept thread
/// keeps running for the transport's whole life, so a relaunched rank can
/// re-handshake ([`tcp_rejoin`]) and be spliced over its dead predecessor
/// while every other connection stays untouched.
pub struct TcpTransport {
    world: usize,
    rank: usize,
    peers: Arc<PeerTable>,
    inbox: LaneMap<(usize, u64)>,
    stats: ChannelLedger,
    /// Tells the background acceptor to exit.
    acceptor_stop: Arc<AtomicBool>,
    /// The background acceptor, joined on drop.
    acceptor: Mutex<Option<JoinHandle<()>>>,
}

impl fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TcpTransport(rank={}/{})", self.rank, self.world)
    }
}

/// A bound-but-unconnected TCP rank: holds the listener whose address
/// peers must learn before [`TcpBound::establish`] can mesh the world.
pub struct TcpBound {
    world: usize,
    rank: usize,
    listener: TcpListener,
    addr: SocketAddr,
}

impl TcpBound {
    /// The address peers should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connects the full mesh: dials every lower rank, accepts every
    /// higher rank, exchanging hello frames to identify peers. Blocks up
    /// to `timeout`.
    ///
    /// `endpoints[r]` must hold rank `r`'s listener address for `r` below
    /// this rank (higher entries are ignored — those peers dial us).
    pub fn establish(
        self,
        endpoints: &[SocketAddr],
        timeout: Duration,
    ) -> Result<TcpTransport, TransportError> {
        let deadline = Instant::now() + timeout;
        let world = self.world;
        let rank = self.rank;
        assert!(endpoints.len() >= rank, "missing endpoints for lower ranks");
        let retry = RetryPolicy::from_env();
        let inbox: LaneMap<(usize, u64)> = Arc::new(Mutex::new(HashMap::new()));
        let mut peers: Vec<Option<Peer>> = (0..world).map(|_| None).collect();

        // Dial every lower rank (their listeners are up before their
        // endpoint is visible, so connect may only transiently fail).
        for (p, &ep) in endpoints.iter().enumerate().take(rank) {
            let mut stream = retry
                .run_until(deadline, || TcpStream::connect(ep))
                .map_err(|e| TransportError::Rendezvous {
                    detail: format!("connecting to rank {p} at {ep}: {e}"),
                })?;
            stream.set_nodelay(true).map_err(TransportError::io)?;
            stream
                .write_all(&wire_hello(rank))
                .map_err(TransportError::io)?;
            peers[p] = Some(spawn_peer(p, stream, &inbox)?);
        }

        // Accept every higher rank; the hello frame tells us who called.
        self.listener
            .set_nonblocking(true)
            .map_err(TransportError::io)?;
        let mut expected = world - rank - 1;
        while expected > 0 {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false).map_err(TransportError::io)?;
                    stream.set_nodelay(true).map_err(TransportError::io)?;
                    stream
                        .set_read_timeout(Some(
                            deadline
                                .saturating_duration_since(Instant::now())
                                .max(POLL_SLICE),
                        ))
                        .map_err(TransportError::io)?;
                    let mut clone = stream.try_clone().map_err(TransportError::io)?;
                    let peer = read_hello(&mut clone)?;
                    if peer >= world || peers[peer].is_some() || peer == rank {
                        return Err(TransportError::Rendezvous {
                            detail: format!("unexpected hello from rank {peer}"),
                        });
                    }
                    stream.set_read_timeout(None).map_err(TransportError::io)?;
                    peers[peer] = Some(spawn_peer(peer, stream, &inbox)?);
                    expected -= 1;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(TransportError::Rendezvous {
                            detail: format!("{expected} peer(s) never connected"),
                        });
                    }
                    std::thread::sleep(POLL_SLICE);
                }
                Err(e) => return Err(TransportError::io(e)),
            }
        }

        finish_mesh(self.listener, world, rank, peers, inbox)
    }

    /// Re-meshes this rank into an already-running world after a
    /// relaunch. Unlike the initial [`TcpBound::establish`] (dial lower,
    /// accept higher), a rejoining rank dials *every* peer: the
    /// survivors' background acceptors validate the hello and splice the
    /// fresh connection over the dead one, so no dial-direction
    /// coordination is needed.
    ///
    /// `endpoints[r]` must hold rank `r`'s listener address for every
    /// `r != rank` (the own-rank entry is ignored).
    pub fn rejoin(
        self,
        endpoints: &[SocketAddr],
        timeout: Duration,
    ) -> Result<TcpTransport, TransportError> {
        let deadline = Instant::now() + timeout;
        let world = self.world;
        let rank = self.rank;
        assert!(endpoints.len() >= world, "need an endpoint per rank");
        let retry = RetryPolicy::from_env();
        let inbox: LaneMap<(usize, u64)> = Arc::new(Mutex::new(HashMap::new()));
        let mut peers: Vec<Option<Peer>> = (0..world).map(|_| None).collect();
        for (p, &ep) in endpoints.iter().enumerate().take(world) {
            if p == rank {
                continue;
            }
            let mut stream = retry
                .run_until(deadline, || TcpStream::connect(ep))
                .map_err(|e| TransportError::Rendezvous {
                    detail: format!("rejoin: connecting to rank {p} at {ep}: {e}"),
                })?;
            stream.set_nodelay(true).map_err(TransportError::io)?;
            stream
                .write_all(&wire_hello(rank))
                .map_err(TransportError::io)?;
            peers[p] = Some(spawn_peer(p, stream, &inbox)?);
        }
        finish_mesh(self.listener, world, rank, peers, inbox)
    }
}

/// Shared tail of [`TcpBound::establish`] and [`TcpBound::rejoin`]: wraps
/// the meshed peers in a live transport and keeps the listener accepting
/// in the background so later-relaunched ranks can splice in.
fn finish_mesh(
    listener: TcpListener,
    world: usize,
    rank: usize,
    peers: Vec<Option<Peer>>,
    inbox: LaneMap<(usize, u64)>,
) -> Result<TcpTransport, TransportError> {
    let table = Arc::new(PeerTable::new(peers));
    let stop = Arc::new(AtomicBool::new(false));
    let acceptor = spawn_acceptor(
        listener,
        world,
        rank,
        Arc::clone(&table),
        Arc::clone(&inbox),
        Arc::clone(&stop),
    )?;
    Ok(TcpTransport {
        world,
        rank,
        peers: table,
        inbox,
        stats: ChannelLedger::new(),
        acceptor_stop: stop,
        acceptor: Mutex::new(Some(acceptor)),
    })
}

/// Parses the 8-byte hello body identifying a connecting rank.
fn read_hello(stream: &mut TcpStream) -> Result<usize, TransportError> {
    let hello = read_frame_body(stream)?;
    if hello.len() != 8 {
        return Err(TransportError::Corrupt {
            detail: "hello frame has wrong length".to_string(),
        });
    }
    Ok(u64::from_le_bytes(hello.try_into().unwrap()) as usize)
}

/// Spawns the background accept thread that admits late connections —
/// the survivor half of the rejoin handshake.
fn spawn_acceptor(
    listener: TcpListener,
    world: usize,
    rank: usize,
    table: Arc<PeerTable>,
    inbox: LaneMap<(usize, u64)>,
    stop: Arc<AtomicBool>,
) -> Result<JoinHandle<()>, TransportError> {
    listener.set_nonblocking(true).map_err(TransportError::io)?;
    std::thread::Builder::new()
        .name(format!("net-accept-{rank}"))
        .spawn(move || loop {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    if let Err(e) = admit(stream, world, rank, &table, &inbox) {
                        eprintln!("rank {rank}: rejected late connection: {e}");
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_SLICE);
                }
                Err(_) => return,
            }
        })
        .map_err(TransportError::io)
}

/// Validates a late connection's hello and splices it into the mesh. A
/// hello for an occupied slot *replaces* the old connection (newest wins):
/// the coordinator fences the dead process before relaunching, so by the
/// time a replacement dials in, whatever sits in the slot is garbage.
fn admit(
    stream: TcpStream,
    world: usize,
    rank: usize,
    table: &PeerTable,
    inbox: &LaneMap<(usize, u64)>,
) -> Result<(), TransportError> {
    stream.set_nonblocking(false).map_err(TransportError::io)?;
    stream.set_nodelay(true).map_err(TransportError::io)?;
    stream
        .set_read_timeout(Some(HELLO_TIMEOUT))
        .map_err(TransportError::io)?;
    let mut clone = stream.try_clone().map_err(TransportError::io)?;
    let peer = read_hello(&mut clone)?;
    if peer >= world || peer == rank {
        return Err(TransportError::Rendezvous {
            detail: format!("unexpected hello from rank {peer}"),
        });
    }
    stream.set_read_timeout(None).map_err(TransportError::io)?;
    table.splice(peer, stream, inbox)
}

/// Reads one frame (header + body + checksum) off `stream`, validating
/// magic, version, length, and checksum. Returns the body.
fn read_frame_body(stream: &mut TcpStream) -> Result<Vec<u8>, TransportError> {
    let mut header = [0u8; HEADER_LEN];
    stream.read_exact(&mut header).map_err(TransportError::io)?;
    let body_len =
        framing::parse_header(&header, WIRE_MAGIC, WIRE_FORMAT_VERSION).map_err(|e| {
            TransportError::Corrupt {
                detail: e.to_string(),
            }
        })?;
    if body_len > MAX_WIRE_BODY {
        return Err(TransportError::Corrupt {
            detail: format!("frame body claims {body_len} bytes (cap {MAX_WIRE_BODY})"),
        });
    }
    let mut rest = vec![0u8; body_len as usize + 8];
    stream.read_exact(&mut rest).map_err(TransportError::io)?;
    let mut full = Vec::with_capacity(HEADER_LEN + rest.len());
    full.extend_from_slice(&header);
    full.extend_from_slice(&rest);
    framing::unframe(&full, WIRE_MAGIC, WIRE_FORMAT_VERSION)
        .map(<[u8]>::to_vec)
        .map_err(|e| TransportError::Corrupt {
            detail: e.to_string(),
        })
}

/// Registers a peer connection and spawns its reader thread, which
/// demultiplexes incoming frames into per-`(src, channel)` inbox lanes.
fn spawn_peer(
    peer_rank: usize,
    stream: TcpStream,
    inbox: &LaneMap<(usize, u64)>,
) -> Result<Peer, TransportError> {
    let alive = Arc::new(AtomicBool::new(true));
    let corrupt = Arc::new(AtomicBool::new(false));
    let mut reader = stream.try_clone().map_err(TransportError::io)?;
    let inbox = Arc::clone(inbox);
    let t_alive = Arc::clone(&alive);
    let t_corrupt = Arc::clone(&corrupt);
    std::thread::Builder::new()
        .name(format!("net-rx-{peer_rank}"))
        .spawn(move || loop {
            match read_frame_body(&mut reader) {
                Ok(body) => {
                    if body.len() < 16 {
                        t_corrupt.store(true, Ordering::SeqCst);
                        t_alive.store(false, Ordering::SeqCst);
                        return;
                    }
                    let channel = u64::from_le_bytes(body[..8].try_into().unwrap());
                    let payload = Payload::Bytes(body[16..].to_vec());
                    let tx = {
                        let mut map = inbox.lock();
                        map.entry((peer_rank, channel))
                            .or_insert_with(unbounded)
                            .0
                            .clone()
                    };
                    // The inbox map owns the receiver; send cannot fail.
                    let _ = tx.send(payload);
                }
                Err(TransportError::Corrupt { .. }) => {
                    t_corrupt.store(true, Ordering::SeqCst);
                    t_alive.store(false, Ordering::SeqCst);
                    return;
                }
                Err(_) => {
                    // EOF or I/O error: the peer is gone.
                    t_alive.store(false, Ordering::SeqCst);
                    return;
                }
            }
        })
        .map_err(TransportError::io)?;
    Ok(Peer {
        writer: Mutex::new(stream),
        alive,
        corrupt,
    })
}

impl TcpTransport {
    /// Binds rank `rank` of a `world`-rank TCP world on `bind_addr`
    /// (typically `127.0.0.1:0`), returning the bound-but-unconnected
    /// endpoint whose address peers must learn.
    ///
    /// # Panics
    ///
    /// Panics if `world == 0` or `rank >= world`.
    pub fn bind(world: usize, rank: usize, bind_addr: &str) -> Result<TcpBound, TransportError> {
        assert!(world > 0, "world size must be positive");
        assert!(rank < world, "rank {rank} outside world {world}");
        let listener = TcpListener::bind(bind_addr).map_err(TransportError::io)?;
        let addr = listener.local_addr().map_err(TransportError::io)?;
        Ok(TcpBound {
            world,
            rank,
            listener,
            addr,
        })
    }

    /// This process's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// How many times `rank`'s connection has been (re)installed: 1 after
    /// the initial mesh, +1 per rejoin splice. Lets a coordinator (and
    /// the failure-matrix tests) observe that a replacement actually
    /// re-handshaked.
    pub fn peer_generation(&self, rank: usize) -> u64 {
        self.peers.generations[rank].load(Ordering::SeqCst)
    }

    /// Blocks until `rank`'s connection generation exceeds `above` — i.e.
    /// a relaunched rank has spliced in — or `timeout` passes.
    pub fn wait_peer_generation(
        &self,
        rank: usize,
        above: u64,
        timeout: Duration,
    ) -> Result<u64, TransportError> {
        let start = Instant::now();
        let deadline = start + timeout;
        loop {
            let generation = self.peer_generation(rank);
            if generation > above {
                return Ok(generation);
            }
            if Instant::now() >= deadline {
                return Err(TransportError::Timeout {
                    src: rank,
                    dst: self.rank,
                    channel: 0,
                    waited_ms: start.elapsed().as_millis(),
                });
            }
            std::thread::sleep(POLL_SLICE);
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        // Shut the sockets down explicitly: reader threads hold clones of
        // every stream, so merely dropping the writer halves would leave
        // the connections open and peers would never observe our death.
        self.acceptor_stop.store(true, Ordering::SeqCst);
        for slot in &self.peers.slots {
            if let Some(peer) = slot.read().as_ref() {
                let _ = peer.writer.lock().shutdown(std::net::Shutdown::Both);
            }
        }
        if let Some(acceptor) = self.acceptor.lock().take() {
            let _ = acceptor.join();
        }
    }
}

impl Transport for TcpTransport {
    fn world(&self) -> usize {
        self.world
    }

    fn send_payload(
        &self,
        src: usize,
        dst: usize,
        channel: u64,
        payload: Payload,
    ) -> Result<(), TransportError> {
        assert!(
            src == self.rank,
            "TcpTransport rank {} cannot send as rank {src}",
            self.rank
        );
        assert!(
            dst < self.world && dst != self.rank,
            "bad destination {dst}"
        );
        // The socket boundary: a shared payload is encoded here — once,
        // cached, so a broadcast of one payload encodes a single time no
        // matter how many peers it goes to.
        let bytes: &[u8] = match &payload {
            Payload::Bytes(b) => b,
            Payload::Shared(s) => s.encoded(),
        };
        let _span = opt_trace::begin_full(SpanKind::Send, 0, NO_MICRO, bytes.len() as u64, 0);
        let frame = wire_frame(channel, dst, bytes);
        let slot = self.peers.slots[dst].read();
        let Some(peer) = slot.as_ref() else {
            return Err(TransportError::Disconnected { peer: dst });
        };
        if !peer.alive.load(Ordering::SeqCst) {
            return Err(TransportError::Disconnected { peer: dst });
        }
        let mut w = peer.writer.lock();
        w.write_all(&frame)
            .map_err(|_| TransportError::Disconnected { peer: dst })?;
        w.flush()
            .map_err(|_| TransportError::Disconnected { peer: dst })?;
        drop(w);
        drop(slot);
        self.stats.record_send(src, dst, channel, bytes.len());
        Ok(())
    }

    fn recv_payload(
        &self,
        src: usize,
        dst: usize,
        channel: u64,
        timeout: Duration,
    ) -> Result<Payload, TransportError> {
        assert!(
            dst == self.rank,
            "TcpTransport rank {} cannot receive as rank {dst}",
            self.rank
        );
        assert!(src < self.world && src != self.rank, "bad source {src}");
        let rx = {
            let mut map = self.inbox.lock();
            map.entry((src, channel))
                .or_insert_with(unbounded)
                .1
                .clone()
        };
        let span = opt_trace::begin_full(SpanKind::Recv, 0, NO_MICRO, 0, 0);
        let start = Instant::now();
        let deadline = start + timeout;
        loop {
            let slice = deadline
                .saturating_duration_since(Instant::now())
                .min(POLL_SLICE);
            match rx.recv_timeout(slice) {
                Ok(payload) => {
                    let wire_len = payload.wire_len();
                    span.set_bytes(wire_len as u64);
                    self.stats.record_recv(src, dst, channel, wire_len);
                    return Ok(payload);
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(TransportError::Disconnected { peer: src })
                }
                Err(RecvTimeoutError::Timeout) => {
                    // Drain wins over death: only report a dead peer once
                    // its lane is empty.
                    if rx.is_empty() {
                        let slot = self.peers.slots[src].read();
                        match slot.as_ref() {
                            Some(peer) => {
                                if peer.corrupt.load(Ordering::SeqCst) {
                                    return Err(TransportError::Corrupt {
                                        detail: format!(
                                            "connection from rank {src} failed frame validation"
                                        ),
                                    });
                                }
                                if !peer.alive.load(Ordering::SeqCst) {
                                    return Err(TransportError::Disconnected { peer: src });
                                }
                            }
                            None => return Err(TransportError::Disconnected { peer: src }),
                        }
                    }
                    if Instant::now() >= deadline {
                        return Err(TransportError::Timeout {
                            src,
                            dst,
                            channel,
                            waited_ms: start.elapsed().as_millis(),
                        });
                    }
                }
            }
        }
    }

    fn try_recv_payload(
        &self,
        src: usize,
        dst: usize,
        channel: u64,
    ) -> Result<Option<Payload>, TransportError> {
        assert!(dst == self.rank, "bad destination {dst}");
        let rx = {
            let mut map = self.inbox.lock();
            map.entry((src, channel))
                .or_insert_with(unbounded)
                .1
                .clone()
        };
        let got = rx.try_recv().ok();
        if let Some(payload) = &got {
            self.stats
                .record_recv(src, dst, channel, payload.wire_len());
        }
        Ok(got)
    }

    fn channel_stats(&self) -> Vec<ChannelStat> {
        self.stats.snapshot()
    }
}

/// Meshes a TCP world through a shared rendezvous directory: every rank
/// binds an ephemeral loopback listener, publishes `ep-<rank>` (atomic
/// write, so a reader never sees a half-written address), waits for all
/// peers to publish, then [`TcpBound::establish`]es the full mesh.
///
/// The directory must be fresh per world incarnation — stale endpoint
/// files from a previous run would be read as live peers.
pub fn tcp_rendezvous(
    dir: impl Into<PathBuf>,
    world: usize,
    rank: usize,
    timeout: Duration,
) -> Result<TcpTransport, TransportError> {
    let dir = dir.into();
    std::fs::create_dir_all(&dir).map_err(TransportError::io)?;
    let bound = TcpTransport::bind(world, rank, "127.0.0.1:0")?;
    publish_endpoint(&dir, rank, bound.addr())?;
    let deadline = Instant::now() + timeout;
    let endpoints = poll_endpoints(&dir, world, deadline)?;
    bound.establish(
        &endpoints,
        deadline.saturating_duration_since(Instant::now()),
    )
}

/// Re-meshes a relaunched rank into a live world through the *same*
/// rendezvous directory the world was originally built in: the survivors'
/// endpoint files are still valid (their listeners stay open for the
/// transport's whole life), and this rank overwrites its own stale
/// `ep-<rank>` before dialing everyone via [`TcpBound::rejoin`].
pub fn tcp_rejoin(
    dir: impl Into<PathBuf>,
    world: usize,
    rank: usize,
    timeout: Duration,
) -> Result<TcpTransport, TransportError> {
    let dir = dir.into();
    std::fs::create_dir_all(&dir).map_err(TransportError::io)?;
    let bound = TcpTransport::bind(world, rank, "127.0.0.1:0")?;
    publish_endpoint(&dir, rank, bound.addr())?;
    let deadline = Instant::now() + timeout;
    let endpoints = poll_endpoints(&dir, world, deadline)?;
    bound.rejoin(
        &endpoints,
        deadline.saturating_duration_since(Instant::now()),
    )
}

/// Polls the rendezvous directory until every rank's endpoint is
/// published (capped-exponential backoff), or the deadline passes.
fn poll_endpoints(
    dir: &Path,
    world: usize,
    deadline: Instant,
) -> Result<Vec<SocketAddr>, TransportError> {
    let retry = RetryPolicy::from_env();
    let mut endpoints = Vec::with_capacity(world);
    for peer in 0..world {
        let addr = retry
            .run_until(deadline, || read_endpoint(dir, peer).ok_or(()))
            .map_err(|()| TransportError::Rendezvous {
                detail: format!("rank {peer} never published an endpoint in {dir:?}"),
            })?;
        endpoints.push(addr);
    }
    Ok(endpoints)
}

/// Publishes this rank's listener address into the rendezvous directory.
fn publish_endpoint(dir: &Path, rank: usize, addr: SocketAddr) -> Result<(), TransportError> {
    framing::atomic_write(&dir.join(format!("ep-{rank}")), addr.to_string().as_bytes()).map_err(
        |e| TransportError::Rendezvous {
            detail: format!("publishing endpoint for rank {rank}: {e}"),
        },
    )
}

/// Reads a peer's published listener address, if present yet.
fn read_endpoint(dir: &Path, rank: usize) -> Option<SocketAddr> {
    let bytes = std::fs::read(dir.join(format!("ep-{rank}"))).ok()?;
    String::from_utf8(bytes).ok()?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn local_lanes_are_fifo_and_independent() {
        let t = LocalTransport::new(2);
        for i in 0..5u8 {
            t.send(0, 1, 7, vec![i]).unwrap();
        }
        t.send(1, 0, 7, vec![99]).unwrap();
        t.send(0, 1, 8, vec![42]).unwrap();
        for i in 0..5u8 {
            assert_eq!(t.recv(0, 1, 7, net_timeout()).unwrap(), vec![i]);
        }
        assert_eq!(t.recv(1, 0, 7, net_timeout()).unwrap(), vec![99]);
        assert_eq!(t.recv(0, 1, 8, net_timeout()).unwrap(), vec![42]);
    }

    #[test]
    fn local_timeout_reports_lane() {
        let t = LocalTransport::new(2);
        let err = t.recv(0, 1, 3, Duration::from_millis(10)).unwrap_err();
        match err {
            TransportError::Timeout {
                src, dst, channel, ..
            } => {
                assert_eq!((src, dst, channel), (0, 1, 3));
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(err.to_string().contains("src 0 -> dst 1"));
    }

    #[test]
    fn local_try_recv_is_nonblocking() {
        let t = LocalTransport::new(2);
        assert_eq!(t.try_recv(0, 1, 0).unwrap(), None);
        t.send(0, 1, 0, vec![5]).unwrap();
        assert_eq!(t.try_recv(0, 1, 0).unwrap(), Some(vec![5]));
    }

    /// Establishes an n-rank loopback TCP world in `dir`, keeping the
    /// rendezvous files so a rank can later rejoin through them.
    fn tcp_world_in(dir: &Path, n: usize) -> Vec<TcpTransport> {
        let handles: Vec<_> = (0..n)
            .map(|r| {
                let dir = dir.to_path_buf();
                thread::spawn(move || {
                    tcp_rendezvous(dir, n, r, Duration::from_secs(20)).expect("rendezvous")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    /// Establishes an n-rank loopback TCP world inside one test process.
    fn tcp_world(n: usize) -> Vec<TcpTransport> {
        let dir = std::env::temp_dir().join(format!(
            "opt-tcp-test-{}-{:?}",
            std::process::id(),
            thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let out = tcp_world_in(&dir, n);
        let _ = std::fs::remove_dir_all(&dir);
        out
    }

    #[test]
    fn tcp_world_exchanges_fifo_messages() {
        let world = tcp_world(3);
        // Every ordered pair exchanges a couple of messages, in order.
        thread::scope(|s| {
            for t in &world {
                s.spawn(move || {
                    let me = t.rank();
                    for dst in 0..t.world() {
                        if dst == me {
                            continue;
                        }
                        for k in 0..3u8 {
                            t.send(me, dst, 1, vec![me as u8, k]).unwrap();
                        }
                    }
                    for src in 0..t.world() {
                        if src == me {
                            continue;
                        }
                        for k in 0..3u8 {
                            let got = t.recv(src, me, 1, Duration::from_secs(10)).unwrap();
                            assert_eq!(got, vec![src as u8, k]);
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn tcp_large_payload_roundtrips_exactly() {
        let world = tcp_world(2);
        let payload: Vec<u8> = (0..1_000_000u32).map(|i| (i % 251) as u8).collect();
        let expect = payload.clone();
        thread::scope(|s| {
            let t0 = &world[0];
            let t1 = &world[1];
            s.spawn(move || t0.send(0, 1, 9, payload).unwrap());
            let got = t1.recv(0, 1, 9, Duration::from_secs(20)).unwrap();
            assert_eq!(got, expect);
        });
    }

    #[test]
    fn tcp_detects_dead_peer() {
        let mut world = tcp_world(2);
        let t1 = world.pop().unwrap();
        let t0 = world.pop().unwrap();
        drop(t1); // rank 1's connections close
        let err = t0.recv(1, 0, 0, Duration::from_secs(5)).unwrap_err();
        assert_eq!(err, TransportError::Disconnected { peer: 1 });
        // Sending to the dead peer fails too (possibly after the OS
        // notices the close).
        let mut saw_disconnect = false;
        for _ in 0..50 {
            if t0.send(0, 1, 0, vec![1]).is_err() {
                saw_disconnect = true;
                break;
            }
            thread::sleep(Duration::from_millis(10));
        }
        assert!(saw_disconnect, "send to dead peer never failed");
    }

    #[test]
    fn killed_rank_rejoins_with_lane_resync() {
        let dir = std::env::temp_dir().join(format!(
            "opt-tcp-rejoin-{}-{:?}",
            std::process::id(),
            thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut world = tcp_world_in(&dir, 3);
        let t2 = world.pop().unwrap();
        let t1 = world.pop().unwrap();
        let t0 = world.pop().unwrap();

        // A message from rank 1's first incarnation that nobody received:
        // the splice must drain it, not deliver it to the replacement's
        // conversation.
        t1.send(1, 0, 5, vec![0xAA]).unwrap();
        thread::sleep(Duration::from_millis(200));

        let gen0 = t0.peer_generation(1);
        let gen2 = t2.peer_generation(1);
        drop(t1); // rank 1 dies

        let nt1 = tcp_rejoin(&dir, 3, 1, Duration::from_secs(20)).expect("rejoin");
        assert_eq!(
            t0.wait_peer_generation(1, gen0, Duration::from_secs(10))
                .unwrap(),
            gen0 + 1
        );
        t2.wait_peer_generation(1, gen2, Duration::from_secs(10))
            .unwrap();

        // The stale frame is gone; fresh traffic flows in both directions
        // with every survivor, on the survivors' original sockets.
        nt1.send(1, 0, 5, vec![0xBB]).unwrap();
        assert_eq!(
            t0.recv(1, 0, 5, Duration::from_secs(10)).unwrap(),
            vec![0xBB]
        );
        t0.send(0, 1, 5, vec![1]).unwrap();
        assert_eq!(nt1.recv(0, 1, 5, Duration::from_secs(10)).unwrap(), vec![1]);
        t2.send(2, 1, 6, vec![2]).unwrap();
        assert_eq!(nt1.recv(2, 1, 6, Duration::from_secs(10)).unwrap(), vec![2]);
        nt1.send(1, 2, 6, vec![3]).unwrap();
        assert_eq!(t2.recv(1, 2, 6, Duration::from_secs(10)).unwrap(), vec![3]);

        // Double-kill of the same rank: a second incarnation dies too and
        // a third splices in, bumping the generation again.
        let gen0 = t0.peer_generation(1);
        drop(nt1);
        let nt1b = tcp_rejoin(&dir, 3, 1, Duration::from_secs(20)).expect("second rejoin");
        assert_eq!(
            t0.wait_peer_generation(1, gen0, Duration::from_secs(10))
                .unwrap(),
            gen0 + 1
        );
        nt1b.send(1, 0, 5, vec![0xCC]).unwrap();
        assert_eq!(
            t0.recv(1, 0, 5, Duration::from_secs(10)).unwrap(),
            vec![0xCC]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wait_peer_generation_times_out_without_rejoin() {
        let world = tcp_world(2);
        let gen = world[0].peer_generation(1);
        assert_eq!(gen, 1);
        let err = world[0]
            .wait_peer_generation(1, gen, Duration::from_millis(60))
            .unwrap_err();
        assert!(matches!(err, TransportError::Timeout { .. }));
    }

    #[test]
    fn tcp_rejects_tampered_frame() {
        // Rank 0 is a real transport endpoint; the "peer" is a raw socket
        // that completes the hello handshake and then sends a frame with
        // one flipped payload bit. The transport must refuse to deliver
        // it and surface Corrupt instead.
        let bound = TcpTransport::bind(2, 0, "127.0.0.1:0").expect("bind");
        let addr = bound.addr();
        let attacker = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(&wire_hello(1)).expect("hello");
            let mut frame = wire_frame(4, 0, b"legitimate payload");
            let n = frame.len();
            frame[n - 12] ^= 0x01; // flip one payload bit
            s.write_all(&frame).expect("tampered frame");
            s.flush().expect("flush");
            // Keep the socket open so EOF cannot mask the corruption.
            thread::sleep(Duration::from_secs(2));
        });
        let t0 = bound.establish(&[], Duration::from_secs(10)).expect("mesh");
        let err = t0.recv(1, 0, 4, Duration::from_secs(5)).unwrap_err();
        assert!(
            matches!(err, TransportError::Corrupt { .. }),
            "tampered frame yielded {err:?}"
        );
        attacker.join().unwrap();
    }

    #[test]
    fn channel_stats_agree_between_local_and_tcp() {
        // Same message pattern over both backends: the per-lane counters
        // must be identical once the TCP halves are merged, because lane
        // accounting counts payload bytes only (no frame overhead).
        let local = LocalTransport::new(2);
        local.send(0, 1, channel_id(1, 0), vec![0; 100]).unwrap();
        local.send(0, 1, channel_id(1, 0), vec![0; 20]).unwrap();
        local.recv(0, 1, channel_id(1, 0), net_timeout()).unwrap();
        local.recv(0, 1, channel_id(1, 0), net_timeout()).unwrap();

        let world = tcp_world(2);
        world[0].send(0, 1, channel_id(1, 0), vec![0; 100]).unwrap();
        world[0].send(0, 1, channel_id(1, 0), vec![0; 20]).unwrap();
        world[1]
            .recv(0, 1, channel_id(1, 0), Duration::from_secs(10))
            .unwrap();
        world[1]
            .recv(0, 1, channel_id(1, 0), Duration::from_secs(10))
            .unwrap();

        let mut merged = crate::TrafficBreakdown::new(
            crate::TrafficSnapshot::default(),
            world[0].channel_stats(),
        );
        merged.absorb(&crate::TrafficBreakdown::new(
            crate::TrafficSnapshot::default(),
            world[1].channel_stats(),
        ));
        let reference =
            crate::TrafficBreakdown::new(crate::TrafficSnapshot::default(), local.channel_stats());
        assert_eq!(merged, reference);
        assert_eq!(merged.channels[0].send_bytes, 120);
        assert_eq!(merged.channels[0].recv_bytes, 120);
    }

    #[test]
    fn timeout_env_knob_is_read() {
        // Not set in the test environment: default applies.
        assert_eq!(net_timeout(), Duration::from_millis(DEFAULT_TIMEOUT_MS));
    }

    #[test]
    fn channel_ids_partition_by_namespace() {
        assert_ne!(channel_id(1, 0), channel_id(2, 0));
        assert_ne!(channel_id(1, 0), channel_id(1, 1));
        assert_eq!(channel_id(3, 7), channel_id(3, 7));
    }
}
