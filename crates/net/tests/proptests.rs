//! Property-based tests for the communication substrate.

use opt_net::{
    all_reduce_time_s, p2p_time_s, ring_all_reduce_wire_bytes, tcp_rendezvous, CollectiveWorld,
    CostModel, LocalTransport, P2pMesh, SharedPayload, Topology, TrafficClass, TrafficLedger,
    Transport, TransportError,
};
use opt_tensor::{Matrix, Persist, SeedStream};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// The contract both transports must honor: the all-reduce result is the
/// strict member-order left fold, bit for bit.
fn member_order_reference(inputs: &[Matrix]) -> Matrix {
    let mut acc = inputs[0].clone();
    for m in &inputs[1..] {
        acc.add_assign(m);
    }
    acc
}

fn assert_bits_equal(
    got: &Matrix,
    expect: &Matrix,
    what: &str,
) -> Result<(), proptest::test_runner::TestCaseError> {
    prop_assert_eq!(got.shape(), expect.shape(), "{} shape", what);
    for (a, b) in got.as_slice().iter().zip(expect.as_slice()) {
        prop_assert_eq!(a.to_bits(), b.to_bits(), "{}: {} != {}", what, a, b);
    }
    Ok(())
}

/// A tiny deterministic shuffler (Fisher–Yates over an LCG), so the
/// adversarial schedule is reproducible from the proptest case seed.
fn shuffled(n: usize, mut seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (seed >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    order
}

/// Fresh scratch directory per TCP world (stale endpoint files from an
/// earlier case would be read as live peers).
fn fresh_rdv_dir() -> std::path::PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "opt-net-proptest-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs one all-reduce round where member threads *arrive* in an
/// adversarial (shuffled, staggered) order, returning every member's
/// result. `make_group` builds each member's view of the group — shared
/// clones for the in-process world, per-rank transports for TCP.
fn adversarial_round<Tr: Transport>(
    groups: Vec<opt_net::CollectiveGroup<Tr>>,
    inputs: &[Matrix],
    order: &[usize],
) -> Vec<Matrix> {
    let n = inputs.len();
    let mut outs: Vec<Option<Matrix>> = (0..n).map(|_| None).collect();
    thread::scope(|s| {
        let mut handles = Vec::new();
        for (slot, &member) in order.iter().enumerate() {
            let m = inputs[member].clone();
            let g = groups[member].clone();
            // Stagger arrivals so the spawn order IS the arrival order:
            // the first spawned thread contributes last.
            let delay = Duration::from_millis(((order.len() - slot) * 3) as u64);
            handles.push((
                member,
                s.spawn(move || {
                    thread::sleep(delay);
                    g.all_reduce_sum(member, m).expect("all-reduce decode")
                }),
            ));
        }
        for (member, h) in handles {
            outs[member] = Some(h.join().expect("member thread"));
        }
    });
    outs.into_iter().map(|o| o.expect("filled")).collect()
}

proptest! {
    #[test]
    fn ring_wire_bytes_bounded_by_2v(volume in 0.0f64..1e12, ranks in 1usize..1024) {
        let wire = ring_all_reduce_wire_bytes(volume, ranks);
        prop_assert!(wire >= 0.0);
        prop_assert!(wire <= 2.0 * volume + 1e-9);
        if ranks == 1 {
            prop_assert_eq!(wire, 0.0);
        }
    }

    #[test]
    fn all_reduce_time_monotone_in_ranks(volume in 1.0f64..1e9, ranks in 2usize..128) {
        let t1 = all_reduce_time_s(volume, ranks, 10e9, 5e-6);
        let t2 = all_reduce_time_s(volume, ranks + 1, 10e9, 5e-6);
        prop_assert!(t2 >= t1, "more ranks cannot be faster for fixed volume");
    }

    #[test]
    fn p2p_time_linear_in_volume(v in 1.0f64..1e9, bw in 1e9f64..1e12) {
        let t1 = p2p_time_s(v, bw, 0.0);
        let t2 = p2p_time_s(2.0 * v, bw, 0.0);
        prop_assert!((t2 - 2.0 * t1).abs() < 1e-12 * t2.max(1.0));
    }

    #[test]
    fn fusion_speedup_matches_closed_form(d in 2usize..256) {
        let cm = CostModel::new(Topology::paper_cluster());
        let expect = (d as f64 - 1.0) / (2.0 * d as f64 - 1.0);
        prop_assert!((cm.embedding_fusion_speedup(d) - expect).abs() < 1e-9);
    }

    #[test]
    fn all_reduce_sum_equals_serial_sum(n_ranks in 2usize..5, seed in 0u64..200) {
        let mut rng = SeedStream::new(seed);
        let inputs: Vec<Matrix> = (0..n_ranks).map(|_| rng.uniform_matrix(3, 3, 2.0)).collect();
        let mut expect = Matrix::zeros(3, 3);
        for m in &inputs {
            expect.add_assign(m);
        }
        let world = CollectiveWorld::new(n_ranks);
        let group = world.group(&(0..n_ranks).collect::<Vec<_>>());
        let outs: Vec<Matrix> = thread::scope(|s| {
            inputs
                .iter()
                .enumerate()
                .map(|(r, m)| {
                    let g = group.clone();
                    let m = m.clone();
                    s.spawn(move || g.all_reduce_sum(r, m).unwrap())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for o in outs {
            prop_assert!(o.sub(&expect).max_abs() < 1e-4);
        }
    }

    #[test]
    fn typed_hop_matches_byte_hop_bit_for_bit_and_in_stats(
        rows in 1usize..6,
        cols in 1usize..6,
        seed in 0u64..1000,
    ) {
        // The typed fast path must be observationally identical to the
        // byte path it replaced: same bits delivered, same per-lane
        // accounting — so swapping one for the other can never perturb
        // the determinism contract.
        let m = SeedStream::new(seed).uniform_matrix(rows, cols, 3.0);
        let byte_t = LocalTransport::new(2);
        let typed_t = LocalTransport::new(2);
        byte_t.send(0, 1, 7, m.to_bytes()).unwrap();
        let a = Matrix::from_bytes(&byte_t.recv(0, 1, 7, Duration::from_secs(5)).unwrap()).unwrap();
        typed_t.send_value(0, 1, 7, m.clone()).unwrap();
        let b: Matrix = typed_t.recv_value(0, 1, 7, Duration::from_secs(5)).unwrap();
        assert_bits_equal(&a, &b, "typed vs byte hop")?;
        assert_bits_equal(&b, &m, "typed hop vs original")?;
        prop_assert_eq!(byte_t.channel_stats(), typed_t.channel_stats());
    }

    #[test]
    fn shared_payload_forced_encode_matches_zero_copy(
        rows in 1usize..6,
        cols in 1usize..6,
        seed in 0u64..1000,
    ) {
        // A SharedPayload crossing a socket boundary is force-encoded
        // from its cache (the TCP path); the same payload handed off
        // zero-copy (the Local path) must carry exactly the same value.
        let m = SeedStream::new(seed).uniform_matrix(rows, cols, 3.0);
        let payload = SharedPayload::new(m.clone());
        let encoded = payload.encoded().to_vec();
        prop_assert_eq!(&encoded, &m.to_bytes(), "forced encode differs from Persist");
        let decoded = Matrix::from_bytes(&encoded).unwrap();
        let handed_off = payload.downcast::<Matrix>().expect("typed payload");
        assert_bits_equal(&decoded, &handed_off, "socket path vs zero-copy handoff")?;
        assert_bits_equal(&handed_off, &m, "zero-copy handoff vs original")?;
    }

    #[test]
    fn mesh_preserves_all_messages(n_msgs in 1usize..40) {
        let mesh: P2pMesh<usize> = P2pMesh::new(2);
        for i in 0..n_msgs {
            mesh.send(0, 1, i);
        }
        for i in 0..n_msgs {
            prop_assert_eq!(mesh.recv(0, 1).unwrap(), i);
        }
        prop_assert!(mesh.try_recv(0, 1).is_none());
    }

    #[test]
    fn ledger_totals_are_sums(a in 0u64..1_000_000, b in 0u64..1_000_000, c in 0u64..1_000_000) {
        let ledger = TrafficLedger::new();
        ledger.record(TrafficClass::DataParallel, a);
        ledger.record(TrafficClass::InterStage, b);
        ledger.record(TrafficClass::Embedding, c);
        let s = ledger.snapshot();
        prop_assert_eq!(s.total_bytes(), a + b + c);
    }

    #[test]
    fn local_all_reduce_bit_identical_under_adversarial_arrival(
        n_ranks in 2usize..5,
        seed in 0u64..500,
        sched in 0u64..u64::MAX,
    ) {
        // Ill-conditioned inputs (mixed magnitudes) so any deviation from
        // the member-order reduction changes the rounded bits.
        let mut rng = SeedStream::new(seed);
        let inputs: Vec<Matrix> = (0..n_ranks)
            .map(|i| {
                let mut m = rng.uniform_matrix(3, 4, 1.0);
                m.scale_assign(10f32.powi((i as i32 % 5) - 2));
                m
            })
            .collect();
        let expect = member_order_reference(&inputs);
        let world = CollectiveWorld::new(n_ranks);
        let group = world.group(&(0..n_ranks).collect::<Vec<_>>());
        // Three rounds with different adversarial arrival orders: the
        // result must never depend on who showed up first.
        for round in 0..3u64 {
            let order = shuffled(n_ranks, sched ^ round);
            let groups = (0..n_ranks).map(|_| group.clone()).collect();
            let outs = adversarial_round(groups, &inputs, &order);
            for (r, out) in outs.iter().enumerate() {
                assert_bits_equal(out, &expect, &format!("round {round} rank {r}"))?;
            }
        }
    }
}

proptest! {
    // TCP worlds mesh real sockets per case; a smaller case budget keeps
    // the suite fast while still sweeping world sizes and schedules.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn tcp_all_reduce_bit_identical_under_adversarial_arrival(
        n_ranks in 2usize..4,
        seed in 0u64..500,
        sched in 0u64..u64::MAX,
    ) {
        let mut rng = SeedStream::new(seed);
        let inputs: Vec<Matrix> = (0..n_ranks)
            .map(|i| {
                let mut m = rng.uniform_matrix(2, 5, 1.0);
                m.scale_assign(10f32.powi((i as i32 % 5) - 2));
                m
            })
            .collect();
        let expect = member_order_reference(&inputs);

        // One transport per rank, exactly like one process per rank; each
        // rank builds its own CollectiveWorld and carves the same group,
        // so channel ids agree (the rule real worker processes follow).
        let dir = fresh_rdv_dir();
        let transports: Vec<_> = thread::scope(|s| {
            (0..n_ranks)
                .map(|r| {
                    let dir = dir.clone();
                    s.spawn(move || {
                        tcp_rendezvous(dir, n_ranks, r, Duration::from_secs(20))
                            .expect("rendezvous")
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("mesh"))
                .collect()
        });
        let groups: Vec<_> = transports
            .into_iter()
            .map(|t| {
                CollectiveWorld::over(Arc::new(t)).group(&(0..n_ranks).collect::<Vec<_>>())
            })
            .collect();

        for round in 0..2u64 {
            let order = shuffled(n_ranks, sched ^ round);
            let outs = adversarial_round(groups.clone(), &inputs, &order);
            for (r, out) in outs.iter().enumerate() {
                assert_bits_equal(out, &expect, &format!("tcp round {round} rank {r}"))?;
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The satellite corruption check at the integration level, using only
/// the public API: a raw socket completes the hello handshake and then
/// delivers a frame with one flipped bit — the transport must surface
/// `Corrupt`, never the damaged payload.
#[test]
fn tcp_transport_rejects_a_tampered_frame() {
    use std::io::Write;

    let bound = opt_net::TcpTransport::bind(2, 0, "127.0.0.1:0").expect("bind");
    let addr = bound.addr();
    let attacker = thread::spawn(move || {
        let mut s = std::net::TcpStream::connect(addr).expect("connect");
        s.write_all(&opt_net::wire_hello(1)).expect("hello");
        let mut frame = opt_net::wire_frame(3, 0, b"gradient bits");
        let n = frame.len();
        frame[n - 9] ^= 0x20;
        s.write_all(&frame).expect("frame");
        s.flush().expect("flush");
        thread::sleep(Duration::from_secs(2));
    });
    let t = bound.establish(&[], Duration::from_secs(10)).expect("mesh");
    let err = t.recv(1, 0, 3, Duration::from_secs(5)).unwrap_err();
    assert!(
        matches!(err, TransportError::Corrupt { .. }),
        "tampered frame yielded {err:?}"
    );
    attacker.join().unwrap();
}
