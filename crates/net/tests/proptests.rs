//! Property-based tests for the communication substrate.

use opt_net::{
    all_reduce_time_s, p2p_time_s, ring_all_reduce_wire_bytes, CollectiveWorld, CostModel, P2pMesh,
    Topology, TrafficClass, TrafficLedger,
};
use opt_tensor::{Matrix, SeedStream};
use proptest::prelude::*;
use std::thread;

proptest! {
    #[test]
    fn ring_wire_bytes_bounded_by_2v(volume in 0.0f64..1e12, ranks in 1usize..1024) {
        let wire = ring_all_reduce_wire_bytes(volume, ranks);
        prop_assert!(wire >= 0.0);
        prop_assert!(wire <= 2.0 * volume + 1e-9);
        if ranks == 1 {
            prop_assert_eq!(wire, 0.0);
        }
    }

    #[test]
    fn all_reduce_time_monotone_in_ranks(volume in 1.0f64..1e9, ranks in 2usize..128) {
        let t1 = all_reduce_time_s(volume, ranks, 10e9, 5e-6);
        let t2 = all_reduce_time_s(volume, ranks + 1, 10e9, 5e-6);
        prop_assert!(t2 >= t1, "more ranks cannot be faster for fixed volume");
    }

    #[test]
    fn p2p_time_linear_in_volume(v in 1.0f64..1e9, bw in 1e9f64..1e12) {
        let t1 = p2p_time_s(v, bw, 0.0);
        let t2 = p2p_time_s(2.0 * v, bw, 0.0);
        prop_assert!((t2 - 2.0 * t1).abs() < 1e-12 * t2.max(1.0));
    }

    #[test]
    fn fusion_speedup_matches_closed_form(d in 2usize..256) {
        let cm = CostModel::new(Topology::paper_cluster());
        let expect = (d as f64 - 1.0) / (2.0 * d as f64 - 1.0);
        prop_assert!((cm.embedding_fusion_speedup(d) - expect).abs() < 1e-9);
    }

    #[test]
    fn all_reduce_sum_equals_serial_sum(n_ranks in 2usize..5, seed in 0u64..200) {
        let mut rng = SeedStream::new(seed);
        let inputs: Vec<Matrix> = (0..n_ranks).map(|_| rng.uniform_matrix(3, 3, 2.0)).collect();
        let mut expect = Matrix::zeros(3, 3);
        for m in &inputs {
            expect.add_assign(m);
        }
        let world = CollectiveWorld::new(n_ranks);
        let group = world.group(&(0..n_ranks).collect::<Vec<_>>());
        let outs: Vec<Matrix> = thread::scope(|s| {
            inputs
                .iter()
                .enumerate()
                .map(|(r, m)| {
                    let g = group.clone();
                    let m = m.clone();
                    s.spawn(move || g.all_reduce_sum(r, m))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for o in outs {
            prop_assert!(o.sub(&expect).max_abs() < 1e-4);
        }
    }

    #[test]
    fn mesh_preserves_all_messages(n_msgs in 1usize..40) {
        let mesh: P2pMesh<usize> = P2pMesh::new(2);
        for i in 0..n_msgs {
            mesh.send(0, 1, i);
        }
        for i in 0..n_msgs {
            prop_assert_eq!(mesh.recv(0, 1).unwrap(), i);
        }
        prop_assert!(mesh.try_recv(0, 1).is_none());
    }

    #[test]
    fn ledger_totals_are_sums(a in 0u64..1_000_000, b in 0u64..1_000_000, c in 0u64..1_000_000) {
        let ledger = TrafficLedger::new();
        ledger.record(TrafficClass::DataParallel, a);
        ledger.record(TrafficClass::InterStage, b);
        ledger.record(TrafficClass::Embedding, c);
        let s = ledger.snapshot();
        prop_assert_eq!(s.total_bytes(), a + b + c);
    }
}
