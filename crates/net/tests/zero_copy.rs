//! The zero-copy contract of the typed transport fast path: over
//! [`LocalTransport`], collective and mesh hops move values as `Arc`
//! handoffs and perform **zero** `Persist` encode/decode cycles. The
//! counters are thread-local, so every participating thread asserts its
//! own delta.

use opt_net::{CollectiveWorld, LocalTransport, P2pMesh, Transport};
use opt_tensor::{codec_cycle_counts, Matrix, Persist, SeedStream};
use std::thread;
use std::time::Duration;

#[test]
fn local_collective_hops_are_codec_free() {
    let n = 4;
    let world = CollectiveWorld::new(n);
    let group = world.group(&(0..n).collect::<Vec<_>>());
    let mut rng = SeedStream::new(11);
    let inputs: Vec<Matrix> = (0..n).map(|_| rng.uniform_matrix(6, 5, 1.0)).collect();
    let mut expect = inputs[0].clone();
    for m in &inputs[1..] {
        expect.add_assign(m);
    }
    let outs: Vec<Matrix> = thread::scope(|s| {
        inputs
            .iter()
            .enumerate()
            .map(|(r, m)| {
                let g = group.clone();
                let m = m.clone();
                s.spawn(move || {
                    let before = codec_cycle_counts();
                    let out = g.all_reduce_sum(r, m).expect("all-reduce");
                    assert_eq!(
                        codec_cycle_counts(),
                        before,
                        "rank {r} all-reduce ran encode/decode cycles on LocalTransport"
                    );
                    out
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("member thread"))
            .collect()
    });
    for out in &outs {
        assert_eq!(out, &expect);
    }
}

#[test]
fn local_mesh_hops_are_codec_free() {
    let mesh: P2pMesh<Matrix> = P2pMesh::new(2);
    let m = SeedStream::new(3).uniform_matrix(4, 7, 1.0);
    let before = codec_cycle_counts();
    mesh.send(0, 1, m.clone());
    let got = mesh.recv(0, 1).expect("mesh recv");
    assert_eq!(
        codec_cycle_counts(),
        before,
        "typed mesh hop ran encode/decode cycles on LocalTransport"
    );
    assert_eq!(got, m);
}

#[test]
fn local_typed_raw_hops_are_codec_free_and_recorded() {
    // The raw typed API on a bare transport: send_value/recv_value must
    // be codec-free AND still account wire bytes in the channel stats
    // (via arithmetic `persist_len`, not a scratch encode).
    let t = LocalTransport::new(2);
    let m = SeedStream::new(5).uniform_matrix(3, 3, 1.0);
    let wire = m.to_bytes().len() as u64; // reference encode, outside the window
    let before = codec_cycle_counts();
    t.send_value(0, 1, 9, m.clone()).expect("send");
    let got: Matrix = t.recv_value(0, 1, 9, Duration::from_secs(5)).expect("recv");
    assert_eq!(codec_cycle_counts(), before, "typed hop ran codec cycles");
    assert_eq!(got, m);
    let stats = t.channel_stats();
    let lane = stats
        .iter()
        .find(|st| st.channel == 9)
        .expect("lane recorded");
    assert_eq!(lane.send_bytes, wire, "stats must record encoded wire size");
    assert_eq!(lane.recv_bytes, wire, "stats must record decoded wire size");
}
