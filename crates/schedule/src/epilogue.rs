//! Epilogue analysis for epilogue-only compression (paper §5.2).

/// Whether the backward send `sender_stage -> sender_stage - 1` for
/// micro-batch `micro` lies on the pipeline epilogue (critical path).
///
/// Under 1F1B, the receiving stage `r = sender_stage - 1` interleaves its
/// backwards with forwards until it has launched all `M` of its forwards;
/// after that it *waits* on each incoming gradient — those receives are on
/// the critical path. Stage `r` drains its last `S - r - 1` backwards this
/// way, so the epilogue sends from `sender_stage = r + 1` are the
/// micro-batches `m >= M - (S - r - 1) = M - S + sender_stage`.
///
/// This matches the paper's Fig. 6: the staircase of final backward
/// communications is compressed, everything earlier stays dense (and
/// hidden behind computation).
///
/// # Panics
///
/// Panics if `sender_stage == 0` (the first stage sends nothing upstream)
/// or `sender_stage >= n_stages`.
///
/// # Example
///
/// ```
/// use opt_schedule::is_epilogue_send;
/// // 4 stages, 8 micro-batches: stage 3's only epilogue send is the last
/// // micro-batch; stage 1 drains the last three.
/// assert!(is_epilogue_send(3, 7, 4, 8));
/// assert!(!is_epilogue_send(3, 6, 4, 8));
/// assert!(is_epilogue_send(1, 5, 4, 8));
/// assert!(!is_epilogue_send(1, 4, 4, 8));
/// ```
pub fn is_epilogue_send(
    sender_stage: usize,
    micro: usize,
    n_stages: usize,
    n_micro: usize,
) -> bool {
    assert!(sender_stage > 0, "stage 0 has no upstream backward send");
    assert!(sender_stage < n_stages, "sender stage out of range");
    let threshold = (n_micro + sender_stage).saturating_sub(n_stages);
    micro >= threshold
}

/// Enumerates all epilogue sends as `(sender_stage, micro)` pairs.
///
/// The count is `sum_{s=1}^{S-1} min(S - s, M) = S(S-1)/2` when `M >= S`.
pub fn epilogue_sends(n_stages: usize, n_micro: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for s in 1..n_stages {
        for m in 0..n_micro {
            if is_epilogue_send(s, m, n_stages, n_micro) {
                out.push((s, m));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_is_s_choose_2_when_m_large() {
        // sum_{s=1}^{S-1} (S - s) = S (S-1) / 2
        for s in 2..8 {
            let sends = epilogue_sends(s, 32);
            assert_eq!(sends.len(), s * (s - 1) / 2, "S={s}");
        }
    }

    #[test]
    fn last_stage_compresses_only_final_microbatch() {
        let sends = epilogue_sends(4, 8);
        let from_stage3: Vec<_> = sends.iter().filter(|(s, _)| *s == 3).collect();
        assert_eq!(from_stage3, vec![&(3, 7)]);
    }

    #[test]
    fn earlier_senders_have_longer_epilogues() {
        let sends = epilogue_sends(4, 8);
        let count = |stage: usize| sends.iter().filter(|(s, _)| *s == stage).count();
        assert_eq!(count(1), 3);
        assert_eq!(count(2), 2);
        assert_eq!(count(3), 1);
    }

    #[test]
    fn all_sends_are_epilogue_when_m_below_s() {
        // With M < S the pipeline never reaches steady state; every send
        // drains directly into a waiting stage.
        let sends = epilogue_sends(6, 2);
        for s in 1..6 {
            let count = sends.iter().filter(|(st, _)| *st == s).count();
            assert_eq!(count, 2.min(6 - s), "stage {s}");
        }
    }

    #[test]
    fn epilogue_fraction_shrinks_with_more_microbatches() {
        let frac = |m: usize| epilogue_sends(4, m).len() as f64 / (3 * m) as f64;
        assert!(frac(64) < frac(8));
    }

    #[test]
    #[should_panic(expected = "no upstream backward send")]
    fn stage_zero_panics() {
        is_epilogue_send(0, 0, 4, 8);
    }
}
