//! Interleaved 1F1B scheduling (Narayanan et al., SC'21), the variant the
//! paper's implementation enables (§8) to shrink pipeline bubbles.
//!
//! With `v` virtual chunks per device, each device hosts `v`
//! non-contiguous model slices; micro-batches stream through `S * v`
//! virtual stages. The bubble shrinks by `v`, but every micro-batch now
//! crosses a device boundary `v` times instead of once — the
//! communication amplification that makes inter-stage traffic worth
//! compressing in the first place (our simulator's derated inter-node
//! bandwidth folds this in; this module exposes the analytic model and
//! the virtual-stage mapping).

/// Bubble fraction of interleaved 1F1B with `v` chunks:
/// `(S - 1) / (v * M + S - 1)` — `v = 1` recovers plain 1F1B.
///
/// # Panics
///
/// Panics if any argument is zero.
pub fn interleaved_bubble_fraction(n_stages: usize, n_micro: usize, v: usize) -> f64 {
    assert!(
        n_stages > 0 && n_micro > 0 && v > 0,
        "arguments must be positive"
    );
    let s = n_stages as f64 - 1.0;
    s / (v as f64 * n_micro as f64 + s)
}

/// Communication amplification of interleaving: each micro-batch crosses
/// inter-device boundaries `v * (S - 1)` times per direction, versus
/// `S - 1` for plain 1F1B.
pub fn interleaved_comm_factor(v: usize) -> usize {
    v
}

/// Which device hosts virtual stage `k` of `S * v`, in Megatron's
/// round-robin chunk placement: device `k % S`.
///
/// # Panics
///
/// Panics if `k >= n_stages * v`.
pub fn device_of_virtual_stage(k: usize, n_stages: usize, v: usize) -> usize {
    assert!(k < n_stages * v, "virtual stage out of range");
    k % n_stages
}

/// The virtual stages hosted by `device`, in execution (chunk) order.
pub fn virtual_stages_of_device(device: usize, n_stages: usize, v: usize) -> Vec<usize> {
    (0..v).map(|chunk| chunk * n_stages + device).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bubble_fraction;

    #[test]
    fn v1_recovers_plain_1f1b() {
        for s in 1..6 {
            for m in 1..10 {
                assert!(
                    (interleaved_bubble_fraction(s, m, 1) - bubble_fraction(s, m)).abs() < 1e-12
                );
            }
        }
    }

    #[test]
    fn more_chunks_shrink_bubble() {
        let b1 = interleaved_bubble_fraction(4, 16, 1);
        let b2 = interleaved_bubble_fraction(4, 16, 2);
        let b4 = interleaved_bubble_fraction(4, 16, 4);
        assert!(b4 < b2 && b2 < b1);
        // v -> infinity drives the bubble to zero.
        assert!(interleaved_bubble_fraction(4, 16, 1000) < 1e-2);
    }

    #[test]
    fn round_robin_placement_partitions_stages() {
        let s = 4;
        let v = 3;
        let mut seen = vec![false; s * v];
        for d in 0..s {
            for k in virtual_stages_of_device(d, s, v) {
                assert_eq!(device_of_virtual_stage(k, s, v), d);
                assert!(!seen[k], "virtual stage {k} double-assigned");
                seen[k] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn comm_factor_is_chunk_count() {
        assert_eq!(interleaved_comm_factor(1), 1);
        assert_eq!(interleaved_comm_factor(4), 4);
    }
}
