//! `opt-schedule` — pipeline-parallel execution schedules.
//!
//! Reproduces Megatron-LM's `schedules.py`: the GPipe and 1F1B
//! (one-forward-one-backward) schedules over `S` stages and `M`
//! micro-batches, plus the *epilogue* analysis that Optimus-CC's
//! epilogue-only compression (§5.2) relies on: identifying which backward
//! inter-stage sends lie on the critical path because the receiving stage
//! has drained its other work.
//!
//! The same schedule drives both the real multi-threaded trainer (each
//! device thread executes its op list in order) and the discrete-event
//! performance simulator (which assigns durations to ops and transfers).
//!
//! # Example
//!
//! ```
//! use opt_schedule::{one_f_one_b, Op};
//!
//! let sched = one_f_one_b(4, 8);
//! // The last stage alternates F and B from the start (Fig. 4a).
//! assert_eq!(sched.device_ops(3)[0], Op::Forward { micro: 0 });
//! assert_eq!(sched.device_ops(3)[1], Op::Backward { micro: 0 });
//! // The first stage warms up with S-1 forwards.
//! assert_eq!(sched.device_ops(0)[2], Op::Forward { micro: 2 });
//! ```

mod epilogue;
mod interleaved;
mod overlap;
mod schedule;
mod slot;

pub use epilogue::{epilogue_sends, is_epilogue_send};
pub use interleaved::{
    device_of_virtual_stage, interleaved_bubble_fraction, interleaved_comm_factor,
    virtual_stages_of_device,
};
pub use overlap::{overlap_launch, overlap_micro, OverlapTask};
pub use schedule::{bubble_fraction, gpipe, one_f_one_b, Op, PipelineSchedule};
pub use slot::slot_guard;
