//! Comm/compute overlap for the 1F1B epilogue.
//!
//! The last backward micro-batch of every 1F1B iteration is *always* an
//! epilogue send (see [`crate::is_epilogue_send`]: `M - 1 >= M + s - S`
//! for every sender stage `s <= S - 1`), and nothing after it in the
//! schedule consumes its compressed payload locally — the only consumer
//! is the downstream stage. The worker can therefore hand that final
//! compress-and-send epilogue to a background thread and start its
//! data-parallel gradient exchange immediately, joining the task at the
//! next barrier point. The typed zero-copy transport path makes the
//! handoff cheap enough that the overlap window is pure win.
//!
//! The launch and join are recorded as [`SpanKind::OverlapLaunch`] (a
//! zero-length marker at the moment the epilogue leaves the critical
//! path) and [`SpanKind::OverlapJoin`] (the residual wait, if any, once
//! the DP exchange is done), so `opt-trace` reports show exactly how much
//! of the epilogue the exchange hid.

use opt_trace::SpanKind;

/// The single backward micro-batch whose epilogue a worker may overlap
/// with the data-parallel exchange: the last one. Returns `None` for an
/// empty schedule.
///
/// # Example
///
/// ```
/// use opt_schedule::overlap_micro;
/// assert_eq!(overlap_micro(8), Some(7));
/// assert_eq!(overlap_micro(0), None);
/// ```
pub fn overlap_micro(n_micro: usize) -> Option<usize> {
    n_micro.checked_sub(1)
}

/// An epilogue running concurrently with the caller's own work, started
/// by [`overlap_launch`]. Must be [`OverlapTask::join`]ed before the next
/// synchronization point that depends on the epilogue's side effects.
#[derive(Debug)]
pub struct OverlapTask<T> {
    handle: std::thread::JoinHandle<T>,
    iter: u64,
    micro: usize,
}

/// Launches `work` on a background thread, recording a zero-length
/// [`SpanKind::OverlapLaunch`] marker span on the calling thread at the
/// instant the epilogue leaves the critical path.
///
/// The background thread has no tracer installed, so spans the epilogue
/// itself would record are dropped; its wire bytes are attributed to the
/// join span instead (see [`OverlapTask::join`]).
pub fn overlap_launch<T, F>(iter: u64, micro: usize, work: F) -> OverlapTask<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    drop(opt_trace::begin(
        SpanKind::OverlapLaunch,
        iter,
        micro as u32,
        0,
        0,
    ));
    OverlapTask {
        handle: std::thread::spawn(work),
        iter,
        micro,
    }
}

impl<T> OverlapTask<T> {
    /// Blocks until the overlapped epilogue finishes and returns its
    /// result. The wait is recorded as a [`SpanKind::OverlapJoin`] span;
    /// `bytes_of` extracts the wire bytes the epilogue sent so the trace
    /// attributes them somewhere despite the launch span being
    /// zero-length.
    ///
    /// # Panics
    ///
    /// Panics if the epilogue thread panicked.
    pub fn join(self, bytes_of: impl FnOnce(&T) -> u64) -> T {
        let span = opt_trace::begin(SpanKind::OverlapJoin, self.iter, self.micro as u32, 0, 0);
        let out = self.handle.join().expect("overlapped epilogue panicked");
        span.set_bytes(bytes_of(&out));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opt_trace::{take_buffer, TraceMode};

    #[test]
    fn overlap_micro_is_the_last_backward() {
        assert_eq!(overlap_micro(1), Some(0));
        assert_eq!(overlap_micro(8), Some(7));
        assert_eq!(overlap_micro(0), None);
    }

    #[test]
    fn launch_and_join_return_the_work_result_and_record_spans() {
        opt_trace::install(TraceMode::Spans);
        let task = overlap_launch(3, 7, || (42u64, 128u64));
        let (value, bytes) = task.join(|&(_, b)| b);
        let buf = take_buffer(0, 1, 1);
        opt_trace::install(TraceMode::Off);
        assert_eq!((value, bytes), (42, 128));
        assert_eq!(buf.spans.len(), 2);
        assert_eq!(buf.spans[0].kind, SpanKind::OverlapLaunch);
        assert_eq!(buf.spans[0].micro, 7);
        assert_eq!(buf.spans[0].iter, 3);
        assert_eq!(buf.spans[1].kind, SpanKind::OverlapJoin);
        assert_eq!(buf.spans[1].bytes, 128);
    }

    #[test]
    fn join_works_without_a_tracer() {
        opt_trace::install(TraceMode::Off);
        let task = overlap_launch(0, 0, || 7);
        assert_eq!(task.join(|_| 0), 7);
    }

    #[test]
    #[should_panic(expected = "overlapped epilogue panicked")]
    fn join_propagates_a_panicking_epilogue() {
        opt_trace::install(TraceMode::Off);
        let task = overlap_launch(0, 0, || panic!("boom"));
        task.join(|_: &()| 0);
    }
}
