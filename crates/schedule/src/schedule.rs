//! Schedule construction: GPipe and 1F1B.

use serde::{Deserialize, Serialize};

/// One compute operation in a device's schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Forward pass of the given micro-batch.
    Forward {
        /// Micro-batch index within the iteration.
        micro: usize,
    },
    /// Backward pass of the given micro-batch.
    Backward {
        /// Micro-batch index within the iteration.
        micro: usize,
    },
}

impl Op {
    /// The micro-batch this op processes.
    pub fn micro(&self) -> usize {
        match *self {
            Op::Forward { micro } | Op::Backward { micro } => micro,
        }
    }

    /// Whether this is a forward op.
    pub fn is_forward(&self) -> bool {
        matches!(self, Op::Forward { .. })
    }
}

/// A complete per-device schedule for one training iteration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineSchedule {
    n_stages: usize,
    n_micro: usize,
    per_device: Vec<Vec<Op>>,
}

impl PipelineSchedule {
    /// Number of pipeline stages.
    pub fn n_stages(&self) -> usize {
        self.n_stages
    }

    /// Number of micro-batches per iteration.
    pub fn n_micro(&self) -> usize {
        self.n_micro
    }

    /// The ordered op list of device (stage) `stage`.
    ///
    /// # Panics
    ///
    /// Panics if `stage >= n_stages`.
    pub fn device_ops(&self, stage: usize) -> &[Op] {
        &self.per_device[stage]
    }

    /// Iterates over `(stage, ops)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[Op])> {
        self.per_device
            .iter()
            .enumerate()
            .map(|(s, ops)| (s, ops.as_slice()))
    }

    /// Validates structural invariants; used by property tests and
    /// asserted by the trainer on construction.
    ///
    /// Invariants: every device runs every micro-batch exactly once
    /// forward and once backward; per device, `B(m)` comes after `F(m)`;
    /// backwards are emitted in micro-batch order (the FIFO-cache
    /// contract of `opt-model`).
    pub fn validate(&self) -> Result<(), String> {
        for (s, ops) in self.iter() {
            let mut fwd_seen = vec![false; self.n_micro];
            let mut bwd_seen = vec![false; self.n_micro];
            let mut last_bwd: Option<usize> = None;
            for op in ops {
                match *op {
                    Op::Forward { micro } => {
                        if fwd_seen[micro] {
                            return Err(format!("stage {s}: duplicate F({micro})"));
                        }
                        fwd_seen[micro] = true;
                    }
                    Op::Backward { micro } => {
                        if !fwd_seen[micro] {
                            return Err(format!("stage {s}: B({micro}) before F({micro})"));
                        }
                        if bwd_seen[micro] {
                            return Err(format!("stage {s}: duplicate B({micro})"));
                        }
                        if let Some(prev) = last_bwd {
                            if micro != prev + 1 {
                                return Err(format!(
                                    "stage {s}: backward order broken ({prev} -> {micro})"
                                ));
                            }
                        } else if micro != 0 {
                            return Err(format!("stage {s}: first backward is B({micro})"));
                        }
                        last_bwd = Some(micro);
                        bwd_seen[micro] = true;
                    }
                }
            }
            if !fwd_seen.iter().all(|&b| b) || !bwd_seen.iter().all(|&b| b) {
                return Err(format!("stage {s}: missing ops"));
            }
        }
        Ok(())
    }
}

/// Builds the 1F1B schedule (PipeDream-flush, the paper's baseline Fig. 4a).
///
/// Stage `s` warms up with `min(S - s - 1, M)` forwards, then alternates
/// one-forward-one-backward through the steady state, then drains the
/// remaining backwards (the cooldown whose sends form the epilogue).
///
/// # Panics
///
/// Panics if `n_stages == 0` or `n_micro == 0`.
pub fn one_f_one_b(n_stages: usize, n_micro: usize) -> PipelineSchedule {
    assert!(
        n_stages > 0 && n_micro > 0,
        "stages and micro-batches must be positive"
    );
    let mut per_device = Vec::with_capacity(n_stages);
    for s in 0..n_stages {
        let warmup = (n_stages - s - 1).min(n_micro);
        let steady = n_micro - warmup;
        let mut ops = Vec::with_capacity(2 * n_micro);
        for m in 0..warmup {
            ops.push(Op::Forward { micro: m });
        }
        for i in 0..steady {
            ops.push(Op::Forward { micro: warmup + i });
            ops.push(Op::Backward { micro: i });
        }
        for m in steady..n_micro {
            ops.push(Op::Backward { micro: m });
        }
        per_device.push(ops);
    }
    let sched = PipelineSchedule {
        n_stages,
        n_micro,
        per_device,
    };
    debug_assert!(sched.validate().is_ok());
    sched
}

/// Builds the GPipe schedule: all forwards, then all backwards.
///
/// # Panics
///
/// Panics if `n_stages == 0` or `n_micro == 0`.
pub fn gpipe(n_stages: usize, n_micro: usize) -> PipelineSchedule {
    assert!(
        n_stages > 0 && n_micro > 0,
        "stages and micro-batches must be positive"
    );
    let mut per_device = Vec::with_capacity(n_stages);
    for _ in 0..n_stages {
        let mut ops = Vec::with_capacity(2 * n_micro);
        for m in 0..n_micro {
            ops.push(Op::Forward { micro: m });
        }
        for m in 0..n_micro {
            ops.push(Op::Backward { micro: m });
        }
        per_device.push(ops);
    }
    PipelineSchedule {
        n_stages,
        n_micro,
        per_device,
    }
}

/// Ideal pipeline bubble fraction `(S - 1) / (M + S - 1)` for 1F1B with
/// equal forward/backward stage times — the figure interleaved scheduling
/// divides by the number of virtual chunks.
pub fn bubble_fraction(n_stages: usize, n_micro: usize) -> f64 {
    (n_stages as f64 - 1.0) / (n_micro as f64 + n_stages as f64 - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_stage_alternates_from_start() {
        let s = one_f_one_b(4, 8);
        let ops = s.device_ops(3);
        assert_eq!(ops[0], Op::Forward { micro: 0 });
        assert_eq!(ops[1], Op::Backward { micro: 0 });
        assert_eq!(ops[2], Op::Forward { micro: 1 });
        assert_eq!(ops[3], Op::Backward { micro: 1 });
    }

    #[test]
    fn first_stage_warmup_depth_is_s_minus_1() {
        let s = one_f_one_b(4, 8);
        let ops = s.device_ops(0);
        assert_eq!(
            &ops[..3],
            &[
                Op::Forward { micro: 0 },
                Op::Forward { micro: 1 },
                Op::Forward { micro: 2 },
            ]
        );
        assert_eq!(ops[3], Op::Forward { micro: 3 });
        assert_eq!(ops[4], Op::Backward { micro: 0 });
    }

    #[test]
    fn one_f_one_b_validates_for_many_shapes() {
        for s in 1..=8 {
            for m in 1..=16 {
                let sched = one_f_one_b(s, m);
                sched
                    .validate()
                    .unwrap_or_else(|e| panic!("S={s} M={m}: {e}"));
            }
        }
    }

    #[test]
    fn gpipe_validates() {
        for s in 1..=6 {
            for m in 1..=12 {
                gpipe(s, m).validate().unwrap();
            }
        }
    }

    #[test]
    fn fewer_micro_batches_than_stages() {
        // M < S: warmup clamps to M, no steady phase on early stages.
        let s = one_f_one_b(6, 2);
        s.validate().unwrap();
        assert_eq!(s.device_ops(0).len(), 4);
    }

    #[test]
    fn in_flight_microbatches_bounded_by_stage_depth() {
        // 1F1B's memory advantage: at most S - s in-flight activations on
        // stage s (vs M for GPipe).
        let s = one_f_one_b(4, 16);
        for (stage, ops) in s.iter() {
            let mut in_flight: isize = 0;
            let mut peak = 0;
            for op in ops {
                in_flight += if op.is_forward() { 1 } else { -1 };
                peak = peak.max(in_flight);
            }
            assert!(
                peak as usize <= s.n_stages() - stage,
                "stage {stage} peak in-flight {peak}"
            );
        }
    }

    #[test]
    fn gpipe_in_flight_is_all_microbatches() {
        let s = gpipe(4, 16);
        let ops = s.device_ops(0);
        let peak = ops.iter().take_while(|o| o.is_forward()).count();
        assert_eq!(peak, 16);
    }

    #[test]
    fn bubble_fraction_matches_formula() {
        assert!((bubble_fraction(4, 8) - 3.0 / 11.0).abs() < 1e-12);
        assert!((bubble_fraction(1, 8) - 0.0).abs() < 1e-12);
        // More micro-batches shrink the bubble.
        assert!(bubble_fraction(4, 64) < bubble_fraction(4, 8));
    }

    #[test]
    fn validate_rejects_backward_before_forward() {
        let bad = PipelineSchedule {
            n_stages: 1,
            n_micro: 1,
            per_device: vec![vec![Op::Backward { micro: 0 }, Op::Forward { micro: 0 }]],
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn validate_rejects_out_of_order_backwards() {
        let bad = PipelineSchedule {
            n_stages: 1,
            n_micro: 2,
            per_device: vec![vec![
                Op::Forward { micro: 0 },
                Op::Forward { micro: 1 },
                Op::Backward { micro: 1 },
                Op::Backward { micro: 0 },
            ]],
        };
        assert!(bad.validate().is_err());
    }
}
