//! Trace instrumentation for pipeline slot execution.

use crate::epilogue::is_epilogue_send;
use crate::schedule::Op;
use opt_trace::{SpanGuard, SpanKind, FLAG_EPILOGUE};

/// Opens the trace span for executing `op` on `stage` of an
/// `n_stages`-deep pipeline running `n_micro` micro-batches in iteration
/// `iter`. Backward slots whose upstream send falls on the compression
/// epilogue (see [`is_epilogue_send`]) carry [`FLAG_EPILOGUE`], so a trace
/// shows exactly which slots the paper's §5.2 epilogue-only compression
/// would compress.
///
/// Returns an inert guard when the calling thread records nothing.
pub fn slot_guard(op: &Op, iter: u64, stage: usize, n_stages: usize, n_micro: usize) -> SpanGuard {
    let (kind, flags) = match *op {
        Op::Forward { .. } => (SpanKind::Forward, 0),
        Op::Backward { micro } => {
            let epilogue = stage > 0 && is_epilogue_send(stage, micro, n_stages, n_micro);
            (SpanKind::Backward, if epilogue { FLAG_EPILOGUE } else { 0 })
        }
    };
    opt_trace::begin(kind, iter, op.micro() as u32, 0, flags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use opt_trace::{take_buffer, TraceMode};

    #[test]
    fn slot_guard_records_kind_micro_and_epilogue_flag() {
        opt_trace::install(TraceMode::Spans);
        let (n_stages, n_micro) = (2, 4);
        for op in [
            Op::Forward { micro: 0 },
            Op::Backward { micro: 0 },
            Op::Backward { micro: 3 },
        ] {
            drop(slot_guard(&op, 5, 1, n_stages, n_micro));
        }
        let buf = take_buffer(1, 1, 0);
        opt_trace::install(TraceMode::Off);
        assert_eq!(buf.spans.len(), 3);
        assert_eq!(buf.spans[0].kind, SpanKind::Forward);
        assert_eq!(buf.spans[0].micro, 0);
        assert_eq!(buf.spans[0].iter, 5);
        // micro 0 from stage 1 of a pp=2, M=4 run is not an epilogue send;
        // micro 3 is (micro >= M + stage - S = 4 + 1 - 2 = 3).
        assert_eq!(buf.spans[1].flags, 0);
        assert_eq!(buf.spans[2].flags, FLAG_EPILOGUE);
    }

    #[test]
    fn slot_guard_is_inert_without_tracer() {
        opt_trace::install(TraceMode::Off);
        let g = slot_guard(&Op::Forward { micro: 1 }, 0, 0, 2, 4);
        assert!(!g.is_active());
    }
}
