//! Property-based tests on schedule invariants.

use opt_schedule::{
    bubble_fraction, epilogue_sends, gpipe, interleaved_bubble_fraction, is_epilogue_send,
    one_f_one_b, Op,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn one_f_one_b_always_validates(s in 1usize..12, m in 1usize..32) {
        one_f_one_b(s, m).validate().unwrap();
    }

    #[test]
    fn gpipe_always_validates(s in 1usize..12, m in 1usize..32) {
        gpipe(s, m).validate().unwrap();
    }

    #[test]
    fn one_f_one_b_op_count_is_2m_per_device(s in 1usize..10, m in 1usize..24) {
        let sched = one_f_one_b(s, m);
        for stage in 0..s {
            prop_assert_eq!(sched.device_ops(stage).len(), 2 * m);
        }
    }

    #[test]
    fn in_flight_bound_is_tight_on_stage_zero(s in 2usize..8, m in 8usize..24) {
        // Stage 0's warmup depth is exactly S (S-1 warmup + the 1F1B one).
        let sched = one_f_one_b(s, m);
        let mut in_flight = 0i64;
        let mut peak = 0i64;
        for op in sched.device_ops(0) {
            in_flight += if op.is_forward() { 1 } else { -1 };
            peak = peak.max(in_flight);
        }
        prop_assert_eq!(peak as usize, s.min(m));
    }

    #[test]
    fn epilogue_sends_are_within_range(s in 2usize..10, m in 1usize..32) {
        for (stage, micro) in epilogue_sends(s, m) {
            prop_assert!(stage >= 1 && stage < s);
            prop_assert!(micro < m);
            prop_assert!(is_epilogue_send(stage, micro, s, m));
        }
    }

    #[test]
    fn epilogue_is_suffix_closed(s in 2usize..8, m in 2usize..24, stage in 1usize..8) {
        // If micro i is on the epilogue, every later micro is too.
        prop_assume!(stage < s);
        let mut seen_epilogue = false;
        for micro in 0..m {
            let e = is_epilogue_send(stage, micro, s, m);
            if seen_epilogue {
                prop_assert!(e, "epilogue not suffix-closed at micro {micro}");
            }
            seen_epilogue |= e;
        }
    }

    #[test]
    fn interleaving_never_increases_bubble(s in 1usize..8, m in 1usize..24, v in 1usize..8) {
        let plain = bubble_fraction(s, m);
        let inter = interleaved_bubble_fraction(s, m, v);
        prop_assert!(inter <= plain + 1e-12);
    }

    #[test]
    fn backward_order_is_fifo(s in 1usize..8, m in 1usize..24) {
        // The opt-model FIFO-cache contract: backwards in micro order.
        let sched = one_f_one_b(s, m);
        for stage in 0..s {
            let bwd: Vec<usize> = sched
                .device_ops(stage)
                .iter()
                .filter(|o| !o.is_forward())
                .map(Op::micro)
                .collect();
            let sorted: Vec<usize> = (0..m).collect();
            prop_assert_eq!(bwd, sorted);
        }
    }
}
