//! Automatic selection of the compression rank and selective-stage
//! fraction — the paper's §9.4 closing remark: "an even better trade-off
//! can be achieved by automatically choosing the right combination of the
//! compression rank and the number of stages ... which we leave as future
//! work". This module implements that search on top of the simulator.
//!
//! Speed comes from [`simulate`]; quality is scored with a volume-derived
//! *error-pressure proxy*: DP compression error grows with the compressed
//! fraction of total gradient volume and shrinks with rank (PowerSGD's
//! residual decays with rank), and the error-feedback staleness penalty
//! scales the same way. The proxy is monotone in the same directions the
//! paper's Fig. 13 measurements are, which is all the search needs.

use crate::{simulate, CompressionPlan, ScPlan, SimConfig};
use serde::{Deserialize, Serialize};

/// One candidate configuration with its predicted cost and quality proxy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TunePoint {
    /// PowerSGD rank for DP traffic.
    pub rank: usize,
    /// Fraction of stages compressed (earliest first).
    pub fraction: f64,
    /// Simulated iteration time, seconds.
    pub iteration_s: f64,
    /// Error-pressure proxy in [0, 1]: 0 = lossless, higher = more
    /// compression-induced gradient error.
    pub error_pressure: f64,
}

/// Error-pressure proxy for compressing `fraction` of the stages at
/// `rank` on the given job: the compressed share of DP volume times the
/// per-matrix residual factor `max(0, 1 - 4r/(3h))` (rank coverage of the
/// paper's ~`12h^2`-element layer gradients, clamped at lossless).
pub fn error_pressure(cfg: &SimConfig, rank: usize, fraction: f64) -> f64 {
    let h = cfg.model.hidden as f64;
    let residual = (1.0 - (4.0 * rank as f64) / (3.0 * h)).max(0.0);
    fraction.clamp(0.0, 1.0) * residual
}

/// Exhaustively scores the `ranks x fractions` grid.
pub fn sweep(cfg: &SimConfig, ranks: &[usize], fractions: &[f64]) -> Vec<TunePoint> {
    let mut out = Vec::with_capacity(ranks.len() * fractions.len());
    for &rank in ranks {
        for &fraction in fractions {
            let plan = CompressionPlan {
                selective_stage: (fraction > 0.0).then_some(ScPlan { fraction, rank }),
                ..cfg.plan
            };
            let iteration_s = simulate(&cfg.clone().with_plan(plan)).iteration_time_s;
            out.push(TunePoint {
                rank,
                fraction,
                iteration_s,
                error_pressure: error_pressure(cfg, rank, fraction),
            });
        }
    }
    out
}

/// Picks the fastest configuration whose error pressure stays within
/// `budget` — the auto-tuner the paper sketches. Returns `None` only if
/// the grid is empty (a zero-compression point always satisfies any
/// non-negative budget).
pub fn auto_tune(cfg: &SimConfig, budget: f64) -> Option<TunePoint> {
    let ranks = [16usize, 32, 64, 128, 256, 512];
    let fractions = [0.0, 0.25, 0.5, 0.75, 1.0];
    sweep(cfg, &ranks, &fractions)
        .into_iter()
        .filter(|p| p.error_pressure <= budget)
        .min_by(|a, b| a.iteration_s.partial_cmp(&b.iteration_s).unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_pressure_monotone_in_fraction_and_rank() {
        let cfg = SimConfig::paper_gpt_2_5b();
        assert!(error_pressure(&cfg, 128, 0.75) > error_pressure(&cfg, 128, 0.25));
        assert!(error_pressure(&cfg, 64, 0.75) > error_pressure(&cfg, 256, 0.75));
        assert_eq!(error_pressure(&cfg, 128, 0.0), 0.0);
    }

    #[test]
    fn full_rank_coverage_is_lossless() {
        // 4r >= 3h -> residual clamps to 0.
        let cfg = SimConfig::paper_gpt_2_5b(); // h = 1920
        assert_eq!(error_pressure(&cfg, 1440, 1.0), 0.0);
    }

    #[test]
    fn zero_budget_forces_no_compression() {
        let cfg = SimConfig::paper_gpt_2_5b().with_plan(CompressionPlan::cb_fe());
        let pick = auto_tune(&cfg, 0.0).expect("grid non-empty");
        assert_eq!(pick.fraction, 0.0);
    }

    #[test]
    fn generous_budget_buys_speed() {
        let cfg = SimConfig::paper_gpt_8_3b().with_plan(CompressionPlan::cb_fe());
        let strict = auto_tune(&cfg, 0.0).unwrap();
        let loose = auto_tune(&cfg, 0.9).unwrap();
        assert!(
            loose.iteration_s < strict.iteration_s,
            "budget bought nothing"
        );
        assert!(loose.fraction > 0.0);
    }

    #[test]
    fn tuner_avoids_rank_512_trap() {
        // Fig. 13: rank 512 is slower *and* lower-error; the tuner should
        // never pick it when a faster point fits the budget.
        let cfg = SimConfig::paper_gpt_2_5b().with_plan(CompressionPlan::cb_fe());
        let pick = auto_tune(&cfg, 0.95).unwrap();
        assert!(pick.rank < 512, "tuner picked the slow rank-512 point");
    }

    #[test]
    fn sweep_covers_grid() {
        let cfg = SimConfig::paper_gpt_2_5b();
        let pts = sweep(&cfg, &[64, 128], &[0.0, 0.5, 1.0]);
        assert_eq!(pts.len(), 6);
        assert!(pts.iter().all(|p| p.iteration_s > 0.0));
    }
}
