//! CPI-stack-style execution-time breakdown (paper §3, Fig. 3 / Fig. 10).

use crate::{simulate, SimConfig, SimResult};
use serde::{Deserialize, Serialize};

/// Execution-time breakdown of one iteration, measured the way the paper
/// measures it (§3): "we turn off each communication/computation and
/// observe the execution time difference".
///
/// `fwd_bwd` is the iteration time with *all* communication free (pure
/// compute + pipeline bubble); each `*_exposed` field is the extra time
/// attributable to that communication class. Like a CPI stack, the parts
/// need not sum exactly to the total.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Breakdown {
    /// Full iteration time with everything enabled.
    pub total: f64,
    /// Compute + bubble (all communication volumes zeroed).
    pub fwd_bwd: f64,
    /// Exposed data-parallel communication time.
    pub dp_exposed: f64,
    /// Exposed inter-stage (pipeline p2p) communication time.
    pub interstage_exposed: f64,
    /// Exposed embedding synchronization time.
    pub emb_exposed: f64,
}

impl Breakdown {
    /// Total exposed communication time.
    pub fn comm_exposed(&self) -> f64 {
        self.dp_exposed + self.interstage_exposed + self.emb_exposed
    }
}

/// A config variant with the data-parallel class made free: volumes are
/// zeroed and the DP-side compression (which would otherwise still charge
/// kernel time) is stripped, matching the paper's "turn this communication
/// off" methodology.
fn with_free_dp(cfg: &SimConfig) -> SimConfig {
    let mut c = cfg.clone();
    c.dp_grad_bytes = 0;
    c.plan.selective_stage = None;
    c.plan.naive_dp_rank = None;
    c
}

/// A config variant with inter-stage traffic made free (volumes zeroed and
/// compressed backpropagation stripped).
fn with_free_interstage(cfg: &SimConfig) -> SimConfig {
    let mut c = cfg.clone();
    c.act_bytes = 0;
    c.plan.compressed_backprop = None;
    c
}

/// Computes the breakdown by ablation re-simulation.
pub fn breakdown(cfg: &SimConfig) -> Breakdown {
    let full = simulate(cfg).iteration_time_s;

    // Free DP + EMB (they share dp_grad_bytes); isolate EMB by comparing
    // against a run where only EMB volume is zeroed.
    let no_dp_emb = simulate(&with_free_dp(cfg)).iteration_time_s;

    // EMB-only ablation: simulate with embedding volume zeroed. The
    // embedding volume comes from the model config; emulate by setting
    // vocab to 0 in a copy.
    let mut no_emb_cfg = cfg.clone();
    no_emb_cfg.model.vocab = 0;
    let no_emb = simulate(&no_emb_cfg).iteration_time_s;

    let no_interstage = simulate(&with_free_interstage(cfg)).iteration_time_s;

    // Pure compute: everything free.
    let mut free = with_free_interstage(&with_free_dp(cfg));
    free.model.vocab = 0;
    let fwd_bwd = simulate(&free).iteration_time_s;

    let emb_exposed = (full - no_emb).max(0.0);
    let dp_exposed = ((full - no_dp_emb) - emb_exposed).max(0.0);
    let interstage_exposed = (full - no_interstage).max(0.0);
    Breakdown {
        total: full,
        fwd_bwd,
        dp_exposed,
        interstage_exposed,
        emb_exposed,
    }
}

/// Convenience: breakdown plus the `SimResult` of the full run.
pub fn breakdown_with_result(cfg: &SimConfig) -> (Breakdown, SimResult) {
    (breakdown(cfg), simulate(cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CompressionPlan;

    #[test]
    fn breakdown_components_are_nonnegative_and_bounded() {
        let b = breakdown(&SimConfig::paper_gpt_2_5b());
        assert!(b.fwd_bwd > 0.0);
        assert!(b.dp_exposed >= 0.0);
        assert!(b.interstage_exposed >= 0.0);
        assert!(b.emb_exposed >= 0.0);
        assert!(b.fwd_bwd < b.total);
        assert!(b.comm_exposed() < b.total);
    }

    #[test]
    fn fig3_shape_communication_is_significant() {
        // Fig. 3's point: even on a fast interconnect, a significant
        // fraction of time goes to inter-node communication. Expect the
        // exposed comm to be 10-50 % of the iteration.
        let b = breakdown(&SimConfig::paper_gpt_2_5b());
        let frac = b.comm_exposed() / b.total;
        assert!(frac > 0.10 && frac < 0.50, "comm fraction {frac}");
    }

    #[test]
    fn fig10_cb_cuts_exposed_interstage_time() {
        // Fig. 10: CB reduces exposed backward inter-stage communication
        // by ~78 % (8.3B). Accept > 40 % on either model.
        for cfg in [SimConfig::paper_gpt_2_5b(), SimConfig::paper_gpt_8_3b()] {
            let base = breakdown(&cfg);
            let cb = breakdown(&cfg.clone().with_plan(CompressionPlan::cb()));
            let cut = 1.0 - cb.interstage_exposed / base.interstage_exposed.max(1e-9);
            assert!(cut > 0.4, "{}: interstage cut only {cut}", cfg.model.name);
        }
    }

    #[test]
    fn fig10_fe_cuts_exposed_emb_time() {
        // Fig. 10: FE reduces the embedding bar by ~40 %.
        let cfg = SimConfig::paper_gpt_8_3b();
        let base = breakdown(&cfg.clone().with_plan(CompressionPlan::cb()));
        let fe = breakdown(&cfg.with_plan(CompressionPlan::cb_fe()));
        let cut = 1.0 - fe.emb_exposed / base.emb_exposed.max(1e-9);
        assert!(cut > 0.2 && cut < 0.7, "emb cut {cut}");
    }

    #[test]
    fn fig10_full_stack_cuts_total_comm() {
        // Fig. 10: the paper reports a 63.29 % cut of total exposed
        // communication on GPT-8.3B. Our simulator reproduces the
        // direction but a smaller factor (~0.29): with SC at the paper's
        // 75 % stage fraction, the *last* stage's uncompressed DP
        // all-reduce remains on the modelled critical path, while in the
        // paper's measured system it overlapped better. EXPERIMENTS.md
        // discusses the divergence.
        let cfg = SimConfig::paper_gpt_8_3b();
        let base = breakdown(&cfg);
        let full = breakdown(&cfg.with_plan(CompressionPlan::cb_fe_sc()));
        let cut = 1.0 - full.comm_exposed() / base.comm_exposed();
        assert!(cut > 0.25, "total comm cut only {cut}");
    }

    #[test]
    fn compute_time_is_plan_invariant() {
        // Compression must not change the compute+bubble floor.
        let cfg = SimConfig::paper_gpt_2_5b();
        let b0 = breakdown(&cfg);
        let b1 = breakdown(&cfg.with_plan(CompressionPlan::cb_fe_sc()));
        assert!((b0.fwd_bwd - b1.fwd_bwd).abs() < 1e-4);
    }
}
