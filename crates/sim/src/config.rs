//! Simulation configuration and compression plans.

use opt_model::GptConfig;
use opt_net::Topology;
use serde::{Deserialize, Serialize};

/// Compressed-backpropagation plan (§5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CbPlan {
    /// PowerSGD rank for inter-stage activation gradients (paper: 16).
    pub rank: usize,
    /// Compress only epilogue sends (§5.2). `false` = compress every
    /// backward send (the "naive CB" of Fig. 3).
    pub epilogue_only: bool,
}

impl CbPlan {
    /// The paper's setting: rank 16, epilogue-only.
    pub fn paper() -> Self {
        Self {
            rank: 16,
            epilogue_only: true,
        }
    }
}

/// Selective-stage-compression plan (§7).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScPlan {
    /// Fraction of stages (earliest first) whose DP traffic is compressed
    /// (paper: 0.75).
    pub fraction: f64,
    /// PowerSGD rank for data-parallel gradients (paper: 128).
    pub rank: usize,
}

impl ScPlan {
    /// The paper's setting: 75 % of stages at rank 128.
    pub fn paper() -> Self {
        Self {
            fraction: 0.75,
            rank: 128,
        }
    }
}

/// Which communications are compressed and how — the knob space of the
/// paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CompressionPlan {
    /// Compressed backpropagation (inter-stage backward traffic).
    pub compressed_backprop: Option<CbPlan>,
    /// Fused embedding synchronization (§6).
    pub fused_embedding: bool,
    /// Selective stage compression of DP traffic (§7).
    pub selective_stage: Option<ScPlan>,
    /// Naive full DP compression at the given rank (the "naive DP"
    /// baseline of Fig. 3 and the rank-sweep of Fig. 13). Mutually
    /// exclusive with `selective_stage` in practice.
    pub naive_dp_rank: Option<usize>,
}

impl CompressionPlan {
    /// No compression — the Megatron-LM baseline.
    pub fn baseline() -> Self {
        Self::default()
    }

    /// CB only (lazy error propagation has no timing effect; it is a
    /// quality technique exercised in the numerical trainer).
    pub fn cb() -> Self {
        Self {
            compressed_backprop: Some(CbPlan::paper()),
            ..Self::default()
        }
    }

    /// CB + fused embedding synchronization.
    pub fn cb_fe() -> Self {
        Self {
            fused_embedding: true,
            ..Self::cb()
        }
    }

    /// CB + FE + selective stage compression — full Optimus-CC.
    pub fn cb_fe_sc() -> Self {
        Self {
            selective_stage: Some(ScPlan::paper()),
            ..Self::cb_fe()
        }
    }

    /// The Fig. 3 "naive DP" bar: compress all DP traffic, nothing else.
    pub fn naive_dp(rank: usize) -> Self {
        Self {
            naive_dp_rank: Some(rank),
            ..Self::default()
        }
    }

    /// The Fig. 3 "naive CB" bar: compress every backward send (no
    /// epilogue restriction).
    pub fn naive_cb(rank: usize) -> Self {
        Self {
            compressed_backprop: Some(CbPlan {
                rank,
                epilogue_only: false,
            }),
            ..Self::default()
        }
    }

    /// Table 2 column order: (label, plan).
    pub fn table2_columns() -> Vec<(&'static str, CompressionPlan)> {
        vec![
            ("Baseline", Self::baseline()),
            ("CB", Self::cb()),
            ("CB+FE", Self::cb_fe()),
            ("CB+FE+SC", Self::cb_fe_sc()),
        ]
    }
}

/// Full configuration of one simulated training job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Model being trained (paper-scale config; sizes volumes & flops).
    pub model: GptConfig,
    /// Cluster description.
    pub topology: Topology,
    /// Tensor-parallel ways (paper: 8, intra-node).
    pub tp: usize,
    /// Data-parallel ways (paper: 4).
    pub dp: usize,
    /// Pipeline stages (paper: 4).
    pub pp: usize,
    /// Sequences per micro-batch (paper: 8).
    pub micro_batch: usize,
    /// Micro-batches per iteration per pipeline
    /// (= mini-batch / (micro-batch × dp); paper: 512/(8×4) = 16).
    pub n_micro: usize,
    /// Effective per-GPU compute throughput in FLOP/s (calibrated so that
    /// baseline iteration times land near the paper's Table 2).
    pub gpu_eff_flops: f64,
    /// Effective inter-node bandwidth per pipeline/DP flow in bytes/s
    /// (line rate derated for NCCL efficiency and NIC sharing).
    pub inter_node_eff_bw: f64,
    /// Bytes per gradient element in DP all-reduce (fp32 master grads).
    pub dp_grad_bytes: u32,
    /// Bytes per activation element on the wire (fp16).
    pub act_bytes: u32,
    /// Compression plan under test.
    pub plan: CompressionPlan,
}

impl SimConfig {
    /// Builds a config for `model` with the paper's cluster & parallelism
    /// defaults (TP8 / DP4 / PP4, 128 GPUs, micro-batch 8, mini-batch 512).
    pub fn paper_defaults(model: GptConfig) -> Self {
        Self {
            model,
            topology: Topology::paper_cluster(),
            tp: 8,
            dp: 4,
            pp: 4,
            micro_batch: 8,
            n_micro: 16,
            gpu_eff_flops: 31e12,
            inter_node_eff_bw: 8e9,
            dp_grad_bytes: 4,
            act_bytes: 2,
            plan: CompressionPlan::baseline(),
        }
    }

    /// The paper's GPT-2.5B job.
    pub fn paper_gpt_2_5b() -> Self {
        Self::paper_defaults(GptConfig::gpt_2_5b())
    }

    /// The paper's GPT-8.3B job.
    pub fn paper_gpt_8_3b() -> Self {
        Self::paper_defaults(GptConfig::gpt_8_3b())
    }

    /// Returns a copy with a different compression plan.
    pub fn with_plan(mut self, plan: CompressionPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Returns a copy with a different TP/PP split (Fig. 14). Keeps DP
    /// fixed and recomputes nothing else; callers choose models whose
    /// layers divide `pp`.
    pub fn with_tp_pp(mut self, tp: usize, pp: usize) -> Self {
        self.tp = tp;
        self.pp = pp;
        self
    }

    /// Returns a copy with a different data-parallel width, adjusting
    /// `n_micro` to keep the global mini-batch
    /// (`micro_batch × n_micro × dp`) constant where divisibility allows.
    ///
    /// Used by the benchmark matrix to *price* a pp×dp axis point at
    /// paper scale (via [`crate::simulate`]) before spending wall-clock
    /// on the numerical run.
    pub fn with_dp(mut self, dp: usize) -> Self {
        assert!(dp > 0, "dp must be positive");
        let global = self.micro_batch * self.n_micro * self.dp;
        self.dp = dp;
        let per_pipeline = global / dp / self.micro_batch;
        self.n_micro = per_pipeline.max(1);
        self
    }

    /// Tokens processed per micro-batch.
    pub fn tokens_per_micro(&self) -> u64 {
        (self.micro_batch * self.model.seq_len) as u64
    }

    /// Transformer-layer parameters resident on one pipeline stage.
    pub fn stage_params(&self, stage: usize) -> u64 {
        let h = self.model.hidden as u64;
        self.model.layers_on_stage(stage, self.pp) as u64 * (12 * h * h + 13 * h)
    }

    /// Forward compute time of one micro-batch on `stage`, seconds:
    /// `2 * P_stage * tokens / (tp * gpu_eff_flops)`.
    pub fn fwd_time(&self, stage: usize) -> f64 {
        let flops = 2.0 * self.stage_params(stage) as f64 * self.tokens_per_micro() as f64;
        flops / (self.tp as f64 * self.gpu_eff_flops)
    }

    /// Backward compute time (2× forward, as in the paper's Fig. 4).
    pub fn bwd_time(&self, stage: usize) -> f64 {
        2.0 * self.fwd_time(stage)
    }

    /// Dense activation bytes crossing a stage boundary per micro-batch.
    pub fn act_volume_bytes(&self) -> f64 {
        (self.model.activation_elems_per_microbatch(self.micro_batch) * self.act_bytes as u64)
            as f64
    }

    /// Dense DP gradient bytes of one stage (fp32 master gradients).
    pub fn dp_volume_bytes(&self, stage: usize) -> f64 {
        (self.stage_params(stage) * self.dp_grad_bytes as u64) as f64
    }

    /// Embedding-table gradient bytes (the EMB sync volume).
    pub fn emb_volume_bytes(&self) -> f64 {
        (self.model.embedding_params() * self.dp_grad_bytes as u64) as f64
    }

    /// PowerSGD-compressed DP volume of one stage at the given rank:
    /// per layer, factors for the (h,3h), (h,h), (h,4h), (4h,h) weight
    /// matrices total `16 h r` elements vs `12 h^2 + 13 h` dense.
    pub fn dp_volume_compressed_bytes(&self, stage: usize, rank: usize) -> f64 {
        let h = self.model.hidden as f64;
        let layers = self.model.layers_on_stage(stage, self.pp) as f64;
        layers * 16.0 * h * rank as f64 * self.dp_grad_bytes as f64
    }

    /// PowerSGD-compressed activation volume at the given rank:
    /// `(n + m) * r` elements for the `(micro*seq) x hidden` matrix.
    pub fn act_volume_compressed_bytes(&self, rank: usize) -> f64 {
        let n = self.tokens_per_micro() as f64;
        let m = self.model.hidden as f64;
        (n + m) * rank as f64 * self.act_bytes as f64
    }

    /// Number of earliest stages whose DP traffic selective stage
    /// compression covers.
    pub fn sc_stage_count(&self, fraction: f64) -> usize {
        ((fraction * self.pp as f64).round() as usize).min(self.pp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table1() {
        let c = SimConfig::paper_gpt_2_5b();
        assert_eq!((c.tp, c.dp, c.pp), (8, 4, 4));
        assert_eq!(c.micro_batch, 8);
        assert_eq!(c.n_micro, 16); // 512 / (8 * 4)
        assert_eq!(c.tp * c.dp * c.pp, c.topology.total_gpus());
    }

    #[test]
    fn fwd_time_scales_with_model_size() {
        let small = SimConfig::paper_gpt_2_5b();
        let large = SimConfig::paper_gpt_8_3b();
        assert!(large.fwd_time(0) > small.fwd_time(0));
        assert!((small.bwd_time(0) - 2.0 * small.fwd_time(0)).abs() < 1e-12);
    }

    #[test]
    fn compressed_volumes_are_much_smaller() {
        let c = SimConfig::paper_gpt_8_3b();
        // CB rank 16: >50x reduction for the 8192x3072 activation.
        let ratio = c.act_volume_bytes() / c.act_volume_compressed_bytes(16);
        assert!(ratio > 50.0, "CB ratio {ratio}");
        // DP rank 128 on h=3072: around 10x, the paper's quoted factor.
        let dpr = c.dp_volume_bytes(0) / c.dp_volume_compressed_bytes(0, 128);
        assert!(dpr > 5.0 && dpr < 20.0, "DP ratio {dpr}");
    }

    #[test]
    fn sc_stage_count_rounds_075() {
        let c = SimConfig::paper_gpt_2_5b();
        assert_eq!(c.sc_stage_count(0.75), 3);
        assert_eq!(c.sc_stage_count(1.0), 4);
        assert_eq!(c.sc_stage_count(0.0), 0);
    }

    #[test]
    fn plan_presets_compose() {
        let full = CompressionPlan::cb_fe_sc();
        assert!(full.compressed_backprop.is_some());
        assert!(full.fused_embedding);
        assert!(full.selective_stage.is_some());
        assert!(full.naive_dp_rank.is_none());
        let cb = CompressionPlan::cb();
        assert!(!cb.fused_embedding && cb.selective_stage.is_none());
        assert!(CompressionPlan::naive_cb(16)
            .compressed_backprop
            .is_some_and(|p| !p.epilogue_only));
    }

    #[test]
    fn with_dp_preserves_global_batch() {
        let base = SimConfig::paper_gpt_2_5b(); // micro 8 × n_micro 16 × dp 4 = 512
        let global = base.micro_batch * base.n_micro * base.dp;
        for dp in [1, 2, 4, 8] {
            let c = base.clone().with_dp(dp);
            assert_eq!(c.dp, dp);
            assert_eq!(c.micro_batch * c.n_micro * c.dp, global, "dp={dp}");
        }
        // Pricing still works across the sweep (wider DP never speeds up
        // the uncompressed baseline's all-reduce-bound iteration).
        let t2 = crate::simulate(&base.clone().with_dp(2)).iteration_time_s;
        let t8 = crate::simulate(&base.clone().with_dp(8)).iteration_time_s;
        assert!(t2.is_finite() && t8.is_finite() && t2 > 0.0 && t8 > 0.0);
    }

    #[test]
    fn table2_columns_are_ordered() {
        let cols = CompressionPlan::table2_columns();
        assert_eq!(cols.len(), 4);
        assert_eq!(cols[0].0, "Baseline");
        assert_eq!(cols[3].0, "CB+FE+SC");
    }
}
