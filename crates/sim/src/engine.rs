//! The discrete-event iteration simulator.

use crate::{KernelModel, SimConfig};
use opt_net::ring_all_reduce_wire_bytes;
use opt_schedule::{is_epilogue_send, one_f_one_b, Op};
use serde::{Deserialize, Serialize};

/// What a trace event represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// Forward compute of a micro-batch.
    Forward,
    /// Backward compute of a micro-batch.
    Backward,
    /// Per-stage data-parallel all-reduce.
    DpComm,
    /// Embedding DP all-reduce (baseline path, first/last stage only).
    EmbDp,
    /// Embedding synchronization (2-way baseline or fused 2D-way).
    EmbSync,
}

/// One timed event in the simulated iteration (for Fig. 4-style timelines).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Pipeline stage (device) the event runs on.
    pub stage: usize,
    /// Event kind.
    pub kind: TraceKind,
    /// Micro-batch index for compute events (0 for collectives).
    pub micro: usize,
    /// Start time, seconds from iteration start.
    pub start: f64,
    /// End time, seconds.
    pub end: f64,
}

/// Result of simulating one training iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// End-to-end iteration time (all stages through DP + EMB sync).
    pub iteration_time_s: f64,
    /// Time at which each stage finished its last backward.
    pub backward_done_s: Vec<f64>,
    /// Full event trace.
    pub trace: Vec<TraceEvent>,
    /// Total bytes sent on inter-stage links (both directions).
    pub interstage_bytes: f64,
    /// Total DP all-reduce wire bytes (per-rank, summed over stages).
    pub dp_bytes: f64,
    /// Embedding synchronization wire bytes (per-rank).
    pub emb_bytes: f64,
}

impl SimResult {
    /// Projects a full training run: `iters` iterations in days.
    pub fn training_days(&self, iters: u64) -> f64 {
        self.iteration_time_s * iters as f64 / 86_400.0
    }
}

/// Internal per-message record: when the payload is fully available at the
/// receiver (including compression/decompression kernel time).
#[derive(Clone, Copy)]
struct Arrival {
    ready_at: f64,
}

/// Effective iteration end accounting for next-iteration warmup slack:
/// stage `s` is not needed by the next iteration until `s` forward chains
/// have passed through the earlier stages, so its post-backward
/// communication may spill into that window without delaying training.
/// Stage 0 has zero slack — the paper's §4 observation that the first
/// stage's finish time is what matters.
fn effective_end(cfg: &SimConfig, backward_done: &[f64], dp_done: &[f64]) -> f64 {
    let mut end: f64 = 0.0;
    for (s, (&bd, &dd)) in backward_done.iter().zip(dp_done).enumerate() {
        let slack = s as f64 * cfg.fwd_time(s);
        end = end.max(bd).max(dd - slack);
    }
    end
}

/// Simulates one 1F1B training iteration under `cfg`.
///
/// Fidelity notes:
///
/// * Compute ops run back-to-back per device; forward = `t`, backward =
///   `2t` (paper Fig. 4).
/// * A forward/backward op on stage `s` blocks until the corresponding
///   activation (gradient) message from stage `s-1` (`s+1`) has arrived.
/// * Sends are non-blocking for the sender, except that the sender pays
///   the compression kernel time; the receiver pays decompression.
/// * DP all-reduce of a stage starts when its last backward retires
///   (gradient accumulation finishes); its duration uses the ring model
///   over `dp` ranks at the derated inter-node bandwidth.
/// * Baseline embedding path: first/last stages run an extra `dp`-way
///   all-reduce (EMB DP) after stage DP, then a 2-way sync between them.
///   Fused path (§6): a single `2*dp`-way all-reduce after stage DP.
pub fn simulate(cfg: &SimConfig) -> SimResult {
    let kernel = KernelModel::a100();
    let s_count = cfg.pp;
    let m_count = cfg.n_micro;
    let sched = one_f_one_b(s_count, m_count);
    let latency = cfg.topology.inter_node_latency;
    let bw = cfg.inter_node_eff_bw;

    // Message arrival tables: fwd_arrival[s][m] = activation from s-1 to s;
    // bwd_arrival[s][m] = gradient from s+1 to s.
    let mut fwd_arrival = vec![vec![None::<Arrival>; m_count]; s_count];
    let mut bwd_arrival = vec![vec![None::<Arrival>; m_count]; s_count];

    let mut device_time = vec![0.0f64; s_count];
    let mut next_op = vec![0usize; s_count];
    let mut backward_done = vec![0.0f64; s_count];
    let mut trace = Vec::new();
    let mut interstage_bytes = 0.0;

    let act_dense = cfg.act_volume_bytes();
    let n_rows = cfg.tokens_per_micro() as usize;
    let hid = cfg.model.hidden;

    // --- DP all-reduce plan (needed eagerly: drained stages start their
    // DP while earlier stages are still sending epilogue gradients, and
    // those p2p transfers contend with the DP flows on the NICs) --------
    let sc_stages = match (cfg.plan.selective_stage, cfg.plan.naive_dp_rank) {
        (Some(sc), _) => cfg.sc_stage_count(sc.fraction),
        (None, Some(_)) => s_count,
        (None, None) => 0,
    };
    let dp_rank = cfg
        .plan
        .selective_stage
        .map(|sc| sc.rank)
        .or(cfg.plan.naive_dp_rank)
        .unwrap_or(0);
    let dp_cost = |s: usize| -> (f64, f64) {
        // (duration, wire bytes) of stage s's DP all-reduce.
        let compressed = s < sc_stages && dp_rank > 0;
        let (volume, overhead) = if compressed {
            let layers = cfg.model.layers_on_stage(s, cfg.pp);
            let t_kernel = kernel.dp_compress_time(layers, hid, dp_rank)
                + kernel.dp_decompress_time(layers, hid, dp_rank);
            (cfg.dp_volume_compressed_bytes(s, dp_rank), t_kernel)
        } else {
            (cfg.dp_volume_bytes(s), 0.0)
        };
        let wire = ring_all_reduce_wire_bytes(volume, cfg.dp);
        let dur = overhead + wire / bw + 2.0 * (cfg.dp as f64 - 1.0) * latency;
        (dur, wire)
    };
    // dp_window[s] = Some((start, end)) once stage s's DP is scheduled.
    let mut dp_window = vec![None::<(f64, f64)>; s_count];

    // Execute ops with a worklist until every device drains. Dependencies
    // are acyclic, so each pass retires at least one op.
    let total_ops: usize = (0..s_count).map(|s| sched.device_ops(s).len()).sum();
    let mut retired = 0;
    while retired < total_ops {
        let mut progressed = false;
        for s in 0..s_count {
            while next_op[s] < sched.device_ops(s).len() {
                let op = sched.device_ops(s)[next_op[s]];
                // Check dependency.
                let dep_ready = match op {
                    Op::Forward { micro } => {
                        if s == 0 {
                            Some(0.0)
                        } else {
                            fwd_arrival[s][micro].map(|a| a.ready_at)
                        }
                    }
                    Op::Backward { micro } => {
                        if s == s_count - 1 {
                            Some(0.0)
                        } else {
                            bwd_arrival[s][micro].map(|a| a.ready_at)
                        }
                    }
                };
                let Some(ready) = dep_ready else { break };
                let start = device_time[s].max(ready);
                let (dur, kind, micro) = match op {
                    Op::Forward { micro } => (cfg.fwd_time(s), TraceKind::Forward, micro),
                    Op::Backward { micro } => (cfg.bwd_time(s), TraceKind::Backward, micro),
                };
                let end = start + dur;
                device_time[s] = end;
                trace.push(TraceEvent {
                    stage: s,
                    kind,
                    micro,
                    start,
                    end,
                });
                match op {
                    Op::Forward { micro } => {
                        if s + 1 < s_count {
                            // Forward sends are never compressed (§5: it
                            // would break convergence).
                            let arr = end + latency + act_dense / bw;
                            fwd_arrival[s + 1][micro] = Some(Arrival { ready_at: arr });
                            interstage_bytes += act_dense;
                        }
                    }
                    Op::Backward { micro } => {
                        backward_done[s] = end;
                        if micro == m_count - 1 {
                            // Last backward: DP all-reduce starts now.
                            let (dur_dp, _) = dp_cost(s);
                            dp_window[s] = Some((end, end + dur_dp));
                        }
                        if s > 0 {
                            // Megatron splits backward into dgrad (input
                            // gradient, first half) and wgrad (weight
                            // gradient, second half); the inter-stage send
                            // starts after dgrad and overlaps wgrad. This
                            // is what hides steady-state backward sends
                            // and leaves only the epilogue exposed (§5.2).
                            let data_ready = end - dur / 2.0;
                            let compress = match cfg.plan.compressed_backprop {
                                None => None,
                                Some(cb) => {
                                    let on_epilogue = is_epilogue_send(s, micro, s_count, m_count);
                                    (!cb.epilogue_only || on_epilogue).then_some(cb.rank)
                                }
                            };
                            let (send_start, volume, decomp) = match compress {
                                Some(rank) => (
                                    data_ready + kernel.compress_time(n_rows, hid, rank),
                                    cfg.act_volume_compressed_bytes(rank),
                                    kernel.decompress_time(n_rows, hid, rank),
                                ),
                                None => (data_ready, act_dense, 0.0),
                            };
                            // NIC contention: DP all-reduces of already
                            // drained stages share the inter-node links
                            // with this transfer; fair-share the
                            // bandwidth among concurrent flows.
                            let active_dp = dp_window
                                .iter()
                                .flatten()
                                .filter(|&&(a, b)| send_start >= a && send_start < b)
                                .count();
                            let eff_bw = bw / (1.0 + active_dp as f64);
                            let arr = send_start + latency + volume / eff_bw + decomp;
                            bwd_arrival[s - 1][micro] = Some(Arrival { ready_at: arr });
                            interstage_bytes += volume;
                        }
                    }
                }
                next_op[s] += 1;
                retired += 1;
                progressed = true;
            }
        }
        assert!(progressed, "simulation deadlocked (schedule bug)");
    }

    // --- Data-parallel all-reduce per stage (windows already scheduled
    // eagerly during the op loop) ---------------------------------------
    let mut dp_done = vec![0.0f64; s_count];
    let mut dp_bytes_total = 0.0;
    for s in 0..s_count {
        let (start, end) = dp_window[s].expect("DP window scheduled for every stage");
        dp_done[s] = end;
        dp_bytes_total += dp_cost(s).1;
        trace.push(TraceEvent {
            stage: s,
            kind: TraceKind::DpComm,
            micro: 0,
            start,
            end,
        });
    }

    // --- Embedding synchronization ------------------------------------
    let emb_v = cfg.emb_volume_bytes();
    let mut emb_bytes = 0.0;
    let first = 0;
    let last = s_count - 1;
    let iteration_end;
    if s_count == 1 {
        // Single stage: the table is shared; its gradient rides the normal
        // DP all-reduce (already counted in stage params approximation).
        let wire = ring_all_reduce_wire_bytes(emb_v, cfg.dp);
        let dur = wire / bw + 2.0 * (cfg.dp as f64 - 1.0) * latency;
        let start = dp_done[0];
        let end = start + dur;
        emb_bytes += wire;
        trace.push(TraceEvent {
            stage: 0,
            kind: TraceKind::EmbDp,
            micro: 0,
            start,
            end,
        });
        iteration_end = end;
    } else if cfg.plan.fused_embedding {
        // One (2*dp)-way all-reduce across both replicas' DP groups,
        // issued after the per-stage DP all-reduce as in the paper's
        // Fig. 4b ("Fused EMB Sync" follows "DP").
        let wire = ring_all_reduce_wire_bytes(emb_v, 2 * cfg.dp);
        let dur = wire / bw + 2.0 * (2.0 * cfg.dp as f64 - 1.0) * latency;
        let start = dp_done[first].max(dp_done[last]);
        let end = start + dur;
        emb_bytes += wire;
        for &s in &[first, last] {
            trace.push(TraceEvent {
                stage: s,
                kind: TraceKind::EmbSync,
                micro: 0,
                start,
                end,
            });
            dp_done[s] = dp_done[s].max(end);
        }
        iteration_end = effective_end(cfg, &backward_done, &dp_done);
    } else {
        // Baseline: EMB DP (dp-way) on each replica stage, then 2-way sync.
        // Byte accounting is per participating rank (the paper's Eq. 15
        // metric): one EMB DP plus one sync per rank.
        let wire_dp = ring_all_reduce_wire_bytes(emb_v, cfg.dp);
        let dur_dp = wire_dp / bw + 2.0 * (cfg.dp as f64 - 1.0) * latency;
        emb_bytes += wire_dp;
        for &s in &[first, last] {
            let start = dp_done[s];
            let end = start + dur_dp;
            trace.push(TraceEvent {
                stage: s,
                kind: TraceKind::EmbDp,
                micro: 0,
                start,
                end,
            });
            dp_done[s] = end;
        }
        let wire_sync = ring_all_reduce_wire_bytes(emb_v, 2);
        let dur_sync = wire_sync / bw + 2.0 * latency;
        let start = dp_done[first].max(dp_done[last]);
        let end = start + dur_sync;
        emb_bytes += wire_sync;
        for &s in &[first, last] {
            trace.push(TraceEvent {
                stage: s,
                kind: TraceKind::EmbSync,
                micro: 0,
                start,
                end,
            });
            dp_done[s] = end;
        }
        iteration_end = effective_end(cfg, &backward_done, &dp_done);
    }

    SimResult {
        iteration_time_s: iteration_end,
        backward_done_s: backward_done,
        trace,
        interstage_bytes,
        dp_bytes: dp_bytes_total,
        emb_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CompressionPlan;

    #[test]
    fn baseline_iteration_time_near_paper_table2() {
        // Paper Table 2: GPT-2.5B baseline = 14.72 days / 230K iters
        // = 5.53 s/iter; GPT-8.3B = 37.27 days = 14.0 s/iter. We accept a
        // generous band — the shape, not the absolute, is the target.
        let t25 = simulate(&SimConfig::paper_gpt_2_5b()).iteration_time_s;
        let t83 = simulate(&SimConfig::paper_gpt_8_3b()).iteration_time_s;
        assert!(t25 > 1.0 && t25 < 12.0, "GPT-2.5B iter {t25}");
        assert!(t83 > 4.0 && t83 < 30.0, "GPT-8.3B iter {t83}");
        assert!(t83 > 2.0 * t25, "8.3B should be ~2.5-3x slower");
    }

    #[test]
    fn cb_speeds_up_iteration() {
        let base = SimConfig::paper_gpt_2_5b();
        let cb = base.clone().with_plan(CompressionPlan::cb());
        let t0 = simulate(&base).iteration_time_s;
        let t1 = simulate(&cb).iteration_time_s;
        assert!(t1 < t0, "CB must speed up: {t1} vs {t0}");
    }

    #[test]
    fn full_stack_ordering_matches_table2() {
        for cfg in [SimConfig::paper_gpt_2_5b(), SimConfig::paper_gpt_8_3b()] {
            let t: Vec<f64> = CompressionPlan::table2_columns()
                .into_iter()
                .map(|(_, p)| simulate(&cfg.clone().with_plan(p)).iteration_time_s)
                .collect();
            assert!(t[1] < t[0], "CB < baseline");
            assert!(t[2] < t[1], "CB+FE < CB");
            assert!(t[3] < t[2], "CB+FE+SC < CB+FE");
        }
    }

    #[test]
    fn sc_gain_larger_on_bigger_model() {
        // Table 2: SC adds much more on GPT-8.3B than on GPT-2.5B.
        let gain = |cfg: SimConfig| {
            let fe = simulate(&cfg.clone().with_plan(CompressionPlan::cb_fe())).iteration_time_s;
            let sc = simulate(&cfg.with_plan(CompressionPlan::cb_fe_sc())).iteration_time_s;
            fe / sc - 1.0
        };
        let g25 = gain(SimConfig::paper_gpt_2_5b());
        let g83 = gain(SimConfig::paper_gpt_8_3b());
        assert!(g83 > g25, "SC gain 8.3B {g83} should exceed 2.5B {g25}");
    }

    #[test]
    fn stage_zero_finishes_backward_last() {
        // 1F1B drain: earlier stages retire their final backward later.
        let r = simulate(&SimConfig::paper_gpt_2_5b());
        for w in r.backward_done_s.windows(2) {
            assert!(
                w[0] > w[1],
                "backward finish not decreasing: {:?}",
                r.backward_done_s
            );
        }
    }

    #[test]
    fn fused_embedding_reduces_emb_bytes_and_time() {
        let base = SimConfig::paper_gpt_2_5b().with_plan(CompressionPlan::cb());
        let fe = SimConfig::paper_gpt_2_5b().with_plan(CompressionPlan::cb_fe());
        let r0 = simulate(&base);
        let r1 = simulate(&fe);
        assert!(r1.emb_bytes < r0.emb_bytes);
        assert!(r1.iteration_time_s < r0.iteration_time_s);
        // Eq. 15/16: bytes ratio (2D-1)/(3D-2) at D=4 -> 7/10.
        let ratio = r1.emb_bytes / r0.emb_bytes;
        assert!(
            (ratio - 0.7).abs() < 0.05,
            "fused/baseline emb bytes {ratio}"
        );
    }

    #[test]
    fn cb_cuts_interstage_bytes_on_epilogue_only() {
        let base = simulate(&SimConfig::paper_gpt_2_5b());
        let cb = simulate(&SimConfig::paper_gpt_2_5b().with_plan(CompressionPlan::cb()));
        // Epilogue-only: backward volume drops by the epilogue fraction.
        assert!(cb.interstage_bytes < base.interstage_bytes);
        let naive = simulate(&SimConfig::paper_gpt_2_5b().with_plan(CompressionPlan::naive_cb(16)));
        // Naive CB compresses every backward send -> even fewer bytes.
        assert!(naive.interstage_bytes < cb.interstage_bytes);
    }

    #[test]
    fn trace_is_consistent() {
        let r = simulate(&SimConfig::paper_gpt_2_5b());
        let cfg = SimConfig::paper_gpt_2_5b();
        // Every stage runs n_micro forwards and backwards.
        for s in 0..cfg.pp {
            let f = r
                .trace
                .iter()
                .filter(|e| e.stage == s && e.kind == TraceKind::Forward)
                .count();
            let b = r
                .trace
                .iter()
                .filter(|e| e.stage == s && e.kind == TraceKind::Backward)
                .count();
            assert_eq!(f, cfg.n_micro);
            assert_eq!(b, cfg.n_micro);
        }
        // Events are well-formed.
        for e in &r.trace {
            assert!(e.end >= e.start, "negative duration {e:?}");
        }
        // Compute events on one device never overlap.
        for s in 0..cfg.pp {
            let mut evs: Vec<_> = r
                .trace
                .iter()
                .filter(|e| {
                    e.stage == s && matches!(e.kind, TraceKind::Forward | TraceKind::Backward)
                })
                .collect();
            evs.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
            for w in evs.windows(2) {
                assert!(w[1].start >= w[0].end - 1e-12, "overlap on stage {s}");
            }
        }
    }

    #[test]
    fn single_stage_pipeline_works() {
        let mut cfg = SimConfig::paper_gpt_2_5b();
        cfg.pp = 1;
        cfg.tp = 8;
        let r = simulate(&cfg);
        assert!(r.iteration_time_s > 0.0);
        assert_eq!(r.interstage_bytes, 0.0);
    }

    #[test]
    fn training_days_projection() {
        let r = simulate(&SimConfig::paper_gpt_2_5b());
        let days = r.training_days(230_000);
        assert!((days - r.iteration_time_s * 230_000.0 / 86_400.0).abs() < 1e-9);
    }
}
